
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cpp" "tests/CMakeFiles/lotus_tests.dir/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_adaptive.cpp.o.d"
  "/root/repo/tests/test_algorithms.cpp" "tests/CMakeFiles/lotus_tests.dir/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_algorithms.cpp.o.d"
  "/root/repo/tests/test_analytics.cpp" "tests/CMakeFiles/lotus_tests.dir/test_analytics.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_analytics.cpp.o.d"
  "/root/repo/tests/test_approx.cpp" "tests/CMakeFiles/lotus_tests.dir/test_approx.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_approx.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/lotus_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_compressed.cpp" "tests/CMakeFiles/lotus_tests.dir/test_compressed.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_compressed.cpp.o.d"
  "/root/repo/tests/test_csr_builder.cpp" "tests/CMakeFiles/lotus_tests.dir/test_csr_builder.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_csr_builder.cpp.o.d"
  "/root/repo/tests/test_datasets.cpp" "tests/CMakeFiles/lotus_tests.dir/test_datasets.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_datasets.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/lotus_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_generator_structure.cpp" "tests/CMakeFiles/lotus_tests.dir/test_generator_structure.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_generator_structure.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/lotus_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_h2h.cpp" "tests/CMakeFiles/lotus_tests.dir/test_h2h.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_h2h.cpp.o.d"
  "/root/repo/tests/test_intersect.cpp" "tests/CMakeFiles/lotus_tests.dir/test_intersect.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_intersect.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/lotus_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_lotus_count.cpp" "tests/CMakeFiles/lotus_tests.dir/test_lotus_count.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_lotus_count.cpp.o.d"
  "/root/repo/tests/test_lotus_graph.cpp" "tests/CMakeFiles/lotus_tests.dir/test_lotus_graph.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_lotus_graph.cpp.o.d"
  "/root/repo/tests/test_matrix_tc.cpp" "tests/CMakeFiles/lotus_tests.dir/test_matrix_tc.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_matrix_tc.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/lotus_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_relabel.cpp" "tests/CMakeFiles/lotus_tests.dir/test_relabel.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_relabel.cpp.o.d"
  "/root/repo/tests/test_reorder.cpp" "tests/CMakeFiles/lotus_tests.dir/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_reorder.cpp.o.d"
  "/root/repo/tests/test_simcache.cpp" "tests/CMakeFiles/lotus_tests.dir/test_simcache.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_simcache.cpp.o.d"
  "/root/repo/tests/test_simd_intersect.cpp" "tests/CMakeFiles/lotus_tests.dir/test_simd_intersect.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_simd_intersect.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/lotus_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tc_api.cpp" "tests/CMakeFiles/lotus_tests.dir/test_tc_api.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_tc_api.cpp.o.d"
  "/root/repo/tests/test_tiling.cpp" "tests/CMakeFiles/lotus_tests.dir/test_tiling.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_tiling.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/lotus_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/lotus_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tc/CMakeFiles/lotus_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/lotus/CMakeFiles/lotus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/lotus_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/lotus_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/lotus_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/simcache/CMakeFiles/lotus_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lotus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lotus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lotus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lotus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
