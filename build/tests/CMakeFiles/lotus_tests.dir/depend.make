# Empty dependencies file for lotus_tests.
# This may be replaced when dependencies are built.
