# Empty dependencies file for fig7_triangle_types.
# This may be replaced when dependencies are built.
