file(REMOVE_RECURSE
  "../bench/fig7_triangle_types"
  "../bench/fig7_triangle_types.pdb"
  "CMakeFiles/fig7_triangle_types.dir/fig7_triangle_types.cpp.o"
  "CMakeFiles/fig7_triangle_types.dir/fig7_triangle_types.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_triangle_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
