# Empty dependencies file for fig9_h2h_locality.
# This may be replaced when dependencies are built.
