file(REMOVE_RECURSE
  "../bench/fig9_h2h_locality"
  "../bench/fig9_h2h_locality.pdb"
  "CMakeFiles/fig9_h2h_locality.dir/fig9_h2h_locality.cpp.o"
  "CMakeFiles/fig9_h2h_locality.dir/fig9_h2h_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_h2h_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
