# Empty dependencies file for table6_large_graphs.
# This may be replaced when dependencies are built.
