file(REMOVE_RECURSE
  "../bench/table6_large_graphs"
  "../bench/table6_large_graphs.pdb"
  "CMakeFiles/table6_large_graphs.dir/table6_large_graphs.cpp.o"
  "CMakeFiles/table6_large_graphs.dir/table6_large_graphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_large_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
