# Empty compiler generated dependencies file for micro_bitarray.
# This may be replaced when dependencies are built.
