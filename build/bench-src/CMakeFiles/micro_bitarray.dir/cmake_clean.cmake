file(REMOVE_RECURSE
  "../bench/micro_bitarray"
  "../bench/micro_bitarray.pdb"
  "CMakeFiles/micro_bitarray.dir/micro_bitarray.cpp.o"
  "CMakeFiles/micro_bitarray.dir/micro_bitarray.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bitarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
