file(REMOVE_RECURSE
  "../bench/table5_end_to_end"
  "../bench/table5_end_to_end.pdb"
  "CMakeFiles/table5_end_to_end.dir/table5_end_to_end.cpp.o"
  "CMakeFiles/table5_end_to_end.dir/table5_end_to_end.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
