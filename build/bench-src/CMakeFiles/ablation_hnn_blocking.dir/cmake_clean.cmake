file(REMOVE_RECURSE
  "../bench/ablation_hnn_blocking"
  "../bench/ablation_hnn_blocking.pdb"
  "CMakeFiles/ablation_hnn_blocking.dir/ablation_hnn_blocking.cpp.o"
  "CMakeFiles/ablation_hnn_blocking.dir/ablation_hnn_blocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hnn_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
