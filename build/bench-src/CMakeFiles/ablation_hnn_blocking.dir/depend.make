# Empty dependencies file for ablation_hnn_blocking.
# This may be replaced when dependencies are built.
