# Empty compiler generated dependencies file for ablation_hub_count.
# This may be replaced when dependencies are built.
