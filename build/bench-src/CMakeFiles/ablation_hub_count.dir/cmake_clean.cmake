file(REMOVE_RECURSE
  "../bench/ablation_hub_count"
  "../bench/ablation_hub_count.pdb"
  "CMakeFiles/ablation_hub_count.dir/ablation_hub_count.cpp.o"
  "CMakeFiles/ablation_hub_count.dir/ablation_hub_count.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hub_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
