# Empty dependencies file for ablation_recursive.
# This may be replaced when dependencies are built.
