file(REMOVE_RECURSE
  "../bench/ablation_recursive"
  "../bench/ablation_recursive.pdb"
  "CMakeFiles/ablation_recursive.dir/ablation_recursive.cpp.o"
  "CMakeFiles/ablation_recursive.dir/ablation_recursive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
