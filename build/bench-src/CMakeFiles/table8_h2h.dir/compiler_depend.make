# Empty compiler generated dependencies file for table8_h2h.
# This may be replaced when dependencies are built.
