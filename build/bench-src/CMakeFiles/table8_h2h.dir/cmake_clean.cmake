file(REMOVE_RECURSE
  "../bench/table8_h2h"
  "../bench/table8_h2h.pdb"
  "CMakeFiles/table8_h2h.dir/table8_h2h.cpp.o"
  "CMakeFiles/table8_h2h.dir/table8_h2h.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_h2h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
