file(REMOVE_RECURSE
  "../bench/table1_hub_characteristics"
  "../bench/table1_hub_characteristics.pdb"
  "CMakeFiles/table1_hub_characteristics.dir/table1_hub_characteristics.cpp.o"
  "CMakeFiles/table1_hub_characteristics.dir/table1_hub_characteristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hub_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
