# Empty dependencies file for fig8_edge_split.
# This may be replaced when dependencies are built.
