file(REMOVE_RECURSE
  "../bench/fig8_edge_split"
  "../bench/fig8_edge_split.pdb"
  "CMakeFiles/fig8_edge_split.dir/fig8_edge_split.cpp.o"
  "CMakeFiles/fig8_edge_split.dir/fig8_edge_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_edge_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
