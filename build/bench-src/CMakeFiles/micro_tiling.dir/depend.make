# Empty dependencies file for micro_tiling.
# This may be replaced when dependencies are built.
