file(REMOVE_RECURSE
  "../bench/micro_tiling"
  "../bench/micro_tiling.pdb"
  "CMakeFiles/micro_tiling.dir/micro_tiling.cpp.o"
  "CMakeFiles/micro_tiling.dir/micro_tiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
