file(REMOVE_RECURSE
  "../bench/ablation_approx"
  "../bench/ablation_approx.pdb"
  "CMakeFiles/ablation_approx.dir/ablation_approx.cpp.o"
  "CMakeFiles/ablation_approx.dir/ablation_approx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
