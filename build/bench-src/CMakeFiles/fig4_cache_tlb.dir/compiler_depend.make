# Empty compiler generated dependencies file for fig4_cache_tlb.
# This may be replaced when dependencies are built.
