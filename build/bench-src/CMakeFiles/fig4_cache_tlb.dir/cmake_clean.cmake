file(REMOVE_RECURSE
  "../bench/fig4_cache_tlb"
  "../bench/fig4_cache_tlb.pdb"
  "CMakeFiles/fig4_cache_tlb.dir/fig4_cache_tlb.cpp.o"
  "CMakeFiles/fig4_cache_tlb.dir/fig4_cache_tlb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cache_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
