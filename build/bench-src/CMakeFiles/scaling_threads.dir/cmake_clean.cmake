file(REMOVE_RECURSE
  "../bench/scaling_threads"
  "../bench/scaling_threads.pdb"
  "CMakeFiles/scaling_threads.dir/scaling_threads.cpp.o"
  "CMakeFiles/scaling_threads.dir/scaling_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
