file(REMOVE_RECURSE
  "../bench/extra_sec32_locality"
  "../bench/extra_sec32_locality.pdb"
  "CMakeFiles/extra_sec32_locality.dir/extra_sec32_locality.cpp.o"
  "CMakeFiles/extra_sec32_locality.dir/extra_sec32_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_sec32_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
