# Empty compiler generated dependencies file for extra_sec32_locality.
# This may be replaced when dependencies are built.
