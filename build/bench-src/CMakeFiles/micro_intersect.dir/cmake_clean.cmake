file(REMOVE_RECURSE
  "../bench/micro_intersect"
  "../bench/micro_intersect.pdb"
  "CMakeFiles/micro_intersect.dir/micro_intersect.cpp.o"
  "CMakeFiles/micro_intersect.dir/micro_intersect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_intersect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
