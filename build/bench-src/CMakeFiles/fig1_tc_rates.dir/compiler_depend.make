# Empty compiler generated dependencies file for fig1_tc_rates.
# This may be replaced when dependencies are built.
