file(REMOVE_RECURSE
  "../bench/fig1_tc_rates"
  "../bench/fig1_tc_rates.pdb"
  "CMakeFiles/fig1_tc_rates.dir/fig1_tc_rates.cpp.o"
  "CMakeFiles/fig1_tc_rates.dir/fig1_tc_rates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tc_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
