
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table7_topology_size.cpp" "bench-src/CMakeFiles/table7_topology_size.dir/table7_topology_size.cpp.o" "gcc" "bench-src/CMakeFiles/table7_topology_size.dir/table7_topology_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tc/CMakeFiles/lotus_tc.dir/DependInfo.cmake"
  "/root/repo/build/src/lotus/CMakeFiles/lotus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/lotus_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/lotus_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/simcache/CMakeFiles/lotus_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lotus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lotus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lotus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lotus_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
