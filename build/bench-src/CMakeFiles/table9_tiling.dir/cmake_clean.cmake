file(REMOVE_RECURSE
  "../bench/table9_tiling"
  "../bench/table9_tiling.pdb"
  "CMakeFiles/table9_tiling.dir/table9_tiling.cpp.o"
  "CMakeFiles/table9_tiling.dir/table9_tiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
