# Empty compiler generated dependencies file for table9_tiling.
# This may be replaced when dependencies are built.
