# Empty compiler generated dependencies file for fig5_hw_events.
# This may be replaced when dependencies are built.
