file(REMOVE_RECURSE
  "../bench/fig5_hw_events"
  "../bench/fig5_hw_events.pdb"
  "CMakeFiles/fig5_hw_events.dir/fig5_hw_events.cpp.o"
  "CMakeFiles/fig5_hw_events.dir/fig5_hw_events.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hw_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
