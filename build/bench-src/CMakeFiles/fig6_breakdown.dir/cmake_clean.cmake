file(REMOVE_RECURSE
  "../bench/fig6_breakdown"
  "../bench/fig6_breakdown.pdb"
  "CMakeFiles/fig6_breakdown.dir/fig6_breakdown.cpp.o"
  "CMakeFiles/fig6_breakdown.dir/fig6_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
