file(REMOVE_RECURSE
  "../examples/lotus_tc_cli"
  "../examples/lotus_tc_cli.pdb"
  "CMakeFiles/lotus_tc_cli.dir/lotus_tc_cli.cpp.o"
  "CMakeFiles/lotus_tc_cli.dir/lotus_tc_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_tc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
