# Empty dependencies file for lotus_tc_cli.
# This may be replaced when dependencies are built.
