# Empty dependencies file for streaming_triangles.
# This may be replaced when dependencies are built.
