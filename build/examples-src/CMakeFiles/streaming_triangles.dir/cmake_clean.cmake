file(REMOVE_RECURSE
  "../examples/streaming_triangles"
  "../examples/streaming_triangles.pdb"
  "CMakeFiles/streaming_triangles.dir/streaming_triangles.cpp.o"
  "CMakeFiles/streaming_triangles.dir/streaming_triangles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
