# Empty dependencies file for social_triads.
# This may be replaced when dependencies are built.
