file(REMOVE_RECURSE
  "../examples/social_triads"
  "../examples/social_triads.pdb"
  "CMakeFiles/social_triads.dir/social_triads.cpp.o"
  "CMakeFiles/social_triads.dir/social_triads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_triads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
