# Empty dependencies file for clique_hunter.
# This may be replaced when dependencies are built.
