file(REMOVE_RECURSE
  "../examples/clique_hunter"
  "../examples/clique_hunter.pdb"
  "CMakeFiles/clique_hunter.dir/clique_hunter.cpp.o"
  "CMakeFiles/clique_hunter.dir/clique_hunter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
