file(REMOVE_RECURSE
  "../examples/community_cores"
  "../examples/community_cores.pdb"
  "CMakeFiles/community_cores.dir/community_cores.cpp.o"
  "CMakeFiles/community_cores.dir/community_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
