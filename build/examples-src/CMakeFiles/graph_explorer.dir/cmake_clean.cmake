file(REMOVE_RECURSE
  "../examples/graph_explorer"
  "../examples/graph_explorer.pdb"
  "CMakeFiles/graph_explorer.dir/graph_explorer.cpp.o"
  "CMakeFiles/graph_explorer.dir/graph_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
