# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples-src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--scale" "12")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_triads "/root/repo/build/examples/social_triads" "--factor" "0.05")
set_tests_properties(example_social_triads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_explorer "/root/repo/build/examples/graph_explorer" "--factor" "0.05")
set_tests_properties(example_graph_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming "/root/repo/build/examples/streaming_triangles" "--factor" "0.05" "--hubs" "256")
set_tests_properties(example_streaming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clique_hunter "/root/repo/build/examples/clique_hunter" "--factor" "0.05" "--max-k" "4")
set_tests_properties(example_clique_hunter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_community_cores "/root/repo/build/examples/community_cores" "--factor" "0.05")
set_tests_properties(example_community_cores PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_help "/root/repo/build/examples/lotus_tc_cli" "--help")
set_tests_properties(example_cli_help PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
