
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/registry.cpp" "src/datasets/CMakeFiles/lotus_datasets.dir/registry.cpp.o" "gcc" "src/datasets/CMakeFiles/lotus_datasets.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lotus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lotus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lotus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
