file(REMOVE_RECURSE
  "liblotus_datasets.a"
)
