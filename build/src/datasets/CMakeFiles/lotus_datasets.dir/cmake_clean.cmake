file(REMOVE_RECURSE
  "CMakeFiles/lotus_datasets.dir/registry.cpp.o"
  "CMakeFiles/lotus_datasets.dir/registry.cpp.o.d"
  "liblotus_datasets.a"
  "liblotus_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
