# Empty dependencies file for lotus_datasets.
# This may be replaced when dependencies are built.
