# Empty compiler generated dependencies file for lotus_datasets.
# This may be replaced when dependencies are built.
