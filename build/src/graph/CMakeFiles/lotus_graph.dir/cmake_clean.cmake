file(REMOVE_RECURSE
  "CMakeFiles/lotus_graph.dir/builder.cpp.o"
  "CMakeFiles/lotus_graph.dir/builder.cpp.o.d"
  "CMakeFiles/lotus_graph.dir/compressed.cpp.o"
  "CMakeFiles/lotus_graph.dir/compressed.cpp.o.d"
  "CMakeFiles/lotus_graph.dir/degree_order.cpp.o"
  "CMakeFiles/lotus_graph.dir/degree_order.cpp.o.d"
  "CMakeFiles/lotus_graph.dir/generators.cpp.o"
  "CMakeFiles/lotus_graph.dir/generators.cpp.o.d"
  "CMakeFiles/lotus_graph.dir/io.cpp.o"
  "CMakeFiles/lotus_graph.dir/io.cpp.o.d"
  "CMakeFiles/lotus_graph.dir/reorder.cpp.o"
  "CMakeFiles/lotus_graph.dir/reorder.cpp.o.d"
  "CMakeFiles/lotus_graph.dir/stats.cpp.o"
  "CMakeFiles/lotus_graph.dir/stats.cpp.o.d"
  "liblotus_graph.a"
  "liblotus_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
