file(REMOVE_RECURSE
  "liblotus_graph.a"
)
