
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/lotus_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/compressed.cpp" "src/graph/CMakeFiles/lotus_graph.dir/compressed.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/compressed.cpp.o.d"
  "/root/repo/src/graph/degree_order.cpp" "src/graph/CMakeFiles/lotus_graph.dir/degree_order.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/degree_order.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/lotus_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/lotus_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/graph/CMakeFiles/lotus_graph.dir/reorder.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/reorder.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/lotus_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/lotus_graph.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/lotus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lotus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
