# Empty compiler generated dependencies file for lotus_graph.
# This may be replaced when dependencies are built.
