# Empty dependencies file for lotus_simcache.
# This may be replaced when dependencies are built.
