file(REMOVE_RECURSE
  "liblotus_simcache.a"
)
