file(REMOVE_RECURSE
  "CMakeFiles/lotus_simcache.dir/cache_model.cpp.o"
  "CMakeFiles/lotus_simcache.dir/cache_model.cpp.o.d"
  "liblotus_simcache.a"
  "liblotus_simcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
