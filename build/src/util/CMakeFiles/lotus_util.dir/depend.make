# Empty dependencies file for lotus_util.
# This may be replaced when dependencies are built.
