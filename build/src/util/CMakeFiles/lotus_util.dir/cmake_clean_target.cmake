file(REMOVE_RECURSE
  "liblotus_util.a"
)
