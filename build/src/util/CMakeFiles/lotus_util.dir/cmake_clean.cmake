file(REMOVE_RECURSE
  "CMakeFiles/lotus_util.dir/cli.cpp.o"
  "CMakeFiles/lotus_util.dir/cli.cpp.o.d"
  "CMakeFiles/lotus_util.dir/table.cpp.o"
  "CMakeFiles/lotus_util.dir/table.cpp.o.d"
  "liblotus_util.a"
  "liblotus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
