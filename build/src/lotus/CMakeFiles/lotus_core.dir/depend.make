# Empty dependencies file for lotus_core.
# This may be replaced when dependencies are built.
