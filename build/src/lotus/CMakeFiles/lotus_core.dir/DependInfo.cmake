
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lotus/adaptive.cpp" "src/lotus/CMakeFiles/lotus_core.dir/adaptive.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/lotus/count.cpp" "src/lotus/CMakeFiles/lotus_core.dir/count.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/count.cpp.o.d"
  "/root/repo/src/lotus/kclique.cpp" "src/lotus/CMakeFiles/lotus_core.dir/kclique.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/kclique.cpp.o.d"
  "/root/repo/src/lotus/local.cpp" "src/lotus/CMakeFiles/lotus_core.dir/local.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/local.cpp.o.d"
  "/root/repo/src/lotus/lotus.cpp" "src/lotus/CMakeFiles/lotus_core.dir/lotus.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/lotus.cpp.o.d"
  "/root/repo/src/lotus/lotus_graph.cpp" "src/lotus/CMakeFiles/lotus_core.dir/lotus_graph.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/lotus_graph.cpp.o.d"
  "/root/repo/src/lotus/recursive.cpp" "src/lotus/CMakeFiles/lotus_core.dir/recursive.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/recursive.cpp.o.d"
  "/root/repo/src/lotus/relabel.cpp" "src/lotus/CMakeFiles/lotus_core.dir/relabel.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/relabel.cpp.o.d"
  "/root/repo/src/lotus/serialize.cpp" "src/lotus/CMakeFiles/lotus_core.dir/serialize.cpp.o" "gcc" "src/lotus/CMakeFiles/lotus_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lotus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lotus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lotus_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lotus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
