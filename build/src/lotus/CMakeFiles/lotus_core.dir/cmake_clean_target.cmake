file(REMOVE_RECURSE
  "liblotus_core.a"
)
