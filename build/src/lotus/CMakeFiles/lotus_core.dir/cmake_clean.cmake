file(REMOVE_RECURSE
  "CMakeFiles/lotus_core.dir/adaptive.cpp.o"
  "CMakeFiles/lotus_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/lotus_core.dir/count.cpp.o"
  "CMakeFiles/lotus_core.dir/count.cpp.o.d"
  "CMakeFiles/lotus_core.dir/kclique.cpp.o"
  "CMakeFiles/lotus_core.dir/kclique.cpp.o.d"
  "CMakeFiles/lotus_core.dir/local.cpp.o"
  "CMakeFiles/lotus_core.dir/local.cpp.o.d"
  "CMakeFiles/lotus_core.dir/lotus.cpp.o"
  "CMakeFiles/lotus_core.dir/lotus.cpp.o.d"
  "CMakeFiles/lotus_core.dir/lotus_graph.cpp.o"
  "CMakeFiles/lotus_core.dir/lotus_graph.cpp.o.d"
  "CMakeFiles/lotus_core.dir/recursive.cpp.o"
  "CMakeFiles/lotus_core.dir/recursive.cpp.o.d"
  "CMakeFiles/lotus_core.dir/relabel.cpp.o"
  "CMakeFiles/lotus_core.dir/relabel.cpp.o.d"
  "CMakeFiles/lotus_core.dir/serialize.cpp.o"
  "CMakeFiles/lotus_core.dir/serialize.cpp.o.d"
  "liblotus_core.a"
  "liblotus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
