file(REMOVE_RECURSE
  "CMakeFiles/lotus_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/lotus_parallel.dir/thread_pool.cpp.o.d"
  "liblotus_parallel.a"
  "liblotus_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
