# Empty compiler generated dependencies file for lotus_parallel.
# This may be replaced when dependencies are built.
