file(REMOVE_RECURSE
  "liblotus_parallel.a"
)
