# Empty compiler generated dependencies file for lotus_analytics.
# This may be replaced when dependencies are built.
