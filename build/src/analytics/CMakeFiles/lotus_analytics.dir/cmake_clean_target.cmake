file(REMOVE_RECURSE
  "liblotus_analytics.a"
)
