file(REMOVE_RECURSE
  "CMakeFiles/lotus_analytics.dir/approx.cpp.o"
  "CMakeFiles/lotus_analytics.dir/approx.cpp.o.d"
  "CMakeFiles/lotus_analytics.dir/clustering.cpp.o"
  "CMakeFiles/lotus_analytics.dir/clustering.cpp.o.d"
  "liblotus_analytics.a"
  "liblotus_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
