file(REMOVE_RECURSE
  "liblotus_algorithms.a"
)
