file(REMOVE_RECURSE
  "CMakeFiles/lotus_algorithms.dir/bfs.cpp.o"
  "CMakeFiles/lotus_algorithms.dir/bfs.cpp.o.d"
  "CMakeFiles/lotus_algorithms.dir/components.cpp.o"
  "CMakeFiles/lotus_algorithms.dir/components.cpp.o.d"
  "CMakeFiles/lotus_algorithms.dir/ktruss.cpp.o"
  "CMakeFiles/lotus_algorithms.dir/ktruss.cpp.o.d"
  "CMakeFiles/lotus_algorithms.dir/pagerank.cpp.o"
  "CMakeFiles/lotus_algorithms.dir/pagerank.cpp.o.d"
  "CMakeFiles/lotus_algorithms.dir/sssp.cpp.o"
  "CMakeFiles/lotus_algorithms.dir/sssp.cpp.o.d"
  "liblotus_algorithms.a"
  "liblotus_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
