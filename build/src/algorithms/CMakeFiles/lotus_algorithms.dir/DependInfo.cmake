
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bfs.cpp" "src/algorithms/CMakeFiles/lotus_algorithms.dir/bfs.cpp.o" "gcc" "src/algorithms/CMakeFiles/lotus_algorithms.dir/bfs.cpp.o.d"
  "/root/repo/src/algorithms/components.cpp" "src/algorithms/CMakeFiles/lotus_algorithms.dir/components.cpp.o" "gcc" "src/algorithms/CMakeFiles/lotus_algorithms.dir/components.cpp.o.d"
  "/root/repo/src/algorithms/ktruss.cpp" "src/algorithms/CMakeFiles/lotus_algorithms.dir/ktruss.cpp.o" "gcc" "src/algorithms/CMakeFiles/lotus_algorithms.dir/ktruss.cpp.o.d"
  "/root/repo/src/algorithms/pagerank.cpp" "src/algorithms/CMakeFiles/lotus_algorithms.dir/pagerank.cpp.o" "gcc" "src/algorithms/CMakeFiles/lotus_algorithms.dir/pagerank.cpp.o.d"
  "/root/repo/src/algorithms/sssp.cpp" "src/algorithms/CMakeFiles/lotus_algorithms.dir/sssp.cpp.o" "gcc" "src/algorithms/CMakeFiles/lotus_algorithms.dir/sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lotus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lotus_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lotus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
