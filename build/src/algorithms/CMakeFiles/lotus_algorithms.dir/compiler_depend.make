# Empty compiler generated dependencies file for lotus_algorithms.
# This may be replaced when dependencies are built.
