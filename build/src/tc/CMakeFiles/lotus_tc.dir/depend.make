# Empty dependencies file for lotus_tc.
# This may be replaced when dependencies are built.
