file(REMOVE_RECURSE
  "liblotus_tc.a"
)
