file(REMOVE_RECURSE
  "CMakeFiles/lotus_tc.dir/api.cpp.o"
  "CMakeFiles/lotus_tc.dir/api.cpp.o.d"
  "CMakeFiles/lotus_tc.dir/instrumented.cpp.o"
  "CMakeFiles/lotus_tc.dir/instrumented.cpp.o.d"
  "liblotus_tc.a"
  "liblotus_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
