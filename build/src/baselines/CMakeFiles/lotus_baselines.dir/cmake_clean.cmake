file(REMOVE_RECURSE
  "CMakeFiles/lotus_baselines.dir/matrix_tc.cpp.o"
  "CMakeFiles/lotus_baselines.dir/matrix_tc.cpp.o.d"
  "CMakeFiles/lotus_baselines.dir/simd_intersect.cpp.o"
  "CMakeFiles/lotus_baselines.dir/simd_intersect.cpp.o.d"
  "CMakeFiles/lotus_baselines.dir/tc_baselines.cpp.o"
  "CMakeFiles/lotus_baselines.dir/tc_baselines.cpp.o.d"
  "liblotus_baselines.a"
  "liblotus_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
