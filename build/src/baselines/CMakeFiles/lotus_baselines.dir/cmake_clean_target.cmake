file(REMOVE_RECURSE
  "liblotus_baselines.a"
)
