# Empty dependencies file for lotus_baselines.
# This may be replaced when dependencies are built.
