// Dataset registry: selection parsing, determinism, and the structural
// regimes each stand-in must land in.
#include <gtest/gtest.h>

#include "datasets/registry.hpp"
#include "graph/stats.hpp"

namespace {

namespace d = lotus::datasets;

TEST(Registry, HasFourteenDatasetsLikeTable4) {
  EXPECT_EQ(d::all_datasets().size(), 14u);
  EXPECT_EQ(d::small_datasets().size(), 10u);  // Table 5 group
  EXPECT_EQ(d::large_datasets().size(), 4u);   // Table 6 group
}

TEST(Registry, NamesAreUniqueAndLookupWorks) {
  for (const auto& dataset : d::all_datasets())
    EXPECT_EQ(d::dataset(dataset.name).stands_for, dataset.stands_for);
  EXPECT_THROW(d::dataset("NoSuchGraph"), std::out_of_range);
}

TEST(Registry, SelectionParsing) {
  EXPECT_EQ(d::parse_selection("").size(), 10u);
  EXPECT_EQ(d::parse_selection("all").size(), 14u);
  EXPECT_EQ(d::parse_selection("large").size(), 4u);
  const auto two = d::parse_selection("Twtr-S,SK-S");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].name, "Twtr-S");
  EXPECT_EQ(two[1].name, "SK-S");
  EXPECT_THROW(d::parse_selection("Twtr-S,bogus"), std::out_of_range);
}

TEST(Registry, GraphsAreDeterministic) {
  const auto& dataset = d::dataset("Twtr-S");
  const auto a = dataset.make(0.05);
  const auto b = dataset.make(0.05);
  EXPECT_EQ(a, b);
}

TEST(Registry, FactorScalesVertexCount) {
  const auto& dataset = d::dataset("SK-S");
  const auto small = dataset.make(0.05);
  const auto bigger = dataset.make(0.1);
  EXPECT_GT(bigger.num_vertices(), small.num_vertices());
}

TEST(Registry, SkewRegimes) {
  // Social and web stand-ins must register as skewed; the Friendster
  // control must be the least hub-dominated of the group (Sec. 5.5).
  const auto twtr = d::dataset("Twtr-S").make(0.1);
  EXPECT_TRUE(lotus::graph::degree_stats(twtr).is_skewed());

  const auto web = d::dataset("SK-S").make(0.1);
  EXPECT_TRUE(lotus::graph::degree_stats(web).is_skewed());

  const auto twtr_hubs = lotus::graph::hub_stats(twtr, 0.01);
  const auto frnd_hubs =
      lotus::graph::hub_stats(d::dataset("Frndstr-S").make(0.1), 0.01);
  EXPECT_GT(twtr_hubs.hub_edges_total_pct, frnd_hubs.hub_edges_total_pct);
  EXPECT_GT(twtr_hubs.relative_density_hubs, frnd_hubs.relative_density_hubs);
}

TEST(Registry, WebGraphsHaveDenseHubCores) {
  const auto web = d::dataset("UKDls-S").make(0.1);
  const auto h = lotus::graph::hub_stats(web, 0.01);
  EXPECT_GT(h.relative_density_hubs, 200.0);
  EXPECT_GT(h.hub_triangles_pct, 80.0);
}

TEST(Registry, KindNames) {
  EXPECT_EQ(d::kind_name(d::Kind::kSocialNetwork), "SN");
  EXPECT_EQ(d::kind_name(d::Kind::kWebGraph), "WG");
  EXPECT_EQ(d::kind_name(d::Kind::kBioGraph), "BG");
  EXPECT_EQ(d::kind_name(d::Kind::kControl), "CTRL");
}

}  // namespace
