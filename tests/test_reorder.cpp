// Reordering algorithms and locality metrics.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

namespace {

namespace g = lotus::graph;

void expect_permutation(const std::vector<g::VertexId>& ids, g::VertexId n) {
  ASSERT_EQ(ids.size(), n);
  std::vector<bool> seen(n, false);
  for (auto id : ids) {
    ASSERT_LT(id, n);
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(Reorder, AllOrderingsArePermutations) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 6, .seed = 1}));
  for (auto ordering : g::all_orderings()) {
    const auto ids = g::make_ordering(graph, ordering, 5);
    expect_permutation(ids, graph.num_vertices());
  }
}

TEST(Reorder, OriginalIsIdentity) {
  const auto graph = g::build_undirected(g::path(16));
  const auto ids = g::make_ordering(graph, g::Ordering::kOriginal);
  for (g::VertexId v = 0; v < 16; ++v) EXPECT_EQ(ids[v], v);
}

TEST(Reorder, DisconnectedComponentsAreCovered) {
  // Two components plus isolated vertices: BFS/DFS must reach everything.
  g::EdgeList el{10, {{0, 1}, {1, 2}, {5, 6}, {6, 7}}};
  const auto graph = g::build_undirected(el);
  for (auto ordering : {g::Ordering::kBfs, g::Ordering::kDfs})
    expect_permutation(g::make_ordering(graph, ordering), 10);
}

TEST(Reorder, TriangleCountIsOrderingInvariant) {
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 1500, .edges_per_vertex = 5, .p_triad = 0.5, .seed = 3}));
  const auto expected = lotus::baselines::brute_force(graph);
  for (auto ordering : g::all_orderings()) {
    const auto relabeled = g::relabel(graph, g::make_ordering(graph, ordering, 7));
    EXPECT_EQ(lotus::baselines::brute_force(relabeled), expected)
        << g::ordering_name(ordering);
  }
}

TEST(Reorder, BfsImprovesGapOverRandom) {
  const auto graph = g::build_undirected(g::watts_strogatz(
      {.num_vertices = 4096, .ring_degree = 4, .rewire_prob = 0.05, .seed = 4}));
  const auto random = g::relabel(graph, g::make_ordering(graph, g::Ordering::kRandom, 5));
  const auto bfs = g::relabel(graph, g::make_ordering(graph, g::Ordering::kBfs));
  EXPECT_LT(g::average_neighbor_gap(bfs), g::average_neighbor_gap(random));
  EXPECT_LT(g::log_gap_cost_bits(bfs), g::log_gap_cost_bits(random));
}

TEST(Reorder, RingLatticeHasTinyGaps) {
  // Ring lattice in original order: neighbours are within +-4 (mod wrap).
  const auto graph = g::build_undirected(g::watts_strogatz(
      {.num_vertices = 1 << 12, .ring_degree = 4, .rewire_prob = 0.0, .seed = 1}));
  EXPECT_LT(g::average_neighbor_gap(graph), 12.0);
}

TEST(Reorder, GapMetricsOnEmptyGraph) {
  const auto graph = g::build_undirected({0, {}});
  EXPECT_DOUBLE_EQ(g::average_neighbor_gap(graph), 0.0);
  EXPECT_DOUBLE_EQ(g::log_gap_cost_bits(graph), 0.0);
}

TEST(Reorder, NamesAreDistinct) {
  std::set<std::string> names;
  for (auto ordering : g::all_orderings()) names.insert(g::ordering_name(ordering));
  EXPECT_EQ(names.size(), g::all_orderings().size());
}

}  // namespace
