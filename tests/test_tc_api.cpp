// Unified TC API and the instrumented replays.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "graph/generators.hpp"
#include "lotus/lotus.hpp"
#include "simcache/machines.hpp"
#include "tc/api.hpp"
#include "tc/instrumented.hpp"

namespace {

namespace g = lotus::graph;
namespace tc = lotus::tc;

TEST(TcApi, AllAlgorithmsAgreeOnRandomGraph) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 31}));
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  for (auto algorithm : tc::all_algorithms())
    EXPECT_EQ(tc::query(algorithm, graph).value().result.triangles, expected)
        << tc::name(algorithm);
}

TEST(TcApi, NameParseRoundTrip) {
  for (auto algorithm : tc::all_algorithms()) {
    const auto parsed = tc::parse(tc::name(algorithm));
    ASSERT_TRUE(parsed.has_value()) << tc::name(algorithm);
    EXPECT_EQ(*parsed, algorithm);
  }
  EXPECT_FALSE(tc::parse("not-an-algorithm").has_value());
}

TEST(TcApi, PaperComparatorsEndWithLotus) {
  const auto comparators = tc::paper_comparators();
  ASSERT_FALSE(comparators.empty());
  EXPECT_EQ(comparators.back(), tc::Algorithm::kLotus);
}

class InstrumentedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = g::build_undirected(g::rmat({.scale = 11, .edge_factor = 10, .seed = 33}));
    expected_ = lotus::baselines::brute_force(graph_);
  }
  g::CsrGraph graph_;
  std::uint64_t expected_ = 0;
};

TEST_F(InstrumentedTest, ForwardReplayCountsCorrectly) {
  lotus::simcache::PerfModel model(lotus::simcache::skylakex().scaled(64));
  const auto oriented = g::degree_ordered_oriented(graph_);
  EXPECT_EQ(tc::replay_forward(oriented, model), expected_);
  const auto c = model.counters();
  EXPECT_GT(c.loads, graph_.num_edges());  // at least one read per edge
  EXPECT_GT(c.branches, 0u);
}

TEST_F(InstrumentedTest, LotusReplayCountsCorrectly) {
  lotus::simcache::PerfModel model(lotus::simcache::skylakex().scaled(64));
  const auto lg = lotus::core::LotusGraph::build(graph_, {});
  EXPECT_EQ(tc::replay_lotus(lg, {}, model), expected_);
}

TEST_F(InstrumentedTest, LotusBeatsForwardOnLocalityCounters) {
  // The Fig. 4/5 directional claims, as an executable assertion: on a
  // skewed graph with a scaled cache, Lotus must not lose on LLC misses,
  // memory accesses, or instructions.
  const auto machine = lotus::simcache::skylakex().scaled(16);

  lotus::simcache::PerfModel fwd_model(machine);
  tc::replay_forward(g::degree_ordered_oriented(graph_), fwd_model);
  const auto fwd = fwd_model.counters();

  lotus::simcache::PerfModel lotus_model(machine);
  const auto lg = lotus::core::LotusGraph::build(graph_, {});
  tc::replay_lotus(lg, {}, lotus_model);
  const auto lot = lotus_model.counters();

  EXPECT_LT(lot.loads, fwd.loads);
  EXPECT_LT(lot.instructions(), fwd.instructions());
  EXPECT_LT(lot.llc_misses, fwd.llc_misses);
  EXPECT_LT(lot.dtlb_misses, fwd.dtlb_misses);
}

TEST_F(InstrumentedTest, H2HHistogramSumsToH2HProbes) {
  const auto lg = lotus::core::LotusGraph::build(graph_, {});
  const auto histogram = tc::h2h_cacheline_histogram(lg, {});
  EXPECT_EQ(histogram.size(), (lg.h2h().size_bytes() + 63) / 64);

  // Each probed (h1, h2) pair touches exactly one cacheline; the total must
  // equal the number of pairs enumerated in phase 1: sum over vertices of
  // C(he_degree, 2).
  std::uint64_t expected_probes = 0;
  for (g::VertexId v = 0; v < lg.num_vertices(); ++v) {
    const std::uint64_t d = lg.he().degree(v);
    expected_probes += d * (d - 1) / 2;
  }
  const std::uint64_t total =
      std::accumulate(histogram.begin(), histogram.end(), std::uint64_t{0});
  EXPECT_EQ(total, expected_probes);
}

TEST(Instrumented, EmptyGraphHistogram) {
  const auto lg = lotus::core::LotusGraph::build(g::build_undirected({0, {}}), {});
  EXPECT_TRUE(lotus::tc::h2h_cacheline_histogram(lg, {}).empty());
}

}  // namespace
