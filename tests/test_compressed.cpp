// Gap+varint compressed CSX: round-trips, streaming decode, and the
// locality-compression relationship the LOTUS relabeling relies on.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/compressed.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

namespace {

namespace g = lotus::graph;
using g::CompressedCsr;

TEST(Compressed, RoundTripSmall) {
  const auto graph = g::build_undirected(g::wheel(12));
  EXPECT_EQ(CompressedCsr::encode(graph).decode(), graph);
}

TEST(Compressed, RoundTripRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto graph =
        g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = seed}));
    const auto compressed = CompressedCsr::encode(graph);
    EXPECT_EQ(compressed.num_vertices(), graph.num_vertices());
    EXPECT_EQ(compressed.num_edges(), graph.num_edges());
    EXPECT_EQ(compressed.decode(), graph);
  }
}

TEST(Compressed, EmptyAndIsolatedVertices) {
  const auto empty = g::build_undirected({0, {}});
  EXPECT_EQ(CompressedCsr::encode(empty).decode(), empty);
  const auto isolated = g::build_undirected({5, {{0, 4}}});
  EXPECT_EQ(CompressedCsr::encode(isolated).decode(), isolated);
}

TEST(Compressed, ForEachMatchesDecode) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 6, .seed = 7}));
  const auto compressed = CompressedCsr::encode(graph);
  std::vector<g::VertexId> streamed, decoded;
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) {
    streamed.clear();
    compressed.for_each_neighbor(v, [&](g::VertexId u) { streamed.push_back(u); });
    compressed.decode_neighbors(v, decoded);
    ASSERT_EQ(streamed, decoded);
    auto expected = graph.neighbors(v);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), streamed.begin(),
                           streamed.end()));
  }
}

TEST(Compressed, BeatsRawStorageOnLocalGraphs) {
  // A locality-preserving ordering (copy_web keeps crawl order) compresses
  // to well under the 4 bytes/edge of raw CSR.
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 1 << 13, .edges_per_vertex = 10, .p_copy = 0.7,
       .locality_window = 256, .seed = 9}));
  const auto compressed = CompressedCsr::encode(graph);
  EXPECT_LT(compressed.topology_bytes(), graph.topology_bytes());
}

TEST(Compressed, RandomOrderCompressesWorseThanLocalOrder) {
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 1 << 13, .edges_per_vertex = 10, .p_copy = 0.7,
       .locality_window = 256, .seed = 9}));
  const auto shuffled =
      g::relabel(graph, g::make_ordering(graph, g::Ordering::kRandom, 3));
  EXPECT_GT(CompressedCsr::encode(shuffled).topology_bytes(),
            CompressedCsr::encode(graph).topology_bytes());
}

TEST(Compressed, RejectsUnsortedInput) {
  // Hand-build a CSR with a descending list.
  std::vector<std::uint64_t> offsets = {0, 2};
  std::vector<g::VertexId> neighbors = {5, 3};
  const g::CsrGraph bad(std::move(offsets), std::move(neighbors));
  EXPECT_THROW(CompressedCsr::encode(bad), std::invalid_argument);
}

}  // namespace
