// Large-file IO: a CSX artifact whose body crosses the 2 GiB line, which is
// exactly where `long`-based ftell/fseek would truncate offsets (the bug
// util::fileio::tell64/seek64 exists to prevent). Expensive in time, RAM
// (~2.5 GiB) and disk (~2.5 GiB), so it only runs when LOTUS_LARGE_TESTS is
// set; the `large` ctest label lets suites select it explicitly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/oocore.hpp"

namespace {

namespace g = lotus::graph;
namespace fs = std::filesystem;

bool large_tests_enabled() {
  const char* flag = std::getenv("LOTUS_LARGE_TESTS");
  return flag != nullptr && *flag != '\0' && std::string(flag) != "0";
}

constexpr g::VertexId kVertices = 600000;
constexpr std::uint32_t kDegree = 1000;  // 600M neighbours = 2.4 GB body

/// Every vertex carries the same synthetic row 0..kDegree-1; checks sample
/// rows instead of holding a second full copy in memory.
void expect_synthetic_graph(const g::CsrGraph& graph) {
  ASSERT_EQ(graph.num_vertices(), kVertices);
  ASSERT_EQ(graph.num_edges(),
            static_cast<std::uint64_t>(kVertices) * kDegree);
  for (g::VertexId v = 0; v < kVertices; v += 50000) {
    const std::span<const g::VertexId> row = graph.neighbors(v);
    ASSERT_EQ(row.size(), kDegree) << "vertex " << v;
    EXPECT_EQ(row.front(), 0u);
    EXPECT_EQ(row[kDegree / 2], kDegree / 2);
    EXPECT_EQ(row.back(), kDegree - 1);
  }
  EXPECT_EQ(graph.offset(kVertices),
            static_cast<std::uint64_t>(kVertices) * kDegree);
}

TEST(LargeIo, CsxRoundTripBeyondTwoGiB) {
  if (!large_tests_enabled())
    GTEST_SKIP() << "set LOTUS_LARGE_TESTS=1 to run the >2GiB round trip";

  const fs::path dir = fs::temp_directory_path() / "lotus_large_io_test";
  fs::create_directories(dir);
  const std::string file = (dir / "huge.bin").string();

  {
    std::vector<std::uint64_t> offsets(kVertices + 1);
    for (std::size_t i = 0; i <= kVertices; ++i)
      offsets[i] = static_cast<std::uint64_t>(i) * kDegree;
    std::vector<g::VertexId> row(kDegree);
    std::iota(row.begin(), row.end(), 0u);
    std::vector<g::VertexId> neighbors;
    neighbors.reserve(static_cast<std::size_t>(kVertices) * kDegree);
    for (g::VertexId v = 0; v < kVertices; ++v)
      neighbors.insert(neighbors.end(), row.begin(), row.end());
    const g::CsrGraph graph(std::move(offsets), std::move(neighbors));
    ASSERT_TRUE(g::write_csr_binary_s(file, graph).ok());
  }  // free the 2.4 GB source before reading anything back

  ASSERT_GT(fs::file_size(file), std::uint64_t{1} << 31);

  {
    // The heap reader exercises the seek64/tell64 file-size probe and the
    // multi-gigabyte read_fully path.
    const auto heap = g::read_csr_binary_s(file);
    ASSERT_TRUE(heap.ok()) << heap.status().to_string();
    expect_synthetic_graph(heap.value());
  }
  {
    const auto parallel = lotus::graph::oocore::read_csr_binary_parallel_s(file);
    ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();
    expect_synthetic_graph(parallel.value());
  }
  {
    // The mapped reader validates the full body through the views without
    // ever allocating it.
    const auto mapped = lotus::graph::oocore::read_csr_mapped_s(file);
    ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
    EXPECT_EQ(mapped.value().owned_bytes(), 0u);
    expect_synthetic_graph(mapped.value());
  }

  fs::remove_all(dir);
}

}  // namespace
