// Extension modules: k-clique counting, recursive LOTUS, the streaming hub
// counter, and blocked HNN.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "analytics/clustering.hpp"
#include "lotus/count.hpp"
#include "lotus/local.hpp"
#include "lotus/kclique.hpp"
#include "lotus/lotus.hpp"
#include "lotus/recursive.hpp"
#include "lotus/serialize.hpp"
#include "lotus/streaming.hpp"
#include "util/prng.hpp"

namespace {

namespace g = lotus::graph;
namespace core = lotus::core;

// ---------- k-cliques ----------

constexpr std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < k; ++i) result = result * (n - i) / (i + 1);
  return result;
}

TEST(KClique, CompleteGraphClosedForm) {
  const auto graph = g::build_undirected(g::complete(12));
  for (unsigned k = 3; k <= 6; ++k)
    EXPECT_EQ(core::count_kcliques(graph, k).cliques, choose(12, k)) << k;
}

TEST(KClique, TriangleCountMatchesBruteForce) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 51}));
  EXPECT_EQ(core::count_kcliques(graph, 3).cliques,
            lotus::baselines::brute_force(graph));
}

TEST(KClique, TriangleFreeGraphHasNoCliques) {
  const auto graph = g::build_undirected(g::complete_bipartite(8, 8));
  for (unsigned k = 3; k <= 5; ++k)
    EXPECT_EQ(core::count_kcliques(graph, k).cliques, 0u);
}

TEST(KClique, WheelFourCliques) {
  // wheel(5): 4-cliques require the hub + a rim triangle; the rim C_5 has
  // no triangles, so zero 4-cliques; 5 triangles + 5 hub triangles... rim
  // edges each close one triangle with the hub -> 5 triangles total.
  const auto graph = g::build_undirected(g::wheel(5));
  EXPECT_EQ(core::count_kcliques(graph, 3).cliques, 5u);
  EXPECT_EQ(core::count_kcliques(graph, 4).cliques, 0u);
}

TEST(KClique, HubShareGrowsWithK) {
  // The paper's Sec. 7 conjecture on a skewed graph.
  const auto graph =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 10, .seed = 52}));
  const auto k3 = core::count_kcliques(graph, 3);
  const auto k4 = core::count_kcliques(graph, 4);
  ASSERT_GT(k3.cliques, 0u);
  ASSERT_GT(k4.cliques, 0u);
  EXPECT_GE(k4.hub_pct() + 1e-9, k3.hub_pct());
  EXPECT_GT(k3.hub_pct(), 50.0);
}

TEST(KClique, HubAttributionOnCompleteGraph) {
  // 1 hub in K_10 (hub_fraction 0.01 -> ceil(0.1) = 1): cliques containing
  // the hub are C(9, k-1).
  const auto graph = g::build_undirected(g::complete(10));
  const auto r = core::count_kcliques(graph, 4, 0.01);
  EXPECT_EQ(r.hub_cliques, choose(9, 3));
}

TEST(KClique, RejectsSmallK) {
  const auto graph = g::build_undirected(g::complete(5));
  EXPECT_THROW(core::count_kcliques(graph, 2), std::invalid_argument);
}

// ---------- recursive LOTUS ----------

TEST(RecursiveLotus, MatchesPlainLotusAcrossLevels) {
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 3000, .edges_per_vertex = 6, .p_triad = 0.5, .seed = 53}));
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  for (unsigned levels : {1u, 2u, 3u, 5u}) {
    const auto r = core::count_triangles_recursive(graph, {}, levels);
    EXPECT_EQ(r.triangles, expected) << "levels=" << levels;
    EXPECT_GE(r.levels_used, 1u);
    EXPECT_LE(r.levels_used, levels);
  }
}

TEST(RecursiveLotus, UsesMultipleLevelsOnLowSkewGraphs) {
  // A big NHE residue (few hubs) forces recursion to engage.
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 20000, .edges_per_vertex = 6, .p_triad = 0.4, .seed = 54}));
  core::LotusConfig config;
  config.hub_count = 64;  // tiny hub set leaves a large NHE sub-graph
  const auto r = core::count_triangles_recursive(graph, config, 3);
  EXPECT_GT(r.levels_used, 1u);
  EXPECT_EQ(r.triangles, lotus::baselines::brute_force(graph));
}

TEST(RecursiveLotus, EmptyGraph) {
  const auto r = core::count_triangles_recursive(g::build_undirected({0, {}}));
  EXPECT_EQ(r.triangles, 0u);
}

// ---------- streaming ----------

TEST(Streaming, MatchesOfflineHHHInAnyOrder) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 55}));
  core::LotusConfig config;
  config.hub_count = 512;
  const auto lg = core::LotusGraph::build(graph, config);
  const auto offline = core::count_triangles_prepared(lg, config);

  // Stream in shuffled order, with every edge duplicated.
  std::vector<std::pair<g::VertexId, g::VertexId>> stream;
  const auto& new_id = lg.relabeling();
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
    for (auto u : graph.neighbors(v))
      if (u < v) {
        stream.push_back({new_id[v], new_id[u]});
        stream.push_back({new_id[u], new_id[v]});  // duplicate, reversed
      }
  lotus::util::Xoshiro256 rng(99);
  for (std::size_t i = stream.size(); i > 1; --i)
    std::swap(stream[i - 1], stream[rng.next_below(i)]);

  core::StreamingHubCounter counter(lg.hub_count());
  for (const auto& [u, v] : stream) counter.add_edge(u, v);
  EXPECT_EQ(counter.hhh_triangles(), offline.hhh);
}

TEST(Streaming, EdgeClassCounters) {
  core::StreamingHubCounter counter(4);  // hubs: 0..3
  counter.add_edge(0, 1);                // hub-hub
  counter.add_edge(1, 2);                // hub-hub
  counter.add_edge(0, 2);                // closes triangle 0-1-2
  counter.add_edge(3, 10);               // hub-nonhub
  counter.add_edge(10, 11);              // nonhub
  counter.add_edge(5, 5);                // self-loop: ignored
  EXPECT_EQ(counter.hhh_triangles(), 1u);
  EXPECT_EQ(counter.hub_hub_edges(), 3u);
  EXPECT_EQ(counter.hub_nonhub_edges(), 1u);
  EXPECT_EQ(counter.nonhub_edges(), 1u);
}

TEST(Streaming, DuplicateHubEdgesCountOnce) {
  core::StreamingHubCounter counter(8);
  counter.add_edge(0, 1);
  counter.add_edge(1, 2);
  counter.add_edge(0, 2);
  counter.add_edge(2, 0);  // duplicate of the closing edge
  EXPECT_EQ(counter.hhh_triangles(), 1u);
  EXPECT_EQ(counter.hub_hub_edges(), 3u);
}

TEST(Streaming, RejectsOversizedHubUniverse) {
  EXPECT_THROW(core::StreamingHubCounter(1u << 17), std::invalid_argument);
}

// ---------- LOTUS local (per-vertex) counts ----------

TEST(LotusLocal, MatchesForwardLocalCounts) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 61}));
  const auto via_lotus = core::count_triangles_local(graph);
  const auto via_forward = lotus::analytics::local_triangle_counts(graph);
  ASSERT_EQ(via_lotus.size(), via_forward.size());
  for (std::size_t v = 0; v < via_lotus.size(); ++v)
    ASSERT_EQ(via_lotus[v], via_forward[v]) << "vertex " << v;
}

TEST(LotusLocal, CompleteGraph) {
  const auto counts = core::count_triangles_local(g::build_undirected(g::complete(9)));
  for (auto c : counts) EXPECT_EQ(c, 8u * 7 / 2);
}

TEST(LotusLocal, CornerSumIsThreeTimesTotal) {
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 2000, .edges_per_vertex = 6, .p_copy = 0.7,
       .locality_window = 128, .seed = 62}));
  const auto counts = core::count_triangles_local(graph);
  std::uint64_t corner_sum = 0;
  for (auto c : counts) corner_sum += c;
  EXPECT_EQ(corner_sum, 3 * lotus::baselines::brute_force(graph));
}

// ---------- LotusGraph serialization ----------

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: concurrent ctest -j processes must not share the dir.
    dir_ = std::filesystem::temp_directory_path() /
           ("lotus_serialize_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesCounts) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 63}));
  const auto lg = core::LotusGraph::build(graph, {});
  core::write_lotus_binary(path("g.lotus"), lg);
  const auto loaded = core::read_lotus_binary(path("g.lotus"));

  EXPECT_EQ(loaded.hub_count(), lg.hub_count());
  EXPECT_EQ(loaded.he().num_edges(), lg.he().num_edges());
  EXPECT_EQ(loaded.nhe().num_edges(), lg.nhe().num_edges());
  EXPECT_EQ(loaded.relabeling(), lg.relabeling());

  const auto before = core::count_triangles_prepared(lg, {});
  const auto after = core::count_triangles_prepared(loaded, {});
  EXPECT_EQ(before.triangles, after.triangles);
  EXPECT_EQ(before.hhh, after.hhh);
  EXPECT_EQ(before.nnn, after.nnn);
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::ofstream f(path("bad.lotus"), std::ios::binary);
  f << "GARBAGEWITHPADDINGBEYONDTHEHEADER";
  f.close();
  EXPECT_THROW(core::read_lotus_binary(path("bad.lotus")), std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncation) {
  const auto graph = g::build_undirected(g::complete(30));
  core::write_lotus_binary(path("t.lotus"), core::LotusGraph::build(graph, {}));
  const auto size = std::filesystem::file_size(path("t.lotus"));
  std::filesystem::resize_file(path("t.lotus"), size / 2);
  EXPECT_THROW(core::read_lotus_binary(path("t.lotus")), std::runtime_error);
}

TEST(FromParts, RejectsInconsistentParts) {
  const auto graph = g::build_undirected(g::complete(10));
  const auto lg = core::LotusGraph::build(graph, {});
  // Non-permutation relabeling.
  std::vector<g::VertexId> bad_ids(10, 0);
  EXPECT_THROW(core::LotusGraph::from_parts(lg.hub_count(), lg.h2h(), lg.he(),
                                            lg.nhe(), bad_ids),
               std::invalid_argument);
  // Wrong hub count for the H2H array.
  EXPECT_THROW(core::LotusGraph::from_parts(lg.hub_count() + 1, lg.h2h(),
                                            lg.he(), lg.nhe(), lg.relabeling()),
               std::invalid_argument);
}

// ---------- blocked HNN ----------

TEST(BlockedHnn, MatchesUnblockedForAllBlockSizes) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 56}));
  const auto lg = core::LotusGraph::build(graph, {});
  const std::uint64_t expected = core::count_hnn(lg);
  for (g::VertexId block : {1u, 7u, 64u, 1024u, 1u << 20})
    EXPECT_EQ(core::count_hnn_blocked(lg, block), expected) << block;
}

}  // namespace
