// Graph algorithms substrate: BFS, connected components, PageRank, k-truss.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <queue>

#include "algorithms/bfs.hpp"
#include "algorithms/components.hpp"
#include "algorithms/ktruss.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

namespace g = lotus::graph;
namespace alg = lotus::algorithms;

// ---------- BFS ----------

TEST(Bfs, PathGraphDistances) {
  const auto graph = g::build_undirected(g::path(10));
  const auto r = alg::bfs(graph, 0);
  for (g::VertexId v = 0; v < 10; ++v) EXPECT_EQ(r.distance[v], v);
  EXPECT_EQ(r.reached, 10u);
}

TEST(Bfs, DisconnectedComponentUnreached) {
  const auto graph = g::build_undirected({6, {{0, 1}, {1, 2}, {4, 5}}});
  const auto r = alg::bfs(graph, 0);
  EXPECT_EQ(r.reached, 3u);
  EXPECT_EQ(r.distance[3], alg::kUnreached);
  EXPECT_EQ(r.distance[4], alg::kUnreached);
}

TEST(Bfs, StarIsOneHop) {
  const auto graph = g::build_undirected(g::star(100));
  const auto r = alg::bfs(graph, 0);
  for (g::VertexId v = 1; v < 100; ++v) EXPECT_EQ(r.distance[v], 1u);
}

TEST(Bfs, MatchesSerialReferenceOnRandomGraph) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 8, .seed = 91}));
  const auto r = alg::bfs(graph, 0);

  // Serial reference BFS.
  std::vector<std::uint32_t> reference(graph.num_vertices(), alg::kUnreached);
  std::vector<g::VertexId> queue = {0};
  reference[0] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto v = queue[head];
    for (g::VertexId u : graph.neighbors(v))
      if (reference[u] == alg::kUnreached) {
        reference[u] = reference[v] + 1;
        queue.push_back(u);
      }
  }
  EXPECT_EQ(r.distance, reference);
  // A low-diameter power-law graph must trigger the bottom-up switch.
  EXPECT_GT(r.bottom_up_sweeps, 0u);
}

// ---------- connected components ----------

TEST(Components, CountsComponents) {
  const auto graph = g::build_undirected({9, {{0, 1}, {1, 2}, {4, 5}, {7, 8}}});
  const auto r = alg::connected_components(graph);
  EXPECT_EQ(r.num_components, 5u);  // {0,1,2} {3} {4,5} {6} {7,8}
  EXPECT_EQ(r.component[0], r.component[2]);
  EXPECT_NE(r.component[0], r.component[4]);
  EXPECT_EQ(r.component[3], 3u);
}

TEST(Components, SingleComponentOnConnectedGraph) {
  const auto graph = g::build_undirected(g::wheel(50));
  const auto r = alg::connected_components(graph);
  EXPECT_EQ(r.num_components, 1u);
  for (auto c : r.component) EXPECT_EQ(c, 0u);
}

TEST(Components, AgreesWithBfsReachability) {
  const auto graph =
      g::build_undirected(g::erdos_renyi(4000, 1.2, 92));  // sub-critical: many comps
  const auto cc = alg::connected_components(graph);
  const auto reach = alg::bfs(graph, 0);
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) {
    const bool same_component = cc.component[v] == cc.component[0];
    const bool reached = reach.distance[v] != alg::kUnreached;
    EXPECT_EQ(same_component, reached) << v;
  }
}

// ---------- PageRank ----------

TEST(PageRank, SumsToOne) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 93}));
  const auto r = alg::pagerank(graph);
  const double sum = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_LT(r.final_delta, 1e-6);
}

TEST(PageRank, UniformOnRegularGraph) {
  const auto graph = g::build_undirected(g::cycle(64));
  const auto r = alg::pagerank(graph);
  for (double rank : r.rank) EXPECT_NEAR(rank, 1.0 / 64, 1e-9);
}

TEST(PageRank, HubOutranksLeaves) {
  const auto graph = g::build_undirected(g::star(50));
  const auto r = alg::pagerank(graph);
  for (g::VertexId v = 1; v < 50; ++v) EXPECT_GT(r.rank[0], r.rank[v]);
}

TEST(PageRank, HandlesDanglingVertices) {
  const auto graph = g::build_undirected({3, {{0, 1}}});  // vertex 2 isolated
  const auto r = alg::pagerank(graph);
  const double sum = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

// ---------- SSSP ----------

TEST(Sssp, SourceIsZeroAndUnreachedInfinite) {
  const auto graph = g::build_undirected({5, {{0, 1}, {1, 2}}});
  const auto r = alg::delta_stepping(graph, 0);
  EXPECT_DOUBLE_EQ(r.distance[0], 0.0);
  EXPECT_EQ(r.distance[3], alg::kInfiniteDistance);
  EXPECT_EQ(r.distance[4], alg::kInfiniteDistance);
}

TEST(Sssp, MatchesDijkstraOnRandomGraph) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 6, .seed = 95}));
  const auto r = alg::delta_stepping(graph, 0);

  // Reference Dijkstra with the same synthetic weights.
  std::vector<double> reference(graph.num_vertices(), alg::kInfiniteDistance);
  reference[0] = 0.0;
  using Entry = std::pair<double, g::VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0.0, 0});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > reference[v]) continue;
    for (g::VertexId u : graph.neighbors(v)) {
      const double candidate = d + alg::edge_weight(v, u);
      if (candidate < reference[u]) {
        reference[u] = candidate;
        heap.push({candidate, u});
      }
    }
  }
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(r.distance[v], reference[v]) << v;
}

TEST(Sssp, WeightsAreSymmetricAndBounded) {
  for (g::VertexId u = 0; u < 50; ++u)
    for (g::VertexId v = u + 1; v < 50; v += 7) {
      const double w = alg::edge_weight(u, v);
      EXPECT_DOUBLE_EQ(w, alg::edge_weight(v, u));
      EXPECT_GE(w, 1.0);
      EXPECT_LT(w, 2.0);
    }
}

TEST(Sssp, DistancesRespectTriangleInequalityOverBfs) {
  // Weighted distance with weights in [1,2) is between 1x and 2x hop count.
  const auto graph = g::build_undirected(g::cycle(30));
  const auto weighted = alg::delta_stepping(graph, 0);
  const auto hops = alg::bfs(graph, 0);
  for (g::VertexId v = 0; v < 30; ++v) {
    EXPECT_GE(weighted.distance[v], static_cast<double>(hops.distance[v]));
    EXPECT_LE(weighted.distance[v], 2.0 * hops.distance[v] + 1e-9);
  }
}

// ---------- k-truss ----------

TEST(KTruss, CompleteGraphIsOneTruss) {
  // Every edge of K_6 has support 4 -> trussness 6 for all edges.
  const auto graph = g::build_undirected(g::complete(6));
  const auto r = alg::ktruss_decomposition(graph);
  EXPECT_EQ(r.max_k, 6u);
  for (auto t : r.trussness) EXPECT_EQ(t, 6u);
  EXPECT_EQ(r.edges_in_max_truss, 15u);
}

TEST(KTruss, TriangleFreeGraphIsTwoTruss) {
  const auto graph = g::build_undirected(g::grid(5, 5));
  const auto r = alg::ktruss_decomposition(graph);
  EXPECT_EQ(r.max_k, 2u);
  for (auto t : r.trussness) EXPECT_EQ(t, 2u);
}

TEST(KTruss, CliqueWithTailSeparates) {
  // K_5 plus a pendant path: the clique edges are 5-truss, the tail 2-truss.
  g::EdgeList el = g::complete(5);
  el.num_vertices = 7;
  el.edges.push_back({4, 5});
  el.edges.push_back({5, 6});
  const auto graph = g::build_undirected(el);
  const auto r = alg::ktruss_decomposition(graph);
  EXPECT_EQ(r.max_k, 5u);
  EXPECT_EQ(r.edges_in_max_truss, 10u);  // the K_5 edges
  std::uint64_t two_truss = 0;
  for (auto t : r.trussness) two_truss += t == 2 ? 1u : 0u;
  EXPECT_EQ(two_truss, 2u);  // the tail edges
}

TEST(KTruss, WheelIsThreeTruss) {
  // Every wheel edge sits in >= 1 triangle but peels at support 1.
  const auto graph = g::build_undirected(g::wheel(8));
  const auto r = alg::ktruss_decomposition(graph);
  EXPECT_EQ(r.max_k, 3u);
}

TEST(KTruss, TrussnessUpperBoundsFollowSupports) {
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 500, .edges_per_vertex = 5, .p_triad = 0.7, .seed = 94}));
  const auto r = alg::ktruss_decomposition(graph);
  EXPECT_GE(r.max_k, 3u);  // triad formation guarantees triangles
  for (auto t : r.trussness) EXPECT_GE(t, 2u);
}

}  // namespace
