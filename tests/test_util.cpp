// Unit tests for the utility layer: PRNG, bitset, formatting, table, CLI.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bitset.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using lotus::util::Bitset;
using lotus::util::Cli;
using lotus::util::TablePrinter;
using lotus::util::Xoshiro256;

TEST(Prng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) differing += a() != b() ? 1 : 0;
  EXPECT_GT(differing, 90);
}

TEST(Prng, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Prng, NextBelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // rough uniformity
}

TEST(Prng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = lotus::util::splitmix64(s);
  const auto b = lotus::util::splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Prng, LongJumpDecorrelatesStreams) {
  Xoshiro256 a(5);
  Xoshiro256 b = a;
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Bitset, SetTestClear) {
  Bitset bits(200);
  EXPECT_FALSE(bits.test(63));
  bits.set(63);
  bits.set(64);
  bits.set(199);
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(199));
  EXPECT_FALSE(bits.test(65));
  EXPECT_EQ(bits.count(), 3u);
  bits.clear(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, ResetClearsEverything) {
  Bitset bits(128);
  for (std::uint64_t i = 0; i < 128; i += 3) bits.set(i);
  bits.reset();
  EXPECT_EQ(bits.count(), 0u);
}

TEST(Format, WithCommas) {
  EXPECT_EQ(lotus::util::with_commas(0), "0");
  EXPECT_EQ(lotus::util::with_commas(999), "999");
  EXPECT_EQ(lotus::util::with_commas(1000), "1,000");
  EXPECT_EQ(lotus::util::with_commas(1234567), "1,234,567");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(lotus::util::human_bytes(512), "512.0 B");
  EXPECT_EQ(lotus::util::human_bytes(2048), "2.00 KB");
}

TEST(Format, Fixed) { EXPECT_EQ(lotus::util::fixed(3.14159, 2), "3.14"); }

TEST(Table, AlignsColumns) {
  TablePrinter table("demo");
  table.header({"name", "value"});
  table.row({"a", "1"});
  table.row({"long-name", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header and both rows present, separated by a rule.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Cli, ParsesOptionsAndFlags) {
  Cli cli("test");
  cli.opt("scale", "16", "rmat scale").flag("verbose", "talk more");
  const char* argv[] = {"prog", "--scale", "20", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("scale"), 20);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli("test");
  cli.opt("threads", "1", "thread count");
  const char* argv[] = {"prog", "--threads=8"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("threads"), 8);
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("test");
  cli.opt("scale", "16", "rmat scale");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, DefaultsApplyWhenUnset) {
  Cli cli("test");
  cli.opt("scale", "16", "rmat scale");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("scale"), 16);
}

}  // namespace
