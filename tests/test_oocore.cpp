// Out-of-core graph pipeline: mmap-backed CSX loading, the chunked parallel
// binary loader (including the O_DIRECT path and its fallback), and the
// external-memory CSR builders (docs/OUT_OF_CORE.md).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/oocore.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/memory_budget.hpp"
#include "util/status.hpp"

namespace {

namespace g = lotus::graph;
namespace oo = lotus::graph::oocore;
namespace fs = std::filesystem;
namespace cks = lotus::util::checksum;
namespace fault = lotus::util::fault;
using lotus::util::StatusCode;

class OocoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: concurrent ctest -j processes must not share the dir.
    dir_ = fs::temp_directory_path() /
           ("lotus_oocore_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] static g::CsrGraph test_graph(std::uint64_t seed = 7) {
    return g::build_undirected(
        g::rmat({.scale = 10, .edge_factor = 8, .seed = seed}));
  }

  /// Dump each undirected edge of `graph` once as a text edge list.
  void write_edge_list(const std::string& file, const g::CsrGraph& graph) const {
    g::EdgeList el{graph.num_vertices(), {}};
    for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
      for (g::VertexId u : graph.neighbors(v))
        if (v < u) el.edges.push_back({v, u});
    g::write_edge_list_text(file, el);
  }

  fs::path dir_;
};

// ---------- mmap-backed CSX loading ----------

TEST_F(OocoreTest, MappedCsxMatchesHeapLoad) {
  const auto graph = test_graph();
  g::write_csr_binary(path("g.bin"), graph);
  const auto mapped = oo::read_csr_mapped_s(path("g.bin"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  EXPECT_EQ(mapped.value(), graph);
  EXPECT_TRUE(mapped.value().mapped());
  EXPECT_EQ(mapped.value().owned_bytes(), 0u);
}

TEST_F(OocoreTest, MappedEmptyGraphRoundTrips) {
  const auto graph = g::build_undirected({0, {}});
  g::write_csr_binary(path("empty.bin"), graph);
  const auto mapped = oo::read_csr_mapped_s(path("empty.bin"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  EXPECT_EQ(mapped.value().num_vertices(), 0u);
  EXPECT_EQ(mapped.value().num_edges(), 0u);
}

TEST_F(OocoreTest, MappedGraphSurvivesFileUnlink) {
  const auto graph = test_graph();
  g::write_csr_binary(path("gone.bin"), graph);
  const auto mapped = oo::read_csr_mapped_s(path("gone.bin"));
  ASSERT_TRUE(mapped.ok());
  fs::remove(path("gone.bin"));
  // POSIX keeps the mapping alive until the last reference drops.
  EXPECT_EQ(lotus::baselines::node_iterator(mapped.value()).triangles,
            lotus::baselines::brute_force(graph));
}

TEST_F(OocoreTest, MappedRejectsCorruptFiles) {
  EXPECT_EQ(oo::read_csr_mapped_s(path("absent.bin")).status().code(),
            StatusCode::kIoError);

  std::ofstream bad(path("bad.bin"), std::ios::binary);
  bad << "NOTLOTUS and then some bytes to get past the header";
  bad.close();
  EXPECT_EQ(oo::read_csr_mapped_s(path("bad.bin")).status().code(),
            StatusCode::kInvalidArgument);

  const auto graph = g::build_undirected(g::complete(20));
  g::write_csr_binary(path("cut.bin"), graph);
  fs::resize_file(path("cut.bin"), fs::file_size(path("cut.bin")) / 2);
  EXPECT_EQ(oo::read_csr_mapped_s(path("cut.bin")).status().code(),
            StatusCode::kInvalidArgument);

  // A flipped neighbour in a footered file is caught by checksum
  // verification (kIoError) before the structural scan ever runs.
  const auto kFooterSize = static_cast<std::streamoff>(
      cks::footer_bytes(cks::kCsxSections));
  g::write_csr_binary(path("corrupt.bin"), graph);
  {
    std::fstream f(path("corrupt.bin"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4 - kFooterSize, std::ios::end);
    const std::uint32_t bogus = 0xdeadbeef;
    f.write(reinterpret_cast<const char*>(&bogus), 4);
  }
  const auto corrupt = oo::read_csr_mapped_s(path("corrupt.bin"));
  EXPECT_EQ(corrupt.status().code(), StatusCode::kIoError);
  EXPECT_NE(corrupt.status().message().find("checksum mismatch"),
            std::string::npos)
      << corrupt.status().to_string();

  // Strip the footer to get a legacy (pre-checksum) file: the same
  // out-of-range neighbour must now be caught by the mapped validation scan
  // exactly like the heap reader catches it.
  g::write_csr_binary(path("legacy.bin"), graph);
  fs::resize_file(path("legacy.bin"),
                  fs::file_size(path("legacy.bin")) -
                      static_cast<std::uintmax_t>(kFooterSize));
  {
    std::fstream f(path("legacy.bin"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-4, std::ios::end);
    const std::uint32_t bogus = 0xdeadbeef;
    f.write(reinterpret_cast<const char*>(&bogus), 4);
  }
  EXPECT_EQ(oo::read_csr_mapped_s(path("legacy.bin")).status().code(),
            StatusCode::kInvalidArgument);
}

// The paper-level acceptance bar of the mmap path: with a memory budget the
// CSX cannot fit, the heap loaders fail with out_of_memory while the mapped
// loader — charging ≈0 — still loads, and counting completes on the views.
TEST_F(OocoreTest, CountingCompletesUnderBudgetTheHeapLoadFails) {
  const auto graph = test_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  g::write_csr_binary(path("big.bin"), graph);

  lotus::util::MemoryBudget budget(graph.topology_bytes() / 4);
  lotus::util::ScopedMemoryBudget scoped(&budget);

  const auto heap = g::read_csr_binary_s(path("big.bin"));
  ASSERT_FALSE(heap.ok());
  EXPECT_EQ(heap.status().code(), StatusCode::kOutOfMemory);
  const auto parallel = oo::read_csr_binary_parallel_s(path("big.bin"));
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), StatusCode::kOutOfMemory);

  const auto mapped = oo::read_csr_mapped_s(path("big.bin"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  EXPECT_LE(budget.used(), budget.limit());
  EXPECT_EQ(lotus::baselines::node_iterator(mapped.value()).triangles, expected);
}

// ---------- chunked parallel loader ----------

TEST_F(OocoreTest, ParallelLoaderMatchesSequentialReader) {
  const auto graph = test_graph();
  g::write_csr_binary(path("p.bin"), graph);
  for (const unsigned threads : {0u, 1u, 3u}) {
    oo::LoaderOptions options;
    options.loader_threads = threads;
    options.chunk_bytes = 1;  // clamped to the 1 MiB floor
    const auto loaded = oo::read_csr_binary_parallel_s(path("p.bin"), options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    EXPECT_EQ(loaded.value(), graph) << "threads=" << threads;
    EXPECT_FALSE(loaded.value().mapped());
  }
}

TEST_F(OocoreTest, ParallelLoaderDirectIoFallsBackGracefully) {
  // O_DIRECT may be refused outright (tmpfs) or per-read; either way the
  // loader must deliver the identical graph through the buffered fallback.
  const auto graph = test_graph();
  g::write_csr_binary(path("d.bin"), graph);
  oo::LoaderOptions options;
  options.direct_io = true;
  const auto loaded = oo::read_csr_binary_parallel_s(path("d.bin"), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), graph);
}

TEST_F(OocoreTest, ParallelLoaderRecoversFromShortReads) {
  const auto graph = test_graph();
  g::write_csr_binary(path("s.bin"), graph);
  fault::ScopedFaultPlan plan(
      fault::single_site_plan(fault::Site::kReadShort, 1.0));
  const auto loaded = oo::read_csr_binary_parallel_s(path("s.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), graph);
}

TEST_F(OocoreTest, ParallelLoaderSurfacesInjectedFailures) {
  const auto graph = test_graph();
  g::write_csr_binary(path("f.bin"), graph);
  fault::ScopedFaultPlan plan(
      fault::single_site_plan(fault::Site::kReadFail, 1.0));
  const auto loaded = oo::read_csr_binary_parallel_s(path("f.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(OocoreTest, ParallelLoaderRejectsCorruptFiles) {
  EXPECT_EQ(oo::read_csr_binary_parallel_s(path("absent.bin")).status().code(),
            StatusCode::kIoError);
  const auto graph = g::build_undirected(g::complete(20));
  g::write_csr_binary(path("cut.bin"), graph);
  fs::resize_file(path("cut.bin"), fs::file_size(path("cut.bin")) - 1);
  EXPECT_EQ(oo::read_csr_binary_parallel_s(path("cut.bin")).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------- external-memory construction ----------

TEST_F(OocoreTest, ExternalBuildReproducesInMemoryBuilder) {
  const auto graph = test_graph(11);
  write_edge_list(path("g.el"), graph);
  // Compare against the in-memory builder over the same file: the edge list
  // cannot represent the rmat graph's trailing isolated vertices, so both
  // builders size the result to max_id + 1.
  const auto expected =
      g::build_undirected(g::read_edge_list_text(path("g.el")));
  oo::ExternalBuildOptions options;
  options.sort_budget_bytes = 1;  // clamped to the 1 MiB floor
  const auto rebuilt = oo::build_undirected_external_s(path("g.el"), options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().to_string();
  EXPECT_EQ(rebuilt.value(), expected);
  // No bucket temp files may survive.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // just g.el
}

TEST_F(OocoreTest, ExternalBuildCleansDirtyInput) {
  // Self-loops dropped, duplicates (in both orientations) deduplicated —
  // identical to build_undirected over the same list.
  std::ofstream f(path("dirty.el"));
  f << "# dirty\n0 1\n1 0\n2 2\n0 1\n1 2\n0 2\n3 4\n4 3\n4 4\n";
  f.close();
  const auto expected = g::build_undirected(g::read_edge_list_text(path("dirty.el")));
  const auto rebuilt = oo::build_undirected_external_s(path("dirty.el"));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().to_string();
  EXPECT_EQ(rebuilt.value(), expected);
}

TEST_F(OocoreTest, ExternalBuildHandlesEmptyInput) {
  std::ofstream f(path("empty.el"));
  f << "# nothing\n";
  f.close();
  const auto rebuilt = oo::build_undirected_external_s(path("empty.el"));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().to_string();
  EXPECT_EQ(rebuilt.value().num_vertices(), 0u);
  EXPECT_EQ(rebuilt.value().num_edges(), 0u);
}

TEST_F(OocoreTest, ExternalBuildRejectsMalformedInput) {
  EXPECT_EQ(oo::build_undirected_external_s(path("absent.el")).status().code(),
            StatusCode::kIoError);
  std::ofstream f(path("bad.el"));
  f << "0 1\nnot an edge\n";
  f.close();
  EXPECT_EQ(oo::build_undirected_external_s(path("bad.el")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(OocoreTest, ExternalBuildHonoursTheSortBudget) {
  const auto graph = test_graph(13);
  write_edge_list(path("b.el"), graph);
  // A budget only the per-bucket arc arrays charge against: generous enough
  // for one bucket at the 1 MiB floor plus the result, tight enough that a
  // single all-arcs bucket (16 bytes per arc) would blow it.
  lotus::util::MemoryBudget budget(graph.num_edges() * 8 + (4u << 20));
  lotus::util::ScopedMemoryBudget scoped(&budget);
  oo::ExternalBuildOptions options;
  options.sort_budget_bytes = 1;  // 1 MiB floor
  const auto rebuilt = oo::build_undirected_external_s(path("b.el"), options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().to_string();
  EXPECT_EQ(rebuilt.value(),
            g::build_undirected(g::read_edge_list_text(path("b.el"))));
}

TEST_F(OocoreTest, ExternalBuildSplitsWideIdRangesIntoRealBuckets) {
  // A ring over 300k vertices spans several 2^16-ID histogram slots and
  // symmetrizes to 600k arcs — at the 1 MiB sort-budget floor (128Ki arcs
  // per bucket) that is a genuine multi-bucket external sort, not the
  // single-bucket degenerate case every small graph takes. A few chords
  // plant known triangles.
  constexpr g::VertexId kRing = 300000;
  g::EdgeList el{kRing, {}};
  for (g::VertexId i = 0; i < kRing; ++i)
    el.edges.push_back({i, (i + 1) % kRing});
  for (g::VertexId i = 0; i + 2 < kRing; i += 50000)
    el.edges.push_back({i, i + 2});
  g::write_edge_list_text(path("ring.el"), el);

  const auto expected = g::build_undirected(el);
  oo::ExternalBuildOptions options;
  options.sort_budget_bytes = 1;  // 1 MiB floor
  const auto rebuilt = oo::build_undirected_external_s(path("ring.el"), options);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().to_string();
  EXPECT_EQ(rebuilt.value(), expected);
  EXPECT_EQ(lotus::baselines::node_iterator(rebuilt.value()).triangles, 6u);
}

TEST_F(OocoreTest, ExternalCsxFileBuildsAMappableArtifact) {
  const auto graph = test_graph(17);
  write_edge_list(path("c.el"), graph);
  oo::ExternalBuildOptions options;
  options.sort_budget_bytes = 1;
  options.temp_dir = dir_.string();
  ASSERT_TRUE(
      oo::build_csx_file_external_s(path("c.el"), path("c.bin"), options).ok());
  const auto expected =
      g::build_undirected(g::read_edge_list_text(path("c.el")));
  const auto mapped = oo::read_csr_mapped_s(path("c.bin"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  EXPECT_EQ(mapped.value(), expected);
  // The artifact is byte-identical to what the in-memory writer produces.
  g::write_csr_binary(path("reference.bin"), expected);
  EXPECT_EQ(fs::file_size(path("c.bin")), fs::file_size(path("reference.bin")));
}

TEST_F(OocoreTest, EndToEndDiskPipelineCountsWithoutHeapTopology) {
  // Text edge list -> external CSX build -> mmap -> count: the full
  // out-of-core journey, with a budget that the in-memory topology could
  // never satisfy once loaded the classic way.
  const auto graph = test_graph(19);
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  write_edge_list(path("e.el"), graph);
  ASSERT_TRUE(oo::build_csx_file_external_s(path("e.el"), path("e.bin")).ok());

  lotus::util::MemoryBudget budget(graph.topology_bytes() / 4);
  lotus::util::ScopedMemoryBudget scoped(&budget);
  const auto mapped = oo::read_csr_mapped_s(path("e.bin"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  EXPECT_EQ(lotus::baselines::node_iterator(mapped.value()).triangles, expected);
}

}  // namespace
