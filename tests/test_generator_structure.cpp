// Structural knobs of the tuned generators: seed boost concentrates hub
// edges, p_local creates hub-free vertices, the Zipf staircase core gives a
// dominant portal, and the u^2 portal bias skews external core links.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace {

namespace g = lotus::graph;

TEST(GeneratorStructure, SeedBoostConcentratesHubEdges) {
  const auto plain = g::build_undirected(g::holme_kim(
      {.num_vertices = 8000, .edges_per_vertex = 6, .p_triad = 0.4,
       .seed_boost = 0, .seed = 1}));
  const auto boosted = g::build_undirected(g::holme_kim(
      {.num_vertices = 8000, .edges_per_vertex = 6, .p_triad = 0.4,
       .seed_boost = 2000, .seed = 1}));
  EXPECT_GT(g::hub_stats(boosted, 0.01).hub_edges_total_pct,
            g::hub_stats(plain, 0.01).hub_edges_total_pct);
  EXPECT_GT(g::degree_stats(boosted).max_degree, g::degree_stats(plain).max_degree);
}

TEST(GeneratorStructure, PLocalCreatesHubFreeVertices) {
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 8000, .edges_per_vertex = 8, .p_copy = 0.6,
       .locality_window = 512, .core_size = 128, .p_core = 0.3,
       .p_local = 0.6, .seed = 2}));
  // Count vertices with no neighbour among the top-1% degree vertices.
  const auto hub_count = graph.num_vertices() / 100;
  auto new_id = g::degree_descending_permutation(graph);
  std::uint64_t hub_free = 0;
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) {
    bool has_hub = false;
    for (g::VertexId u : graph.neighbors(v)) has_hub |= new_id[u] < hub_count;
    hub_free += has_hub ? 0u : 1u;
  }
  // A meaningful fraction of vertices must be hub-free (the Sec. 3.3 prune
  // targets), yet the graph overall must stay hub-dominated.
  EXPECT_GT(hub_free, graph.num_vertices() / 20);
  EXPECT_GT(g::hub_stats(graph, 0.01).hub_triangles_pct, 40.0);
}

TEST(GeneratorStructure, StaircaseCoreHasDominantPortal) {
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 16000, .edges_per_vertex = 8, .p_copy = 0.6,
       .locality_window = 1024, .core_size = 500, .p_core = 0.3,
       .p_local = 0.5, .seed = 3}));
  // Vertex 0 (top of the staircase, portal-biased external links) must be
  // the clear maximum-degree vertex.
  std::uint32_t portal_degree = graph.degree(0);
  std::uint32_t second = 0;
  for (g::VertexId v = 1; v < graph.num_vertices(); ++v)
    second = std::max(second, graph.degree(v));
  EXPECT_GT(portal_degree, second);
  // And degrees inside the core must decay substantially along the ranks.
  EXPECT_GT(graph.degree(1), 2 * graph.degree(400));
}

TEST(GeneratorStructure, CoreZeroDisablesThePortalMachinery) {
  // core_size = 0 must behave like the plain copy model (no crash, no core
  // clique beyond the m+1 seed).
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 4000, .edges_per_vertex = 6, .p_copy = 0.6,
       .locality_window = 256, .core_size = 0, .p_core = 0.9, .seed = 4}));
  EXPECT_EQ(graph.num_vertices(), 4000u);
  EXPECT_GT(graph.num_edges(), 0u);
}

TEST(GeneratorStructure, LocalVerticesStillConnected) {
  // p_local = 1: every vertex attaches locally; graph must still be simple
  // and have positive minimum degree.
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 3000, .edges_per_vertex = 5, .p_triad = 0.5,
       .seed_boost = 100, .p_local = 1.0, .seed = 5}));
  const auto stats = g::degree_stats(graph);
  EXPECT_GE(stats.min_degree, 1u);
}

}  // namespace
