// Matrix-algebra TC baselines: AYZ and masked SpGEMM.
#include <gtest/gtest.h>

#include "baselines/matrix_tc.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

namespace g = lotus::graph;
namespace b = lotus::baselines;

TEST(MatrixTc, CompleteGraphs) {
  for (g::VertexId n : {3u, 5u, 12u, 30u}) {
    const auto graph = g::build_undirected(g::complete(n));
    EXPECT_EQ(b::ayz_tc(graph), g::complete_triangles(n)) << "ayz K_" << n;
    EXPECT_EQ(b::spgemm_masked_tc(graph), g::complete_triangles(n))
        << "spgemm K_" << n;
  }
}

TEST(MatrixTc, TriangleFreeAndTiny) {
  for (const auto& graph :
       {g::build_undirected(g::star(30)), g::build_undirected(g::grid(6, 6)),
        g::build_undirected({0, {}}), g::build_undirected({3, {{0, 1}}})}) {
    EXPECT_EQ(b::ayz_tc(graph), 0u);
    EXPECT_EQ(b::spgemm_masked_tc(graph), 0u);
  }
}

TEST(MatrixTc, AgreesWithBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {81u, 82u, 83u}) {
    const auto graph =
        g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = seed}));
    const auto expected = b::brute_force(graph);
    EXPECT_EQ(b::ayz_tc(graph), expected) << "ayz seed " << seed;
    EXPECT_EQ(b::spgemm_masked_tc(graph), expected) << "spgemm seed " << seed;
  }
}

TEST(MatrixTc, AyzHandlesSkewWhereHighCoreMatters) {
  // A wheel has one high-degree hub: triangles span the low/high boundary.
  const auto graph = g::build_undirected(g::wheel(100));
  EXPECT_EQ(b::ayz_tc(graph), 100u);
}

TEST(MatrixTc, AyzAllHighCore) {
  // Dense small graph: every vertex sits above the sqrt(E) threshold... or
  // below; either way the split must be seamless.
  const auto graph = g::build_undirected(g::complete(40));
  EXPECT_EQ(b::ayz_tc(graph), g::complete_triangles(40));
}

TEST(MatrixTc, SpGemmOnClusteredGraph) {
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 1000, .edges_per_vertex = 6, .p_triad = 0.7, .seed = 84}));
  EXPECT_EQ(b::spgemm_masked_tc(graph), b::brute_force(graph));
}

}  // namespace
