// Degree statistics and the Table-1 hub characteristics.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace {

namespace g = lotus::graph;

TEST(DegreeStats, BasicMoments) {
  const auto graph = g::build_undirected(g::star(101));  // hub degree 100
  const auto s = g::degree_stats(graph);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 100u);
  EXPECT_NEAR(s.avg_degree, 200.0 / 101, 1e-9);
}

TEST(DegreeStats, SkewDetection) {
  const auto skewed =
      g::build_undirected(g::rmat({.scale = 14, .edge_factor = 16, .seed = 2}));
  EXPECT_TRUE(g::degree_stats(skewed).is_skewed());

  const auto flat = g::build_undirected(g::erdos_renyi(1 << 14, 16.0, 2));
  EXPECT_FALSE(g::degree_stats(flat).is_skewed());

  const auto lattice = g::build_undirected(
      g::watts_strogatz({.num_vertices = 1 << 14, .ring_degree = 8, .rewire_prob = 0.1}));
  EXPECT_FALSE(g::degree_stats(lattice).is_skewed());
}

TEST(HubStats, EdgeClassPercentagesSumTo100) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 12, .edge_factor = 8, .seed = 3}));
  const auto h = g::hub_stats(graph, 0.01);
  EXPECT_NEAR(h.hub_edges_total_pct + h.nonhub_edges_pct, 100.0, 1e-6);
  EXPECT_NEAR(h.hub_to_hub_edges_pct + h.hub_to_nonhub_edges_pct,
              h.hub_edges_total_pct, 1e-6);
}

TEST(HubStats, StarGraphAllEdgesAreHubEdges) {
  const auto graph = g::build_undirected(g::star(1000));
  const auto h = g::hub_stats(graph, 0.01);  // 10 hubs; vertex 0 is among them
  EXPECT_NEAR(h.hub_edges_total_pct, 100.0, 1e-6);
  EXPECT_EQ(h.total_triangles, 0u);
}

TEST(HubStats, CompleteGraphAllTrianglesAreHubTriangles) {
  const auto graph = g::build_undirected(g::complete(100));
  const auto h = g::hub_stats(graph, 0.01);  // 1 hub
  EXPECT_EQ(h.total_triangles, g::complete_triangles(100));
  // Every triangle through the single hub: C(99,2) of C(100,3).
  const double expected_pct =
      100.0 * (99.0 * 98 / 2) / static_cast<double>(g::complete_triangles(100));
  EXPECT_NEAR(h.hub_triangles_pct, expected_pct, 1e-6);
}

TEST(HubStats, PowerLawGraphHasDominantHubTriangles) {
  // The paper's key observation (Sec. 3.4): on skewed graphs the vast
  // majority of triangles touch a hub and the hub sub-graph is far denser
  // than the full graph.
  const auto graph =
      g::build_undirected(g::rmat({.scale = 13, .edge_factor = 16, .seed = 5}));
  const auto h = g::hub_stats(graph, 0.01);
  EXPECT_GT(h.hub_triangles_pct, 80.0);
  EXPECT_GT(h.relative_density_hubs, 50.0);
  EXPECT_GT(h.hub_edges_total_pct, 30.0);
  EXPECT_GT(h.fruitless_searches_pct, 0.0);
}

TEST(HubStats, FlatGraphHasWeakHubs) {
  const auto graph = g::build_undirected(g::erdos_renyi(1 << 13, 12.0, 7));
  const auto h = g::hub_stats(graph, 0.01);
  EXPECT_LT(h.hub_edges_total_pct, 20.0);
  EXPECT_LT(h.hub_triangles_pct, 30.0);
}

TEST(HubStats, HubCountFollowsFraction) {
  const auto graph = g::build_undirected(g::erdos_renyi(1000, 8.0, 1));
  EXPECT_EQ(g::hub_stats(graph, 0.01).hub_count, 10u);
  EXPECT_EQ(g::hub_stats(graph, 0.10).hub_count, 100u);
}

TEST(HubStats, EmptyGraphIsHarmless) {
  const auto h = g::hub_stats(g::build_undirected({0, {}}), 0.01);
  EXPECT_EQ(h.total_triangles, 0u);
  EXPECT_EQ(h.hub_count, 0u);
}

}  // namespace
