// Timeline trace export: SchedEventLog collection from the work-stealing
// scheduler, and the Chrome-trace serialization — document shape, per-thread
// well-nesting, and steal events referencing valid threads and tasks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "parallel/thread_pool.hpp"
#include "tc/api.hpp"

namespace {

namespace g = lotus::graph;
namespace obs = lotus::obs;
namespace tc = lotus::tc;

using obs::JsonValue;
using obs::SchedEvent;
using obs::SchedEventLog;

/// Remove the sink even when a test body fails mid-way.
class ScopedSink {
 public:
  explicit ScopedSink(SchedEventLog* log) { obs::set_sched_event_sink(log); }
  ~ScopedSink() { obs::set_sched_event_sink(nullptr); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;
};

std::vector<SchedEvent> run_tasks_with_sink(unsigned pool_threads,
                                            std::size_t task_count,
                                            SchedEventLog& log) {
  lotus::parallel::ThreadPool pool(pool_threads);
  lotus::parallel::WorkStealingScheduler scheduler(pool);
  std::vector<lotus::parallel::WorkStealingScheduler::Task> tasks;
  for (std::size_t i = 0; i < task_count; ++i)
    tasks.emplace_back([](unsigned) {
      volatile std::uint64_t sink = 0;
      for (int k = 0; k < 500; ++k) sink = sink + static_cast<std::uint64_t>(k);
    });
  ScopedSink installed(&log);
  scheduler.run(std::move(tasks));
  return log.events();
}

TEST(SchedEventLog, CollectsSortsAndClears) {
  SchedEventLog log;
  log.append({{SchedEvent::Kind::kTask, 1, 2.0, 0.5, 7, -1},
              {SchedEvent::Kind::kSteal, 1, 1.0, 0.0, 3, 0}});
  log.append({{SchedEvent::Kind::kIdle, 0, 0.5, 0.25, 0, -1}});
  const auto events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const SchedEvent& a, const SchedEvent& b) {
                               return a.start_s < b.start_s;
                             }));
  EXPECT_EQ(events[0].kind, SchedEvent::Kind::kIdle);
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

TEST(SchedEventLog, NoSinkMeansNoRecording) {
  ASSERT_EQ(obs::sched_event_sink(), nullptr);
  lotus::parallel::ThreadPool pool(2);
  lotus::parallel::WorkStealingScheduler scheduler(pool);
  std::vector<lotus::parallel::WorkStealingScheduler::Task> tasks;
  for (int i = 0; i < 8; ++i) tasks.emplace_back([](unsigned) {});
  scheduler.run(std::move(tasks));  // must not crash or record anywhere
}

TEST(SchedEventLog, SchedulerRecordsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 41;
  constexpr unsigned kThreads = 3;
  SchedEventLog log;
  const auto events = run_tasks_with_sink(kThreads, kTasks, log);

  std::vector<int> runs_per_task(kTasks, 0);
  for (const SchedEvent& e : events) {
    EXPECT_LT(e.thread, kThreads);
    if (e.kind == SchedEvent::Kind::kTask) {
      ASSERT_LT(e.task, kTasks);
      ++runs_per_task[e.task];
      EXPECT_GE(e.seconds, 0.0);
    }
    if (e.kind == SchedEvent::Kind::kSteal) {
      // A thief never robs itself, and victims are valid pool indices.
      ASSERT_GE(e.victim, 0);
      EXPECT_LT(static_cast<unsigned>(e.victim), kThreads);
      EXPECT_NE(static_cast<unsigned>(e.victim), e.thread);
      EXPECT_LT(e.task, kTasks);
    }
  }
  for (std::size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(runs_per_task[i], 1) << "task " << i;
}

/// Well-nesting check for one thread's "X" slices: after sorting by start
/// (ties: longer first), every slice must lie inside the enclosing one.
void expect_well_nested(std::vector<std::pair<double, double>> slices,
                        const std::string& label) {
  std::sort(slices.begin(), slices.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second > b.second;
            });
  constexpr double kEps = 1e-6;  // microsecond rounding in the export
  std::vector<double> open_ends;
  for (const auto& [ts, dur] : slices) {
    while (!open_ends.empty() && open_ends.back() <= ts + kEps)
      open_ends.pop_back();
    if (!open_ends.empty()) {
      EXPECT_LE(ts + dur, open_ends.back() + kEps) << label;
    }
    open_ends.push_back(ts + dur);
  }
}

TEST(ChromeTrace, DocumentShapeAndNesting) {
  obs::PhaseTracer tracer;
  tracer.begin("preprocess");
  tracer.begin("relabel");
  tracer.end();
  tracer.end();
  tracer.begin("count");
  tracer.note("triangles", std::uint64_t{42});
  tracer.end();

  SchedEventLog log;
  run_tasks_with_sink(2, 16, log);

  const std::string text = obs::chrome_trace_string(tracer, log.events());
  const JsonValue doc = JsonValue::parse(text);

  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array().empty());

  bool saw_process_name = false, saw_phases_thread = false, saw_worker = false;
  std::vector<std::pair<double, double>> span_slices;
  for (const JsonValue& e : events->array()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") {
      const std::string name = e.find("name")->as_string();
      if (name == "process_name") saw_process_name = true;
      if (name == "thread_name") {
        const std::string thread = e.find("args")->find("name")->as_string();
        if (thread == "phases") saw_phases_thread = true;
        if (thread.rfind("worker", 0) == 0) saw_worker = true;
      }
      continue;
    }
    ASSERT_NE(e.find("ts"), nullptr);
    if (ph == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
      if (e.find("tid")->as_uint() == 0)
        span_slices.emplace_back(e.find("ts")->as_double(),
                                 e.find("dur")->as_double());
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_phases_thread);
  EXPECT_TRUE(saw_worker);

  // The span tree renders three slices on tid 0 and nests correctly.
  EXPECT_EQ(span_slices.size(), 3u);
  expect_well_nested(span_slices, "tid 0");

  // The count span's note rides along as args.
  bool found_note = false;
  for (const JsonValue& e : events->array())
    if (e.find("name") != nullptr && e.find("name")->as_string() == "count") {
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("triangles")->as_string(), "42");
      found_note = true;
    }
  EXPECT_TRUE(found_note);
}

TEST(ChromeTrace, WorkerTimelinesAreWellNestedAndStealsValid) {
  constexpr unsigned kThreads = 4;
  SchedEventLog log;
  run_tasks_with_sink(kThreads, 64, log);
  obs::PhaseTracer tracer;
  tracer.leaf("count", 0.001);

  const JsonValue doc =
      JsonValue::parse(obs::chrome_trace_string(tracer, log.events()));
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::vector<std::vector<std::pair<double, double>>> per_tid(kThreads + 1);
  for (const JsonValue& e : events->array()) {
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      const std::uint64_t tid = e.find("tid")->as_uint();
      ASSERT_LE(tid, kThreads);  // tid 0 = phases, 1..kThreads = workers
      per_tid[tid].emplace_back(e.find("ts")->as_double(),
                                e.find("dur")->as_double());
    } else if (ph == "i") {
      // Steal instants are thread-scoped and name a valid victim timeline.
      EXPECT_EQ(e.find("s")->as_string(), "t");
      const std::uint64_t tid = e.find("tid")->as_uint();
      EXPECT_GE(tid, 1u);
      EXPECT_LE(tid, kThreads);
      const std::uint64_t victim_tid =
          e.find("args")->find("victim")->as_uint() + 1;
      EXPECT_GE(victim_tid, 1u);
      EXPECT_LE(victim_tid, kThreads);
      EXPECT_NE(victim_tid, tid);
    }
  }
  for (std::size_t tid = 0; tid < per_tid.size(); ++tid)
    expect_well_nested(per_tid[tid], "tid " + std::to_string(tid));
}

TEST(RunProfiled, CaptureSchedEventsPopulatesReportAndTrace) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 2}));
  tc::QueryOptions options;
  options.capture_sched_events = true;
  options.profile = true;
  const auto report =
      tc::query(tc::Algorithm::kLotus, graph, options).value().profile.value();

  // The sink must be uninstalled again and the LOTUS hub phase (the
  // work-stealing stage) must have produced task events.
  EXPECT_EQ(obs::sched_event_sink(), nullptr);
  bool saw_task = false;
  for (const SchedEvent& e : report.sched_events) {
    EXPECT_LT(e.thread, report.threads);
    if (e.kind == SchedEvent::Kind::kTask) saw_task = true;
  }
  EXPECT_TRUE(saw_task);

  // And the full export is a parseable Chrome-trace document.
  const JsonValue doc = JsonValue::parse(report.to_chrome_trace());
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_FALSE(doc.find("traceEvents")->array().empty());
}

}  // namespace
