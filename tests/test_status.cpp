// Status / Expected error model and the fault-plan parser (util/status.hpp,
// util/fault.hpp): stable code names, stable CLI exit codes, exception
// mapping, and the deterministic replay property of fault plans.
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.hpp"
#include "util/status.hpp"

namespace {

using lotus::util::Expected;
using lotus::util::Status;
using lotus::util::StatusCode;
namespace fault = lotus::util::fault;

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CodeNamesAreStable) {
  // These strings appear in metrics exports and CLI output; changing them
  // breaks consumers (docs/ROBUSTNESS.md).
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(status_code_name(StatusCode::kIoError), "io_error");
  EXPECT_STREQ(status_code_name(StatusCode::kOutOfMemory), "out_of_memory");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted), "resource_exhausted");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(Status, ExitCodesAreStable) {
  EXPECT_EQ(exit_code(StatusCode::kOk), 0);
  EXPECT_EQ(exit_code(StatusCode::kInternal), 1);
  EXPECT_EQ(exit_code(StatusCode::kInvalidArgument), 2);
  EXPECT_EQ(exit_code(StatusCode::kIoError), 3);
  EXPECT_EQ(exit_code(StatusCode::kOutOfMemory), 4);
  EXPECT_EQ(exit_code(StatusCode::kDeadlineExceeded), 5);
  EXPECT_EQ(exit_code(StatusCode::kCancelled), 6);
  EXPECT_EQ(exit_code(StatusCode::kResourceExhausted), 7);
}

TEST(Status, ToStringJoinsCodeAndMessage) {
  const Status s(StatusCode::kIoError, "graph.bin: truncated body");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.to_string(), "io_error: graph.bin: truncated body");
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.status().ok());
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.take(), 42);
}

TEST(Expected, HoldsStatus) {
  Expected<int> e(Status{StatusCode::kOutOfMemory, "budget"});
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kOutOfMemory);
  EXPECT_THROW((void)e.value(), std::logic_error);
}

TEST(Expected, RejectsOkStatus) {
  EXPECT_THROW(Expected<int>(Status::Ok()), std::logic_error);
}

TEST(Expected, MovesNonCopyableValues) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(7));
  ASSERT_TRUE(e.ok());
  const std::unique_ptr<int> v = e.take();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(Status, MapsCurrentException) {
  const auto map = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return lotus::util::status_from_current_exception();
    }
    return Status::Ok();
  };
  EXPECT_EQ(map([] { throw std::bad_alloc(); }).code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(map([] {
              throw std::system_error(
                  std::make_error_code(std::errc::resource_unavailable_try_again));
            }).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(map([] { throw std::invalid_argument("bad"); }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(map([] { throw std::runtime_error("boom"); }).code(),
            StatusCode::kInternal);
}

TEST(FaultPlan, ParsesSpec) {
  std::string error;
  const auto plan = fault::parse_plan("alloc:0.5,read_short:1,seed=7", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_DOUBLE_EQ(plan->probability[static_cast<std::size_t>(fault::Site::kAlloc)], 0.5);
  EXPECT_DOUBLE_EQ(
      plan->probability[static_cast<std::size_t>(fault::Site::kReadShort)], 1.0);
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_TRUE(plan->any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(fault::parse_plan("alloc", &error).has_value());
  EXPECT_FALSE(fault::parse_plan("nosite:1", &error).has_value());
  EXPECT_FALSE(fault::parse_plan("alloc:2", &error).has_value());
  EXPECT_FALSE(fault::parse_plan("alloc:x", &error).has_value());
  EXPECT_FALSE(fault::parse_plan("seed=zz", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlan, EmptySpecIsInactive) {
  std::string error;
  const auto plan = fault::parse_plan("", &error);
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->any());
}

TEST(Fault, DeterministicReplay) {
  // The same (plan, seed) must fire on exactly the same query indices on
  // every run — that is the property chaos tests rely on.
  const auto sample = [](std::uint64_t seed) {
    fault::ScopedFaultPlan scoped(
        fault::single_site_plan(fault::Site::kAlloc, 0.3, seed));
    std::vector<bool> fired;
    fired.reserve(64);
    for (int i = 0; i < 64; ++i)
      fired.push_back(fault::should_fail(fault::Site::kAlloc));
    return fired;
  };
  const auto a = sample(11);
  const auto b = sample(11);
  const auto c = sample(12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different sequence (astronomically sure)
}

TEST(Fault, CountsInjections) {
  fault::ScopedFaultPlan scoped(
      fault::single_site_plan(fault::Site::kReadFail, 1.0));
  EXPECT_EQ(fault::injected_count(fault::Site::kReadFail), 0u);
  EXPECT_TRUE(fault::should_fail(fault::Site::kReadFail));
  EXPECT_TRUE(fault::should_fail(fault::Site::kReadFail));
  EXPECT_EQ(fault::injected_count(fault::Site::kReadFail), 2u);
  EXPECT_FALSE(fault::should_fail(fault::Site::kAlloc));  // other sites quiet
}

TEST(Fault, ClearDisablesInjection) {
  fault::install_plan(fault::single_site_plan(fault::Site::kAlloc, 1.0));
  EXPECT_TRUE(fault::should_fail(fault::Site::kAlloc));
  fault::clear();
  EXPECT_FALSE(fault::should_fail(fault::Site::kAlloc));
  EXPECT_EQ(fault::injected_count(fault::Site::kAlloc), 0u);  // counters reset
}

}  // namespace
