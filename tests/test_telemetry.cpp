// Serving-telemetry suite (obs/telemetry.hpp + the tc::Engine wiring):
// histogram bucket math and quantile accuracy on known distributions, merge
// associativity and window deltas, rolling-window rotation/expiry with
// injected clocks, query-log sampling + JSON escaping, Prometheus text
// exposition (label escaping, cumulative buckets), and the engine-level
// integration: per-algorithm / per-outcome series, the metric-name
// inventory, schema-v5 export, and the stats-coherence invariant.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "tc/engine.hpp"
#include "util/prng.hpp"

namespace {

namespace obs = lotus::obs;
namespace tc = lotus::tc;
using obs::CacheOutcome;
using obs::LatencyHistogram;
using obs::QueryStage;

// Temp-file helper mirroring the SpillDir pattern in test_engine.cpp.
class TempFile {
 public:
  explicit TempFile(const char* tag) {
    static std::atomic<int> seq{0};
    path_ = ::testing::TempDir() + "lotus-telemetry-" + tag + "-" +
            std::to_string(::getpid()) + "-" + std::to_string(seq++) + ".tmp";
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line))
      if (!line.empty()) out.push_back(line);
    return out;
  }

 private:
  std::string path_;
};

lotus::graph::CsrGraph small_graph() {
  return lotus::graph::build_undirected(
      lotus::graph::rmat({.scale = 9, .edge_factor = 8, .seed = 21}));
}

template <typename T>
T get_ok(std::future<lotus::util::Expected<T>> future) {
  auto outcome = future.get();
  EXPECT_TRUE(outcome.ok());
  return outcome.take();
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketBoundariesArePartition) {
  // Buckets tile [0, 2^43) without gaps or overlaps, and bucket_index maps
  // each boundary value into the bucket it lower-bounds.
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t lower = LatencyHistogram::bucket_lower_ns(b);
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(b);
    ASSERT_LT(lower, upper) << "bucket " << b;
    EXPECT_EQ(LatencyHistogram::bucket_index(lower), b);
    EXPECT_EQ(LatencyHistogram::bucket_index(upper - 1), b);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(b),
              LatencyHistogram::bucket_lower_ns(b + 1));
  }
  // Saturation: anything at or beyond the top bucket's lower bound lands in
  // the top bucket, including UINT64_MAX.
  const std::size_t top = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(LatencyHistogram::bucket_index(
                LatencyHistogram::bucket_lower_ns(top)),
            top);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<std::uint64_t>::max()),
            top);
}

TEST(LatencyHistogram, BucketRelativeWidthIsBounded) {
  // The log-linear layout promise: above the linear region every bucket is
  // at most 1/8 of its lower bound wide — the quantile error bound.
  for (std::size_t b = LatencyHistogram::kSubBuckets;
       b + 1 < LatencyHistogram::kBuckets; ++b) {
    const double lower =
        static_cast<double>(LatencyHistogram::bucket_lower_ns(b));
    const double width =
        static_cast<double>(LatencyHistogram::bucket_upper_ns(b)) - lower;
    EXPECT_LE(width / lower, 1.0 / LatencyHistogram::kSubBuckets + 1e-12)
        << "bucket " << b;
  }
}

TEST(LatencyHistogram, QuantileAccuracyUniform) {
  // Uniform over [1, 10^7] ns: every estimated quantile must sit within the
  // bucket error bound (6.25% midpoint error + rank discretization) of the
  // exact order statistic of the recorded sample.
  lotus::util::Xoshiro256 rng(7);
  constexpr std::size_t kN = 100000;
  LatencyHistogram hist;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) {
    v = 1 + rng.next_below(10'000'000);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = static_cast<double>(
        values[std::min(kN - 1, static_cast<std::size_t>(q * kN))]);
    const double estimate = hist.quantile_ns(q);
    EXPECT_NEAR(estimate, exact, 0.08 * exact) << "q=" << q;
  }
}

TEST(LatencyHistogram, QuantileAccuracyHeavyTail) {
  // Exponential-ish tail (latencies are never uniform in production):
  // -ln(U) scaled to a ~2 ms mean. Same error contract.
  lotus::util::Xoshiro256 rng(99);
  constexpr std::size_t kN = 100000;
  LatencyHistogram hist;
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) {
    const double u = std::max(rng.next_double(), 1e-12);
    v = static_cast<std::uint64_t>(-std::log(u) * 2e6) + 1;
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.95, 0.99, 0.999}) {
    const double exact = static_cast<double>(
        values[std::min(kN - 1, static_cast<std::size_t>(q * kN))]);
    EXPECT_NEAR(hist.quantile_ns(q), exact, 0.08 * exact) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIsAssociativeAndMatchesUnion) {
  lotus::util::Xoshiro256 rng(3);
  LatencyHistogram a, b, c, all;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 20);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    all.record(v);
  }
  // (a+b)+c
  LatencyHistogram left = a;
  left.merge(b);
  left.merge(c);
  // a+(b+c)
  LatencyHistogram right = b;
  right.merge(c);
  LatencyHistogram right2 = a;
  right2.merge(right);
  EXPECT_EQ(left.bins(), right2.bins());
  EXPECT_EQ(left.bins(), all.bins());
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(left.sum_ns(), all.sum_ns());
}

TEST(LatencyHistogram, DeltaInvertsMerge) {
  lotus::util::Xoshiro256 rng(4);
  LatencyHistogram older, extra;
  for (int i = 0; i < 1000; ++i) older.record(rng.next_below(1u << 16));
  for (int i = 0; i < 500; ++i) extra.record(rng.next_below(1u << 16));
  LatencyHistogram newer = older;
  newer.merge(extra);
  const LatencyHistogram diff = LatencyHistogram::delta(newer, older);
  EXPECT_EQ(diff.bins(), extra.bins());
  EXPECT_EQ(diff.count(), extra.count());
  EXPECT_EQ(diff.sum_ns(), extra.sum_ns());
}

TEST(LatencyHistogram, EmptyAndSaturated) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.quantile_ns(0.99), 0.0);
  hist.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(hist.count(), 1u);
  // The saturated estimate is the top bucket's lower bound — finite.
  const double q = hist.quantile_ns(0.5);
  EXPECT_EQ(q, static_cast<double>(LatencyHistogram::bucket_lower_ns(
                   LatencyHistogram::kBuckets - 1)));
}

// ---------------------------------------------------------------------------
// RollingWindow
// ---------------------------------------------------------------------------

TEST(RollingWindow, RotatesAndExpires) {
  obs::RollingWindow window(10.0, 5);  // 2 s slots
  LatencyHistogram cumulative;
  std::uint64_t completed = 0;
  window.advance(0.0, 0, cumulative);

  // 1 query per second for 30 s; snapshots every 2 s.
  for (int t = 1; t <= 30; ++t) {
    cumulative.record(1'000'000);
    ++completed;
    window.advance(static_cast<double>(t), completed, cumulative);
  }
  const auto stats =
      window.stats(30.0, completed, cumulative);
  // Warm window: span ≈ the configured 10 s (one slot of slack), rate ≈ 1.
  EXPECT_GE(stats.span_s, 10.0);
  EXPECT_LE(stats.span_s, 12.0 + 1e-9);
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(stats.span_s + 0.5));
  EXPECT_NEAR(stats.qps, 1.0, 0.05);
  // The ring stays bounded: 5 slots per window + the baseline.
  EXPECT_LE(window.size(), 7u);
}

TEST(RollingWindow, IdleWindowDrainsToZero) {
  obs::RollingWindow window(10.0, 5);
  LatencyHistogram cumulative;
  window.advance(0.0, 0, cumulative);
  for (int t = 1; t <= 5; ++t) {
    cumulative.record(500);
    window.advance(static_cast<double>(t), static_cast<std::uint64_t>(t),
                   cumulative);
  }
  // 100 s of silence: every burst slot expires, the delta reaches zero.
  for (int t = 6; t <= 100; ++t)
    window.advance(static_cast<double>(t), 5, cumulative);
  const auto stats = window.stats(100.0, 5, cumulative);
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.hist.count(), 0u);
  EXPECT_EQ(stats.qps, 0.0);
}

TEST(RollingWindow, StatsBeforeFirstSlotCoverLifetime) {
  obs::RollingWindow window(60.0, 15);
  LatencyHistogram cumulative;
  cumulative.record(1000);
  const auto stats = window.stats(0.5, 1, cumulative);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.hist.count(), 1u);
}

// ---------------------------------------------------------------------------
// Telemetry (shards, query log)
// ---------------------------------------------------------------------------

obs::QuerySample sample_for(std::size_t algorithm, std::uint64_t total_ns,
                            CacheOutcome outcome = CacheOutcome::kHit) {
  obs::QuerySample s;
  s.algorithm = algorithm;
  s.outcome = outcome;
  s.graph_key = "g";
  s.status = "ok";
  s.threads = 2;
  s.queue_ns = total_ns / 4;
  s.prepare_ns = total_ns / 4;
  s.count_ns = total_ns / 2;
  s.total_ns = total_ns;
  return s;
}

TEST(Telemetry, ConcurrentRecordsAllLand) {
  obs::Telemetry telemetry({.window_s = 60.0}, {"alpha", "beta"});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&telemetry, t] {
      for (int i = 0; i < kPerThread; ++i)
        telemetry.record(sample_for(static_cast<std::size_t>(t % 2),
                                    static_cast<std::uint64_t>(1000 + i)));
    });
  for (auto& thread : threads) thread.join();

  const obs::TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.queries_recorded,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Per-algorithm totals: each label got half the records at every stage.
  std::uint64_t total_stage_count = 0;
  for (const auto& series : snap.algorithms)
    if (series.stage == QueryStage::kTotal) {
      EXPECT_EQ(series.hist.count(),
                static_cast<std::uint64_t>(kThreads) * kPerThread / 2)
          << series.label;
      total_stage_count += series.hist.count();
    }
  EXPECT_EQ(total_stage_count, snap.queries_recorded);
}

TEST(Telemetry, DisabledIsInert) {
  obs::Telemetry telemetry({.enabled = false}, {"alpha"});
  EXPECT_EQ(telemetry.record(sample_for(0, 1000)), 0u);
  const obs::TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.queries_recorded, 0u);
  EXPECT_TRUE(snap.algorithms.empty());
}

TEST(Telemetry, QueryLogSamplingAndParseability) {
  TempFile log("sample");
  obs::TelemetryOptions options;
  options.query_log_path = log.path();
  options.query_log_sample = 3;  // ids 1, 4, 7, 10, ...
  obs::Telemetry telemetry(options, {"alpha"});
  for (int i = 0; i < 10; ++i)
    telemetry.record(sample_for(0, static_cast<std::uint64_t>(1000 * (i + 1))));

  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 4u);
  std::uint64_t last_id = 0;
  for (const std::string& line : lines) {
    const obs::JsonValue row = obs::JsonValue::parse(line);  // must not throw
    const std::uint64_t id = row.find("query_id")->as_uint();
    EXPECT_GT(id, last_id);  // monotonic
    EXPECT_EQ((id - 1) % 3, 0u);
    last_id = id;
    EXPECT_EQ(row.find("algorithm")->as_string(), "alpha");
    EXPECT_EQ(row.find("cache_outcome")->as_string(), "hit");
    EXPECT_EQ(row.find("status")->as_string(), "ok");
    EXPECT_FALSE(row.find("deadline_miss")->as_bool());
    // Stage timings reconstruct the query: queue + prepare + count == total
    // by construction of sample_for.
    const double total = row.find("total_s")->as_double();
    const double stages = row.find("queue_s")->as_double() +
                          row.find("prepare_s")->as_double() +
                          row.find("count_s")->as_double();
    EXPECT_NEAR(stages, total, 1e-12);
  }
  EXPECT_EQ(telemetry.snapshot().query_log_lines, 4u);
}

TEST(Telemetry, QueryLogEscapesHostileKeys) {
  TempFile log("escape");
  obs::TelemetryOptions options;
  options.query_log_path = log.path();
  obs::Telemetry telemetry(options, {"alpha"});
  obs::QuerySample sample = sample_for(0, 1000);
  const std::string hostile = "key\"with\\quotes\nand\tcontrol\x01chars";
  sample.graph_key = hostile;
  telemetry.record(sample);

  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 1u);
  const obs::JsonValue row = obs::JsonValue::parse(lines[0]);
  EXPECT_EQ(row.find("graph_key")->as_string(), hostile);  // round-trips
}

TEST(Telemetry, OutOfRangeAlgorithmRoutesToUnknown) {
  // An out-of-range index lands in the reserved "unknown" series (matching
  // the query-log label), never on the last real label.
  obs::Telemetry telemetry({.window_s = 60.0}, {"alpha"});
  telemetry.record(sample_for(0, 1000));
  telemetry.record(sample_for(7, 2000));  // out of range
  const obs::TelemetrySnapshot snap = telemetry.snapshot();
  const auto count = [&snap](const char* label,
                             QueryStage stage) -> std::uint64_t {
    for (const auto& s : snap.algorithms)
      if (s.label == label && s.stage == stage) return s.hist.count();
    return 0;
  };
  EXPECT_EQ(count("alpha", QueryStage::kTotal), 1u);
  EXPECT_EQ(count("unknown", QueryStage::kTotal), 1u);
  // Outcome series stay exact — no cross-family double counting.
  for (const auto& s : snap.outcomes)
    if (s.label == "hit" && s.stage == QueryStage::kTotal)
      EXPECT_EQ(s.hist.count(), 2u);
}

TEST(Telemetry, EmptyLabelTableDoesNotCollideWithOutcomes) {
  // With no labels, algo series 0 must not alias outcome series 0: each
  // sample counts once under "unknown" and once under its outcome.
  obs::Telemetry telemetry({.window_s = 60.0}, {});
  telemetry.record(sample_for(0, 1000, CacheOutcome::kUncached));
  const obs::TelemetrySnapshot snap = telemetry.snapshot();
  ASSERT_EQ(snap.algorithms.size(), obs::kNumQueryStages);
  for (const auto& s : snap.algorithms) {
    EXPECT_EQ(s.label, "unknown");
    EXPECT_EQ(s.hist.count(), 1u);
  }
  ASSERT_EQ(snap.outcomes.size(), obs::kNumQueryStages);
  for (const auto& s : snap.outcomes) {
    EXPECT_EQ(s.label, "uncached");
    EXPECT_EQ(s.hist.count(), 1u);
  }
}

TEST(Telemetry, QueryLogDisabledBySampleZero) {
  TempFile log("off");
  obs::TelemetryOptions options;
  options.query_log_path = log.path();
  options.query_log_sample = 0;
  obs::Telemetry telemetry(options, {"alpha"});
  telemetry.record(sample_for(0, 1000));
  EXPECT_TRUE(log.lines().empty());
  EXPECT_EQ(telemetry.snapshot().query_log_lines, 0u);
}

// ---------------------------------------------------------------------------
// PrometheusWriter
// ---------------------------------------------------------------------------

TEST(PrometheusWriter, EscapesLabelValues) {
  EXPECT_EQ(obs::PrometheusWriter::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::PrometheusWriter::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusWriter::escape_label_value("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(obs::PrometheusWriter::escape_label_value("line1\nline2"),
            "line1\\nline2");
  // UTF-8 passes through byte-exact.
  EXPECT_EQ(obs::PrometheusWriter::escape_label_value("gr\xc3\xa9""goire"),
            "gr\xc3\xa9""goire");
  // All together.
  EXPECT_EQ(obs::PrometheusWriter::escape_label_value("\\\"\n\xc3\xa9"),
            "\\\\\\\"\\n\xc3\xa9");
}

TEST(PrometheusWriter, EmitsEscapedSamplesOnce) {
  obs::PrometheusWriter writer;
  writer.counter("tc_demo_total", "A demo\ncounter.", 7,
                 {{"graph", "road\"net\\eu\n"}});
  writer.counter("tc_demo_total", "A demo\ncounter.", 9, {{"graph", "two"}});
  const std::string& text = writer.str();
  // One header pair despite two samples.
  EXPECT_EQ(text.find("# HELP tc_demo_total A demo\\ncounter.\n"),
            text.rfind("# HELP tc_demo_total"));
  EXPECT_NE(text.find("# TYPE tc_demo_total counter\n"), std::string::npos);
  EXPECT_NE(
      text.find("tc_demo_total{graph=\"road\\\"net\\\\eu\\n\"} 7\n"),
      std::string::npos);
  EXPECT_NE(text.find("tc_demo_total{graph=\"two\"} 9\n"), std::string::npos);
}

TEST(PrometheusWriter, HistogramIsCumulativeWithInf) {
  LatencyHistogram hist;
  for (std::uint64_t v : {100u, 200u, 400u, 100'000u, 5'000'000u})
    hist.record(v);
  obs::PrometheusWriter writer;
  writer.histogram("tc_lat_seconds", "Latency.", {{"algo", "lotus"}}, hist);
  const std::string& text = writer.str();
  EXPECT_NE(text.find("# TYPE tc_lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("tc_lat_seconds_bucket{algo=\"lotus\",le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("tc_lat_seconds_count{algo=\"lotus\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("tc_lat_seconds_sum{algo=\"lotus\"} "),
            std::string::npos);
  // Bucket counts are cumulative (non-decreasing as `le` grows).
  std::istringstream lines(text);
  std::string line;
  std::uint64_t previous = 0;
  std::size_t buckets = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("tc_lat_seconds_bucket", 0) != 0) continue;
    const std::uint64_t n =
        std::stoull(line.substr(line.find_last_of(' ') + 1));
    EXPECT_GE(n, previous) << line;
    previous = n;
    ++buckets;
  }
  EXPECT_GE(buckets, 5u);  // distinct values landed in distinct buckets
  EXPECT_EQ(previous, 5u);
}

TEST(PrometheusWriter, BucketBoundsAreInclusive) {
  // `le` is inclusive in the exposition format: an observation exactly on a
  // bucket boundary must be covered by that bucket's emitted `le`. Bucket
  // [8, 9) holds the value 8, so its bound is 8 ns, not the exclusive 9.
  LatencyHistogram hist;
  hist.record(8);
  obs::PrometheusWriter writer;
  writer.histogram("tc_lat_seconds", "Latency.", {}, hist);
  const std::string& text = writer.str();
  EXPECT_NE(text.find("tc_lat_seconds_bucket{le=\"8e-09\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(text.find("le=\"9e-09\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(EngineTelemetry, RecordsPerAlgorithmAndOutcome) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  for (int i = 0; i < 3; ++i)
    (void)get_ok<tc::QueryResult>(
        engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  for (int i = 0; i < 2; ++i)
    (void)get_ok<tc::QueryResult>(
        engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));

  const obs::TelemetrySnapshot snap = engine.telemetry_snapshot();
  EXPECT_EQ(snap.queries_recorded, 5u);

  const auto series_count = [&snap](const char* label, QueryStage stage,
                                    bool outcome = false) -> std::uint64_t {
    for (const auto& s : outcome ? snap.outcomes : snap.algorithms)
      if (s.label == label && s.stage == stage) return s.hist.count();
    return 0;
  };
  EXPECT_EQ(series_count("lotus", QueryStage::kTotal), 3u);
  EXPECT_EQ(series_count("gap-forward", QueryStage::kTotal), 2u);
  EXPECT_EQ(series_count("lotus", QueryStage::kQueue), 3u);
  EXPECT_EQ(series_count("lotus", QueryStage::kCount), 3u);
  // First query per key misses, the rest hit.
  EXPECT_EQ(series_count("miss", QueryStage::kTotal, true), 2u);
  EXPECT_EQ(series_count("hit", QueryStage::kTotal, true), 3u);

  // The stats snapshot stays summable (the coherence satellite).
  const tc::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.cache_lookups);
  EXPECT_EQ(stats.cache_lookups, 5u);
}

TEST(EngineTelemetry, PrometheusTextCoversInventory) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  (void)get_ok<tc::QueryResult>(
      engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)get_ok<tc::QueryResult>(
      engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  const std::string text = engine.prometheus_text();
  // Every name in the documented inventory appears as a family, and every
  // family in the text is in the inventory (no undocumented metrics).
  for (const char* name : obs::kEngineMetricNames)
    EXPECT_NE(text.find(std::string("# TYPE ") + name + " "),
              std::string::npos)
        << name;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const std::string family = line.substr(7, line.find(' ', 7) - 7);
    EXPECT_NE(std::find_if(std::begin(obs::kEngineMetricNames),
                           std::end(obs::kEngineMetricNames),
                           [&family](const char* n) { return family == n; }),
              std::end(obs::kEngineMetricNames))
        << "undocumented family: " << family;
  }
  EXPECT_NE(text.find("lotus_engine_queries_completed_total 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("lotus_engine_query_stage_seconds_bucket{algorithm=\"lotus\""),
      std::string::npos);
  EXPECT_NE(text.find("lotus_engine_cache_outcome_seconds_bucket{outcome="),
            std::string::npos);
  EXPECT_NE(text.find("lotus_engine_window_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(EngineTelemetry, MetricsExportCarriesTelemetrySection) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  (void)get_ok<tc::QueryResult>(
      engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  const obs::JsonValue root =
      obs::JsonValue::parse(engine.metrics().to_json_string());
  EXPECT_EQ(root.find("schema_version")->as_string(), "lotus-metrics/7");
  const obs::JsonValue* telemetry = root.find("engine_telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_TRUE(telemetry->find("enabled")->as_bool());
  EXPECT_EQ(telemetry->find("queries_recorded")->as_uint(), 1u);
  ASSERT_NE(telemetry->find("window"), nullptr);
  EXPECT_GE(telemetry->find("window")->find("qps")->as_double(), 0.0);
  const obs::JsonValue* histograms = telemetry->find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_FALSE(histograms->array().empty());
  const obs::JsonValue& row = histograms->array().front();
  EXPECT_NE(row.find("label"), nullptr);
  EXPECT_NE(row.find("stage"), nullptr);
  EXPECT_NE(row.find("p99_s"), nullptr);
  EXPECT_NE(row.find("p999_s"), nullptr);
  // The engine aggregate carries the new coherence counters too.
  const obs::JsonValue* engine_section = root.find("engine");
  ASSERT_NE(engine_section, nullptr);
  EXPECT_EQ(engine_section->find("cache_lookups")->as_uint(), 1u);
  EXPECT_EQ(engine_section->find("deadline_misses")->as_uint(), 0u);
}

TEST(EngineTelemetry, QueryLogReconstructsServedQueries) {
  TempFile log("engine");
  const auto graph = small_graph();
  tc::EngineOptions options{.num_drivers = 2};
  options.telemetry.query_log_path = log.path();
  {
    tc::Engine engine(options);
    for (int i = 0; i < 6; ++i)
      (void)get_ok<tc::QueryResult>(
          engine.submit({i % 2 == 0 ? tc::Algorithm::kLotus
                                    : tc::Algorithm::kForwardMerge,
                         "g", &graph, {}}));
  }
  const auto lines = log.lines();
  ASSERT_EQ(lines.size(), 6u);
  std::uint64_t hits = 0;
  for (const std::string& line : lines) {
    const obs::JsonValue row = obs::JsonValue::parse(line);
    EXPECT_EQ(row.find("graph_key")->as_string(), "g");
    EXPECT_EQ(row.find("status")->as_string(), "ok");
    const std::string algo = row.find("algorithm")->as_string();
    EXPECT_TRUE(algo == "lotus" || algo == "gap-forward") << algo;
    EXPECT_GE(row.find("total_s")->as_double(),
              row.find("count_s")->as_double());
    if (row.find("cache_outcome")->as_string() == "hit") ++hits;
  }
  EXPECT_GE(hits, 2u);  // 2 keys × first-build, the rest hit or share
}

TEST(EngineTelemetry, DeadlineMissIsFlagged) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  tc::QuerySpec spec{tc::Algorithm::kForwardMerge, "g", &graph, {}};
  spec.options.deadline = lotus::util::Deadline::after(0.0);
  const auto result = get_ok<tc::QueryResult>(engine.submit(std::move(spec)));
  ASSERT_EQ(result.status.code(), lotus::util::StatusCode::kDeadlineExceeded);
  const tc::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(engine.telemetry_snapshot().deadline_misses, 1u);
  const std::string text = engine.prometheus_text();
  EXPECT_NE(text.find("lotus_engine_deadline_misses_total 1"),
            std::string::npos);
}

// The engine-less path: tc::query() records into a caller-owned sink with
// the "uncached" outcome (there is no prepared-graph cache in the way).
TEST(EngineTelemetry, DirectQueryRecordsIntoCallerSink) {
  const auto graph = small_graph();
  obs::Telemetry telemetry({}, tc::algorithm_labels());

  tc::QueryOptions options;
  options.telemetry = &telemetry;
  const auto r = tc::query(tc::Algorithm::kLotus, graph, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok());

  const obs::TelemetrySnapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.queries_recorded, 1u);
  bool lotus_total = false;
  for (const obs::SeriesSnapshot& series : snap.algorithms)
    if (series.label == "lotus" && series.stage == obs::QueryStage::kTotal)
      lotus_total = true;
  EXPECT_TRUE(lotus_total);
  ASSERT_EQ(snap.outcomes.size(), obs::kNumQueryStages);  // one outcome family
  for (const obs::SeriesSnapshot& series : snap.outcomes)
    EXPECT_EQ(series.label, "uncached");

  // A null / disabled sink costs nothing and records nothing.
  tc::QueryOptions off;
  ASSERT_TRUE(tc::query(tc::Algorithm::kLotus, graph, off).ok());
  EXPECT_EQ(telemetry.snapshot().queries_recorded, 1u);
}

TEST(EngineTelemetry, DisabledTelemetryStillServes) {
  const auto graph = small_graph();
  tc::EngineOptions options{.num_drivers = 1};
  options.telemetry.enabled = false;
  tc::Engine engine(options);
  const auto result = get_ok<tc::QueryResult>(
      engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_TRUE(result.ok());
  const obs::TelemetrySnapshot snap = engine.telemetry_snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.queries_recorded, 0u);
  // The JSON export says so instead of exporting empty series.
  const obs::JsonValue root =
      obs::JsonValue::parse(engine.metrics().to_json_string());
  EXPECT_FALSE(root.find("engine_telemetry")->find("enabled")->as_bool());
}

}  // namespace
