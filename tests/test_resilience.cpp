// Resilient execution layer end to end (tc::query with cancel / deadline /
// budget options): cooperative cancellation, deadlines, memory-budget
// degradation, and the resilience section of the metrics export. Companion
// chaos coverage lives in tests/chaos/.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "tc/api.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace {

namespace g = lotus::graph;
namespace tc = lotus::tc;
using lotus::util::CancelToken;
using lotus::util::Deadline;
using lotus::util::StatusCode;

g::CsrGraph small_graph() {
  return g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 5}));
}

// Big enough that a LOTUS run takes many chunk boundaries (tens of ms),
// giving cross-thread cancellation and short deadlines something to land in.
g::CsrGraph slow_graph() {
  static const g::CsrGraph graph = g::build_undirected(
      g::rmat({.scale = 16, .edge_factor = 16, .seed = 77}));
  return graph;
}

// Every request here is well-formed, so the Expected side must hold a value;
// runtime fates (cancelled, deadline, OOM) live in QueryResult::status.
tc::QueryResult must_attempt(tc::Algorithm algorithm, const g::CsrGraph& graph,
                             const tc::QueryOptions& options = {}) {
  auto attempted = tc::query(algorithm, graph, options);
  EXPECT_TRUE(attempted.ok()) << attempted.status().to_string();
  return attempted.take();
}

TEST(Resilience, OkRunMatchesPlainRun) {
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  const auto result = must_attempt(tc::Algorithm::kLotus, graph);
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.result.triangles, expected);
}

TEST(Resilience, PreCancelledTokenReturnsCancelled) {
  CancelToken token;
  token.cancel();
  tc::QueryOptions options;
  options.cancel = &token;
  const auto result =
      must_attempt(tc::Algorithm::kLotus, small_graph(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
}

TEST(Resilience, CancelFromAnotherThread) {
  const auto graph = slow_graph();
  CancelToken token;
  tc::QueryOptions options;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.cancel();
  });
  const auto result = must_attempt(tc::Algorithm::kLotus, graph, options);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
}

TEST(Resilience, ZeroDeadlineExpiresImmediately) {
  tc::QueryOptions options;
  options.deadline = Deadline::after(0.0);
  const auto result =
      must_attempt(tc::Algorithm::kLotus, small_graph(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Resilience, MidRunDeadlineReportsPartialMetrics) {
  const auto graph = slow_graph();
  tc::QueryOptions options;
  options.deadline = Deadline::after(0.002);
  options.profile = true;
  const auto result = must_attempt(tc::Algorithm::kLotus, graph, options);
  ASSERT_TRUE(result.profile.has_value());
  const auto& report = *result.profile;
  EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  // A partial count must never look like an answer; identity fields and
  // whatever spans completed before the deadline are kept.
  EXPECT_EQ(report.result.triangles, 0u);
  EXPECT_EQ(report.vertices, graph.num_vertices());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"status\": \"deadline_exceeded\""), std::string::npos);
}

TEST(Resilience, PoolIsCleanAfterInterruptedRun) {
  // An interrupted run drains its scheduler tasks without running them; the
  // very next run on the same pool must produce the exact count, proving no
  // tasks leaked and no interrupt state stuck.
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  {
    tc::QueryOptions options;
    options.deadline = Deadline::after(0.0);
    const auto interrupted =
        must_attempt(tc::Algorithm::kLotus, graph, options);
    ASSERT_FALSE(interrupted.ok());
  }
  const auto clean = must_attempt(tc::Algorithm::kLotus, graph);
  ASSERT_TRUE(clean.ok()) << clean.status.to_string();
  EXPECT_EQ(clean.result.triangles, expected);
}

TEST(Resilience, CancelTokenResetAllowsReuse) {
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  CancelToken token;
  token.cancel();
  tc::QueryOptions options;
  options.cancel = &token;
  ASSERT_FALSE(must_attempt(tc::Algorithm::kLotus, graph, options).ok());
  token.reset();
  const auto again = must_attempt(tc::Algorithm::kLotus, graph, options);
  ASSERT_TRUE(again.ok()) << again.status.to_string();
  EXPECT_EQ(again.result.triangles, expected);
}

TEST(Resilience, TinyBudgetDegradesLotusToForwardMerge) {
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  tc::QueryOptions options;
  options.memory_budget_bytes = 1024;  // far below the relabel buffers
  options.profile = true;
  const auto result = must_attempt(tc::Algorithm::kLotus, graph, options);
  ASSERT_TRUE(result.profile.has_value());
  const auto& report = *result.profile;
  ASSERT_TRUE(report.status.ok()) << report.status.to_string();
  EXPECT_EQ(report.result.triangles, expected);  // degraded, still exact
  ASSERT_EQ(report.degradations.size(), 1u);
  EXPECT_EQ(report.degradations[0].site, "lotus");
  EXPECT_EQ(report.degradations[0].action, "fallback=gap-forward");
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"degradations\""), std::string::npos);
  EXPECT_NE(json.find("fallback=gap-forward"), std::string::npos);
}

TEST(Resilience, TinyBudgetDegradesScratchKernelsToMerge) {
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  for (const auto algorithm :
       {tc::Algorithm::kForwardHashed, tc::Algorithm::kForwardBitmap}) {
    tc::QueryOptions options;
    options.memory_budget_bytes = 64;  // below any scratch estimate
    const auto result = must_attempt(algorithm, graph, options);
    ASSERT_TRUE(result.ok())
        << tc::name(algorithm) << ": " << result.status.to_string();
    EXPECT_EQ(result.result.triangles, expected) << tc::name(algorithm);
  }
}

TEST(Resilience, BudgetWithoutDegradationIsOutOfMemory) {
  tc::QueryOptions options;
  options.memory_budget_bytes = 1024;
  options.allow_degradation = false;
  const auto result =
      must_attempt(tc::Algorithm::kLotus, small_graph(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kOutOfMemory);
}

TEST(Resilience, GenerousBudgetDoesNotDegrade) {
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  tc::QueryOptions options;
  options.memory_budget_bytes = 1ull << 30;
  options.profile = true;
  const auto result = must_attempt(tc::Algorithm::kLotus, graph, options);
  ASSERT_TRUE(result.profile.has_value());
  const auto& report = *result.profile;
  ASSERT_TRUE(report.status.ok()) << report.status.to_string();
  EXPECT_EQ(report.result.triangles, expected);
  EXPECT_TRUE(report.degradations.empty());
}

TEST(Resilience, AllocFaultDegradesEvenWithoutBudget) {
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  lotus::util::fault::ScopedFaultPlan plan(lotus::util::fault::single_site_plan(
      lotus::util::fault::Site::kAlloc, 1.0));
  const auto result = must_attempt(tc::Algorithm::kLotus, graph);
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.result.triangles, expected);
}

TEST(Resilience, MergeKernelIsImmuneToAllocFaults) {
  // gap-forward charges nothing, so the alloc site never fires for it —
  // the degradation target must itself be safe under the fault plan.
  const auto graph = small_graph();
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  lotus::util::fault::ScopedFaultPlan plan(lotus::util::fault::single_site_plan(
      lotus::util::fault::Site::kAlloc, 1.0));
  const auto result = must_attempt(tc::Algorithm::kForwardMerge, graph);
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.result.triangles, expected);
}

TEST(Resilience, ResilienceSectionDefaultsToOk) {
  tc::QueryOptions options;
  options.profile = true;
  const auto result =
      must_attempt(tc::Algorithm::kForwardMerge, small_graph(), options);
  ASSERT_TRUE(result.profile.has_value());
  const auto& report = *result.profile;
  ASSERT_TRUE(report.status.ok());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"resilience\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  const std::string csv = report.metrics().to_csv();
  EXPECT_NE(csv.find("resilience,status,ok"), std::string::npos);
}

}  // namespace
