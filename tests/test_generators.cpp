// Tests for the synthetic graph generators: determinism, size contracts,
// structural properties (skew, clustering presence), and the closed-form
// triangle counts of the deterministic families.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace {

namespace g = lotus::graph;
using lotus::baselines::brute_force;

TEST(Rmat, DeterministicForSeed) {
  const auto a = g::rmat({.scale = 10, .seed = 5});
  const auto b = g::rmat({.scale = 10, .seed = 5});
  EXPECT_EQ(a.edges.size(), b.edges.size());
  EXPECT_TRUE(std::equal(a.edges.begin(), a.edges.end(), b.edges.begin()));
}

TEST(Rmat, SeedChangesOutput) {
  const auto a = g::rmat({.scale = 10, .seed = 5});
  const auto b = g::rmat({.scale = 10, .seed = 6});
  EXPECT_FALSE(std::equal(a.edges.begin(), a.edges.end(), b.edges.begin()));
}

TEST(Rmat, SizeContract) {
  const auto el = g::rmat({.scale = 12, .edge_factor = 8});
  EXPECT_EQ(el.num_vertices, 1u << 12);
  EXPECT_EQ(el.edges.size(), 8u << 12);
}

TEST(Rmat, ProducesSkewedDegrees) {
  const auto graph = g::build_undirected(g::rmat({.scale = 14, .edge_factor = 16}));
  const auto stats = g::degree_stats(graph);
  EXPECT_GT(stats.max_degree, 20 * stats.avg_degree);
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW(g::rmat({.scale = 0}), std::invalid_argument);
  EXPECT_THROW(g::rmat({.scale = 31}), std::invalid_argument);
  EXPECT_THROW(g::rmat({.scale = 10, .a = 0.5, .b = 0.3, .c = 0.3}),
               std::invalid_argument);
}

TEST(ErdosRenyi, FlatDegreeDistribution) {
  const auto graph = g::build_undirected(g::erdos_renyi(1 << 14, 16.0, 3));
  const auto stats = g::degree_stats(graph);
  EXPECT_FALSE(stats.is_skewed());
  EXPECT_NEAR(stats.avg_degree, 16.0, 1.5);
}

TEST(HolmeKim, PowerLawWithTriangles) {
  const auto graph = g::build_undirected(
      g::holme_kim({.num_vertices = 4096, .edges_per_vertex = 6, .p_triad = 0.6, .seed = 2}));
  const auto stats = g::degree_stats(graph);
  EXPECT_GT(stats.max_degree, 10 * stats.avg_degree);  // heavy tail
  EXPECT_GT(brute_force(graph), 4096u);                // triad steps force triangles
}

TEST(HolmeKim, RejectsTooFewVertices) {
  EXPECT_THROW(g::holme_kim({.num_vertices = 4, .edges_per_vertex = 6}),
               std::invalid_argument);
}

TEST(WattsStrogatz, RingWithoutRewiringIsRegular) {
  const auto graph = g::build_undirected(
      g::watts_strogatz({.num_vertices = 1000, .ring_degree = 4, .rewire_prob = 0.0}));
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
    ASSERT_EQ(graph.degree(v), 8u);
  // Ring lattice with k>=2 has triangles.
  EXPECT_GT(brute_force(graph), 0u);
}

TEST(CopyWeb, DenseHubsAndClustering) {
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 8192, .edges_per_vertex = 8, .p_copy = 0.7, .seed = 4}));
  EXPECT_GT(brute_force(graph), 8192u);
  const auto hub = g::hub_stats(graph, 0.01);
  EXPECT_GT(hub.relative_density_hubs, 10.0);  // hubs form a dense core
}

TEST(Deterministic, CompleteGraphTriangles) {
  for (g::VertexId n : {3u, 4u, 5u, 8u, 16u, 32u}) {
    const auto graph = g::build_undirected(g::complete(n));
    EXPECT_EQ(brute_force(graph), g::complete_triangles(n)) << "K_" << n;
  }
}

TEST(Deterministic, TriangleFreeFamilies) {
  EXPECT_EQ(brute_force(g::build_undirected(g::star(50))), 0u);
  EXPECT_EQ(brute_force(g::build_undirected(g::path(50))), 0u);
  EXPECT_EQ(brute_force(g::build_undirected(g::cycle(50))), 0u);
  EXPECT_EQ(brute_force(g::build_undirected(g::grid(7, 9))), 0u);
  EXPECT_EQ(brute_force(g::build_undirected(g::complete_bipartite(6, 7))), 0u);
}

TEST(Deterministic, TinyCycleIsATriangle) {
  EXPECT_EQ(brute_force(g::build_undirected(g::cycle(3))), 1u);
}

TEST(Deterministic, WheelTriangles) {
  for (g::VertexId rim : {3u, 5u, 10u, 33u}) {
    const auto graph = g::build_undirected(g::wheel(rim));
    // Each rim edge closes a triangle with the hub; rim=3 adds the rim
    // triangle itself.
    const std::uint64_t expected = rim + (rim == 3 ? 1 : 0);
    EXPECT_EQ(brute_force(graph), expected) << "wheel rim " << rim;
  }
}

TEST(Deterministic, GridSizeContract) {
  const auto el = g::grid(4, 6);
  EXPECT_EQ(el.num_vertices, 24u);
  // 4*(6-1) horizontal + 6*(4-1) vertical.
  EXPECT_EQ(el.edges.size(), 4u * 5 + 6u * 3);
}

}  // namespace
