// Squared edge tiling math (Sec. 4.6).
#include <gtest/gtest.h>

#include <numeric>

#include "lotus/tiling.hpp"

namespace {

using lotus::core::pair_work;
using lotus::core::squared_tiling_factors;
using lotus::core::tile_boundaries;
using lotus::core::TilingPolicy;

TEST(Tiling, PaperExample) {
  // Sec. 4.6: 100 neighbours, 5 partitions -> 0, 44/45, 63, 77, 89, 100.
  const auto b = tile_boundaries(100, 5, TilingPolicy::kSquared);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_NEAR(b[1], 45u, 1);  // 100*sqrt(0.2) = 44.7
  EXPECT_NEAR(b[2], 63u, 1);
  EXPECT_NEAR(b[3], 77u, 1);
  EXPECT_NEAR(b[4], 89u, 1);
  EXPECT_EQ(b[5], 100u);
}

TEST(Tiling, BoundariesAreMonotoneAndCover) {
  for (std::uint32_t degree : {1u, 2u, 10u, 513u, 10000u}) {
    for (unsigned p : {1u, 2u, 7u, 64u}) {
      const auto b = tile_boundaries(degree, p, TilingPolicy::kSquared);
      ASSERT_EQ(b.size(), p + 1u);
      EXPECT_EQ(b.front(), 0u);
      EXPECT_EQ(b.back(), degree);
      for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LE(b[i - 1], b[i]);
    }
  }
}

TEST(Tiling, SquaredTilesBalancePairWork) {
  constexpr std::uint32_t kDegree = 20000;
  constexpr unsigned kPartitions = 16;
  const auto b = tile_boundaries(kDegree, kPartitions, TilingPolicy::kSquared);
  const std::uint64_t total = pair_work(0, kDegree);
  const double ideal = static_cast<double>(total) / kPartitions;
  for (unsigned k = 0; k < kPartitions; ++k) {
    const auto work = static_cast<double>(pair_work(b[k], b[k + 1]));
    EXPECT_NEAR(work, ideal, 0.02 * ideal) << "tile " << k;
  }
}

TEST(Tiling, EdgeBalancedTilesAreSkewedInPairWork) {
  // The contrast Table 9 measures: equal-entry tiles have wildly unequal
  // pair-work (the last tile does ~2p-1 times the first's).
  constexpr std::uint32_t kDegree = 20000;
  constexpr unsigned kPartitions = 16;
  const auto b = tile_boundaries(kDegree, kPartitions, TilingPolicy::kEdgeBalanced);
  const auto first = pair_work(b[0], b[1]);
  const auto last = pair_work(b[kPartitions - 1], b[kPartitions]);
  EXPECT_GT(last, 10 * first);
}

TEST(Tiling, TilesPartitionTheWorkExactly) {
  for (auto policy : {TilingPolicy::kSquared, TilingPolicy::kEdgeBalanced}) {
    const auto b = tile_boundaries(1234, 7, policy);
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < 7; ++k) sum += pair_work(b[k], b[k + 1]);
    EXPECT_EQ(sum, pair_work(0, 1234));
  }
}

TEST(Tiling, FactorsMatchSqrt) {
  const auto f = squared_tiling_factors(5);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[5], 1.0);
  EXPECT_NEAR(f[1], std::sqrt(0.2), 1e-12);
}

TEST(Tiling, ZeroPartitionsFallsBackToOne) {
  const auto b = tile_boundaries(10, 0, TilingPolicy::kSquared);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 10u);
}

TEST(Tiling, PairWorkClosedForm) {
  EXPECT_EQ(pair_work(0, 0), 0u);
  EXPECT_EQ(pair_work(0, 1), 0u);
  EXPECT_EQ(pair_work(0, 2), 1u);
  EXPECT_EQ(pair_work(0, 100), 100ull * 99 / 2);
  EXPECT_EQ(pair_work(50, 100), 100ull * 99 / 2 - 50ull * 49 / 2);
}

}  // namespace
