// Artifact-integrity suite (label `integrity`): the checksum layer shared by
// every on-disk format, the corruption matrix (bit-flip / truncate each
// section of LOTUSGR1, LOTUSLG2 and LOTUSPA1 and demand detection), the
// SIGBUS-scoping mapped-fault guard with its disabled-guard death control,
// AtomicFileWriter crash safety, and the tc::Engine self-healing spill tier
// (docs/ROBUSTNESS.md, docs/OUT_OF_CORE.md).
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/oocore.hpp"
#include "kernels/dispatch.hpp"
#include "lotus/lotus_graph.hpp"
#include "lotus/serialize.hpp"
#include "tc/engine.hpp"
#include "tc/prepared.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/file_io.hpp"
#include "util/mapguard.hpp"
#include "util/mmap_file.hpp"
#include "util/status.hpp"

namespace {

namespace g = lotus::graph;
namespace oo = lotus::graph::oocore;
namespace core = lotus::core;
namespace tc = lotus::tc;
namespace cks = lotus::util::checksum;
namespace fault = lotus::util::fault;
namespace fileio = lotus::util::fileio;
namespace kernels = lotus::kernels;
namespace fs = std::filesystem;
using lotus::util::MappedFile;
using lotus::util::Status;
using lotus::util::StatusCode;

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Suffix with the pid: ctest -j runs each case as its own process, and
    // a shared directory would be torn down under a sibling mid-write.
    dir_ = fs::temp_directory_path() /
           ("lotus_integrity_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] static g::CsrGraph test_graph(std::uint64_t seed = 11) {
    return g::build_undirected(
        g::rmat({.scale = 10, .edge_factor = 8, .seed = seed}));
  }

  fs::path dir_;
};

/// XOR one bit of the byte at `offset`.
void flip_byte(const std::string& file, std::uint64_t offset) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(offset));
  byte = static_cast<char>(byte ^ 0x10);
  f.write(&byte, 1);
  ASSERT_TRUE(f.good());
}

[[nodiscard]] std::uint64_t read_u64_at(const std::string& file,
                                        std::uint64_t offset) {
  std::ifstream f(file, std::ios::binary);
  f.seekg(static_cast<std::streamoff>(offset));
  std::uint64_t value = 0;
  f.read(reinterpret_cast<char*>(&value), 8);
  return value;
}

[[nodiscard]] constexpr std::uint64_t pad8(std::uint64_t bytes) {
  return (bytes + 7) & ~std::uint64_t{7};
}

// ---------- checksum primitives ----------

TEST(ChecksumTest, DigestIsChunkingIndependent) {
  std::vector<unsigned char> data(10013);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<unsigned char>((i * 131) ^ (i >> 3));

  const std::uint64_t whole = cks::block_checksum(data.data(), data.size());
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{113},
                                  std::size_t{4096}}) {
    cks::Checksummer c;
    for (std::size_t off = 0; off < data.size(); off += chunk)
      c.update(data.data() + off, std::min(chunk, data.size() - off));
    EXPECT_EQ(c.digest(), whole) << "chunk=" << chunk;
  }

  EXPECT_NE(cks::block_checksum(data.data(), data.size(), /*seed=*/1), whole);
  // Length is part of the digest: a prefix must not collide with the whole.
  EXPECT_NE(cks::block_checksum(data.data(), data.size() - 1), whole);
}

TEST(ChecksumTest, EveryBitFlipChangesTheDigest) {
  std::vector<unsigned char> data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<unsigned char>(i * 37);
  const std::uint64_t want = cks::block_checksum(data.data(), data.size());
  for (const std::size_t at : {std::size_t{0}, std::size_t{63},
                               std::size_t{64}, std::size_t{200},
                               data.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      data[at] = static_cast<unsigned char>(data[at] ^ (1u << bit));
      EXPECT_NE(cks::block_checksum(data.data(), data.size()), want)
          << "byte " << at << " bit " << bit;
      data[at] = static_cast<unsigned char>(data[at] ^ (1u << bit));
    }
  }
}

TEST(ChecksumTest, SimdTiersAreLaneExactWithScalar) {
  std::vector<unsigned char> data(64 * 33);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<unsigned char>((i * 193) ^ (i >> 5));

  const auto run = [&](const kernels::KernelTable& table) {
    std::array<std::uint64_t, 8> acc{};
    for (std::size_t j = 0; j < 8; ++j)
      acc[j] = 0x0123456789abcdefULL * (j + 1) ^ kernels::kChecksumSecret[j];
    table.checksum_stripes(acc.data(), data.data(), 33);
    return acc;
  };

  const auto want = run(kernels::detail::scalar_kernel_table());
  for (const kernels::KernelTable* table :
       {kernels::detail::avx2_kernel_table(),
        kernels::detail::avx512_kernel_table(),
        kernels::detail::neon_kernel_table()}) {
    if (table == nullptr) continue;
    EXPECT_EQ(run(*table), want);
  }
  EXPECT_EQ(run(kernels::kernel_table()), want);  // the dispatched tier
}

TEST(ChecksumTest, FooterRoundTripsAndRejectsEveryCorruption) {
  const std::uint64_t sums[3] = {0x1111, 0x2222, 0x3333};
  std::vector<unsigned char> footer(cks::footer_bytes(3));
  cks::write_footer(sums, 3, footer.data());
  EXPECT_TRUE(cks::has_footer_magic(footer.data(), footer.size()));

  std::uint64_t out[3] = {};
  ASSERT_TRUE(cks::read_footer(footer.data(), 3, "t", out).ok());
  EXPECT_EQ(out[0], sums[0]);
  EXPECT_EQ(out[2], sums[2]);

  auto corrupted = [&](std::size_t offset, unsigned char x) {
    std::vector<unsigned char> bad = footer;
    bad[offset] ^= x;
    return cks::read_footer(bad.data(), 3, "t", out);
  };
  // Magic (last 8 bytes).
  Status s = corrupted(footer.size() - 3, 0xff);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("bad checksum footer magic"), std::string::npos);
  // Version (first trailer word).
  s = corrupted(8 * 3, 0x08);
  EXPECT_NE(s.message().find("unsupported checksum footer version"),
            std::string::npos);
  // Section count.
  s = corrupted(8 * 3 + 4, 0x01);
  EXPECT_NE(s.message().find("sections, format has 3"), std::string::npos);
  // A stored sum: caught by the footer's own sums_checksum.
  s = corrupted(0, 0x40);
  EXPECT_NE(s.message().find("itself corrupt"), std::string::npos);
}

// ---------- the corruption matrix ----------
//
// Bit-flip (at least) one byte of every section of every format and demand
// the load fails — payload flips with kIoError naming the section, header
// geometry flips with whichever structural check fires first. Zero crashes.

TEST_F(IntegrityTest, CsxMatrixEverySectionDetected) {
  const auto graph = test_graph();
  const std::uint64_t v = graph.num_vertices();
  constexpr std::uint64_t kHeader = 24;  // magic + u64 v + u64 e
  const std::uint64_t offsets_at = kHeader;
  const std::uint64_t neighbors_at = kHeader + (v + 1) * 8;

  const struct {
    const char* section;
    std::uint64_t offset;
    bool named;  // payload sections fail as kIoError naming the section
  } matrix[] = {
      {"header", 10, false},  // low byte of the vertex count
      {"offsets", offsets_at + 16, true},
      {"neighbors", neighbors_at + 4, true},
  };

  for (const auto& m : matrix) {
    const std::string file = path(std::string("csx_") + m.section + ".bin");
    g::write_csr_binary(file, graph);
    flip_byte(file, m.offset);

    const auto mapped = oo::read_csr_mapped_s(file);
    const auto streamed = g::read_csr_binary_s(file);
    ASSERT_FALSE(mapped.ok()) << m.section;
    ASSERT_FALSE(streamed.ok()) << m.section;
    if (m.named) {
      const std::string want =
          std::string("checksum mismatch in section '") + m.section + "'";
      EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);
      EXPECT_NE(mapped.status().message().find(want), std::string::npos)
          << mapped.status().to_string();
      EXPECT_EQ(streamed.status().code(), StatusCode::kIoError);
      EXPECT_NE(streamed.status().message().find(want), std::string::npos)
          << streamed.status().to_string();
    }
  }
}

TEST_F(IntegrityTest, LotusMatrixEverySectionDetected) {
  const auto lg = core::LotusGraph::build(test_graph());
  const std::string master = path("lotus.lg2");
  ASSERT_TRUE(core::write_lotus_binary_s(master, lg).ok());

  // Reconstruct the documented LOTUSLG2 layout from the header fields.
  const std::uint64_t n = read_u64_at(master, 8);
  const std::uint64_t h2h_words = read_u64_at(master, 24);
  const std::uint64_t he_edges = read_u64_at(master, 32);
  const std::uint64_t nhe_edges = read_u64_at(master, 40);
  struct SectionExtent {
    const char* name;
    std::uint64_t offset, bytes;
  };
  std::vector<SectionExtent> sections;
  std::uint64_t pos = 64;
  const auto add = [&](const char* name, std::uint64_t bytes) {
    sections.push_back({name, pos, bytes});
    pos += pad8(bytes);
  };
  add("new_id", n * 4);
  add("h2h", h2h_words * 8);
  add("he_offsets", (n + 1) * 8);
  add("he_neighbors", he_edges * 2);
  add("nhe_offsets", (n + 1) * 8);
  add("nhe_neighbors", nhe_edges * 4);
  ASSERT_EQ(pos + cks::footer_bytes(cks::kLotusSections), fs::file_size(master))
      << "layout drifted from the writer — update this test and the docs";

  for (const auto& section : sections) {
    if (section.bytes == 0) continue;  // e.g. an H2H-free graph
    const std::string file = path(std::string("lg2_") + section.name + ".lg2");
    fs::copy_file(master, file);
    flip_byte(file, section.offset);  // first byte: always real data

    const std::string want =
        std::string("checksum mismatch in section '") + section.name + "'";
    const auto mapped = core::read_lotus_mapped_s(file);
    ASSERT_FALSE(mapped.ok()) << section.name;
    EXPECT_EQ(mapped.status().code(), StatusCode::kIoError) << section.name;
    EXPECT_NE(mapped.status().message().find(want), std::string::npos)
        << mapped.status().to_string();
    const auto streamed = core::read_lotus_binary_s(file);
    ASSERT_FALSE(streamed.ok()) << section.name;
    EXPECT_EQ(streamed.status().code(), StatusCode::kIoError) << section.name;
    EXPECT_NE(streamed.status().message().find(want), std::string::npos)
        << streamed.status().to_string();
  }

  // The 16 reserved header bytes feed no structural check at all — only the
  // header checksum can catch rot there (the mapped reader verifies the
  // mapped 64-byte extent).
  const std::string reserved = path("lg2_reserved.lg2");
  fs::copy_file(master, reserved);
  flip_byte(reserved, 56);
  const auto mapped = core::read_lotus_mapped_s(reserved);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIoError);
  EXPECT_NE(mapped.status().message().find("section 'header'"),
            std::string::npos)
      << mapped.status().to_string();
}

TEST_F(IntegrityTest, SpillMatrixHeaderAndEmbeddedImagesDetected) {
  const auto graph = test_graph();
  const auto prepared =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph);
  const std::string master = path("artifact.lpa");
  ASSERT_TRUE(prepared.save_s(master).ok());

  // Any flip inside the 64-byte spill header — including metadata like
  // build_s that no structural check ever looks at — is caught by the
  // spill's own footer.
  for (const std::uint64_t offset : {std::uint64_t{17}, std::uint64_t{30},
                                     std::uint64_t{60}}) {
    const std::string file = path("spill_h" + std::to_string(offset) + ".lpa");
    fs::copy_file(master, file);
    flip_byte(file, offset);
    const auto loaded = tc::PreparedGraph::load_mapped_s(file);
    ASSERT_FALSE(loaded.ok()) << "offset " << offset;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
    EXPECT_NE(loaded.status().message().find("section 'header'"),
              std::string::npos)
        << loaded.status().to_string();
  }

  // A flip inside an embedded image is caught by that image's footer: byte
  // 64 + 62 sits in the reserved region of the embedded LOTUSLG2 header.
  const std::string embedded = path("spill_embedded.lpa");
  fs::copy_file(master, embedded);
  flip_byte(embedded, 64 + 62);
  const auto loaded = tc::PreparedGraph::load_mapped_s(embedded);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("checksum mismatch in section"),
            std::string::npos)
      << loaded.status().to_string();
}

TEST_F(IntegrityTest, TruncationIsDetectedNotCrashed) {
  const auto graph = test_graph();
  const auto lg = core::LotusGraph::build(graph);

  g::write_csr_binary(path("t.bin"), graph);
  ASSERT_TRUE(core::write_lotus_binary_s(path("t.lg2"), lg).ok());
  const auto prepared =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph);
  ASSERT_TRUE(prepared.save_s(path("t.lpa")).ok());

  for (const char* name : {"t.bin", "t.lg2", "t.lpa"}) {
    const std::uint64_t size = fs::file_size(path(name));
    // CSX and LG2 know their exact payload size from the header, so even a
    // footer-only shave is rejected. The spill format detects its footer by
    // the trailing magic probe (robust to corrupt header offsets), so only
    // payload-cutting truncations are testable here — see below for the
    // footer-shave trade-off.
    std::vector<std::uint64_t> keeps = {size / 4, size / 2};
    if (std::string(name) != "t.lpa") {
      keeps.push_back(size - cks::kFooterTrailerBytes);
      keeps.push_back(size - 1);
    } else {
      // Shaving the whole spill footer is also caught: the embedded image's
      // own footer magic lands at the file tail, so the magic probe fires
      // and the misplaced spill footer fails to parse.
      keeps.push_back(size - cks::footer_bytes(cks::kSpillSections));
    }
    for (const std::uint64_t keep : keeps) {
      const std::string cut = path(std::string("cut_") + name);
      fs::copy_file(path(name), cut, fs::copy_options::overwrite_existing);
      fs::resize_file(cut, keep);
      if (std::string(name) == "t.bin")
        EXPECT_FALSE(oo::read_csr_mapped_s(cut).ok()) << name << " " << keep;
      else if (std::string(name) == "t.lg2")
        EXPECT_FALSE(core::read_lotus_mapped_s(cut).ok()) << name << " " << keep;
      else
        EXPECT_FALSE(tc::PreparedGraph::load_mapped_s(cut).ok())
            << name << " " << keep;
    }
  }

  // The documented spill-format trade-off: cutting only the 24-byte footer
  // trailer leaves the sums array at the tail — no trailing magic, so the
  // probe reads the file as a legacy (pre-checksum) artifact and loads its
  // header unverified. The embedded images keep their own footers and still
  // verify (docs/ROBUSTNESS.md).
  const std::string shaved = path("shaved.lpa");
  fs::copy_file(path("t.lpa"), shaved);
  fs::resize_file(shaved,
                  fs::file_size(shaved) - cks::kFooterTrailerBytes);
  EXPECT_TRUE(tc::PreparedGraph::load_mapped_s(shaved).ok());
}

TEST_F(IntegrityTest, MapVerifyOffSkipsChecksumsEagerCatchesThem) {
  const auto prepared =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, test_graph());
  const std::string file = path("knob.lpa");
  ASSERT_TRUE(prepared.save_s(file).ok());
  flip_byte(file, 17);  // build_s metadata: structurally invisible

  EXPECT_FALSE(tc::PreparedGraph::load_mapped_s(file).ok());  // kEager default
  const auto off =
      tc::PreparedGraph::load_mapped_s(file, oo::MapVerify::kOff);
  ASSERT_TRUE(off.ok()) << off.status().to_string();
  EXPECT_NE(off.value().lotus(), nullptr);
}

TEST_F(IntegrityTest, LegacyFooterlessFilesStillLoad) {
  const auto graph = test_graph();
  const std::string file = path("legacy.bin");
  g::write_csr_binary(file, graph);
  fs::resize_file(file,
                  fs::file_size(file) - cks::footer_bytes(cks::kCsxSections));
  const auto mapped = oo::read_csr_mapped_s(file);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  EXPECT_EQ(mapped.value(), graph);
}

// ---------- the mapped-fault guard ----------

#if !defined(_WIN32)

TEST_F(IntegrityTest, MapGuardTurnsSigbusIntoIoError) {
  // Programmatic enable wins over the LOTUS_MAPGUARD env var: this test's
  // expectations hold even under the chaos script's LOTUS_MAPGUARD=0 sweep
  // (the disabled-guard behavior has its own death test below).
  lotus::util::set_mapped_fault_guard_enabled(true);
  const std::string file = path("guard.bin");
  {
    std::ofstream f(file, std::ios::binary);
    const std::string page(4096, 'x');
    for (int i = 0; i < 3; ++i) f << page;
  }
  auto mapped = MappedFile::map(file);
  ASSERT_TRUE(mapped.ok()) << mapped.status().to_string();
  const auto* base =
      reinterpret_cast<const unsigned char*>(mapped.value()->data());

  // Truncating under the live mapping poisons pages 1 and 2.
  fs::resize_file(file, 1);
  const Status s = lotus::util::with_mapped_fault_guard("guard.bin", [&] {
    volatile unsigned char sink = base[2 * 4096 + 16];
    (void)sink;
    return Status::Ok();
  });
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("lost mapping during read"), std::string::npos)
      << s.to_string();

  // The guard unwound cleanly: page 0 is still readable, further guarded
  // reads still work, and unguarded execution continues normally.
  const Status ok = lotus::util::with_mapped_fault_guard("guard.bin", [&] {
    volatile unsigned char sink = base[0];
    (void)sink;
    return Status::Ok();
  });
  EXPECT_TRUE(ok.ok());
}

// The LOTUS_MAPGUARD=0 control: the exact read the guard absorbs above kills
// the process when the guard is disabled — demonstrating the crash the
// guard prevents (run as a death test so the crash is contained).
TEST(MapGuardDeathTest, DisabledGuardCrashesOnTruncatedMapping) {
  // Earlier tests may have started pool threads; re-exec instead of forking.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const fs::path dir = fs::temp_directory_path() /
                       ("lotus_mapguard_death_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string file = (dir / "crash.bin").string();
  {
    std::ofstream f(file, std::ios::binary);
    const std::string page(4096, 'x');
    for (int i = 0; i < 3; ++i) f << page;
  }
  auto mapped = MappedFile::map(file);
  ASSERT_TRUE(mapped.ok());
  const auto* base =
      reinterpret_cast<const unsigned char*>(mapped.value()->data());
  fs::resize_file(file, 1);

  EXPECT_DEATH(
      {
        lotus::util::set_mapped_fault_guard_enabled(false);
        const Status ignored =
            lotus::util::with_mapped_fault_guard("crash.bin", [&] {
              volatile unsigned char sink = base[2 * 4096 + 16];
              (void)sink;
              return Status::Ok();
            });
        (void)ignored;
      },
      "");
  fs::remove_all(dir);
}

#endif  // !defined(_WIN32)

// ---------- AtomicFileWriter crash safety ----------

TEST_F(IntegrityTest, FailedRenameNeverTearsTheDestination) {
  const std::string file = path("durable.bin");
  const auto v1 = test_graph(1);
  g::write_csr_binary(file, v1);
  const std::uint64_t v1_size = fs::file_size(file);

  {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kRenameFail, 1.0));
    const auto v2 = test_graph(2);
    const Status s = g::write_csr_binary_s(file, v2);
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    EXPECT_NE(s.message().find("rename failed"), std::string::npos);
    EXPECT_EQ(fault::injected_count(fault::Site::kRenameFail), 1u);
  }

  // The old artifact is untouched and intact; the temp was cleaned up.
  EXPECT_EQ(fs::file_size(file), v1_size);
  const auto reread = g::read_csr_binary_s(file);
  ASSERT_TRUE(reread.ok()) << reread.status().to_string();
  EXPECT_EQ(reread.value(), v1);
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just durable.bin — no .tmp debris
}

#if !defined(_WIN32)
TEST_F(IntegrityTest, StaleTempsOfDeadWritersAreSwept) {
  const std::string file = path("swept.bin");

  // A real, dead, reaped pid — the strongest "writer crashed" signal.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);

  const std::string stale =
      file + ".tmp." + std::to_string(static_cast<long>(child)) + ".0";
  const std::string live =
      file + ".tmp." + std::to_string(static_cast<long>(getpid())) + ".999999";
  std::ofstream(stale, std::ios::binary) << "torn half-write";
  std::ofstream(live, std::ios::binary) << "still being written";

  const std::uint64_t before = fileio::stale_temps_swept();
  fileio::AtomicFileWriter writer(file);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(fs::exists(stale));  // dead writer's debris: swept
  EXPECT_TRUE(fs::exists(live));    // live writer's temp: untouched
  EXPECT_EQ(fileio::stale_temps_swept(), before + 1);

  const char payload[] = "fresh contents";
  ASSERT_TRUE(
      fileio::write_fully(writer.file(), payload, sizeof payload, file).ok());
  ASSERT_TRUE(writer.commit().ok());
  EXPECT_TRUE(fs::exists(file));
  fs::remove(live);
}
#endif  // !defined(_WIN32)

TEST_F(IntegrityTest, BitflipFaultSitePublishesDetectableCorruption) {
  const auto graph = test_graph();
  const std::string file = path("flipped.bin");
  {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kBitflip, 1.0, /*seed=*/3));
    g::write_csr_binary(file, graph);  // commit succeeds, artifact is tampered
    EXPECT_EQ(fault::injected_count(fault::Site::kBitflip), 1u);
  }
  // The committed artifact is corrupt — the checksum layer must notice, on
  // both read paths, whatever byte the deterministic draw picked.
  EXPECT_FALSE(oo::read_csr_mapped_s(file).ok());
  EXPECT_FALSE(g::read_csr_binary_s(file).ok());
}

TEST_F(IntegrityTest, TruncateFaultSitePublishesDetectableCorruption) {
  const auto graph = test_graph();
  const std::string file = path("cut.bin");
  const std::string intact = path("intact.bin");
  g::write_csr_binary(intact, graph);
  {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kTruncate, 1.0, /*seed=*/4));
    g::write_csr_binary(file, graph);
    EXPECT_EQ(fault::injected_count(fault::Site::kTruncate), 1u);
  }
  EXPECT_LT(fs::file_size(file), fs::file_size(intact));
  EXPECT_FALSE(oo::read_csr_mapped_s(file).ok());
  EXPECT_FALSE(g::read_csr_binary_s(file).ok());
}

// ---------- the self-healing engine spill tier ----------

/// Fresh, self-cleaning spill directory for one test.
class SpillDir {
 public:
  explicit SpillDir(const std::string& name)
      : dir_(fs::temp_directory_path() /
             (name + "_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~SpillDir() { fs::remove_all(dir_); }
  [[nodiscard]] std::string str() const { return dir_.string(); }
  [[nodiscard]] std::vector<fs::path> files() const {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir_))
      out.push_back(entry.path());
    return out;
  }
  [[nodiscard]] std::size_t count_with_extension(const std::string& ext) const {
    std::size_t n = 0;
    for (const auto& f : files())
      if (f.extension() == ext) ++n;
    return n;
  }

 private:
  fs::path dir_;
};

g::CsrGraph engine_graph(std::uint64_t seed = 21) {
  return g::build_undirected(
      g::rmat({.scale = 9, .edge_factor = 8, .seed = seed}));
}

tc::QueryResult engine_ok(
    std::future<lotus::util::Expected<tc::QueryResult>> f) {
  auto outcome = f.get();
  EXPECT_TRUE(outcome.ok()) << outcome.status().to_string();
  tc::QueryResult result = outcome.take();
  EXPECT_TRUE(result.ok()) << result.status.to_string();
  return result;
}

/// Options sized so the second artifact evicts (and spills) the first.
tc::EngineOptions tight_spill_options(const g::CsrGraph& graph,
                                      const std::string& spill_dir) {
  const std::uint64_t oriented =
      tc::PreparedGraph::build(tc::ArtifactKind::kOriented, graph).bytes();
  const std::uint64_t lotus =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph).bytes();
  tc::EngineOptions options;
  options.num_drivers = 1;
  options.cache_budget_bytes =
      std::max(oriented, lotus) + std::min(oriented, lotus) / 2;
  options.spill_dir = spill_dir;
  return options;
}

TEST(EngineIntegrity, HealsCorruptSpillFileAndStillAnswersCorrectly) {
  const auto graph = engine_graph();
  const auto expected = lotus::baselines::brute_force(graph);
  SpillDir spill_dir("lotus_engine_heal_test");
  {
    tc::Engine engine(tight_spill_options(graph, spill_dir.str()));
    (void)engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
    (void)engine_ok(
        engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
    ASSERT_EQ(engine.stats().cache_spilled_entries, 1u);
    const auto spilled = spill_dir.files();
    ASSERT_EQ(spilled.size(), 1u);

    // Rot a header byte. The remap's eager verification must catch it,
    // quarantine the file, and transparently rebuild — the query is correct.
    flip_byte(spilled[0].string(), 17);
    const auto healed =
        engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
    EXPECT_EQ(healed.result.triangles, expected);
    EXPECT_FALSE(healed.cache_hit);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.spill_verify_failures, 1u);
    EXPECT_EQ(stats.cache_quarantines, 1u);
    EXPECT_EQ(stats.cache_remaps, 0u);
    EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.cache_lookups);
    EXPECT_EQ(spill_dir.count_with_extension(".corrupt"), 1u);

    // The heal is visible as its own telemetry outcome series.
    bool saw_heal = false;
    for (const auto& series : engine.telemetry_snapshot().outcomes)
      saw_heal = saw_heal || series.label == "heal";
    EXPECT_TRUE(saw_heal);

    const std::string json = engine.metrics().to_json_string();
    EXPECT_NE(json.find("\"spill_verify_failures\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"cache_quarantines\": 1"), std::string::npos);
    const std::string prom = engine.prometheus_text();
    EXPECT_NE(prom.find("lotus_engine_cache_quarantines_total 1"),
              std::string::npos);
    EXPECT_NE(prom.find("lotus_engine_spill_verify_failures_total 1"),
              std::string::npos);
  }
  // Shutdown removes live spill files but preserves quarantined evidence.
  EXPECT_EQ(spill_dir.count_with_extension(".corrupt"), 1u);
  EXPECT_EQ(spill_dir.count_with_extension(".lpa"), 0u);
}

TEST(EngineIntegrity, BackgroundVerifyQuarantinesOffTheQueryPath) {
  const auto graph = engine_graph();
  const auto expected = lotus::baselines::brute_force(graph);
  SpillDir spill_dir("lotus_engine_bgverify_test");
  auto options = tight_spill_options(graph, spill_dir.str());
  options.background_spill_verify = true;
  tc::Engine engine(options);
  (void)engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)engine_ok(
      engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
  const auto spilled = spill_dir.files();
  ASSERT_EQ(spilled.size(), 1u);

  // Corrupt structurally-invisible metadata: the kOff remap serves the query
  // (topology is intact), then the background verifier flags the file.
  flip_byte(spilled[0].string(), 17);
  const auto remapped =
      engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_EQ(remapped.result.triangles, expected);
  EXPECT_EQ(engine.stats().cache_remaps, 1u);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.stats().cache_quarantines == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache_quarantines, 1u);
  EXPECT_EQ(stats.spill_verify_failures, 1u);
  EXPECT_EQ(spill_dir.count_with_extension(".corrupt"), 1u);

  // The resident artifact was dropped with the quarantine: the next query
  // rebuilds from the live graph instead of trusting the suspect mapping.
  const auto rebuilt =
      engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_EQ(rebuilt.result.triangles, expected);
  EXPECT_FALSE(rebuilt.cache_hit);
}

TEST(EngineIntegrity, SpillNameCollisionIsSkippedNeverOverwritten) {
  const auto graph = engine_graph();
  SpillDir spill_dir("lotus_engine_collision_test");
  tc::Engine engine(tight_spill_options(graph, spill_dir.str()));
  (void)engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)engine_ok(
      engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
  const auto spilled = spill_dir.files();
  ASSERT_EQ(spilled.size(), 1u);

  // Plant a file at the engine's *next* spill name (same pid+token, seq+1).
  std::string next = spilled[0].string();
  const auto dash = next.rfind("-0.lpa");
  ASSERT_NE(dash, std::string::npos) << next;
  next.replace(dash, std::string::npos, "-1.lpa");
  std::ofstream(next, std::ios::binary) << "planted";

  // Force another eviction+spill: it must skip, not overwrite.
  (void)engine_ok(
      engine.submit({tc::Algorithm::kForwardMerge, "g2", &graph, {}}));
  const auto stats = engine.stats();
  EXPECT_EQ(stats.spill_collisions, 1u);
  EXPECT_EQ(stats.cache_spills, 1u);          // the skipped one never counted
  EXPECT_EQ(stats.cache_spilled_entries, 1u);
  std::ifstream planted(next, std::ios::binary);
  std::string contents;
  std::getline(planted, contents);
  EXPECT_EQ(contents, "planted");  // byte-for-byte untouched
  fs::remove(next);
}

TEST(EngineIntegrity, SpillCleanupFailuresAreCounted) {
  const auto graph = engine_graph();
  SpillDir spill_dir("lotus_engine_cleanupfail_test");
  tc::Engine engine(tight_spill_options(graph, spill_dir.str()));
  (void)engine_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)engine_ok(
      engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
  const auto spilled = spill_dir.files();
  ASSERT_EQ(spilled.size(), 1u);

  // Replace the spill file with a non-empty directory of the same name:
  // unlink now fails for root and non-root alike.
  fs::remove(spilled[0]);
  fs::create_directory(spilled[0]);
  std::ofstream((spilled[0] / "x").string()) << "y";

  engine.invalidate("g");
  const auto stats = engine.stats();
  EXPECT_EQ(stats.spill_cleanup_failures, 1u);
  EXPECT_EQ(stats.cache_spilled_entries, 0u);  // the key is forgotten anyway
}

}  // namespace
