// SIMD kernel layer: every (kernel × forced ISA tier) agrees with the
// scalar reference on adversarial inputs, the dispatch/override machinery
// behaves, and the graph-level algorithms are tier-invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "baselines/intersect.hpp"
#include "baselines/simd_intersect.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "graph/generators.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/hybrid.hpp"
#include "kernels/intersect.hpp"
#include "kernels/isa.hpp"
#include "tc/api.hpp"
#include "util/prng.hpp"

namespace {

namespace g = lotus::graph;
namespace k = lotus::kernels;
namespace tc = lotus::tc;

constexpr k::Isa kAllTiers[] = {k::Isa::kScalar, k::Isa::kNeon, k::Isa::kAvx2,
                                k::Isa::kAvx512};

// RAII override so a failing assertion cannot leak a forced tier into the
// rest of the suite.
struct ScopedIsa {
  explicit ScopedIsa(k::Isa isa) { k::set_isa_override(isa); }
  ~ScopedIsa() { k::set_isa_override(std::nullopt); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

template <typename T>
std::vector<T> sorted_unique(lotus::util::Xoshiro256& rng, std::size_t n,
                             std::uint64_t universe) {
  std::set<T> s;
  while (s.size() < n)
    s.insert(static_cast<T>(rng.next_below(universe)));
  return {s.begin(), s.end()};
}

// Bit-by-bit reference for the unaligned-window kernel: bit w*64+b of the
// window lives at absolute bit offset + w*64 + b; words at or past
// bits_words read as zero.
std::uint64_t naive_window_popcount(const std::vector<std::uint64_t>& bits,
                                    std::uint64_t offset,
                                    const std::vector<std::uint64_t>& mask) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < mask.size(); ++w)
    for (unsigned b = 0; b < 64; ++b) {
      if (((mask[w] >> b) & 1) == 0) continue;
      const std::uint64_t bit = offset + w * 64 + b;
      const std::size_t word = static_cast<std::size_t>(bit >> 6);
      if (word >= bits.size()) continue;
      total += (bits[word] >> (bit & 63)) & 1;
    }
  return total;
}

TEST(KernelIsa, NameParseRoundTrip) {
  for (const k::Isa isa : kAllTiers) {
    const auto parsed = k::parse_isa(k::isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << k::isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(k::parse_isa("native").has_value());  // resolved by the env parser
  EXPECT_FALSE(k::parse_isa("sse9").has_value());
  EXPECT_FALSE(k::parse_isa("").has_value());
}

TEST(KernelIsa, SupportedSetAndClamping) {
  const std::vector<k::Isa> supported = k::supported_isas();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), k::Isa::kScalar);
  EXPECT_TRUE(k::isa_supported(k::Isa::kScalar));
  EXPECT_TRUE(k::isa_supported(k::detected_isa()));
  for (const k::Isa isa : kAllTiers) {
    const k::Isa clamped = k::clamp_to_supported(isa);
    EXPECT_TRUE(k::isa_supported(clamped)) << k::isa_name(isa);
    // Clamping never raises the tier.
    EXPECT_LE(static_cast<unsigned>(clamped), static_cast<unsigned>(isa));
  }
  EXPECT_EQ(k::clamp_to_supported(k::detected_isa()), k::detected_isa());
}

TEST(KernelIsa, OverrideControlsActiveIsa) {
  for (const k::Isa isa : k::supported_isas()) {
    ScopedIsa forced(isa);
    EXPECT_EQ(k::active_isa(), isa) << k::isa_name(isa);
    EXPECT_EQ(k::kernel_table().isa, isa) << k::isa_name(isa);
  }
  // Unsupported requests clamp instead of crashing.
  {
    ScopedIsa forced(k::Isa::kAvx512);
    EXPECT_TRUE(k::isa_supported(k::active_isa()));
  }
  EXPECT_EQ(k::active_isa(), k::clamp_to_supported(k::active_isa()));
}

TEST(KernelIsa, EveryTierTableIsFullyPopulated) {
  for (const k::Isa isa : kAllTiers) {
    const k::KernelTable& table = k::kernel_table(isa);
    EXPECT_NE(table.merge_u32, nullptr);
    EXPECT_NE(table.merge_u16, nullptr);
    EXPECT_NE(table.and_popcount, nullptr);
    EXPECT_NE(table.popcount, nullptr);
    EXPECT_NE(table.hits_bitset, nullptr);
    EXPECT_NE(table.and_window_popcount, nullptr);
    EXPECT_TRUE(k::isa_supported(table.isa));
  }
}

// --- merge kernels: every tier × adversarial list shapes ------------------

template <typename T>
void check_merge_all_tiers(const std::vector<T>& a, const std::vector<T>& b) {
  const k::KernelTable& scalar = k::kernel_table(k::Isa::kScalar);
  std::uint64_t expected;
  if constexpr (sizeof(T) == 2)
    expected = scalar.merge_u16(a.data(), a.size(), b.data(), b.size());
  else
    expected = scalar.merge_u32(a.data(), a.size(), b.data(), b.size());
  for (const k::Isa isa : kAllTiers) {
    const k::KernelTable& table = k::kernel_table(isa);
    std::uint64_t got;
    if constexpr (sizeof(T) == 2)
      got = table.merge_u16(a.data(), a.size(), b.data(), b.size());
    else
      got = table.merge_u32(a.data(), a.size(), b.data(), b.size());
    EXPECT_EQ(got, expected) << k::isa_name(isa) << " |a|=" << a.size()
                             << " |b|=" << b.size();
    // Intersection is symmetric; the block kernels are not — check both
    // argument orders.
    if constexpr (sizeof(T) == 2)
      got = table.merge_u16(b.data(), b.size(), a.data(), a.size());
    else
      got = table.merge_u32(b.data(), b.size(), a.data(), a.size());
    EXPECT_EQ(got, expected) << k::isa_name(isa) << " (swapped)";
  }
}

TEST(KernelMerge, AdversarialListsU32) {
  using V = std::vector<std::uint32_t>;
  check_merge_all_tiers<std::uint32_t>({}, {});
  check_merge_all_tiers<std::uint32_t>({}, {1, 2, 3});
  check_merge_all_tiers<std::uint32_t>({7}, {7});
  // Disjoint interleaved (evens vs odds) across block boundaries.
  V evens, odds;
  for (std::uint32_t i = 0; i < 70; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }
  check_merge_all_tiers<std::uint32_t>(evens, odds);
  check_merge_all_tiers<std::uint32_t>(evens, evens);  // identical
  // Skewed lengths: 3 probes into a long run.
  V longrun(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) longrun[i] = 3 * i;
  check_merge_all_tiers<std::uint32_t>({0, 999, 2997}, longrun);
  // IDs at the top of the u32 range: lane compares must stay unsigned.
  V hi_a, hi_b;
  for (std::uint32_t i = 0; i < 20; ++i) {
    hi_a.push_back(0xFFFFFFFFu - 2 * i);
    hi_b.push_back(0xFFFFFFFFu - 3 * i);
  }
  std::reverse(hi_a.begin(), hi_a.end());
  std::reverse(hi_b.begin(), hi_b.end());
  check_merge_all_tiers<std::uint32_t>(hi_a, hi_b);
  // One list straddling the sign bit.
  check_merge_all_tiers<std::uint32_t>(
      {0x7FFFFFFEu, 0x7FFFFFFFu, 0x80000000u, 0x80000001u},
      {0x7FFFFFFFu, 0x80000001u, 0xFFFFFFFFu});
}

TEST(KernelMerge, AdversarialListsU16) {
  using V = std::vector<std::uint16_t>;
  check_merge_all_tiers<std::uint16_t>({}, {});
  check_merge_all_tiers<std::uint16_t>({}, {1, 2, 3});
  V evens, odds;
  for (std::uint16_t i = 0; i < 100; ++i) {
    evens.push_back(static_cast<std::uint16_t>(2 * i));
    odds.push_back(static_cast<std::uint16_t>(2 * i + 1));
  }
  check_merge_all_tiers<std::uint16_t>(evens, odds);
  check_merge_all_tiers<std::uint16_t>(evens, evens);
  // Top of the u16 range, including 0xFFFF itself.
  check_merge_all_tiers<std::uint16_t>({0xFFF0, 0xFFF8, 0xFFFE, 0xFFFF},
                                       {0xFFF1, 0xFFF8, 0xFFFF});
}

TEST(KernelMerge, RandomizedSizeSweep) {
  lotus::util::Xoshiro256 rng(1234);
  // Sizes around the 8/16/32-lane block boundaries of every tier.
  const std::size_t sizes[] = {0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100};
  for (const std::size_t na : sizes)
    for (const std::size_t nb : {std::size_t{0}, std::size_t{16},
                                 std::size_t{33}, std::size_t{257}}) {
      const auto a32 = sorted_unique<std::uint32_t>(rng, na, 4 * (na + nb) + 8);
      const auto b32 = sorted_unique<std::uint32_t>(rng, nb, 4 * (na + nb) + 8);
      check_merge_all_tiers<std::uint32_t>(a32, b32);
      const auto a16 = sorted_unique<std::uint16_t>(rng, na, 65536);
      const auto b16 = sorted_unique<std::uint16_t>(rng, nb, 65536);
      check_merge_all_tiers<std::uint16_t>(a16, b16);
    }
}

// --- bitmap kernels -------------------------------------------------------

TEST(KernelBitmap, AndPopcountAndPopcountAllTiers) {
  lotus::util::Xoshiro256 rng(99);
  for (const std::size_t words : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                  std::size_t{4}, std::size_t{5}, std::size_t{17},
                                  std::size_t{64}}) {
    std::vector<std::uint64_t> a(words), b(words);
    for (std::size_t i = 0; i < words; ++i) {
      a[i] = rng();
      b[i] = rng();
    }
    const k::KernelTable& scalar = k::kernel_table(k::Isa::kScalar);
    const std::uint64_t expect_and = scalar.and_popcount(a.data(), b.data(), words);
    const std::uint64_t expect_pop = scalar.popcount(a.data(), words);
    for (const k::Isa isa : kAllTiers) {
      const k::KernelTable& table = k::kernel_table(isa);
      EXPECT_EQ(table.and_popcount(a.data(), b.data(), words), expect_and)
          << k::isa_name(isa) << " words=" << words;
      EXPECT_EQ(table.popcount(a.data(), words), expect_pop)
          << k::isa_name(isa) << " words=" << words;
    }
  }
}

TEST(KernelBitmap, HitsBitsetAllTiers) {
  lotus::util::Xoshiro256 rng(7);
  const std::uint32_t universe = 64 * 37;  // 37 words
  std::vector<std::uint64_t> bits(37, 0);
  const auto members = sorted_unique<std::uint32_t>(rng, 200, universe);
  for (const std::uint32_t m : members) bits[m >> 6] |= 1ULL << (m & 63);
  for (const std::size_t nkeys : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                                  std::size_t{4}, std::size_t{5}, std::size_t{100}}) {
    const auto keys = sorted_unique<std::uint32_t>(rng, nkeys, universe);
    const std::uint64_t expected = k::kernel_table(k::Isa::kScalar)
                                       .hits_bitset(keys.data(), keys.size(),
                                                    bits.data());
    for (const k::Isa isa : kAllTiers)
      EXPECT_EQ(k::kernel_table(isa).hits_bitset(keys.data(), keys.size(),
                                                 bits.data()),
                expected)
          << k::isa_name(isa) << " nkeys=" << nkeys;
  }
  // Keys in the first and last word of the bitset (gather edge lanes).
  const std::vector<std::uint32_t> edges = {0, 1, 63, 64, universe - 2,
                                            universe - 1};
  const std::uint64_t expected = k::kernel_table(k::Isa::kScalar)
                                     .hits_bitset(edges.data(), edges.size(),
                                                  bits.data());
  for (const k::Isa isa : kAllTiers)
    EXPECT_EQ(k::kernel_table(isa).hits_bitset(edges.data(), edges.size(),
                                               bits.data()),
              expected)
        << k::isa_name(isa);
}

TEST(KernelBitmap, AndWindowPopcountOffsetsAndStraddles) {
  lotus::util::Xoshiro256 rng(2026);
  std::vector<std::uint64_t> bits(24);
  for (auto& w : bits) w = rng();
  for (const std::uint64_t offset :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{63}, std::uint64_t{64},
        std::uint64_t{65}, std::uint64_t{640}, std::uint64_t{1217}}) {
    const std::size_t base = static_cast<std::size_t>(offset >> 6);
    // Largest window whose word reads stay inside `bits` (the caller
    // contract): base + mask_words <= bits_words.
    const std::size_t max_mask = bits.size() - base;
    for (const std::size_t mask_words :
         {std::size_t{1}, max_mask / 2 + 1, max_mask}) {
      std::vector<std::uint64_t> mask(mask_words);
      for (auto& w : mask) w = rng();
      if (mask_words == max_mask && (offset & 63) != 0) {
        // Straddle case: the final window word has no successor word to
        // borrow its high half from — those mask bits must read zero.
        mask.back() = (1ULL << (64 - (offset & 63))) - 1;
      }
      const std::uint64_t expected = naive_window_popcount(bits, offset, mask);
      for (const k::Isa isa : kAllTiers)
        EXPECT_EQ(k::kernel_table(isa).and_window_popcount(
                      bits.data(), bits.size(), offset, mask.data(),
                      mask.size()),
                  expected)
            << k::isa_name(isa) << " offset=" << offset
            << " mask_words=" << mask_words;
    }
  }
}

// --- probe/obs contract of the dispatching wrapper ------------------------

TEST(KernelIntersect, DispatchedProbedAndScalarPathsAgree) {
  lotus::util::Xoshiro256 rng(5);
  for (int round = 0; round < 20; ++round) {
    const auto a = sorted_unique<std::uint32_t>(rng, 40, 300);
    const auto b = sorted_unique<std::uint32_t>(rng, 25, 300);
    const std::span<const std::uint32_t> sa(a), sb(b);
    const std::uint64_t dispatched = k::intersect<std::uint32_t>(sa, sb);
    const std::uint64_t scalar = k::intersect<std::uint32_t>(
        sa, sb, lotus::baselines::null_probe, /*vectorize=*/false);
    lotus::baselines::NullProbe probe;  // distinct type value, same semantics
    const std::uint64_t reference =
        lotus::baselines::intersect_merge<std::uint32_t>(sa, sb, probe);
    EXPECT_EQ(dispatched, reference);
    EXPECT_EQ(scalar, reference);
  }
}

TEST(KernelIntersect, SimdVeneerMatchesKernelLayer) {
  lotus::util::Xoshiro256 rng(6);
  const auto a = sorted_unique<std::uint32_t>(rng, 100, 500);
  const auto b = sorted_unique<std::uint32_t>(rng, 60, 500);
  EXPECT_EQ(lotus::baselines::intersect_simd(a, b),
            lotus::baselines::intersect_merge<std::uint32_t>(a, b));
  std::vector<std::uint16_t> a16(a.begin(), a.end()), b16(b.begin(), b.end());
  EXPECT_EQ(lotus::baselines::intersect_simd16(a16, b16),
            lotus::baselines::intersect_merge<std::uint16_t>(a16, b16));
  // The probed overloads (scalar mirrors) agree too.
  lotus::baselines::NullProbe probe;
  EXPECT_EQ(lotus::baselines::intersect_simd(a, b, probe),
            lotus::baselines::intersect_simd(a, b));
  EXPECT_EQ(lotus::baselines::intersect_simd16(a16, b16, probe),
            lotus::baselines::intersect_simd16(a16, b16));
}

// --- hybrid kernel --------------------------------------------------------

TEST(KernelHybrid, ThresholdSweepMatchesForwardMerge) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 77}));
  const auto oriented = g::degree_ordered_oriented(graph);
  const std::uint64_t expected =
      lotus::baselines::forward_merge_prepared(oriented);
  // 1 = every countable vertex dense, huge = pure merge, and the default.
  for (const std::uint32_t threshold : {1u, 2u, 8u, 64u, 1u << 30}) {
    EXPECT_EQ(lotus::baselines::forward_hybrid_prepared(oriented, threshold),
              expected)
        << "threshold=" << threshold;
  }
}

TEST(KernelHybrid, AllTiersAgreeOnGraph) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 78}));
  const auto oriented = g::degree_ordered_oriented(graph);
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  for (const k::Isa isa : kAllTiers) {
    ScopedIsa forced(isa);
    EXPECT_EQ(lotus::baselines::forward_hybrid_prepared(oriented, 8), expected)
        << k::isa_name(isa);
  }
}

// --- graph-level tier invariance ------------------------------------------

TEST(KernelGraphLevel, ForcedIsaMatrixAllAlgorithmsAgree) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 41}));
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  for (const k::Isa isa : kAllTiers) {
    ScopedIsa forced(isa);
    for (const tc::Algorithm algorithm :
         {tc::Algorithm::kLotus, tc::Algorithm::kForwardSimd,
          tc::Algorithm::kForwardHybrid}) {
      EXPECT_EQ(tc::query(algorithm, graph).value().result.triangles, expected)
          << tc::name(algorithm) << " @ " << k::isa_name(isa);
    }
  }
}

TEST(KernelGraphLevel, LotusScalarReferencePathAgrees) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 42}));
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  lotus::core::LotusConfig vectorized;  // defaults: vectorize = true
  lotus::core::LotusConfig scalar_ref;
  scalar_ref.vectorize = false;
  lotus::core::LotusConfig no_bitmap;
  no_bitmap.hybrid_degree_threshold = 0;  // merge-only NNN
  lotus::core::LotusConfig eager_bitmap;
  eager_bitmap.hybrid_degree_threshold = 2;
  for (const auto& config :
       {vectorized, scalar_ref, no_bitmap, eager_bitmap}) {
    EXPECT_EQ(tc::query(tc::Algorithm::kLotus, graph, {.config = config})
                  .value()
                  .result.triangles,
              expected)
        << "vectorize=" << config.vectorize
        << " hybrid_threshold=" << config.hybrid_degree_threshold;
  }
  // Fused ablation path also routes through the dispatched kernels.
  lotus::core::LotusConfig fused;
  fused.fuse_hnn_nnn = true;
  EXPECT_EQ(tc::query(tc::Algorithm::kLotus, graph, {.config = fused})
                .value()
                .result.triangles,
            expected);
}

}  // namespace
