// Adaptive dispatch (Sec. 5.5): skewed graphs run LOTUS, flat graphs run
// Forward; both must return the correct count.
#include <gtest/gtest.h>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "lotus/adaptive.hpp"

namespace {

namespace g = lotus::graph;
using lotus::core::adaptive_count;
using lotus::core::ChosenAlgorithm;
using lotus::core::should_use_lotus;

TEST(Adaptive, SkewedGraphPicksLotus) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 13, .edge_factor = 16, .seed = 1}));
  EXPECT_TRUE(should_use_lotus(graph));
  const auto r = adaptive_count(graph);
  EXPECT_EQ(r.algorithm, ChosenAlgorithm::kLotus);
  EXPECT_EQ(r.triangles, lotus::baselines::brute_force(graph));
}

TEST(Adaptive, FlatGraphPicksForward) {
  const auto graph = g::build_undirected(g::erdos_renyi(1 << 13, 12.0, 2));
  EXPECT_FALSE(should_use_lotus(graph));
  const auto r = adaptive_count(graph);
  EXPECT_EQ(r.algorithm, ChosenAlgorithm::kForward);
  EXPECT_EQ(r.triangles, lotus::baselines::brute_force(graph));
}

TEST(Adaptive, LatticePicksForward) {
  const auto graph = g::build_undirected(g::watts_strogatz(
      {.num_vertices = 1 << 13, .ring_degree = 6, .rewire_prob = 0.05, .seed = 3}));
  const auto r = adaptive_count(graph);
  EXPECT_EQ(r.algorithm, ChosenAlgorithm::kForward);
  EXPECT_EQ(r.triangles, lotus::baselines::brute_force(graph));
}

TEST(Adaptive, BothPathsReportTimings) {
  const auto skewed =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 8, .seed = 4}));
  const auto rs = adaptive_count(skewed);
  EXPECT_GE(rs.preprocess_s, 0.0);
  EXPECT_GE(rs.count_s, 0.0);
}

}  // namespace
