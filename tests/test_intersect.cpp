// Intersection kernels: agreement across strategies and edge cases,
// including a randomized property sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "baselines/intersect.hpp"
#include "util/bitset.hpp"
#include "util/prng.hpp"

namespace {

using namespace lotus::baselines;
using lotus::util::Bitset;
using lotus::util::Xoshiro256;

std::vector<std::uint32_t> sorted_unique(Xoshiro256& rng, std::size_t n,
                                         std::uint32_t universe) {
  std::set<std::uint32_t> s;
  while (s.size() < n) s.insert(static_cast<std::uint32_t>(rng.next_below(universe)));
  return {s.begin(), s.end()};
}

std::uint64_t reference_intersection(const std::vector<std::uint32_t>& a,
                                     const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

TEST(Intersect, EmptyInputs) {
  const std::vector<std::uint32_t> empty, some = {1, 2, 3};
  EXPECT_EQ(intersect_merge<std::uint32_t>(empty, some), 0u);
  EXPECT_EQ(intersect_merge<std::uint32_t>(some, empty), 0u);
  EXPECT_EQ(intersect_gallop<std::uint32_t>(empty, some), 0u);
  EXPECT_EQ(intersect_gallop<std::uint32_t>(some, empty), 0u);
}

TEST(Intersect, DisjointListsGiveZero) {
  const std::vector<std::uint32_t> a = {1, 3, 5}, b = {2, 4, 6};
  EXPECT_EQ(intersect_merge<std::uint32_t>(a, b), 0u);
  EXPECT_EQ(intersect_gallop<std::uint32_t>(a, b), 0u);
  EXPECT_EQ(intersect_merge_branchless<std::uint32_t>(a, b), 0u);
  EXPECT_EQ(intersect_binary_branchfree<std::uint32_t>(a, b), 0u);
}

TEST(Intersect, BranchlessKernelsHandleEmptyInputs) {
  const std::vector<std::uint32_t> empty, some = {1, 2, 3};
  EXPECT_EQ(intersect_merge_branchless<std::uint32_t>(empty, some), 0u);
  EXPECT_EQ(intersect_binary_branchfree<std::uint32_t>(some, empty), 0u);
  EXPECT_EQ(intersect_binary_branchfree<std::uint32_t>(empty, empty), 0u);
}

TEST(Intersect, IdenticalListsGiveFullSize) {
  const std::vector<std::uint32_t> a = {2, 4, 8, 16, 32};
  EXPECT_EQ(intersect_merge<std::uint32_t>(a, a), a.size());
  EXPECT_EQ(intersect_gallop<std::uint32_t>(a, a), a.size());
}

TEST(Intersect, SixteenBitElements) {
  const std::vector<std::uint16_t> a = {1, 5, 9}, b = {5, 9, 11};
  EXPECT_EQ(intersect_merge<std::uint16_t>(a, b), 2u);
  EXPECT_EQ(intersect_gallop<std::uint16_t>(a, b), 2u);
}

TEST(Intersect, GallopHandlesVeryAsymmetricSizes) {
  std::vector<std::uint32_t> big(10000);
  for (std::uint32_t i = 0; i < big.size(); ++i) big[i] = 3 * i;
  const std::vector<std::uint32_t> small = {0, 3, 7, 29999, 30000};
  // 0, 3, 29999 are not all multiples of 3: 29999 isn't; hits: 0, 3, 29997? no.
  // Compute via reference for clarity.
  const std::uint64_t expected = reference_intersection(
      {small.begin(), small.end()}, big);
  EXPECT_EQ(intersect_gallop<std::uint32_t>(small, big), expected);
  EXPECT_EQ(intersect_gallop<std::uint32_t>(big, small), expected);
}

TEST(HashedSetTest, ContainsExactlyBuiltKeys) {
  HashedSet<std::uint32_t> set;
  const std::vector<std::uint32_t> keys = {7, 100, 65535, 123456};
  set.build(keys);
  for (auto k : keys) EXPECT_TRUE(set.contains(k));
  EXPECT_FALSE(set.contains(8u));
  EXPECT_FALSE(set.contains(0u));
}

TEST(HashedSetTest, EmptyBuild) {
  HashedSet<std::uint32_t> set;
  set.build({});
  EXPECT_FALSE(set.contains(1u));
}

TEST(BitmapIntersect, CountsSetMembers) {
  Bitset bitmap(100);
  bitmap.set(3);
  bitmap.set(50);
  const std::vector<std::uint32_t> queries = {1, 3, 49, 50, 99};
  EXPECT_EQ(count_bitmap_hits<std::uint32_t>(queries, bitmap), 2u);
}

class IntersectProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntersectProperty, AllKernelsAgreeWithStdSetIntersection) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const auto na = 1 + rng.next_below(200);
    const auto nb = 1 + rng.next_below(200);
    const auto universe = static_cast<std::uint32_t>(50 + rng.next_below(500));
    const auto a = sorted_unique(rng, std::min<std::size_t>(na, universe / 2), universe);
    const auto b = sorted_unique(rng, std::min<std::size_t>(nb, universe / 2), universe);
    const std::uint64_t expected = reference_intersection(a, b);

    EXPECT_EQ(intersect_merge<std::uint32_t>(a, b), expected);
    EXPECT_EQ(intersect_merge<std::uint32_t>(b, a), expected);
    EXPECT_EQ(intersect_gallop<std::uint32_t>(a, b), expected);
    EXPECT_EQ(intersect_gallop<std::uint32_t>(b, a), expected);
    EXPECT_EQ(intersect_merge_branchless<std::uint32_t>(a, b), expected);
    EXPECT_EQ(intersect_merge_branchless<std::uint32_t>(b, a), expected);
    EXPECT_EQ(intersect_binary_branchfree<std::uint32_t>(a, b), expected);
    EXPECT_EQ(intersect_binary_branchfree<std::uint32_t>(b, a), expected);

    HashedSet<std::uint32_t> set;
    set.build(a);
    EXPECT_EQ(set.count_hits(std::span<const std::uint32_t>(b)), expected);

    Bitset bitmap(universe);
    for (auto x : a) bitmap.set(x);
    EXPECT_EQ(count_bitmap_hits<std::uint32_t>(b, bitmap), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
