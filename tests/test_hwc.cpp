// Hardware-counter backend: event vocabulary arithmetic, source parsing, the
// perf_event_open provider's forced-failure hook, and the profiled-query
// event pipeline — hw-degrades-to-sim, sim replay attribution, and off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/hwc.hpp"
#include "simcache/machines.hpp"
#include "simcache/sim_events.hpp"
#include "tc/api.hpp"

namespace {

namespace g = lotus::graph;
namespace obs = lotus::obs;
namespace tc = lotus::tc;

using obs::Event;
using obs::EventCounts;
using obs::EventSource;

/// Run a profiled query and unwrap the report (every request here is
/// well-formed and expected to complete).
tc::ProfileReport profiled(tc::Algorithm algorithm, const g::CsrGraph& graph,
                           tc::QueryOptions options = {}) {
  options.profile = true;
  return tc::query(algorithm, graph, options).value().profile.value();
}

/// Scoped setenv/unsetenv so a failing test never leaks the forced-error
/// hook into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

TEST(EventCounts, ArithmeticAndSaturation) {
  EventCounts a;
  EXPECT_FALSE(a.any());
  a[Event::kCycles] = 100;
  a[Event::kLlcMisses] = 7;
  EXPECT_TRUE(a.any());

  EventCounts b;
  b[Event::kCycles] = 40;
  b[Event::kInstructions] = 5;
  a += b;
  EXPECT_EQ(a[Event::kCycles], 140u);
  EXPECT_EQ(a[Event::kInstructions], 5u);

  // Differences saturate at zero (multiplex scaling can jitter samples).
  const EventCounts d = b - a;
  EXPECT_EQ(d[Event::kCycles], 0u);
  EXPECT_EQ(d[Event::kLlcMisses], 0u);
  const EventCounts e = a - b;
  EXPECT_EQ(e[Event::kCycles], 100u);
  EXPECT_EQ(e[Event::kLlcMisses], 7u);
}

TEST(EventNames, StableAndDistinct) {
  for (std::size_t i = 0; i < obs::kNumEvents; ++i) {
    const std::string name = obs::event_name(static_cast<Event>(i));
    EXPECT_FALSE(name.empty());
    for (std::size_t j = i + 1; j < obs::kNumEvents; ++j)
      EXPECT_NE(name, obs::event_name(static_cast<Event>(j)));
  }
  EXPECT_STREQ(obs::event_name(Event::kLlcMisses), "llc_misses");
}

TEST(EventSourceParsing, AcceptsCliSpellings) {
  EXPECT_EQ(obs::parse_event_source("off"), EventSource::kOff);
  EXPECT_EQ(obs::parse_event_source("sim"), EventSource::kSimulated);
  EXPECT_EQ(obs::parse_event_source("simulated"), EventSource::kSimulated);
  EXPECT_EQ(obs::parse_event_source("hw"), EventSource::kHardware);
  EXPECT_EQ(obs::parse_event_source("hardware"), EventSource::kHardware);
  EXPECT_FALSE(obs::parse_event_source("perf").has_value());
  EXPECT_FALSE(obs::parse_event_source("").has_value());

  for (EventSource s :
       {EventSource::kOff, EventSource::kSimulated, EventSource::kHardware})
    EXPECT_EQ(obs::parse_event_source(obs::event_source_name(s)), s);
}

TEST(HwcProvider, ForcedErrorFailsCreateWithMessage) {
  ScopedEnv force("LOTUS_HWC_FORCE_ERROR", "EPERM");
  std::string error;
  const auto provider = obs::HwcProvider::create(&error);
  EXPECT_EQ(provider, nullptr);
  EXPECT_NE(error.find("LOTUS_HWC_FORCE_ERROR"), std::string::npos) << error;
}

TEST(SimEvents, StallModelMatchesDocumentedFormula) {
  lotus::simcache::PerfCounters c;
  c.loads = 10;
  c.ops = 5;
  c.branches = 3;  // instructions() = 18
  c.l2_misses = 2;
  c.llc_misses = 1;
  c.dtlb_misses = 4;
  c.mispredicts = 6;
  const EventCounts ev = lotus::simcache::to_event_counts(c);
  EXPECT_EQ(ev[Event::kInstructions], 18u);
  EXPECT_EQ(ev[Event::kL2Misses], 2u);
  EXPECT_EQ(ev[Event::kLlcMisses], 1u);
  EXPECT_EQ(ev[Event::kDtlbMisses], 4u);
  EXPECT_EQ(ev[Event::kBranchMispredicts], 6u);
  EXPECT_EQ(ev[Event::kCycles], 18u + 12 * 2 + 40 * 1 + 100 * 4 + 15 * 6);
}

TEST(RunProfiled, EventsOffLeavesHwSectionEmpty) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 3}));
  const auto report = profiled(tc::Algorithm::kLotus, graph);
  EXPECT_EQ(report.event_source, EventSource::kOff);
  EXPECT_FALSE(report.events.any());

  const auto doc = obs::JsonValue::parse(report.to_json());
  const obs::JsonValue* hw = doc.find("hw");
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->find("source")->as_string(), "off");
  EXPECT_EQ(hw->find("events"), nullptr);
}

TEST(RunProfiled, SimulatedEventsAttributeToLotusPhases) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 9}));
  tc::QueryOptions options;
  options.events = EventSource::kSimulated;
  const auto report = profiled(tc::Algorithm::kLotus, graph, options);

  EXPECT_EQ(report.event_source, EventSource::kSimulated);
  EXPECT_EQ(report.event_backend.rfind("simcache:", 0), 0u) << report.event_backend;
  EXPECT_TRUE(report.events.any());
  // The replay recounts the exact same graph, so the note must not report a
  // count mismatch.
  EXPECT_EQ(report.event_note.find("mismatch"), std::string::npos)
      << report.event_note;

  // Every counting-phase span carries a delta; the phase deltas sum to the
  // "count" span's total (the replay covers exactly these three phases).
  EventCounts phase_sum;
  for (const char* name : {"hhh_hhn", "hnn", "nnn"}) {
    const auto* span = report.trace.find(name);
    ASSERT_NE(span, nullptr) << name;
    EXPECT_TRUE(span->has_events) << name;
    EXPECT_GT(span->events[Event::kInstructions], 0u) << name;
    phase_sum += span->events;
  }
  const auto* count = report.trace.find("count");
  ASSERT_NE(count, nullptr);
  ASSERT_TRUE(count->has_events);
  for (std::size_t i = 0; i < obs::kNumEvents; ++i)
    EXPECT_EQ(count->events.value[i], phase_sum.value[i]) << i;

  // Preprocessing is not replayed and must carry no events.
  const auto* preprocess = report.trace.find("preprocess");
  ASSERT_NE(preprocess, nullptr);
  EXPECT_FALSE(preprocess->has_events);

  // The metrics export stamps the source and the run totals.
  const auto doc = obs::JsonValue::parse(report.to_json());
  const obs::JsonValue* hw = doc.find("hw");
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->find("source")->as_string(), "simulated");
  ASSERT_NE(hw->find("events"), nullptr);
  EXPECT_GT(hw->find("events")->find("llc_misses")->as_uint(), 0u);
}

TEST(RunProfiled, SimulatedEventsUnsupportedBaselineReportsZeroWithNote) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 4}));
  tc::QueryOptions options;
  options.events = EventSource::kSimulated;
  const auto report = profiled(tc::Algorithm::kNodeIterator, graph, options);
  EXPECT_EQ(report.event_source, EventSource::kSimulated);
  EXPECT_FALSE(report.events.any());
  EXPECT_NE(report.event_note.find("no instrumented replay"), std::string::npos)
      << report.event_note;
}

TEST(RunProfiled, HardwareDegradesToSimulatedWhenPerfUnavailable) {
  ScopedEnv force("LOTUS_HWC_FORCE_ERROR", "ENOSYS");
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 6}));
  tc::QueryOptions options;
  options.events = EventSource::kHardware;
  const auto report = profiled(tc::Algorithm::kLotus, graph, options);

  // The run must succeed, fall back to the simulated source, and say why.
  EXPECT_EQ(report.event_source, EventSource::kSimulated);
  EXPECT_TRUE(report.events.any());
  EXPECT_NE(report.event_note.find("hardware counters unavailable"),
            std::string::npos)
      << report.event_note;
  EXPECT_NE(report.event_note.find("degraded"), std::string::npos);
}

}  // namespace
