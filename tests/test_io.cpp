// IO round-trips plus failure injection: truncated files, bad magic,
// malformed text, out-of-range IDs.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace {

namespace g = lotus::graph;
namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid suffix: concurrent ctest -j processes must not share the dir.
    dir_ = fs::temp_directory_path() /
           ("lotus_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(IoTest, EdgeListTextRoundTrip) {
  const g::EdgeList original{5, {{0, 1}, {1, 2}, {3, 4}}};
  g::write_edge_list_text(path("g.txt"), original);
  const g::EdgeList loaded = g::read_edge_list_text(path("g.txt"));
  EXPECT_EQ(loaded.num_vertices, 5u);
  ASSERT_EQ(loaded.edges.size(), 3u);
  EXPECT_EQ(loaded.edges[0], (g::Edge{0, 1}));
  EXPECT_EQ(loaded.edges[2], (g::Edge{3, 4}));
}

TEST_F(IoTest, EdgeListSkipsComments) {
  std::ofstream f(path("c.txt"));
  f << "# comment\n% other comment\n1 2\n\n3 4\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("c.txt"));
  EXPECT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.num_vertices, 5u);
}

TEST_F(IoTest, EdgeListRejectsMalformedLine) {
  std::ofstream f(path("bad.txt"));
  f << "1 2\nnot an edge\n";
  f.close();
  EXPECT_THROW(g::read_edge_list_text(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, EdgeListRejectsMissingFile) {
  EXPECT_THROW(g::read_edge_list_text(path("nope.txt")), std::runtime_error);
}

TEST_F(IoTest, EdgeListRejectsHugeIds) {
  std::ofstream f(path("huge.txt"));
  f << "1 99999999999\n";
  f.close();
  EXPECT_THROW(g::read_edge_list_text(path("huge.txt")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 7}));
  g::write_csr_binary(path("g.bin"), graph);
  const auto loaded = g::read_csr_binary(path("g.bin"));
  EXPECT_EQ(loaded, graph);
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream f(path("bad.bin"), std::ios::binary);
  f << "NOTLOTUS and then some bytes to get past the header";
  f.close();
  EXPECT_THROW(g::read_csr_binary(path("bad.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedBody) {
  const auto graph = g::build_undirected(g::complete(20));
  g::write_csr_binary(path("t.bin"), graph);
  // Chop the file in half.
  const auto full = fs::file_size(path("t.bin"));
  fs::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW(g::read_csr_binary(path("t.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsCorruptNeighbor) {
  const auto graph = g::build_undirected(g::complete(4));
  g::write_csr_binary(path("c.bin"), graph);
  // Overwrite the last neighbour with an out-of-range ID.
  std::fstream f(path("c.bin"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-4, std::ios::end);
  const std::uint32_t bogus = 0xdeadbeef;
  f.write(reinterpret_cast<const char*>(&bogus), 4);
  f.close();
  EXPECT_THROW(g::read_csr_binary(path("c.bin")), std::runtime_error);
}

TEST_F(IoTest, EmptyEdgeListFileYieldsEmptyGraph) {
  std::ofstream f(path("empty.txt"));
  f << "# nothing here\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("empty.txt"));
  EXPECT_EQ(loaded.num_vertices, 0u);
  EXPECT_TRUE(loaded.edges.empty());
}

// ---------- text parsing edge cases ----------

TEST_F(IoTest, EdgeListIgnoresTrailingTokens) {
  // Weighted/timestamped dumps carry extra columns; only the first two
  // tokens of a line are the edge.
  std::ofstream f(path("weighted.txt"));
  f << "0 1 0.75\n1 2 1588000000 some-label\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("weighted.txt"));
  ASSERT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.edges[0], (g::Edge{0, 1}));
  EXPECT_EQ(loaded.edges[1], (g::Edge{1, 2}));
}

TEST_F(IoTest, EdgeListSkipsWhitespaceOnlyLines) {
  std::ofstream f(path("ws.txt"));
  f << "0 1\n   \n\t\n1 2\n \t \r\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("ws.txt"));
  EXPECT_EQ(loaded.edges.size(), 2u);
}

TEST_F(IoTest, EdgeListAcceptsLargestUsableId) {
  std::ofstream f(path("max32.txt"));
  f << "0 4294967294\n";  // 2^32 - 2: num_vertices = 2^32 - 1 still fits
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("max32.txt"));
  ASSERT_EQ(loaded.edges.size(), 1u);
  EXPECT_EQ(loaded.edges[0].v, 4294967294u);
  EXPECT_EQ(loaded.num_vertices, 4294967295u);
}

TEST_F(IoTest, EdgeListRejectsIdsWhoseUniverseOverflows32Bits) {
  // 2^32 - 1 is representable as a VertexId but max ID + 1 would wrap
  // num_vertices to 0 — rejected, like anything larger.
  for (const char* id : {"4294967295", "4294967296", "99999999999"}) {
    std::ofstream f(path("over32.txt"));
    f << "0 " << id << "\n";
    f.close();
    EXPECT_THROW(g::read_edge_list_text(path("over32.txt")), std::runtime_error)
        << id;
  }
}

TEST_F(IoTest, EdgeListRejectsNegativeIds) {
  // "-1" wraps to 2^64-1 under unsigned extraction; the 32-bit range check
  // must reject it either way.
  std::ofstream f(path("neg.txt"));
  f << "-1 2\n";
  f.close();
  EXPECT_THROW(g::read_edge_list_text(path("neg.txt")), std::runtime_error);
}

TEST_F(IoTest, EdgeListKeepsSelfLoopsForBuilderToDrop) {
  std::ofstream f(path("loops.txt"));
  f << "0 0\n0 1\n1 1\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("loops.txt"));
  EXPECT_EQ(loaded.edges.size(), 3u);  // parser preserves, builder cleans
  const auto csr = g::build_undirected(loaded);
  EXPECT_EQ(csr.num_edges(), 2u);  // only 0-1 survives, both directions
}

TEST_F(IoTest, EdgeListRejectsLoneToken) {
  std::ofstream f(path("lone.txt"));
  f << "0 1\n7\n";
  f.close();
  EXPECT_THROW(g::read_edge_list_text(path("lone.txt")), std::runtime_error);
}

// ---------- malformed binary corpus ----------
//
// Every file here declares a (v, e) header inconsistent with its actual
// size. read_csr_binary must reject them BEFORE allocating offset/neighbour
// arrays — a hostile header must not demand gigabytes (the ASan suite would
// flag the allocation blowup; in the plain build we assert the throw).

class BinaryCorpusTest : public IoTest {
 protected:
  static void append_u64(std::string& bytes, std::uint64_t value) {
    bytes.append(reinterpret_cast<const char*>(&value), sizeof value);
  }

  [[nodiscard]] std::string header(std::uint64_t v, std::uint64_t e) const {
    std::string bytes = "LOTUSGR1";
    append_u64(bytes, v);
    append_u64(bytes, e);
    return bytes;
  }

  void write_raw(const std::string& name, const std::string& bytes) const {
    std::ofstream f(path(name), std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

TEST_F(BinaryCorpusTest, RejectsHugeVertexCountAgainstTinyFile) {
  // Declares 2^32-1 vertices (a 32 GB offsets array) with an empty body.
  write_raw("huge_v.bin", header(0xffffffffULL, 0));
  EXPECT_THROW(g::read_csr_binary(path("huge_v.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsHugeEdgeCountAgainstTinyFile) {
  // 2^61 edges: e * sizeof(VertexId) would overflow a naive size check.
  std::string bytes = header(2, 1ULL << 61);
  for (int i = 0; i < 3 * 8; ++i) bytes.push_back('\0');
  write_raw("huge_e.bin", bytes);
  EXPECT_THROW(g::read_csr_binary(path("huge_e.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsVertexCountOver32Bits) {
  write_raw("v33.bin", header(1ULL << 33, 0));
  EXPECT_THROW(g::read_csr_binary(path("v33.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsTrailingGarbage) {
  const auto graph = g::build_undirected(g::complete(5));
  g::write_csr_binary(path("trail.bin"), graph);
  std::ofstream f(path("trail.bin"), std::ios::binary | std::ios::app);
  f << 'x';
  f.close();
  EXPECT_THROW(g::read_csr_binary(path("trail.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsHeaderOnlyFile) {
  write_raw("magic_only.bin", "LOTUSGR1");
  EXPECT_THROW(g::read_csr_binary(path("magic_only.bin")), std::runtime_error);
  write_raw("half_header.bin", "LOTUSGR1\x01\x00\x00\x00");
  EXPECT_THROW(g::read_csr_binary(path("half_header.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsEmptyFile) {
  write_raw("zero.bin", "");
  EXPECT_THROW(g::read_csr_binary(path("zero.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsNonMonotonicOffsets) {
  std::string bytes = header(2, 2);
  append_u64(bytes, 0);  // offsets[0]
  append_u64(bytes, 2);  // offsets[1]
  append_u64(bytes, 2);  // offsets[2] == e, but offsets[1] > ... craft below
  bytes.append(8, '\0');  // two 32-bit neighbours (0, 0)
  // Rewrite offsets to {0, 3, 2}: back() == 2 == e but non-monotonic.
  std::string bad = bytes;
  std::uint64_t three = 3;
  bad.replace(8 + 16 + 8, 8, reinterpret_cast<const char*>(&three), 8);
  write_raw("nonmono.bin", bad);
  EXPECT_THROW(g::read_csr_binary(path("nonmono.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, RejectsNonZeroFirstOffset) {
  std::string bytes = header(1, 1);
  append_u64(bytes, 1);  // offsets[0] != 0
  append_u64(bytes, 1);  // offsets[1] == e
  bytes.append(4, '\0');
  write_raw("first.bin", bytes);
  EXPECT_THROW(g::read_csr_binary(path("first.bin")), std::runtime_error);
}

TEST_F(BinaryCorpusTest, ValidEmptyGraphRoundTrips) {
  const auto graph = g::build_undirected({0, {}});
  g::write_csr_binary(path("empty.bin"), graph);
  const auto loaded = g::read_csr_binary(path("empty.bin"));
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

// ---------- status-layer API and mid-read failure injection ----------

using lotus::util::StatusCode;
namespace fault = lotus::util::fault;

TEST_F(IoTest, StatusApiMapsErrorClasses) {
  // Unreadable file -> io_error; structural corruption -> invalid_argument.
  EXPECT_EQ(g::read_edge_list_text_s(path("nope.txt")).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(g::read_csr_binary_s(path("nope.bin")).status().code(),
            StatusCode::kIoError);

  std::ofstream bad(path("bad_magic.bin"), std::ios::binary);
  bad << "NOTLOTUS and then some bytes to get past the header";
  bad.close();
  EXPECT_EQ(g::read_csr_binary_s(path("bad_magic.bin")).status().code(),
            StatusCode::kInvalidArgument);

  std::ofstream text(path("bad_line.txt"));
  text << "1 2\nnot an edge\n";
  text.close();
  EXPECT_EQ(g::read_edge_list_text_s(path("bad_line.txt")).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(g::write_csr_binary_s(path("no/such/dir/out.bin"),
                                  g::build_undirected(g::complete(3)))
                .code(),
            StatusCode::kIoError);
}

TEST_F(IoTest, TruncationAtEveryRegionFailsCleanly) {
  // Cut the file mid-magic, mid-header, mid-offsets, and mid-neighbours:
  // every truncation point must surface as a clean status (no throw, no
  // partial graph). Cuts inside the magic/header are io_error (the read
  // itself comes up short); body cuts are invalid_argument, because the
  // pre-allocation size-vs-header check rejects them before any read.
  const auto graph = g::build_undirected(g::complete(20));
  g::write_csr_binary(path("full.bin"), graph);
  const auto full = static_cast<std::uint64_t>(fs::file_size(path("full.bin")));
  constexpr std::uint64_t kHeader = 8 + 16;
  const std::uint64_t offsets_end = kHeader + (20 + 1) * 8;
  const std::pair<std::uint64_t, StatusCode> cuts[] = {
      {4, StatusCode::kIoError},                        // mid-magic
      {kHeader - 3, StatusCode::kIoError},              // mid-header
      {kHeader + 40, StatusCode::kInvalidArgument},     // mid-offsets
      {offsets_end + 6, StatusCode::kInvalidArgument},  // mid-neighbours
      {full - 1, StatusCode::kInvalidArgument},         // one byte short
  };
  for (const auto& [cut, expected] : cuts) {
    fs::copy_file(path("full.bin"), path("cut.bin"),
                  fs::copy_options::overwrite_existing);
    fs::resize_file(path("cut.bin"), cut);
    const auto loaded = g::read_csr_binary_s(path("cut.bin"));
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_EQ(loaded.status().code(), expected) << "cut at " << cut;
  }
}

TEST_F(IoTest, ShortReadsAreRetriedToCompletion) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 8, .edge_factor = 6, .seed = 3}));
  g::write_csr_binary(path("short.bin"), graph);
  fault::ScopedFaultPlan plan(
      fault::single_site_plan(fault::Site::kReadShort, 1.0));
  const auto loaded = g::read_csr_binary_s(path("short.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), graph);
  EXPECT_GT(fault::injected_count(fault::Site::kReadShort), 0u);
}

TEST_F(IoTest, InjectedReadFailureIsIoError) {
  const auto graph = g::build_undirected(g::complete(10));
  g::write_csr_binary(path("fail.bin"), graph);
  fault::ScopedFaultPlan plan(
      fault::single_site_plan(fault::Site::kReadFail, 1.0));
  const auto loaded = g::read_csr_binary_s(path("fail.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("injected"), std::string::npos);
}

TEST_F(IoTest, ShortWritesAreRetriedToCompletion) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 8, .edge_factor = 6, .seed = 5}));
  {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kWriteShort, 1.0));
    ASSERT_TRUE(g::write_csr_binary_s(path("wshort.bin"), graph).ok());
    EXPECT_GT(fault::injected_count(fault::Site::kWriteShort), 0u);
  }
  const auto loaded = g::read_csr_binary_s(path("wshort.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value(), graph);
}

TEST_F(IoTest, InjectedWriteFailureIsIoErrorAndLeavesNoTornFile) {
  const auto graph = g::build_undirected(g::complete(10));
  {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kWriteFail, 1.0));
    const auto status = g::write_csr_binary_s(path("wfail.bin"), graph);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    EXPECT_NE(status.message().find("injected"), std::string::npos);
  }
  // Atomic-rename contract: a failed write must leave neither a torn file at
  // the final path nor a stranded temp file next to it.
  EXPECT_FALSE(fs::exists(path("wfail.bin")));
  EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(IoTest, WriteFaultMatrixNeverTearsTheFinalPath) {
  // Sweep injection probabilities over both write sites: every outcome is
  // either a fully valid artifact at the final path or no file at all, and
  // never a stray temp alongside.
  const auto graph =
      g::build_undirected(g::rmat({.scale = 7, .edge_factor = 5, .seed = 11}));
  const fault::Site sites[] = {fault::Site::kWriteShort,
                               fault::Site::kWriteFail};
  const double probabilities[] = {0.05, 0.25, 1.0};
  int seed = 0;
  for (const fault::Site site : sites) {
    for (const double probability : probabilities) {
      auto plan = fault::single_site_plan(site, probability);
      plan.seed = static_cast<std::uint64_t>(++seed);
      const std::string out = path("matrix.bin");
      lotus::util::Status status;
      {
        fault::ScopedFaultPlan scoped(plan);
        status = g::write_csr_binary_s(out, graph);
      }
      if (status.ok()) {
        const auto loaded = g::read_csr_binary_s(out);
        ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
        EXPECT_EQ(loaded.value(), graph);
        fs::remove(out);
      } else {
        EXPECT_EQ(status.code(), StatusCode::kIoError);
        EXPECT_FALSE(fs::exists(out));
      }
      EXPECT_TRUE(fs::is_empty(dir_))
          << "stranded temp file after site=" << fault::site_name(site)
          << " p=" << probability;
    }
  }
}

TEST_F(IoTest, LegacyWrappersPreserveStatusMessage) {
  try {
    (void)g::read_csr_binary(path("absent.bin"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const auto status = g::read_csr_binary_s(path("absent.bin")).status();
    EXPECT_EQ(std::string(e.what()), status.message());
  }
}

}  // namespace
