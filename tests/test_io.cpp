// IO round-trips plus failure injection: truncated files, bad magic,
// malformed text, out-of-range IDs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

namespace g = lotus::graph;
namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "lotus_io_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(IoTest, EdgeListTextRoundTrip) {
  const g::EdgeList original{5, {{0, 1}, {1, 2}, {3, 4}}};
  g::write_edge_list_text(path("g.txt"), original);
  const g::EdgeList loaded = g::read_edge_list_text(path("g.txt"));
  EXPECT_EQ(loaded.num_vertices, 5u);
  ASSERT_EQ(loaded.edges.size(), 3u);
  EXPECT_EQ(loaded.edges[0], (g::Edge{0, 1}));
  EXPECT_EQ(loaded.edges[2], (g::Edge{3, 4}));
}

TEST_F(IoTest, EdgeListSkipsComments) {
  std::ofstream f(path("c.txt"));
  f << "# comment\n% other comment\n1 2\n\n3 4\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("c.txt"));
  EXPECT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.num_vertices, 5u);
}

TEST_F(IoTest, EdgeListRejectsMalformedLine) {
  std::ofstream f(path("bad.txt"));
  f << "1 2\nnot an edge\n";
  f.close();
  EXPECT_THROW(g::read_edge_list_text(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, EdgeListRejectsMissingFile) {
  EXPECT_THROW(g::read_edge_list_text(path("nope.txt")), std::runtime_error);
}

TEST_F(IoTest, EdgeListRejectsHugeIds) {
  std::ofstream f(path("huge.txt"));
  f << "1 99999999999\n";
  f.close();
  EXPECT_THROW(g::read_edge_list_text(path("huge.txt")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 7}));
  g::write_csr_binary(path("g.bin"), graph);
  const auto loaded = g::read_csr_binary(path("g.bin"));
  EXPECT_EQ(loaded, graph);
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream f(path("bad.bin"), std::ios::binary);
  f << "NOTLOTUS and then some bytes to get past the header";
  f.close();
  EXPECT_THROW(g::read_csr_binary(path("bad.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedBody) {
  const auto graph = g::build_undirected(g::complete(20));
  g::write_csr_binary(path("t.bin"), graph);
  // Chop the file in half.
  const auto full = fs::file_size(path("t.bin"));
  fs::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW(g::read_csr_binary(path("t.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsCorruptNeighbor) {
  const auto graph = g::build_undirected(g::complete(4));
  g::write_csr_binary(path("c.bin"), graph);
  // Overwrite the last neighbour with an out-of-range ID.
  std::fstream f(path("c.bin"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-4, std::ios::end);
  const std::uint32_t bogus = 0xdeadbeef;
  f.write(reinterpret_cast<const char*>(&bogus), 4);
  f.close();
  EXPECT_THROW(g::read_csr_binary(path("c.bin")), std::runtime_error);
}

TEST_F(IoTest, EmptyEdgeListFileYieldsEmptyGraph) {
  std::ofstream f(path("empty.txt"));
  f << "# nothing here\n";
  f.close();
  const g::EdgeList loaded = g::read_edge_list_text(path("empty.txt"));
  EXPECT_EQ(loaded.num_vertices, 0u);
  EXPECT_TRUE(loaded.edges.empty());
}

}  // namespace
