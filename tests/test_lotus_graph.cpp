// LotusGraph construction invariants (Alg. 2): HE/NHE partition the oriented
// edge set, 16-bit HE IDs are below hub_count, H2H mirrors hub-hub edges.
#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "lotus/lotus_graph.hpp"

namespace {

namespace g = lotus::graph;
using lotus::core::LotusConfig;
using lotus::core::LotusGraph;

LotusGraph make(const g::CsrGraph& graph, g::VertexId hubs) {
  LotusConfig config;
  config.hub_count = hubs;
  return LotusGraph::build(graph, config);
}

TEST(LotusGraph, EdgePartitionIsExact) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 8, .seed = 1}));
  const auto lg = make(graph, 64);
  // HE + NHE together hold exactly one entry per undirected edge.
  EXPECT_EQ(lg.he().num_edges() + lg.nhe().num_edges(), graph.num_edges() / 2);
}

TEST(LotusGraph, HeNeighborsAreHubsBelowVertex) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 2}));
  const auto lg = make(graph, 128);
  for (g::VertexId v = 0; v < lg.num_vertices(); ++v) {
    std::uint16_t prev = 0;
    bool first = true;
    for (std::uint16_t h : lg.he().neighbors(v)) {
      EXPECT_LT(h, lg.hub_count());
      EXPECT_LT(static_cast<g::VertexId>(h), v);
      if (!first) EXPECT_GT(h, prev);  // sorted, no duplicates
      prev = h;
      first = false;
    }
  }
}

TEST(LotusGraph, NheNeighborsAreNonHubsBelowVertex) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 2}));
  const auto lg = make(graph, 128);
  for (g::VertexId v = 0; v < lg.num_vertices(); ++v) {
    for (g::VertexId u : lg.nhe().neighbors(v)) {
      EXPECT_GE(u, lg.hub_count());
      EXPECT_LT(u, v);
    }
  }
  // Hubs have no NHE entries: all their lower neighbours are hubs.
  for (g::VertexId v = 0; v < lg.hub_count(); ++v)
    EXPECT_EQ(lg.nhe().degree(v), 0u);
}

TEST(LotusGraph, H2HMirrorsHubHubEdgesOfHE) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 3}));
  const auto lg = make(graph, 256);
  std::uint64_t hub_hub_in_he = 0;
  for (g::VertexId v = 0; v < lg.hub_count(); ++v) {
    for (std::uint16_t h : lg.he().neighbors(v)) {
      EXPECT_TRUE(lg.h2h().test(v, h)) << v << "-" << h;
      ++hub_hub_in_he;
    }
  }
  EXPECT_EQ(lg.h2h().count_set_bits(), hub_hub_in_he);
}

TEST(LotusGraph, ReconstructsOriginalEdgeSet) {
  // Mapping HE/NHE entries back through the relabeling recovers exactly the
  // input undirected edge set.
  const auto graph = g::build_undirected(
      g::holme_kim({.num_vertices = 300, .edges_per_vertex = 4, .p_triad = 0.5, .seed = 5}));
  const auto lg = make(graph, 16);
  const auto& new_id = lg.relabeling();
  std::vector<g::VertexId> old_of_new(graph.num_vertices());
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) old_of_new[new_id[v]] = v;

  std::set<std::pair<g::VertexId, g::VertexId>> reconstructed;
  for (g::VertexId v = 0; v < lg.num_vertices(); ++v) {
    for (std::uint16_t h : lg.he().neighbors(v)) {
      auto a = old_of_new[v], b = old_of_new[h];
      reconstructed.insert({std::min(a, b), std::max(a, b)});
    }
    for (g::VertexId u : lg.nhe().neighbors(v)) {
      auto a = old_of_new[v], b = old_of_new[u];
      reconstructed.insert({std::min(a, b), std::max(a, b)});
    }
  }

  std::set<std::pair<g::VertexId, g::VertexId>> expected;
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
    for (g::VertexId u : graph.neighbors(v))
      expected.insert({std::min(v, u), std::max(v, u)});
  EXPECT_EQ(reconstructed, expected);
}

TEST(LotusGraph, AutoHubCountScalesWithGraph) {
  LotusConfig config;  // hub_count = 0 -> auto
  const auto small = g::build_undirected(g::erdos_renyi(1000, 8.0, 1));
  const auto lg = LotusGraph::build(small, config);
  EXPECT_GE(lg.hub_count(), 10u);   // ~1%
  EXPECT_LE(lg.hub_count(), 500u);  // <= V/2
}

TEST(LotusGraph, HubCountNeverExceeds64K) {
  LotusConfig config;
  config.hub_count = 1u << 20;  // absurd request
  const auto graph = g::build_undirected(g::erdos_renyi(100, 4.0, 1));
  EXPECT_LE(config.resolve_hub_count(graph.num_vertices()), 1u << 16);
}

TEST(LotusGraph, TopologyBytesIncludesAllThreeStructures) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 4}));
  const auto lg = make(graph, 64);
  const std::uint64_t expected = lg.he().topology_bytes() +
                                 lg.nhe().topology_bytes() +
                                 lg.h2h().size_bytes();
  EXPECT_EQ(lg.topology_bytes(), expected);
  // HE entries cost 2 bytes each; NHE entries 4 bytes each.
  EXPECT_EQ(lg.he().topology_bytes(),
            (lg.num_vertices() + 1ull) * 8 + lg.he().num_edges() * 2);
  EXPECT_EQ(lg.nhe().topology_bytes(),
            (lg.num_vertices() + 1ull) * 8 + lg.nhe().num_edges() * 4);
}

TEST(LotusGraph, SelfLoopsInInputAreIgnored) {
  // Bypass build_undirected's cleaning to exercise Alg. 2's self-edge check.
  std::vector<std::uint64_t> offsets = {0, 2, 4};
  std::vector<g::VertexId> neighbors = {0, 1, 0, 1};  // 0-0 self, 0-1, 1-1 self
  const g::CsrGraph dirty(std::move(offsets), std::move(neighbors));
  const auto lg = make(dirty, 1);
  EXPECT_EQ(lg.he().num_edges() + lg.nhe().num_edges(), 1u);
}

}  // namespace
