// LOTUS relabeling (Sec. 4.3.1): hubs-first permutation that preserves the
// original order of unreordered vertices.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "lotus/relabel.hpp"

namespace {

namespace g = lotus::graph;
using lotus::core::create_relabeling_array;

TEST(Relabeling, IsAPermutation) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 1}));
  const auto new_id = create_relabeling_array(graph, graph.num_vertices() / 10);
  std::vector<bool> seen(graph.num_vertices(), false);
  for (auto id : new_id) {
    ASSERT_LT(id, graph.num_vertices());
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(Relabeling, ReorderedBlockHasHighestDegrees) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 2}));
  const g::VertexId k = 64;
  const auto new_id = create_relabeling_array(graph, k);

  std::uint32_t min_reordered_degree = UINT32_MAX;
  std::uint32_t max_rest_degree = 0;
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (new_id[v] < k)
      min_reordered_degree = std::min(min_reordered_degree, graph.degree(v));
    else
      max_rest_degree = std::max(max_rest_degree, graph.degree(v));
  }
  EXPECT_GE(min_reordered_degree, max_rest_degree);
}

TEST(Relabeling, ReorderedBlockIsDegreeSorted) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 6, .seed = 3}));
  const g::VertexId k = 32;
  const auto new_id = create_relabeling_array(graph, k);
  std::vector<g::VertexId> old_of_new(graph.num_vertices());
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) old_of_new[new_id[v]] = v;
  for (g::VertexId rank = 1; rank < k; ++rank)
    EXPECT_GE(graph.degree(old_of_new[rank - 1]), graph.degree(old_of_new[rank]));
}

TEST(Relabeling, NonReorderedVerticesKeepRelativeOrder) {
  // Sec. 4.3.1: the tail keeps the input order, preserving initial locality.
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 4}));
  const g::VertexId k = 100;
  const auto new_id = create_relabeling_array(graph, k);
  g::VertexId prev = 0;
  bool first = true;
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (new_id[v] < k) continue;
    if (!first) EXPECT_GT(new_id[v], prev);
    prev = new_id[v];
    first = false;
  }
}

TEST(Relabeling, ReorderCountLargerThanGraphIsClamped) {
  const auto graph = g::build_undirected(g::complete(10));
  const auto new_id = create_relabeling_array(graph, 1000);
  std::vector<bool> seen(10, false);
  for (auto id : new_id) {
    ASSERT_LT(id, 10u);
    seen[id] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool x) { return x; }));
}

TEST(Relabeling, ZeroReorderCountIsIdentity) {
  const auto graph = g::build_undirected(g::path(20));
  const auto new_id = create_relabeling_array(graph, 0);
  for (g::VertexId v = 0; v < 20; ++v) EXPECT_EQ(new_id[v], v);
}

}  // namespace
