// Concurrency stress tests, built to be run under sanitizers.
//
// These tests are correct (and cheap) in any build, but their real job is
// the `sanitizer` ctest label: scripts/check_sanitizers.sh builds the tree
// twice — ASan+UBSan and TSan — and runs exactly this suite, so the thread
// pool, the work-stealing scheduler, the obs counters, the atomic H2H
// writes, and a reduced differential matrix all execute under race and
// memory-error detection. Workloads are sized for the ~10x sanitizer
// slowdown: hostile interleavings, small data.
//
// The OpenMP backend is intentionally not exercised under TSan: libgomp is
// not TSan-instrumented and reports false positives on its own barriers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/tc_baselines.hpp"
#include "diff_harness.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "lotus/h2h_bitarray.hpp"
#include "lotus/lotus.hpp"
#include "obs/counters.hpp"
#include "obs/telemetry.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "tc/api.hpp"
#include "tc/engine.hpp"
#include "util/cancel.hpp"

namespace {

namespace g = lotus::graph;
namespace par = lotus::parallel;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif

TEST(SanitizerStress, PoolForkJoinRepeated) {
  par::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<unsigned> sum{0};
    pool.execute([&](unsigned t) { sum.fetch_add(t + 1); });
    ASSERT_EQ(sum.load(), 1u + 2 + 3 + 4);
  }
}

TEST(SanitizerStress, WorkStealingManyTinyTasks) {
  par::ThreadPool pool(4);
  par::WorkStealingScheduler scheduler(pool);
  constexpr std::size_t kTasks = 2000;
  std::vector<std::atomic<int>> done(kTasks);
  std::vector<par::WorkStealingScheduler::Task> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i)
    tasks.emplace_back([&done, i](unsigned) { done[i].fetch_add(1); });
  scheduler.run(std::move(tasks));
  for (std::size_t i = 0; i < kTasks; ++i) ASSERT_EQ(done[i].load(), 1) << i;
}

TEST(SanitizerStress, CountersConcurrentWithSnapshot) {
  // obs documents counters_snapshot() as safe while counting is in flight;
  // hammer that contract from a reader thread racing a counting pool.
  lotus::obs::reset_counters();
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire))
      (void)lotus::obs::counters_snapshot();
  });
  par::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    pool.execute([&](unsigned) {
      for (int i = 0; i < 100; ++i)
        lotus::obs::count(lotus::obs::Counter::kIntersectComparisons);
    });
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  if (lotus::obs::enabled()) {
    const auto snapshot = lotus::obs::counters_snapshot();
    EXPECT_GE(snapshot[lotus::obs::Counter::kIntersectComparisons],
              50u * 4 * 100);
  }
}

TEST(SanitizerStress, H2HConcurrentSetAtomic) {
  // Writers race on bits of the same 64-bit words at row boundaries — the
  // exact sharing pattern LotusGraph::build produces.
  constexpr g::VertexId kHubs = 64;
  lotus::core::TriangularBitArray bits(kHubs);
  par::ThreadPool pool(4);
  pool.execute([&](unsigned t) {
    for (g::VertexId h1 = 1; h1 < kHubs; ++h1)
      for (g::VertexId h2 = t % 2; h2 < h1; h2 += 2) bits.set_atomic(h1, h2);
  });
  EXPECT_EQ(bits.count_set_bits(), bits.num_bits());
}

TEST(SanitizerStress, ParallelForBothBackends) {
  for (const par::Backend backend :
       {par::Backend::kPool, par::Backend::kOpenMP}) {
    if (backend == par::Backend::kOpenMP && (kTsan || !par::openmp_available()))
      continue;
    ASSERT_TRUE(par::set_backend(backend));
    const auto total = par::parallel_reduce_add<std::uint64_t>(
        0, 100000, 64, [](std::uint64_t i) { return i; });
    EXPECT_EQ(total, 99999ull * 100000 / 2);
  }
  par::set_backend(par::Backend::kPool);
}

TEST(SanitizerStress, LotusEndToEndUnderFourThreads) {
  par::set_num_threads(4);
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 77}));
  const auto expected = lotus::baselines::brute_force(graph);
  const auto r = lotus::core::count_triangles(graph);
  EXPECT_EQ(r.triangles, expected);
  par::set_num_threads(0);
}

TEST(SanitizerStress, CancelRacesRunRepeatedly) {
  // Cross-thread cancellation hammered under TSan: a canceller thread flips
  // the token at a different point of each run, so the chunk-granularity
  // interrupt checks race against real counting work. Either outcome is
  // legal per round — finished-before-cancel (exact count) or cancelled —
  // but the next round must start clean, and no task may leak.
  par::set_num_threads(4);
  const auto graph =
      g::build_undirected(g::rmat({.scale = 12, .edge_factor = 12, .seed = 9}));
  const auto expected = lotus::baselines::brute_force(graph);
  lotus::util::CancelToken token;
  lotus::tc::QueryOptions options;
  options.cancel = &token;
  for (int round = 0; round < 20; ++round) {
    token.reset();
    std::thread canceller([&token, round] {
      for (volatile int spin = 0; spin < round * 20000; ++spin) {
      }
      token.cancel();
    });
    const auto result =
        lotus::tc::query(lotus::tc::Algorithm::kLotus, graph, options).value();
    canceller.join();
    if (result.ok()) {
      ASSERT_EQ(result.result.triangles, expected) << "round " << round;
    } else {
      ASSERT_EQ(result.status.code(), lotus::util::StatusCode::kCancelled)
          << "round " << round << ": " << result.status.to_string();
    }
  }
  // The pool and global exec context must be pristine afterwards.
  token.reset();
  const auto clean =
      lotus::tc::query(lotus::tc::Algorithm::kLotus, graph, options).value();
  ASSERT_TRUE(clean.ok()) << clean.status.to_string();
  EXPECT_EQ(clean.result.triangles, expected);
  par::set_num_threads(0);
}

TEST(SanitizerStress, EngineConcurrentSubmitCancelInvalidate) {
  // The serving layer under TSan: four submitter threads race mixed
  // queries against two graph keys while a chaos thread cancels one query's
  // token and invalidates cache keys mid-flight. Every future must resolve
  // with an exact count, a clean kCancelled, or (only at shutdown) the
  // never-attempted rejection.
  const auto graph_a =
      g::build_undirected(g::rmat({.scale = 8, .edge_factor = 8, .seed = 51}));
  const auto graph_b =
      g::build_undirected(g::rmat({.scale = 8, .edge_factor = 8, .seed = 52}));
  const auto expected_a = lotus::baselines::brute_force(graph_a);
  const auto expected_b = lotus::baselines::brute_force(graph_b);

  lotus::tc::EngineOptions engine_options;
  engine_options.num_drivers = 2;
  engine_options.threads_per_query = 2;
  lotus::tc::Engine engine(engine_options);
  lotus::util::CancelToken token;
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    while (!stop.load(std::memory_order_acquire)) {
      token.cancel();
      engine.invalidate("a");
      token.reset();
      engine.invalidate("b");
      std::this_thread::yield();
    }
  });

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        lotus::tc::QueryOptions options;
        if (i % 3 == 0) options.cancel = &token;  // some queries cancellable
        auto outcome =
            engine
                .submit({i % 2 == 0 ? lotus::tc::Algorithm::kLotus
                                    : lotus::tc::Algorithm::kForwardMerge,
                         use_a ? "a" : "b", use_a ? &graph_a : &graph_b,
                         options})
                .get();
        if (!outcome.ok()) {
          failures.fetch_add(1);  // submit-side rejection: engine is alive
          continue;
        }
        const auto& result = outcome.value();
        if (result.ok()) {
          if (result.result.triangles != (use_a ? expected_a : expected_b))
            failures.fetch_add(1);
        } else if (result.status.code() !=
                   lotus::util::StatusCode::kCancelled) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  stop.store(true, std::memory_order_release);
  chaos.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, kSubmitters * kPerThread);
}

TEST(SanitizerStress, TelemetryRecordConcurrentWithSnapshot) {
  // obs::Telemetry documents record() as safe against any number of
  // concurrent record()/snapshot() calls; hammer that contract with a
  // snapshot reader racing 4 recording threads on shared shards.
  lotus::obs::Telemetry telemetry({.window_s = 1.0}, {"alpha", "beta"});
  constexpr int kThreads = 4;
  constexpr int kPerThread = kTsan ? 1000 : 4000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = telemetry.snapshot();
      // Mid-flight snapshots are relaxed (cross-bin skew is documented),
      // but merged totals can never exceed the whole workload.
      for (const auto& series : snap.algorithms)
        ASSERT_LE(series.hist.count(),
                  static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&telemetry, t] {
      for (int i = 0; i < kPerThread; ++i) {
        lotus::obs::QuerySample sample;
        sample.algorithm = static_cast<std::size_t>(t % 2);
        sample.outcome = lotus::obs::CacheOutcome::kHit;
        sample.graph_key = "stress";
        sample.status = "ok";
        sample.total_ns = static_cast<std::uint64_t>(1000 + i);
        sample.count_ns = sample.total_ns / 2;
        telemetry.record(sample);
      }
    });
  for (auto& thread : writers) thread.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(telemetry.snapshot().queries_recorded,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(SanitizerStress, EngineStatsSnapshotsStayCoherent) {
  // Engine::stats() promises an internally consistent snapshot: counters
  // incremented together stay summable. Assert the invariants from a reader
  // thread while drivers resolve cache lookups and complete queries.
  const auto graph = g::build_undirected(
      g::rmat({.scale = 8, .edge_factor = 6, .seed = 5}));
  lotus::tc::Engine engine({.num_drivers = 2, .threads_per_query = 2});
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto stats = engine.stats();
      if (stats.cache_hits + stats.cache_misses != stats.cache_lookups)
        violations.fetch_add(1);
      if (stats.completed + stats.rejected > stats.submitted)
        violations.fetch_add(1);
      if (stats.deadline_misses > stats.completed) violations.fetch_add(1);
    }
  });
  constexpr int kQueries = kTsan ? 24 : 64;
  std::vector<std::future<lotus::util::Expected<lotus::tc::QueryResult>>>
      futures;
  futures.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i)
    futures.push_back(engine.submit({i % 2 == 0
                                         ? lotus::tc::Algorithm::kLotus
                                         : lotus::tc::Algorithm::kForwardMerge,
                                     "k" + std::to_string(i % 4), &graph,
                                     {}}));
  for (auto& future : futures) {
    auto outcome = future.get();
    ASSERT_TRUE(outcome.ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.cache_lookups);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kQueries));
}

TEST(SanitizerStress, DifferentialSmokeMatrix) {
  // Reduced differential matrix: adversarial corpus only, pool backend only
  // (see the file comment), threads {1, 4}.
  const auto corpus = lotus::testing::smoke_corpus();
  const auto paths = lotus::testing::differential_paths();
  for (const unsigned threads : {1u, 4u}) {
    lotus::testing::apply_execution({par::Backend::kPool, threads});
    for (const auto& spec : corpus) {
      const auto csr = g::build_undirected(spec.edges);
      const auto expected = lotus::baselines::brute_force(csr);
      for (const auto& path : paths) {
        EXPECT_EQ(path.count(csr, spec.config), expected)
            << spec.name << " via " << path.name << " threads=" << threads;
      }
    }
  }
  lotus::testing::apply_execution({par::Backend::kPool, 0});
}

}  // namespace
