// Approximate TC estimators: exactness at the degenerate settings,
// unbiasedness within tolerance on random graphs, input validation.
#include <gtest/gtest.h>

#include "analytics/approx.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

namespace g = lotus::graph;
namespace a = lotus::analytics;

TEST(Doulion, KeepAllIsExact) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 71}));
  const auto exact = lotus::baselines::brute_force(graph);
  const auto r = a::doulion(graph, 1.0, 1);
  EXPECT_DOUBLE_EQ(r.estimated_triangles, static_cast<double>(exact));
  EXPECT_DOUBLE_EQ(r.relative_stderr, 0.0);
}

TEST(Doulion, EstimateWithinTolerance) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 12, .edge_factor = 12, .seed = 72}));
  const auto exact = static_cast<double>(lotus::baselines::brute_force(graph));
  // Average several seeds; individual estimates are unbiased but noisy.
  double sum = 0;
  constexpr int kRuns = 5;
  for (int s = 1; s <= kRuns; ++s)
    sum += a::doulion(graph, 0.5, static_cast<std::uint64_t>(s)).estimated_triangles;
  EXPECT_NEAR(sum / kRuns, exact, 0.10 * exact);
}

TEST(Doulion, RejectsBadProbability) {
  const auto graph = g::build_undirected(g::complete(5));
  EXPECT_THROW(a::doulion(graph, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(a::doulion(graph, 1.5, 1), std::invalid_argument);
}

TEST(WedgeSampling, ExactOnCompleteGraph) {
  // Every wedge of K_n is closed: the estimator is exact regardless of the
  // sample size.
  const auto graph = g::build_undirected(g::complete(20));
  const auto r = a::wedge_sampling(graph, 500, 3);
  EXPECT_DOUBLE_EQ(r.estimated_triangles,
                   static_cast<double>(g::complete_triangles(20)));
}

TEST(WedgeSampling, ZeroOnTriangleFreeGraph) {
  const auto graph = g::build_undirected(g::complete_bipartite(15, 15));
  const auto r = a::wedge_sampling(graph, 2000, 4);
  EXPECT_DOUBLE_EQ(r.estimated_triangles, 0.0);
}

TEST(WedgeSampling, EstimateWithinTolerance) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 12, .edge_factor = 12, .seed = 73}));
  const auto exact = static_cast<double>(lotus::baselines::brute_force(graph));
  const auto r = a::wedge_sampling(graph, 200000, 5);
  EXPECT_NEAR(r.estimated_triangles, exact, 0.10 * exact);
  EXPECT_GT(r.relative_stderr, 0.0);
}

TEST(WedgeSampling, HandlesWedgelessGraph) {
  // A single edge has no wedges at all.
  const auto graph = g::build_undirected({2, {{0, 1}}});
  const auto r = a::wedge_sampling(graph, 100, 6);
  EXPECT_DOUBLE_EQ(r.estimated_triangles, 0.0);
}

TEST(WedgeSampling, RejectsZeroSamples) {
  const auto graph = g::build_undirected(g::complete(4));
  EXPECT_THROW(a::wedge_sampling(graph, 0, 1), std::invalid_argument);
}

}  // namespace
