// Hardware models: set-associative LRU cache, TLB, gshare predictor, and
// the composite PerfModel probe.
#include <gtest/gtest.h>

#include "simcache/branch_predictor.hpp"
#include "util/prng.hpp"
#include "simcache/cache_model.hpp"
#include "simcache/machines.hpp"
#include "simcache/perf_model.hpp"

namespace {

using namespace lotus::simcache;

CacheConfig tiny_cache() { return {"test", 1024, 64, 2}; }  // 8 sets x 2 ways

TEST(CacheModel, ColdMissThenHit) {
  CacheModel cache(tiny_cache());
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1004));  // same line
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheModel, DistinctLinesMissSeparately) {
  CacheModel cache(tiny_cache());
  cache.access(0x0);
  cache.access(0x40);
  cache.access(0x80);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(CacheModel, LruEvictionWithinSet) {
  // 2-way set: three conflicting lines evict the least recently used.
  CacheModel cache(tiny_cache());
  const std::uint64_t set_stride = 8 * 64;  // 8 sets x 64B lines
  cache.access(0 * set_stride);             // A -> miss
  cache.access(1 * set_stride);             // B -> miss
  cache.access(0 * set_stride);             // A -> hit (B becomes LRU)
  cache.access(2 * set_stride);             // C -> miss, evicts B
  EXPECT_TRUE(cache.access(0 * set_stride));   // A survived
  EXPECT_FALSE(cache.access(1 * set_stride));  // B was evicted
}

TEST(CacheModel, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(tiny_cache());  // 1 KB
  for (int round = 0; round < 3; ++round)
    for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 64) cache.access(addr);
  // 8 KB streamed working set in a 1 KB cache: essentially all misses.
  EXPECT_GT(cache.misses(), cache.hits());
}

TEST(CacheModel, SmallWorkingSetFitsAfterWarmup) {
  CacheModel cache(tiny_cache());
  for (int round = 0; round < 10; ++round)
    for (std::uint64_t addr = 0; addr < 512; addr += 64) cache.access(addr);
  EXPECT_EQ(cache.misses(), 8u);  // cold misses only
}

TEST(CacheModel, RejectsBadGeometry) {
  EXPECT_THROW(CacheModel({"bad", 1000, 64, 2}), std::invalid_argument);
  EXPECT_THROW(CacheModel({"bad", 1024, 60, 2}), std::invalid_argument);
}

TEST(TlbModel, PageGranularity) {
  TlbModel tlb({4, 4096, 4});
  tlb.access(0);
  EXPECT_TRUE(tlb.access(4095));   // same page
  EXPECT_FALSE(tlb.access(4096));  // next page
}

TEST(Gshare, LearnsABiasedBranch) {
  GsharePredictor predictor(8);
  for (int i = 0; i < 1000; ++i) predictor.record(7, true);
  // After warmup, an always-taken branch is nearly always predicted.
  EXPECT_LT(predictor.mispredicts(), 10u);
  EXPECT_EQ(predictor.branches(), 1000u);
}

TEST(Gshare, RandomBranchMispredictsHalf) {
  GsharePredictor predictor(8);
  std::uint64_t state = 42;
  for (int i = 0; i < 20000; ++i)
    predictor.record(3, lotus::util::splitmix64(state) & 1);
  const double rate = static_cast<double>(predictor.mispredicts()) /
                      static_cast<double>(predictor.branches());
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(Gshare, AlternatingPatternIsLearnable) {
  GsharePredictor predictor(8);
  for (int i = 0; i < 2000; ++i) predictor.record(1, i % 2 == 0);
  // History-based prediction captures strict alternation.
  EXPECT_LT(predictor.mispredicts(), 100u);
}

TEST(PerfModel, CountsAllEventKinds) {
  PerfModel model(skylakex().scaled(64));
  int x = 0;
  model.read(&x, 4);
  model.read(&x, 4);
  model.branch(0, true);
  model.op(3);
  const auto c = model.counters();
  EXPECT_EQ(c.loads, 2u);
  EXPECT_EQ(c.branches, 1u);
  EXPECT_EQ(c.ops, 3u);
  EXPECT_EQ(c.instructions(), 2u + 1u + 3u);
  EXPECT_EQ(c.l1_misses, 1u);  // second read hits L1
}

TEST(Machines, ScaledKeepsGeometryValid) {
  for (const auto& machine : {skylakex(), haswell(), epyc()}) {
    for (std::uint32_t factor : {1u, 4u, 16u, 1024u}) {
      const auto scaled = machine.scaled(factor);
      // Must still construct valid caches.
      PerfModel model(scaled);
      int x = 0;
      model.read(&x, 4);
      EXPECT_EQ(model.counters().loads, 1u);
    }
  }
}

TEST(Machines, Table3Capacities) {
  EXPECT_EQ(skylakex().l2.size_bytes, 1024u * 1024);
  EXPECT_EQ(haswell().l2.size_bytes, 256u * 1024);
  EXPECT_EQ(epyc().l2.size_bytes, 512u * 1024);
}

}  // namespace
