// Unit tests for the parallel runtime: pool fork-join, parallel_for/reduce,
// and the work-stealing task scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/fault.hpp"

namespace {

using lotus::parallel::ThreadPool;
using lotus::parallel::WorkStealingScheduler;

TEST(ThreadPool, ExecuteRunsOncePerThread) {
  ThreadPool pool(4);
  std::atomic<unsigned> calls{0};
  std::atomic<unsigned> mask{0};
  pool.execute([&](unsigned t) {
    calls.fetch_add(1);
    mask.fetch_or(1u << t);
  });
  EXPECT_EQ(calls.load(), 4u);
  EXPECT_EQ(mask.load(), 0b1111u);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.execute([&](unsigned t) { sum.fetch_add(static_cast<int>(t) + 1); });
    ASSERT_EQ(sum.load(), 1 + 2 + 3);
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.execute([&](unsigned t) {
    EXPECT_EQ(t, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::uint64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  lotus::parallel::parallel_for(0, kN, 64,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  lotus::parallel::parallel_for(5, 5, 1,
      [&](unsigned, std::uint64_t, std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ZeroGrainIsSafe) {
  std::atomic<std::uint64_t> sum{0};
  lotus::parallel::parallel_for(0, 100, 0,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) sum.fetch_add(i);
      });
  EXPECT_EQ(sum.load(), 99ull * 100 / 2);
}

TEST(ParallelReduce, MatchesSerialSum) {
  constexpr std::uint64_t kN = 1 << 18;
  const auto total = lotus::parallel::parallel_reduce_add<std::uint64_t>(
      0, kN, 128, [](std::uint64_t i) { return i * 3 + 1; });
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < kN; ++i) expected += i * 3 + 1;
  EXPECT_EQ(total, expected);
}

TEST(WorkStealing, RunsAllTasks) {
  ThreadPool pool(4);
  WorkStealingScheduler scheduler(pool);
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> done(kTasks);
  std::vector<WorkStealingScheduler::Task> tasks;
  for (std::size_t i = 0; i < kTasks; ++i)
    tasks.emplace_back([&done, i](unsigned) { done[i].fetch_add(1); });
  const auto busy = scheduler.run(std::move(tasks));
  EXPECT_EQ(busy.size(), 4u);
  for (std::size_t i = 0; i < kTasks; ++i) ASSERT_EQ(done[i].load(), 1) << i;
}

TEST(WorkStealing, SkewedTasksGetStolen) {
  // One huge task plus many small ones: with stealing, small tasks must not
  // all wait behind the big one on its home thread.
  ThreadPool pool(4);
  WorkStealingScheduler scheduler(pool);
  std::atomic<std::uint64_t> work{0};
  std::vector<WorkStealingScheduler::Task> tasks;
  tasks.emplace_back([&](unsigned) {
    volatile std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < 20'000'000; ++i) x += i;
    work.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i)
    tasks.emplace_back([&](unsigned) { work.fetch_add(1); });
  const auto busy = scheduler.run(std::move(tasks));
  EXPECT_EQ(work.load(), 101u);
  // Busy time must be recorded for the thread that ran the big task.
  EXPECT_GT(*std::max_element(busy.begin(), busy.end()), 0.0);
}

TEST(WorkStealing, EmptyTaskListReturnsImmediately) {
  ThreadPool pool(2);
  WorkStealingScheduler scheduler(pool);
  const auto busy = scheduler.run({});
  EXPECT_EQ(busy.size(), 2u);
}

class BackendGuard {
 public:
  explicit BackendGuard(lotus::parallel::Backend b) { lotus::parallel::set_backend(b); }
  ~BackendGuard() { lotus::parallel::set_backend(lotus::parallel::Backend::kPool); }
};

TEST(OpenMPBackend, ParallelForCoversRange) {
  BackendGuard guard(lotus::parallel::Backend::kOpenMP);
  constexpr std::uint64_t kN = 50000;
  std::vector<std::atomic<int>> hits(kN);
  lotus::parallel::parallel_for(0, kN, 64,
      [&](unsigned t, std::uint64_t b, std::uint64_t e) {
        ASSERT_LT(t, lotus::parallel::max_parallelism());
        for (std::uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(OpenMPBackend, ReduceMatchesPoolBackend) {
  const auto body = [](std::uint64_t i) { return i * i; };
  std::uint64_t pool_sum = 0, omp_sum = 0;
  {
    BackendGuard guard(lotus::parallel::Backend::kPool);
    pool_sum = lotus::parallel::parallel_reduce_add<std::uint64_t>(0, 100000, 128, body);
  }
  {
    BackendGuard guard(lotus::parallel::Backend::kOpenMP);
    omp_sum = lotus::parallel::parallel_reduce_add<std::uint64_t>(0, 100000, 128, body);
  }
  EXPECT_EQ(pool_sum, omp_sum);
}

TEST(DefaultPool, RespectsThreadOverride) {
  lotus::parallel::set_num_threads(3);
  EXPECT_EQ(lotus::parallel::num_threads(), 3u);
  lotus::parallel::set_num_threads(0);  // back to hardware default
  EXPECT_GE(lotus::parallel::num_threads(), 1u);
}

TEST(Backend, SetBackendReportsAvailability) {
  // Selecting the pool always succeeds; selecting OpenMP succeeds exactly
  // when it is compiled in — and on failure the pool stays active instead of
  // a silent pretend-switch.
  EXPECT_TRUE(lotus::parallel::set_backend(lotus::parallel::Backend::kPool));
  const bool switched =
      lotus::parallel::set_backend(lotus::parallel::Backend::kOpenMP);
  EXPECT_EQ(switched, lotus::parallel::openmp_available());
  if (switched) {
    EXPECT_EQ(lotus::parallel::backend(), lotus::parallel::Backend::kOpenMP);
  } else {
    EXPECT_EQ(lotus::parallel::backend(), lotus::parallel::Backend::kPool);
  }
  EXPECT_TRUE(lotus::parallel::set_backend(lotus::parallel::Backend::kPool));
}

TEST(Backend, MaxParallelismBoundsThreadIndicesUnderBothBackends) {
  // Whatever the backend and pool size, every thread index parallel_for
  // hands to its body must be < max_parallelism() — per-thread accumulator
  // arrays are sized with it (parallel_reduce_add, kernels, analytics).
  for (const auto backend :
       {lotus::parallel::Backend::kPool, lotus::parallel::Backend::kOpenMP}) {
    if (backend == lotus::parallel::Backend::kOpenMP &&
        !lotus::parallel::openmp_available())
      continue;
    for (const unsigned threads : {1u, 2u, 5u}) {
      lotus::parallel::set_num_threads(threads);
      ASSERT_TRUE(lotus::parallel::set_backend(backend));
      const unsigned bound = lotus::parallel::max_parallelism();
      ASSERT_GE(bound, 1u);
      std::atomic<unsigned> max_seen{0};
      lotus::parallel::parallel_for(0, 20000, 16,
          [&](unsigned t, std::uint64_t, std::uint64_t) {
            unsigned prev = max_seen.load();
            while (t > prev && !max_seen.compare_exchange_weak(prev, t)) {
            }
          });
      EXPECT_LT(max_seen.load(), bound)
          << "backend="
          << (backend == lotus::parallel::Backend::kPool ? "pool" : "openmp")
          << " threads=" << threads;
    }
  }
  lotus::parallel::set_backend(lotus::parallel::Backend::kPool);
  lotus::parallel::set_num_threads(0);
}

TEST(ThreadPool, SurvivesThreadSpawnFailure) {
  // Every std::thread construction fails (thread_spawn fault site): the pool
  // must come up with just the inline master thread and still work.
  namespace fault = lotus::util::fault;
  {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kThreadSpawn, 1.0));
    lotus::parallel::ThreadPool pool(8);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<unsigned> runs{0};
    pool.execute([&](unsigned) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), 1u);
  }
  {
    // Only some spawns fail: the pool keeps the threads that did start and
    // reports the actual concurrency, and execute still runs once per thread.
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kThreadSpawn, 0.5, 3));
    lotus::parallel::ThreadPool pool(8);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_LE(pool.size(), 8u);
    std::atomic<unsigned> runs{0};
    pool.execute([&](unsigned) { runs.fetch_add(1); });
    EXPECT_EQ(runs.load(), pool.size());
  }
}

TEST(ThreadPool, SpawnFailurePoolStillCountsCorrectly) {
  namespace fault = lotus::util::fault;
  fault::ScopedFaultPlan plan(
      fault::single_site_plan(fault::Site::kThreadSpawn, 1.0));
  lotus::parallel::ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 1u);
  // A strided sum over the degraded pool covers the range exactly once:
  // thread t takes indices t, t+size, ... — with one thread, all of them.
  constexpr unsigned kN = 257;
  std::atomic<std::uint64_t> sum{0};
  pool.execute([&](unsigned t) {
    std::uint64_t local = 0;
    for (unsigned i = t; i < kN; i += pool.size()) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kN) * (kN - 1) / 2);
}

}  // namespace
