// The triangular H2H bit array: index math, atomicity, size accounting, and
// the Table-8 density/zero-cacheline metrics.
#include <gtest/gtest.h>

#include <thread>

#include "lotus/h2h_bitarray.hpp"

namespace {

using lotus::core::TriangularBitArray;

TEST(H2H, BitIndexMatchesPaperFormula) {
  // Sec. 4.2: bit h1(h1-1)/2 + h2 for h1 > h2 >= 0.
  EXPECT_EQ(TriangularBitArray::bit_index(1, 0), 0u);
  EXPECT_EQ(TriangularBitArray::bit_index(2, 0), 1u);
  EXPECT_EQ(TriangularBitArray::bit_index(2, 1), 2u);
  EXPECT_EQ(TriangularBitArray::bit_index(3, 0), 3u);
  EXPECT_EQ(TriangularBitArray::bit_index(65535, 65534),
            65535ull * 65534 / 2 + 65534);
}

TEST(H2H, BitIndexIsInjective) {
  // Distinct (h1, h2) pairs map to distinct bits for a small full range.
  constexpr std::uint32_t kHubs = 64;
  std::vector<bool> used(kHubs * (kHubs - 1) / 2, false);
  for (std::uint32_t h1 = 1; h1 < kHubs; ++h1)
    for (std::uint32_t h2 = 0; h2 < h1; ++h2) {
      const auto bit = TriangularBitArray::bit_index(h1, h2);
      ASSERT_LT(bit, used.size());
      ASSERT_FALSE(used[bit]);
      used[bit] = true;
    }
}

TEST(H2H, SetAndTest) {
  TriangularBitArray h2h(100);
  EXPECT_FALSE(h2h.test(5, 3));
  h2h.set_atomic(5, 3);
  EXPECT_TRUE(h2h.test(5, 3));
  EXPECT_FALSE(h2h.test(5, 2));
  EXPECT_FALSE(h2h.test(6, 3));
  EXPECT_EQ(h2h.count_set_bits(), 1u);
}

TEST(H2H, RowBaseReuse) {
  // row_base(h1) + h2 must equal bit_index(h1, h2) — the inner-loop
  // optimization of Sec. 4.4.1.
  for (std::uint32_t h1 = 1; h1 < 200; ++h1)
    for (std::uint32_t h2 = 0; h2 < h1; h2 += 7)
      EXPECT_EQ(TriangularBitArray::row_base(h1) + h2,
                TriangularBitArray::bit_index(h1, h2));
}

TEST(H2H, SizeMatchesPaperAt64K) {
  // 2^16 hubs -> 2^16(2^16-1)/2 bits ≈ 256 MB (Sec. 4.5 / Table 2).
  const std::uint64_t bits = 65536ull * 65535 / 2;
  TriangularBitArray h2h(65536);
  EXPECT_EQ(h2h.num_bits(), bits);
  EXPECT_NEAR(static_cast<double>(h2h.size_bytes()), 256.0 * 1024 * 1024,
              1024.0 * 1024);
}

TEST(H2H, ConcurrentSetsAllLand) {
  TriangularBitArray h2h(512);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&h2h, t] {
      for (std::uint32_t h1 = static_cast<std::uint32_t>(t) + 1; h1 < 512; h1 += 4)
        for (std::uint32_t h2 = 0; h2 < h1; ++h2) h2h.set_atomic(h1, h2);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h2h.count_set_bits(), 512ull * 511 / 2);
  EXPECT_DOUBLE_EQ(h2h.zero_cacheline_fraction(), 0.0);
}

TEST(H2H, ZeroCachelineFraction) {
  TriangularBitArray h2h(256);  // 32640 bits = 63.75 cachelines -> 64 lines
  EXPECT_DOUBLE_EQ(h2h.zero_cacheline_fraction(), 1.0);
  h2h.set_atomic(1, 0);  // first cacheline becomes non-zero
  EXPECT_NEAR(h2h.zero_cacheline_fraction(), 63.0 / 64.0, 1e-9);
}

TEST(H2H, DensityOfEmptyAndFull) {
  TriangularBitArray empty(128);
  EXPECT_EQ(empty.count_set_bits(), 0u);
  TriangularBitArray full(64);
  for (std::uint32_t h1 = 1; h1 < 64; ++h1)
    for (std::uint32_t h2 = 0; h2 < h1; ++h2) full.set_atomic(h1, h2);
  EXPECT_EQ(full.count_set_bits(), full.num_bits());
}

TEST(H2H, TestBitAndWordAddressAgree) {
  TriangularBitArray h2h(1000);
  h2h.set_atomic(999, 0);
  const auto bit = TriangularBitArray::bit_index(999, 0);
  EXPECT_TRUE(h2h.test_bit(bit));
  const auto* word = static_cast<const std::uint64_t*>(h2h.word_address(bit));
  EXPECT_NE(*word, 0u);
}

}  // namespace
