// tc::Engine: concurrent serving, the prepared-graph cache, and the unified
// query() surface it fronts (docs/API.md).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "tc/engine.hpp"
#include "tc/prepared.hpp"
#include "util/cancel.hpp"

namespace {

namespace g = lotus::graph;
namespace tc = lotus::tc;
namespace par = lotus::parallel;
namespace fs = std::filesystem;
using lotus::util::StatusCode;

/// Fresh, self-cleaning spill directory for one test.
class SpillDir {
 public:
  explicit SpillDir(const std::string& name)
      : dir_(fs::temp_directory_path() /
             (name + "_" + std::to_string(::getpid()))) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~SpillDir() { fs::remove_all(dir_); }
  [[nodiscard]] std::string str() const { return dir_.string(); }
  [[nodiscard]] std::size_t file_count() const {
    return static_cast<std::size_t>(
        std::distance(fs::directory_iterator(dir_), fs::directory_iterator{}));
  }

 private:
  fs::path dir_;
};

g::CsrGraph small_graph(std::uint64_t seed = 21) {
  return g::build_undirected(
      g::rmat({.scale = 9, .edge_factor = 8, .seed = seed}));
}

/// Unwrap a future that must have been attempted and succeeded.
tc::QueryResult get_ok(std::future<lotus::util::Expected<tc::QueryResult>> f) {
  auto outcome = f.get();
  EXPECT_TRUE(outcome.ok()) << outcome.status().to_string();
  tc::QueryResult result = outcome.take();
  EXPECT_TRUE(result.ok()) << result.status.to_string();
  return result;
}

TEST(Engine, CacheHitSkipsPreprocessing) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);

  tc::Engine engine({.num_drivers = 1});
  const auto first =
      get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_EQ(first.result.triangles, expected);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.result.preprocess_s, 0.0);  // the builder pays the build

  const auto second =
      get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_EQ(second.result.triangles, expected);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.preprocess_s, 0.0);  // hits ride for free

  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GT(stats.cache_bytes, 0u);
}

TEST(Engine, ForwardFamilySharesOneOrientedArtifact) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);

  tc::Engine engine({.num_drivers = 1});
  // First query builds the oriented CSR; every other Forward-family
  // algorithm must hit the same artifact.
  EXPECT_FALSE(
      get_ok(engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}))
          .cache_hit);
  for (const auto algorithm :
       {tc::Algorithm::kForwardSimd, tc::Algorithm::kForwardGallop,
        tc::Algorithm::kForwardHashed, tc::Algorithm::kForwardBitmap,
        tc::Algorithm::kEdgeParallel, tc::Algorithm::kBlocked}) {
    const auto r = get_ok(engine.submit({algorithm, "g", &graph, {}}));
    EXPECT_EQ(r.result.triangles, expected) << tc::name(algorithm);
    EXPECT_TRUE(r.cache_hit) << tc::name(algorithm);
    EXPECT_EQ(r.result.preprocess_s, 0.0) << tc::name(algorithm);
  }
  // lotus and adaptive share the other artifact kind.
  EXPECT_FALSE(
      get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}))
          .cache_hit);
  EXPECT_TRUE(
      get_ok(engine.submit({tc::Algorithm::kAdaptive, "g", &graph, {}}))
          .cache_hit);
  EXPECT_EQ(engine.stats().cache_entries, 2u);
}

TEST(Engine, UncacheableAlgorithmsAndEmptyKeysRunEndToEnd) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);

  tc::Engine engine({.num_drivers = 1});
  // kNone algorithms never touch the cache...
  const auto r1 =
      get_ok(engine.submit({tc::Algorithm::kNodeIterator, "g", &graph, {}}));
  EXPECT_EQ(r1.result.triangles, expected);
  EXPECT_FALSE(r1.cache_hit);
  // ...and an empty graph_key opts out for cacheable ones.
  const auto r2 =
      get_ok(engine.submit({tc::Algorithm::kLotus, "", &graph, {}}));
  EXPECT_EQ(r2.result.triangles, expected);
  EXPECT_FALSE(r2.cache_hit);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(Engine, ConcurrentMixedSubmitsMatchSerialQueries) {
  // The differential heart: N threads submit mixed-algorithm queries over
  // two graphs concurrently; every count must equal the serial tc::query()
  // answer. Swept over both parallel_for backends.
  const auto graph_a = small_graph(21);
  const auto graph_b = small_graph(22);
  const std::uint64_t expected_a = lotus::baselines::brute_force(graph_a);
  const std::uint64_t expected_b = lotus::baselines::brute_force(graph_b);
  const std::vector<tc::Algorithm> mix = {
      tc::Algorithm::kLotus, tc::Algorithm::kForwardMerge,
      tc::Algorithm::kAdaptive, tc::Algorithm::kForwardSimd,
      tc::Algorithm::kNodeIterator};

#if defined(__SANITIZE_THREAD__)
  constexpr bool tsan = true;
#else
  constexpr bool tsan = false;
#endif
  for (const par::Backend backend : {par::Backend::kPool, par::Backend::kOpenMP}) {
    if (backend == par::Backend::kOpenMP && (tsan || !par::openmp_available()))
      continue;
    ASSERT_TRUE(par::set_backend(backend));
    tc::Engine engine({.num_drivers = 2, .threads_per_query = 2});
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 5;
    std::vector<std::thread> submitters;
    std::atomic<int> failures{0};
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const bool use_a = (t + i) % 2 == 0;
          const auto algorithm =
              mix[static_cast<std::size_t>(t * kPerThread + i) % mix.size()];
          auto outcome = engine
                             .submit({algorithm, use_a ? "a" : "b",
                                      use_a ? &graph_a : &graph_b, {}})
                             .get();
          if (!outcome.ok() || !outcome.value().ok() ||
              outcome.value().result.triangles !=
                  (use_a ? expected_a : expected_b))
            failures.fetch_add(1);
        }
      });
    }
    for (auto& thread : submitters) thread.join();
    EXPECT_EQ(failures.load(), 0)
        << "backend=" << (backend == par::Backend::kPool ? "pool" : "openmp");
    const auto stats = engine.stats();
    EXPECT_EQ(stats.completed, kSubmitters * kPerThread);
    EXPECT_EQ(stats.rejected, 0u);
  }
  par::set_backend(par::Backend::kPool);
}

TEST(Engine, LruEvictionUnderTinyBudget) {
  const auto graph = small_graph();
  // Size the budget from the real artifacts: either fits alone, both don't,
  // so alternating kinds must deterministically evict.
  const std::uint64_t oriented_bytes =
      tc::PreparedGraph::build(tc::ArtifactKind::kOriented, graph).bytes();
  const std::uint64_t lotus_bytes =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph).bytes();
  tc::EngineOptions options;
  options.num_drivers = 1;
  options.cache_budget_bytes = std::max(oriented_bytes, lotus_bytes) +
                               std::min(oriented_bytes, lotus_bytes) / 2;

  tc::Engine tight(options);
  (void)get_ok(tight.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)get_ok(tight.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
  auto stats = tight.stats();
  EXPECT_EQ(stats.cache_evictions, 1u);  // the lotus artifact was LRU
  EXPECT_LE(stats.cache_bytes, options.cache_budget_bytes);

  // Re-querying the evicted kind misses and rebuilds (evicting the other).
  const auto rebuilt =
      get_ok(tight.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_FALSE(rebuilt.cache_hit);
  EXPECT_EQ(rebuilt.result.triangles, lotus::baselines::brute_force(graph));
  stats = tight.stats();
  EXPECT_EQ(stats.cache_evictions, 2u);
  EXPECT_LE(stats.cache_bytes, options.cache_budget_bytes);
}

TEST(Engine, SpillsOnEvictionAndRemapsInsteadOfRebuilding) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);
  const std::uint64_t oriented_bytes =
      tc::PreparedGraph::build(tc::ArtifactKind::kOriented, graph).bytes();
  const std::uint64_t lotus_bytes =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph).bytes();

  SpillDir spill_dir("lotus_engine_spill_test");
  tc::EngineOptions options;
  options.num_drivers = 1;
  options.cache_budget_bytes = std::max(oriented_bytes, lotus_bytes) +
                               std::min(oriented_bytes, lotus_bytes) / 2;
  options.spill_dir = spill_dir.str();
  {
    tc::Engine engine(options);
    (void)get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
    // Evicts (and now spills) the lotus artifact to make room.
    (void)get_ok(engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
    auto stats = engine.stats();
    EXPECT_EQ(stats.cache_evictions, 1u);
    EXPECT_EQ(stats.cache_spills, 1u);
    EXPECT_EQ(stats.cache_spilled_entries, 1u);
    EXPECT_EQ(spill_dir.file_count(), 1u);

    // The re-query remaps the spill file: served as a hit, no rebuild, and
    // the remapped entry charges ≈0 bytes, so nothing else gets evicted.
    const auto remapped =
        get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
    EXPECT_TRUE(remapped.cache_hit);
    EXPECT_EQ(remapped.result.triangles, expected);
    stats = engine.stats();
    EXPECT_EQ(stats.cache_remaps, 1u);
    EXPECT_EQ(stats.cache_evictions, 1u);  // the remap displaced nothing
    EXPECT_EQ(stats.cache_entries, 2u);

    // And a later hit on the remapped entry is an ordinary cache hit.
    const auto hit =
        get_ok(engine.submit({tc::Algorithm::kAdaptive, "g", &graph, {}}));
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.result.triangles, expected);

    const std::string json = engine.metrics().to_json_string();
    EXPECT_NE(json.find("\"cache_spills\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"cache_remaps\": 1"), std::string::npos);
  }
  // The destructor removes its spill files.
  EXPECT_EQ(spill_dir.file_count(), 0u);
}

TEST(Engine, InvalidateRemovesSpillFilesToo) {
  const auto graph = small_graph();
  const std::uint64_t oriented_bytes =
      tc::PreparedGraph::build(tc::ArtifactKind::kOriented, graph).bytes();
  const std::uint64_t lotus_bytes =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph).bytes();

  SpillDir spill_dir("lotus_engine_invalidate_spill_test");
  tc::EngineOptions options;
  options.num_drivers = 1;
  options.cache_budget_bytes = std::max(oriented_bytes, lotus_bytes) +
                               std::min(oriented_bytes, lotus_bytes) / 2;
  options.spill_dir = spill_dir.str();
  tc::Engine engine(options);
  (void)get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)get_ok(engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
  ASSERT_EQ(engine.stats().cache_spilled_entries, 1u);

  engine.invalidate("g");
  EXPECT_EQ(engine.stats().cache_spilled_entries, 0u);
  EXPECT_EQ(spill_dir.file_count(), 0u);

  // With the spill file gone, the next query really rebuilds.
  const auto rebuilt =
      get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_FALSE(rebuilt.cache_hit);
  EXPECT_EQ(engine.stats().cache_remaps, 0u);
}

TEST(Engine, InvalidateDropsArtifactsForOneKey) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  (void)get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)get_ok(engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
  (void)get_ok(engine.submit({tc::Algorithm::kLotus, "other", &graph, {}}));
  ASSERT_EQ(engine.stats().cache_entries, 3u);

  engine.invalidate("g");
  auto stats = engine.stats();
  EXPECT_EQ(stats.cache_entries, 1u);  // "other" survives
  EXPECT_EQ(stats.cache_evictions, 2u);

  const auto rebuilt =
      get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_FALSE(rebuilt.cache_hit);  // the artifact really was dropped
}

TEST(Engine, PerQueryCancelAndDeadline) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});

  lotus::util::CancelToken cancelled;
  cancelled.cancel();
  tc::QueryOptions cancel_options;
  cancel_options.cancel = &cancelled;
  auto outcome =
      engine.submit({tc::Algorithm::kLotus, "g", &graph, cancel_options})
          .get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(outcome.value().result.triangles, 0u);

  tc::QueryOptions deadline_options;
  deadline_options.deadline = lotus::util::Deadline::after(0.0);
  outcome =
      engine.submit({tc::Algorithm::kLotus, "g", &graph, deadline_options})
          .get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().status.code(), StatusCode::kDeadlineExceeded);

  // The engine (and its cache) must be fully usable afterwards.
  const auto clean = get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  EXPECT_EQ(clean.result.triangles, lotus::baselines::brute_force(graph));
}

TEST(Engine, ProfiledQueryCarriesEngineProvenance) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  tc::QueryOptions options;
  options.profile = true;
  (void)get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, options}));
  const auto hit =
      get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, options}));

  ASSERT_TRUE(hit.profile.has_value());
  const tc::ProfileReport& report = *hit.profile;
  EXPECT_TRUE(report.engine_served);
  EXPECT_TRUE(report.cache_hit);
  EXPECT_GE(report.queue_s, 0.0);
  EXPECT_EQ(report.result.preprocess_s, 0.0);
  // The schema-v4 engine section is present exactly because engine_served.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\": true"), std::string::npos);
  // Query-scoped counter provenance: totals only, no per-thread rows.
  EXPECT_TRUE(report.counters.threads.empty());
  if (lotus::obs::enabled()) {
    EXPECT_GT(report.counters[lotus::obs::Counter::kParallelChunks], 0u);
  }
}

TEST(Engine, EngineMetricsExportAggregates) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  (void)get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  (void)get_ok(engine.submit({tc::Algorithm::kLotus, "g", &graph, {}}));
  const std::string json = engine.metrics().to_json_string();
  EXPECT_NE(json.find("\"schema_version\": \"lotus-metrics/7\""),
            std::string::npos);
  EXPECT_NE(json.find("\"component\": \"tc-engine\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_lookups\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"engine_telemetry\""), std::string::npos);
  const std::string csv = engine.metrics().to_csv();
  EXPECT_NE(csv.find("engine,cache_hits,1"), std::string::npos);
  EXPECT_NE(csv.find("engine_telemetry,queries_recorded,2"), std::string::npos);
}

TEST(Engine, RejectsNullGraphWithoutAttempting) {
  tc::Engine engine({.num_drivers = 1});
  auto outcome = engine.submit({tc::Algorithm::kLotus, "g", nullptr, {}}).get();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.stats().rejected, 1u);
}

TEST(Engine, ShutdownFailsUnstartedQueriesCleanly) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);
  // One driver, a burst of queries, immediate destruction: every future must
  // resolve — either with a real (attempted) result or with the
  // never-attempted kCancelled rejection. Nothing may hang or leak.
  std::vector<std::future<lotus::util::Expected<tc::QueryResult>>> futures;
  {
    tc::Engine engine({.num_drivers = 1});
    for (int i = 0; i < 8; ++i)
      futures.push_back(
          engine.submit({tc::Algorithm::kForwardMerge, "g", &graph, {}}));
    futures.front().wait();  // ensure at least one query is attempted
  }
  int attempted = 0, rejected = 0;
  for (auto& future : futures) {
    auto outcome = future.get();
    if (outcome.ok()) {
      ++attempted;
      EXPECT_EQ(outcome.value().result.triangles, expected);
    } else {
      ++rejected;
      EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
    }
  }
  EXPECT_EQ(attempted + rejected, 8);
  EXPECT_GE(attempted, 1);  // the in-flight query completes
}

TEST(Engine, SyncQueryConvenienceWrapper) {
  const auto graph = small_graph();
  tc::Engine engine({.num_drivers = 1});
  const auto outcome =
      engine.query({tc::Algorithm::kAdaptive, "g", &graph, {}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().result.triangles,
            lotus::baselines::brute_force(graph));
}

TEST(PreparedGraph, QueryPreparedMatchesEndToEnd) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);
  const auto oriented = tc::PreparedGraph::build(tc::ArtifactKind::kOriented,
                                                 graph);
  EXPECT_GT(oriented.bytes(), 0u);
  EXPECT_GT(oriented.build_s(), 0.0);
  for (const auto algorithm :
       {tc::Algorithm::kForwardMerge, tc::Algorithm::kForwardSimd,
        tc::Algorithm::kBlocked}) {
    const auto r = tc::query_prepared(algorithm, graph, oriented);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok()) << r.value().status.to_string();
    EXPECT_EQ(r.value().result.triangles, expected) << tc::name(algorithm);
    EXPECT_EQ(r.value().result.preprocess_s, 0.0);
  }
  const auto lotus_artifact =
      tc::PreparedGraph::build(tc::ArtifactKind::kLotus, graph);
  for (const auto algorithm :
       {tc::Algorithm::kLotus, tc::Algorithm::kAdaptive}) {
    const auto r = tc::query_prepared(algorithm, graph, lotus_artifact);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok());
    EXPECT_EQ(r.value().result.triangles, expected) << tc::name(algorithm);
  }
}

TEST(PreparedGraph, SpillRoundTripServesIdenticalCounts) {
  const auto graph = small_graph();
  const auto expected = lotus::baselines::brute_force(graph);
  SpillDir dir("lotus_prepared_spill_test");
  for (const auto kind :
       {tc::ArtifactKind::kOriented, tc::ArtifactKind::kLotus}) {
    const auto built = tc::PreparedGraph::build(kind, graph);
    const std::string path = dir.str() + "/artifact.lpa";
    ASSERT_TRUE(built.save_s(path).ok());

    auto loaded = tc::PreparedGraph::load_mapped_s(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    const tc::PreparedGraph remapped = loaded.take();
    EXPECT_EQ(remapped.kind(), built.kind());
    EXPECT_EQ(remapped.use_lotus(), built.use_lotus());
    EXPECT_EQ(remapped.build_s(), built.build_s());
    // Zero-copy: the topology lives in the mapping, not on the heap.
    EXPECT_EQ(remapped.bytes(), 0u);

    const auto algorithm = kind == tc::ArtifactKind::kOriented
                               ? tc::Algorithm::kForwardMerge
                               : tc::Algorithm::kLotus;
    const auto r = tc::query_prepared(algorithm, graph, remapped);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok()) << r.value().status.to_string();
    EXPECT_EQ(r.value().result.triangles, expected);
  }
}

TEST(PreparedGraph, SpillRejectsNoneKindAndCorruptFiles) {
  SpillDir dir("lotus_prepared_spill_reject_test");
  const tc::PreparedGraph none;
  EXPECT_EQ(none.save_s(dir.str() + "/none.lpa").code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(tc::PreparedGraph::load_mapped_s(dir.str() + "/absent.lpa")
                .status()
                .code(),
            StatusCode::kIoError);

  std::FILE* f = std::fopen((dir.str() + "/garbage.lpa").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a spill artifact", f);
  std::fclose(f);
  EXPECT_EQ(tc::PreparedGraph::load_mapped_s(dir.str() + "/garbage.lpa")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PreparedGraph, ArtifactKindMismatchIsInvalidArgument) {
  const auto graph = small_graph();
  const auto oriented =
      tc::PreparedGraph::build(tc::ArtifactKind::kOriented, graph);
  const auto r = tc::query_prepared(tc::Algorithm::kLotus, graph, oriented);
  ASSERT_TRUE(r.ok());  // attempted, failed during execution
  EXPECT_EQ(r.value().status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value().result.triangles, 0u);
}

TEST(PreparedGraph, ArtifactKindTableMatchesAlgorithmFamilies) {
  EXPECT_EQ(tc::artifact_kind(tc::Algorithm::kLotus), tc::ArtifactKind::kLotus);
  EXPECT_EQ(tc::artifact_kind(tc::Algorithm::kAdaptive),
            tc::ArtifactKind::kLotus);
  for (const auto algorithm :
       {tc::Algorithm::kForwardMerge, tc::Algorithm::kForwardGallop,
        tc::Algorithm::kForwardSimd, tc::Algorithm::kForwardHashed,
        tc::Algorithm::kForwardBitmap, tc::Algorithm::kEdgeParallel,
        tc::Algorithm::kBlocked})
    EXPECT_EQ(tc::artifact_kind(algorithm), tc::ArtifactKind::kOriented)
        << tc::name(algorithm);
  for (const auto algorithm :
       {tc::Algorithm::kEdgeIterator, tc::Algorithm::kNodeIterator,
        tc::Algorithm::kAyz, tc::Algorithm::kSpGemmMasked})
    EXPECT_EQ(tc::artifact_kind(algorithm), tc::ArtifactKind::kNone)
        << tc::name(algorithm);
}

}  // namespace
