// Differential oracles for the typed analytics surface (ctest label
// `analytics`): every AnalyticKind served by tc::query()/tc::Engine is
// checked against a from-scratch brute-force implementation on corpus
// graphs, plus the resilience envelope (cancel / deadline / budget), the
// Expected-side validation contract, and the Engine's cross-analytic
// artifact sharing — the tentpole property that a k-clique query after a
// triangle count is a cache hit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "graph/generators.hpp"
#include "tc/engine.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace {

namespace g = lotus::graph;
namespace tc = lotus::tc;
using g::VertexId;
using lotus::util::Deadline;
using lotus::util::StatusCode;

// ---------- brute-force oracles --------------------------------------------

bool has_edge(const g::CsrGraph& graph, VertexId u, VertexId v) {
  const auto ns = graph.neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

/// All k-cliques by ordered extension over ORIGINAL vertex IDs; quadratic in
/// places and fine for corpus-sized graphs.
void enumerate_cliques(const g::CsrGraph& graph, unsigned k,
                       std::vector<VertexId>& members, VertexId next,
                       const std::function<void(const std::vector<VertexId>&)>& emit) {
  if (members.size() == k) {
    emit(members);
    return;
  }
  for (VertexId v = next; v < graph.num_vertices(); ++v) {
    bool adjacent_to_all = true;
    for (const VertexId m : members)
      if (!has_edge(graph, m, v)) {
        adjacent_to_all = false;
        break;
      }
    if (!adjacent_to_all) continue;
    members.push_back(v);
    enumerate_cliques(graph, k, members, v + 1, emit);
    members.pop_back();
  }
}

struct CliqueOracle {
  std::uint64_t cliques = 0;
  std::uint64_t hub_cliques = 0;
};

/// Count k-cliques and those touching a hub, where hubs are the vertices the
/// degree-descending permutation maps below `hub_count` — the exact hub
/// definition the mining layer inherits from the prepared artifact.
CliqueOracle clique_oracle(const g::CsrGraph& graph, unsigned k,
                           VertexId hub_count) {
  const auto new_id = g::degree_descending_permutation(graph);
  CliqueOracle oracle;
  std::vector<VertexId> members;
  enumerate_cliques(graph, k, members, 0,
                    [&](const std::vector<VertexId>& clique) {
                      ++oracle.cliques;
                      for (const VertexId m : clique)
                        if (new_id[m] < hub_count) {
                          ++oracle.hub_cliques;
                          break;
                        }
                    });
  return oracle;
}

/// Per-vertex triangle counts by neighborhood intersection.
std::vector<std::uint64_t> local_counts_oracle(const g::CsrGraph& graph) {
  std::vector<std::uint64_t> counts(graph.num_vertices(), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    for (const VertexId u : graph.neighbors(v)) {
      if (u >= v) break;  // sorted lists: count each edge once
      for (const VertexId w : graph.neighbors(u)) {
        if (w >= u) break;
        if (has_edge(graph, v, w)) {
          ++counts[v];
          ++counts[u];
          ++counts[w];
        }
      }
    }
  return counts;
}

struct TrussOracle {
  std::uint32_t max_k = 0;
  std::uint64_t edges_in_max_truss = 0;
  /// trussness value -> number of edges (order-invariant form).
  std::map<std::uint32_t, std::uint64_t> histogram;
};

/// Textbook peeling over an adjacency-set copy: for rising k, delete edges
/// with fewer than k-2 common neighbors until stable; a deleted edge's
/// trussness is the last k it survived.
TrussOracle truss_oracle(const g::CsrGraph& graph) {
  std::vector<std::set<VertexId>> adj(graph.num_vertices());
  std::set<std::pair<VertexId, VertexId>> alive;
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    for (const VertexId u : graph.neighbors(v)) {
      adj[v].insert(u);
      if (u < v) alive.insert({u, v});
    }

  TrussOracle oracle;
  auto support = [&](VertexId u, VertexId v) {
    std::uint64_t common = 0;
    for (const VertexId w : adj[u])
      if (adj[v].count(w) != 0) ++common;
    return common;
  };
  for (std::uint32_t k = 3; !alive.empty(); ++k) {
    bool removed = true;
    while (removed) {
      removed = false;
      for (auto it = alive.begin(); it != alive.end();) {
        const auto [u, v] = *it;
        if (support(u, v) < k - 2) {
          oracle.histogram[k - 1] += 1;
          adj[u].erase(v);
          adj[v].erase(u);
          it = alive.erase(it);
          removed = true;
        } else {
          ++it;
        }
      }
    }
    if (!alive.empty()) {
      oracle.max_k = k;
      oracle.edges_in_max_truss = alive.size();
    }
  }
  // Every edge is assigned exactly once, at the peel that removes it.
  return oracle;
}

std::uint64_t wedges_oracle(const g::CsrGraph& graph) {
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint64_t d = graph.degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

// ---------- harness ---------------------------------------------------------

tc::QueryResult run(tc::Algorithm algorithm, const g::CsrGraph& graph,
                    const tc::AnalyticsRequest& request,
                    tc::QueryOptions options = {}) {
  options.analytic = request;
  auto attempted = tc::query(algorithm, graph, options);
  EXPECT_TRUE(attempted.ok()) << attempted.status().to_string();
  return attempted.take();
}

std::vector<g::CsrGraph> corpus() {
  std::vector<g::CsrGraph> graphs;
  graphs.push_back(g::build_undirected(g::complete(10)));
  graphs.push_back(g::build_undirected(g::wheel(12)));
  graphs.push_back(g::build_undirected(
      g::rmat({.scale = 8, .edge_factor = 8, .seed = 71})));
  graphs.push_back(g::build_undirected(
      g::erdos_renyi(300, 12.0, 19)));
  return graphs;
}

/// Substrate algorithms worth sweeping: one per artifact family.
const tc::Algorithm kSubstrates[] = {
    tc::Algorithm::kLotus, tc::Algorithm::kAdaptive,
    tc::Algorithm::kForwardMerge};

// ---------- k-clique --------------------------------------------------------

TEST(AnalyticsKClique, MatchesEnumerationOracleK3to5) {
  for (const auto& graph : corpus()) {
    for (unsigned k = 3; k <= 5; ++k) {
      tc::AnalyticsRequest request;
      request.kind = tc::AnalyticKind::kKClique;
      request.k = k;
      request.hub_fraction = 0.05;
      const auto hub_count = static_cast<VertexId>(std::max<double>(
          1.0, std::ceil(request.hub_fraction * graph.num_vertices())));
      const CliqueOracle oracle = clique_oracle(graph, k, hub_count);
      for (const auto algorithm : kSubstrates) {
        const auto result = run(algorithm, graph, request);
        ASSERT_TRUE(result.ok()) << result.status.to_string();
        EXPECT_EQ(result.result.analytics.count, oracle.cliques)
            << tc::name(algorithm) << " k=" << k;
        EXPECT_EQ(result.result.analytics.hub_count, oracle.hub_cliques)
            << tc::name(algorithm) << " k=" << k;
        EXPECT_EQ(result.result.analytics.k, k);
        // The TC adapter mirrors the count only at k = 3.
        EXPECT_EQ(result.result.triangles,
                  k == 3 ? oracle.cliques : std::uint64_t{0});
      }
    }
  }
}

TEST(AnalyticsKClique, TriangleKindAndK3CliqueAgree) {
  const auto graph = g::build_undirected(
      g::rmat({.scale = 9, .edge_factor = 8, .seed = 23}));
  const std::uint64_t expected = lotus::baselines::brute_force(graph);
  tc::AnalyticsRequest request;
  request.kind = tc::AnalyticKind::kKClique;
  request.k = 3;
  EXPECT_EQ(run(tc::Algorithm::kForwardMerge, graph, request)
                .result.analytics.count,
            expected);
  EXPECT_EQ(run(tc::Algorithm::kForwardMerge, graph, {}).result.triangles,
            expected);
}

// ---------- k-truss ---------------------------------------------------------

TEST(AnalyticsKTruss, SummaryAndHistogramMatchPeelingOracle) {
  for (const auto& graph : corpus()) {
    const TrussOracle oracle = truss_oracle(graph);
    tc::AnalyticsRequest request;
    request.kind = tc::AnalyticKind::kKTruss;
    for (const auto algorithm : kSubstrates) {
      const auto result = run(algorithm, graph, request);
      ASSERT_TRUE(result.ok()) << result.status.to_string();
      const auto& analytics = result.result.analytics;
      EXPECT_EQ(analytics.truss.max_k, oracle.max_k) << tc::name(algorithm);
      EXPECT_EQ(analytics.truss.edges_in_max_truss, oracle.edges_in_max_truss)
          << tc::name(algorithm);
      // The per-edge array depends on the artifact's edge order; compare the
      // order-invariant histogram instead.
      ASSERT_EQ(analytics.edge_trussness.size(), graph.num_edges() / 2);
      std::map<std::uint32_t, std::uint64_t> histogram;
      for (const std::uint32_t t : analytics.edge_trussness) histogram[t] += 1;
      EXPECT_EQ(histogram, oracle.histogram) << tc::name(algorithm);
      // No triangle count is defined for a truss decomposition.
      EXPECT_EQ(result.result.triangles, 0u);
    }
  }
}

TEST(AnalyticsKTruss, SummaryGranularitySkipsTheEdgeArray) {
  const auto graph = g::build_undirected(g::wheel(16));
  tc::AnalyticsRequest request;
  request.kind = tc::AnalyticKind::kKTruss;
  request.granularity = tc::OutputGranularity::kSummary;
  const auto result = run(tc::Algorithm::kForwardMerge, graph, request);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.result.analytics.edge_trussness.empty());
  EXPECT_EQ(result.result.analytics.truss.max_k, truss_oracle(graph).max_k);
}

// ---------- local counts ----------------------------------------------------

TEST(AnalyticsLocalCounts, PerVertexCountsMatchOracleByOriginalId) {
  for (const auto& graph : corpus()) {
    const auto oracle = local_counts_oracle(graph);
    const std::uint64_t corner_sum =
        std::accumulate(oracle.begin(), oracle.end(), std::uint64_t{0});
    tc::AnalyticsRequest request;
    request.kind = tc::AnalyticKind::kLocalCounts;
    for (const auto algorithm : kSubstrates) {
      const auto result = run(algorithm, graph, request);
      ASSERT_TRUE(result.ok()) << result.status.to_string();
      EXPECT_EQ(result.result.analytics.vertex_counts, oracle)
          << tc::name(algorithm);
      EXPECT_EQ(result.result.analytics.count, corner_sum / 3);
      EXPECT_EQ(result.result.triangles, corner_sum / 3);
    }
  }
}

TEST(AnalyticsLocalCounts, SummaryGranularityKeepsTheCount) {
  const auto graph = g::build_undirected(
      g::rmat({.scale = 8, .edge_factor = 8, .seed = 5}));
  tc::AnalyticsRequest request;
  request.kind = tc::AnalyticKind::kLocalCounts;
  request.granularity = tc::OutputGranularity::kSummary;
  const auto result = run(tc::Algorithm::kLotus, graph, request);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.result.analytics.vertex_counts.empty());
  EXPECT_EQ(result.result.analytics.count,
            lotus::baselines::brute_force(graph));
}

// ---------- clustering ------------------------------------------------------

TEST(AnalyticsClustering, CoefficientsAndSummaryMatchOracle) {
  for (const auto& graph : corpus()) {
    const auto counts = local_counts_oracle(graph);
    const std::uint64_t corner_sum =
        std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
    const std::uint64_t wedges = wedges_oracle(graph);
    tc::AnalyticsRequest request;
    request.kind = tc::AnalyticKind::kClustering;
    for (const auto algorithm : kSubstrates) {
      const auto result = run(algorithm, graph, request);
      ASSERT_TRUE(result.ok()) << result.status.to_string();
      const auto& analytics = result.result.analytics;
      EXPECT_EQ(analytics.count, corner_sum / 3);
      EXPECT_EQ(analytics.clustering.wedges, wedges);
      if (wedges > 0) {
        EXPECT_NEAR(analytics.clustering.global_transitivity,
                    static_cast<double>(corner_sum) / static_cast<double>(wedges),
                    1e-12);
      }
      ASSERT_EQ(analytics.vertex_coefficients.size(), graph.num_vertices());
      double mean = 0.0;
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        const std::uint64_t d = graph.degree(v);
        const double expected =
            d < 2 ? 0.0
                  : 2.0 * static_cast<double>(counts[v]) /
                        (static_cast<double>(d) * static_cast<double>(d - 1));
        EXPECT_NEAR(analytics.vertex_coefficients[v], expected, 1e-12)
            << tc::name(algorithm) << " v=" << v;
        mean += expected;
      }
      if (graph.num_vertices() > 0) {
        EXPECT_NEAR(analytics.clustering.avg_clustering,
                    mean / static_cast<double>(graph.num_vertices()), 1e-9);
      }
    }
  }
}

// ---------- validation (Expected side) --------------------------------------

TEST(AnalyticsValidation, MalformedRequestsAreNeverAttempted) {
  const auto graph = g::build_undirected(g::complete(6));

  tc::QueryOptions too_small;
  too_small.analytic.kind = tc::AnalyticKind::kKClique;
  too_small.analytic.k = 2;
  auto attempted = tc::query(tc::Algorithm::kLotus, graph, too_small);
  ASSERT_FALSE(attempted.ok());
  EXPECT_EQ(attempted.status().code(), StatusCode::kInvalidArgument);

  tc::QueryOptions bad_fraction;
  bad_fraction.analytic.kind = tc::AnalyticKind::kKClique;
  bad_fraction.analytic.hub_fraction = 1.5;
  attempted = tc::query(tc::Algorithm::kLotus, graph, bad_fraction);
  ASSERT_FALSE(attempted.ok());
  EXPECT_EQ(attempted.status().code(), StatusCode::kInvalidArgument);

  // No reusable artifact behind the node iterator: analytics are rejected,
  // plain triangle counting still works.
  tc::QueryOptions no_artifact;
  no_artifact.analytic.kind = tc::AnalyticKind::kKTruss;
  attempted = tc::query(tc::Algorithm::kNodeIterator, graph, no_artifact);
  ASSERT_FALSE(attempted.ok());
  EXPECT_EQ(attempted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(tc::query(tc::Algorithm::kNodeIterator, graph).ok());
}

TEST(AnalyticsValidation, NameParseRoundTrip) {
  for (const auto kind : tc::all_analytics()) {
    const auto parsed = tc::parse_analytic(tc::analytic_name(kind));
    ASSERT_TRUE(parsed.has_value()) << tc::analytic_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(tc::parse_analytic("not-an-analytic").has_value());
  EXPECT_EQ(tc::analytic_labels().size(), tc::all_analytics().size());
}

// ---------- resilience envelope ---------------------------------------------

TEST(AnalyticsResilience, PreCancelledTokenClearsEveryPayload) {
  const auto graph = g::build_undirected(
      g::rmat({.scale = 9, .edge_factor = 8, .seed = 3}));
  lotus::util::CancelToken token;
  token.cancel();
  for (const auto kind :
       {tc::AnalyticKind::kKClique, tc::AnalyticKind::kKTruss,
        tc::AnalyticKind::kLocalCounts, tc::AnalyticKind::kClustering}) {
    tc::AnalyticsRequest request;
    request.kind = kind;
    tc::QueryOptions options;
    options.cancel = &token;
    const auto result =
        run(tc::Algorithm::kForwardMerge, graph, request, options);
    ASSERT_FALSE(result.ok()) << tc::analytic_name(kind);
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
    // clear_payload keeps the analytic identity and zeroes everything else.
    EXPECT_EQ(result.result.analytics.kind, kind);
    EXPECT_EQ(result.result.triangles, 0u);
    EXPECT_EQ(result.result.analytics.count, 0u);
    EXPECT_TRUE(result.result.analytics.vertex_counts.empty());
    EXPECT_TRUE(result.result.analytics.vertex_coefficients.empty());
    EXPECT_TRUE(result.result.analytics.edge_trussness.empty());
  }
}

TEST(AnalyticsResilience, ZeroDeadlineExpiresAnalytics) {
  const auto graph = g::build_undirected(
      g::rmat({.scale = 9, .edge_factor = 8, .seed = 4}));
  tc::AnalyticsRequest request;
  request.kind = tc::AnalyticKind::kKClique;
  request.k = 4;
  tc::QueryOptions options;
  options.deadline = Deadline::after(0.0);
  const auto result = run(tc::Algorithm::kLotus, graph, request, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(AnalyticsResilience, TinyBudgetWithoutDegradationIsOutOfMemory) {
  const auto graph = g::build_undirected(
      g::rmat({.scale = 10, .edge_factor = 8, .seed = 6}));
  for (const auto kind :
       {tc::AnalyticKind::kKTruss, tc::AnalyticKind::kLocalCounts}) {
    tc::AnalyticsRequest request;
    request.kind = kind;
    tc::QueryOptions options;
    options.memory_budget_bytes = 256;  // below any per-vertex/edge state
    options.allow_degradation = false;
    const auto result = run(tc::Algorithm::kLotus, graph, request, options);
    ASSERT_FALSE(result.ok()) << tc::analytic_name(kind);
    EXPECT_EQ(result.status.code(), StatusCode::kOutOfMemory)
        << tc::analytic_name(kind);
    EXPECT_EQ(result.result.triangles, 0u);
  }
}

// ---------- engine: one artifact, many analytics -----------------------------

TEST(AnalyticsEngine, CrossAnalyticQueriesShareOneOrientedArtifact) {
  const auto graph = g::build_undirected(
      g::rmat({.scale = 10, .edge_factor = 8, .seed = 29}));
  const std::uint64_t expected = lotus::baselines::brute_force(graph);

  tc::Engine engine;
  // 1. Plain TC on the Forward family builds the kOriented artifact (miss).
  const auto first =
      engine.query({tc::Algorithm::kForwardMerge, "shared", &graph, {}});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().ok()) << first.value().status.to_string();
  EXPECT_EQ(first.value().result.triangles, expected);
  EXPECT_FALSE(first.value().cache_hit);

  // 2..4. Every other analytic on the same key must be a cache hit: the
  // cache key is the artifact kind, never the analytic.
  const tc::AnalyticKind kinds[] = {tc::AnalyticKind::kKClique,
                                    tc::AnalyticKind::kKTruss,
                                    tc::AnalyticKind::kLocalCounts,
                                    tc::AnalyticKind::kClustering};
  for (const auto kind : kinds) {
    tc::QueryOptions options;
    options.analytic.kind = kind;
    options.analytic.k = 4;
    const auto served = engine.query(
        {tc::Algorithm::kForwardMerge, "shared", &graph, options});
    ASSERT_TRUE(served.ok());
    ASSERT_TRUE(served.value().ok()) << served.value().status.to_string();
    EXPECT_TRUE(served.value().cache_hit) << tc::analytic_name(kind);
    EXPECT_EQ(served.value().result.analytics.kind, kind);
  }

  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 4u);

  // Differential check against the direct path while we are here.
  tc::QueryOptions clique;
  clique.analytic.kind = tc::AnalyticKind::kKClique;
  clique.analytic.k = 4;
  const auto direct = tc::query(tc::Algorithm::kForwardMerge, graph, clique);
  const auto served = engine.query(
      {tc::Algorithm::kForwardMerge, "shared", &graph, clique});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value().result.analytics.count,
            direct.value().result.analytics.count);
}

TEST(AnalyticsEngine, LotusTriangleArtifactDoesNotServeDagAnalytics) {
  // kLotus TC caches a kLotus artifact; a k-clique on the same key needs the
  // kOriented artifact — a miss the first time, a hit the second.
  const auto graph = g::build_undirected(
      g::rmat({.scale = 9, .edge_factor = 8, .seed = 37}));
  tc::Engine engine;
  ASSERT_TRUE(engine.query({tc::Algorithm::kLotus, "g", &graph, {}}).ok());

  tc::QueryOptions clique;
  clique.analytic.kind = tc::AnalyticKind::kKClique;
  const auto miss = engine.query({tc::Algorithm::kLotus, "g", &graph, clique});
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().cache_hit);
  const auto hit = engine.query({tc::Algorithm::kLotus, "g", &graph, clique});
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);

  // Per-vertex analytics ride the kLotus artifact instead: immediate hit.
  tc::QueryOptions local;
  local.analytic.kind = tc::AnalyticKind::kLocalCounts;
  const auto lotus_hit =
      engine.query({tc::Algorithm::kLotus, "g", &graph, local});
  ASSERT_TRUE(lotus_hit.ok());
  EXPECT_TRUE(lotus_hit.value().cache_hit);
}

TEST(AnalyticsEngine, SubmitRejectsMalformedAnalyticsUpFront) {
  const auto graph = g::build_undirected(g::complete(5));
  tc::Engine engine;
  tc::QueryOptions options;
  options.analytic.kind = tc::AnalyticKind::kKClique;
  options.analytic.k = 1;
  const auto rejected =
      engine.query({tc::Algorithm::kLotus, "g", &graph, options});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.stats().rejected, 1u);
}

}  // namespace
