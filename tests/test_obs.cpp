// Observability layer: PhaseTracer span trees, per-thread counters, JSON
// round-trips, metrics export, and the profiled-query regression that span
// totals reconstruct the end-to-end time.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "tc/api.hpp"

namespace {

namespace g = lotus::graph;
namespace obs = lotus::obs;
namespace tc = lotus::tc;

using obs::JsonValue;
using obs::PhaseTracer;

TEST(PhaseTracer, NestingAndOrdering) {
  PhaseTracer tracer;
  const auto outer = tracer.begin("outer");
  const auto first = tracer.begin("first");
  tracer.end();
  const auto second = tracer.begin("second");
  tracer.end();
  const auto grafted = tracer.leaf("grafted", 1.5);
  tracer.end();

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[outer].name, "outer");
  EXPECT_EQ(spans[outer].parent, PhaseTracer::npos);
  EXPECT_EQ(spans[outer].depth, 0u);
  EXPECT_FALSE(spans[outer].open);

  for (std::size_t child : {first, second, grafted}) {
    EXPECT_EQ(spans[child].parent, outer);
    EXPECT_EQ(spans[child].depth, 1u);
  }
  EXPECT_EQ(tracer.children(outer), (std::vector<std::size_t>{first, second, grafted}));
  EXPECT_EQ(tracer.children(PhaseTracer::npos), std::vector<std::size_t>{outer});

  EXPECT_DOUBLE_EQ(spans[grafted].seconds, 1.5);
  // Children started within the parent and the parent covers them.
  EXPECT_GE(spans[first].start_s, spans[outer].start_s);
  EXPECT_LE(spans[second].start_s + spans[second].seconds,
            spans[outer].start_s + spans[outer].seconds + 1e-9);
}

TEST(PhaseTracer, FindAndTotals) {
  PhaseTracer tracer;
  tracer.leaf("phase", 0.25);
  tracer.leaf("phase", 0.5);
  tracer.leaf("other", 1.0);
  ASSERT_NE(tracer.find("phase"), nullptr);
  EXPECT_DOUBLE_EQ(tracer.find("phase")->seconds, 0.25);  // first in order
  EXPECT_DOUBLE_EQ(tracer.total_s("phase"), 0.75);
  EXPECT_DOUBLE_EQ(tracer.total_s("absent"), 0.0);
  EXPECT_EQ(tracer.find("absent"), nullptr);
}

TEST(PhaseTracer, NotesAttachToInnermostOpenSpan) {
  PhaseTracer tracer;
  tracer.begin("outer");
  tracer.begin("inner");
  tracer.note("k", std::uint64_t{7});
  tracer.end();
  tracer.note("outer_key", "v");
  tracer.end();
  tracer.note("post", 1.25);  // no open span: goes to the last span created

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(spans[1].notes.size(), 2u);
  EXPECT_EQ(spans[1].notes[0], (std::pair<std::string, std::string>{"k", "7"}));
  EXPECT_EQ(spans[1].notes[1].first, "post");
  ASSERT_EQ(spans[0].notes.size(), 1u);
  EXPECT_EQ(spans[0].notes[0].first, "outer_key");
}

TEST(PhaseTracer, ScopedSpanToleratesNullTracer) {
  { lotus::obs::ScopedSpan span(nullptr, "nothing"); }
  PhaseTracer tracer;
  { lotus::obs::ScopedSpan span(&tracer, "something"); }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_FALSE(tracer.spans()[0].open);
}

TEST(Counters, AggregatesAcrossPoolThreads) {
  if (!obs::enabled()) GTEST_SKIP() << "built with LOTUS_OBS=0";
  obs::reset_counters();
  lotus::parallel::ThreadPool pool(4);
  pool.execute([](unsigned thread) {
    obs::count(obs::Counter::kFruitlessSearches, thread + 1);
  });
  const auto snapshot = obs::counters_snapshot();
  EXPECT_EQ(snapshot[obs::Counter::kFruitlessSearches], 1u + 2u + 3u + 4u);

  // Per-thread rows are keyed by ascending pool index and sum to the total.
  std::uint64_t per_thread_sum = 0;
  int last_index = -1;
  for (const auto& row : snapshot.threads) {
    EXPECT_GT(row.thread, last_index);
    last_index = row.thread;
    per_thread_sum += row[obs::Counter::kFruitlessSearches];
  }
  EXPECT_EQ(per_thread_sum, snapshot[obs::Counter::kFruitlessSearches]);

  obs::reset_counters();
  EXPECT_EQ(obs::counters_snapshot()[obs::Counter::kFruitlessSearches], 0u);
}

TEST(Counters, SchedulerCountsExecutedTasks) {
  if (!obs::enabled()) GTEST_SKIP() << "built with LOTUS_OBS=0";
  obs::reset_counters();
  lotus::parallel::ThreadPool pool(2);
  lotus::parallel::WorkStealingScheduler scheduler(pool);
  std::vector<lotus::parallel::WorkStealingScheduler::Task> tasks;
  for (int i = 0; i < 37; ++i) tasks.emplace_back([](unsigned) {});
  scheduler.run(std::move(tasks));
  const auto snapshot = obs::counters_snapshot();
  EXPECT_EQ(snapshot[obs::Counter::kTasksExecuted], 37u);
  EXPECT_GT(snapshot[obs::Counter::kSchedBusyNs] + snapshot[obs::Counter::kSchedIdleNs], 0u);
}

TEST(Json, RoundTripPreservesExactValues) {
  JsonValue doc;
  doc.set("big", (std::uint64_t{1} << 62) + 3);
  doc.set("negative", std::int64_t{-42});
  doc.set("pi", 3.25);
  doc.set("flag", true);
  doc.set("nothing", JsonValue());
  doc.set("text", "line\n\"quoted\"\ttab\\slash");
  JsonValue::Array list;
  list.emplace_back(1);
  list.emplace_back("two");
  JsonValue nested;
  nested.set("inner", std::uint64_t{7});
  list.emplace_back(nested);
  doc.set("list", std::move(list));

  for (int indent : {-1, 0, 2}) {
    const JsonValue reparsed = JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(reparsed, doc) << "indent=" << indent;
    EXPECT_EQ(reparsed.find("big")->as_uint(), (std::uint64_t{1} << 62) + 3);
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, EscapesControlCharactersQuotesAndBackslashes) {
  // Every byte below 0x20 must be escaped — raw control characters in the
  // output would make the document unparseable by strict readers.
  std::string hostile = "quote:\" backslash:\\ ";
  for (char c = 1; c < 0x20; ++c) hostile.push_back(c);
  JsonValue doc;
  doc.set(hostile, hostile);

  const std::string dumped = doc.dump();
  for (const char c : dumped)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character in JSON output";
  const JsonValue reparsed = JsonValue::parse(dumped);
  EXPECT_EQ(reparsed.find(hostile)->as_string(), hostile);
}

TEST(Metrics, CsvEscapesCommasQuotesAndControlCharacters) {
  obs::MetricsRegistry registry;
  registry.set_meta("graph", "a,b\"c\nd\re");  // comma, quote, LF, CR
  PhaseTracer tracer;
  tracer.leaf("phase,with\"comma", 0.5);
  tracer.note("key", "multi\nline");
  registry.set_trace(tracer);

  const std::string csv = registry.to_csv();
  // RFC-4180: the hostile value arrives quoted with doubled inner quotes.
  EXPECT_NE(csv.find("meta,graph,\"a,b\"\"c\nd\re\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("span,\"phase,with\"\"comma\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos) << csv;

  // Parsing the CSV with quote-aware splitting recovers the exact value.
  // (Rows are newline-separated, but quoted fields may span lines.)
  bool in_quotes = false;
  std::size_t rows = 1;
  for (std::size_t i = 0; i < csv.size(); ++i) {
    if (csv[i] == '"') {
      in_quotes = !in_quotes;
    } else if (csv[i] == '\n' && !in_quotes) {
      ++rows;
    }
  }
  EXPECT_FALSE(in_quotes) << "unbalanced quotes in CSV output";
  EXPECT_GE(rows, 5u);  // header + schema + meta + span + span_note (+ final NL)
}

TEST(Metrics, HwSectionStampsSourceAndEvents) {
  obs::MetricsRegistry registry;

  // Without set_hw the section still exists, stamped "off", with no events.
  JsonValue doc = registry.to_json();
  const JsonValue* hw = doc.find("hw");
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->find("source")->as_string(), "off");
  EXPECT_EQ(hw->find("events"), nullptr);
  EXPECT_NE(registry.to_csv().find("hw,source,off"), std::string::npos);

  obs::EventCounts events;
  events[obs::Event::kCycles] = 1234;
  events[obs::Event::kLlcMisses] = 56;
  registry.set_hw(obs::EventSource::kSimulated, "simcache:Test", events,
                  "unit test");
  doc = registry.to_json();
  hw = doc.find("hw");
  ASSERT_NE(hw, nullptr);
  EXPECT_EQ(hw->find("source")->as_string(), "simulated");
  EXPECT_EQ(hw->find("backend")->as_string(), "simcache:Test");
  EXPECT_EQ(hw->find("note")->as_string(), "unit test");
  ASSERT_NE(hw->find("events"), nullptr);
  EXPECT_EQ(hw->find("events")->find("cycles")->as_uint(), 1234u);
  EXPECT_EQ(hw->find("events")->find("llc_misses")->as_uint(), 56u);

  const std::string csv = registry.to_csv();
  EXPECT_NE(csv.find("hw,source,simulated"), std::string::npos);
  EXPECT_NE(csv.find("hw,events.cycles,1234"), std::string::npos);
}

TEST(Metrics, SpanEventDeltasExportToJsonAndCsv) {
  PhaseTracer tracer;
  tracer.leaf("count", 1.0);
  obs::EventCounts delta;
  delta[obs::Event::kInstructions] = 99;
  ASSERT_TRUE(tracer.set_events("count", delta));
  EXPECT_FALSE(tracer.set_events("absent", delta));

  obs::MetricsRegistry registry;
  registry.set_trace(tracer);
  const JsonValue doc = registry.to_json();
  const JsonValue& span = doc.find("spans")->array()[0];
  ASSERT_NE(span.find("events"), nullptr);
  EXPECT_EQ(span.find("events")->find("instructions")->as_uint(), 99u);
  EXPECT_NE(registry.to_csv().find("span_event,count.instructions,99"),
            std::string::npos);
}

TEST(Metrics, ExportHasAllSchemaSections) {
  obs::MetricsRegistry registry;
  registry.set_meta("algorithm", "lotus");
  registry.set_metric("triangles", std::uint64_t{12});
  PhaseTracer tracer;
  tracer.begin("preprocess");
  tracer.begin("relabel");
  tracer.note("hub_count", std::uint64_t{3});
  tracer.end();
  tracer.end();
  registry.set_trace(tracer);
  registry.set_counters(obs::counters_snapshot());

  const JsonValue doc = registry.to_json();
  ASSERT_NE(doc.find("schema_version"), nullptr);
  EXPECT_EQ(doc.find("schema_version")->as_string(), obs::kMetricsSchemaVersion);
  ASSERT_NE(doc.find("meta"), nullptr);
  EXPECT_EQ(doc.find("meta")->find("algorithm")->as_string(), "lotus");
  ASSERT_NE(doc.find("metrics"), nullptr);
  EXPECT_EQ(doc.find("metrics")->find("triangles")->as_uint(), 12u);

  const JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array().size(), 1u);
  const JsonValue& preprocess = spans->array()[0];
  EXPECT_EQ(preprocess.find("name")->as_string(), "preprocess");
  const JsonValue* children = preprocess.find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array().size(), 1u);
  EXPECT_EQ(children->array()[0].find("name")->as_string(), "relabel");
  const JsonValue* notes = children->array()[0].find("notes");
  ASSERT_NE(notes, nullptr);
  ASSERT_NE(notes->find("hub_count"), nullptr);
  EXPECT_EQ(notes->find("hub_count")->as_string(), "3");

  ASSERT_NE(doc.find("counters"), nullptr);
  ASSERT_NE(doc.find("counters")->find("total"), nullptr);

  // The serialized form parses back to the same document.
  EXPECT_EQ(JsonValue::parse(registry.to_json_string()), doc);
}

TEST(RunProfiled, LotusSpanTotalsMatchEndToEndTime) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 12, .edge_factor = 8, .seed = 7}));
  tc::QueryOptions options;
  options.profile = true;
  const auto report =
      tc::query(tc::Algorithm::kLotus, graph, options).value().profile.value();

  EXPECT_EQ(report.result.triangles,
            tc::query(tc::Algorithm::kLotus, graph).value().result.triangles);
  EXPECT_GE(report.trace.spans().size(), 5u);
  for (const char* name :
       {"preprocess", "relabel", "partition", "serialize", "count", "hhh_hhn",
        "hnn", "nnn"})
    EXPECT_NE(report.trace.find(name), nullptr) << name;

  // The span tree must reconstruct the reported wall time: the two root
  // spans cover everything RunResult::total_s() measures.
  const double span_total =
      report.trace.total_s("preprocess") + report.trace.total_s("count");
  const double total = report.result.total_s();
  EXPECT_NEAR(span_total, total, 0.02 + 0.1 * total);

  EXPECT_EQ(report.vertices, graph.num_vertices());
  EXPECT_EQ(report.edges, graph.num_edges() / 2);
  if (obs::enabled()) {
    EXPECT_GT(report.counters[obs::Counter::kBitarrayProbes], 0u);
    // Query-scoped counter provenance: totals only — per-thread rows are a
    // property of the process-wide snapshot, not a profiled query.
    EXPECT_TRUE(report.counters.threads.empty());
  }

  // The exported report is valid, parseable JSON carrying the span tree.
  const JsonValue doc = JsonValue::parse(report.to_json());
  EXPECT_EQ(doc.find("schema_version")->as_string(), obs::kMetricsSchemaVersion);
  EXPECT_EQ(doc.find("metrics")->find("triangles")->as_uint(),
            report.result.triangles);
  EXPECT_EQ(doc.find("spans")->array().size(), 2u);  // preprocess + count
}

TEST(RunProfiled, BaselinesEmitLeafSpans) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 9, .edge_factor = 8, .seed = 5}));
  tc::QueryOptions options;
  options.profile = true;
  const auto report = tc::query(tc::Algorithm::kForwardMerge, graph, options)
                          .value()
                          .profile.value();
  ASSERT_NE(report.trace.find("count"), nullptr);
  EXPECT_DOUBLE_EQ(report.trace.find("count")->seconds, report.result.count_s);
  if (report.result.preprocess_s > 0.0) {
    EXPECT_NE(report.trace.find("preprocess"), nullptr);
  }
}

TEST(RunResult, RateHelpers) {
  tc::RunResult result;
  result.triangles = 100;
  result.preprocess_s = 1.0;
  result.count_s = 3.0;
  EXPECT_DOUBLE_EQ(result.triangles_per_s(), 25.0);
  EXPECT_DOUBLE_EQ(tc::RunResult{}.triangles_per_s(), 0.0);
  EXPECT_DOUBLE_EQ(tc::edges_per_s(200, 4.0), 50.0);
  EXPECT_DOUBLE_EQ(tc::edges_per_s(200, 0.0), 0.0);
}

}  // namespace
