// End-to-end LOTUS correctness: agreement with brute force across all
// generators, hub-count configurations, tiling policies, and the fused
// ablation mode; plus per-type count consistency.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "lotus/count.hpp"
#include "lotus/lotus.hpp"
#include "parallel/parallel_for.hpp"

namespace {

namespace g = lotus::graph;
using lotus::baselines::brute_force;
using lotus::core::LotusConfig;
using lotus::core::LotusGraph;
using lotus::core::LotusResult;
using lotus::core::TilingPolicy;

TEST(LotusCount, CompleteGraphs) {
  for (g::VertexId n : {3u, 4u, 10u, 50u}) {
    const auto graph = g::build_undirected(g::complete(n));
    LotusConfig config;
    config.hub_count = std::max<g::VertexId>(1, n / 4);
    const auto r = lotus::core::count_triangles(graph, config);
    EXPECT_EQ(r.triangles, g::complete_triangles(n)) << "K_" << n;
  }
}

TEST(LotusCount, TriangleFreeGraphs) {
  for (const auto& graph :
       {g::build_undirected(g::star(200)), g::build_undirected(g::grid(10, 10)),
        g::build_undirected(g::complete_bipartite(20, 20))}) {
    const auto r = lotus::core::count_triangles(graph);
    EXPECT_EQ(r.triangles, 0u);
    EXPECT_EQ(r.hhh + r.hhn + r.hnn + r.nnn, 0u);
  }
}

TEST(LotusCount, TypeCountsSumToTotal) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 12, .seed = 1}));
  const auto r = lotus::core::count_triangles(graph);
  EXPECT_EQ(r.triangles, r.hhh + r.hhn + r.hnn + r.nnn);
  EXPECT_EQ(r.hub_triangles(), r.hhh + r.hhn + r.hnn);
  EXPECT_EQ(r.triangles, brute_force(graph));
}

TEST(LotusCount, TypeAttributionOnCraftedGraph) {
  // Hubs are the 2 highest-degree vertices. Build a graph where each
  // triangle type is known by construction:
  //   vertices 0,1 high degree (hubs after relabel), connected to everything.
  //   HHN: (0,1,x) for every other x; HNN: (0,2,3); NNN: (4,5,6).
  g::EdgeList el{8, {}};
  for (g::VertexId x = 2; x < 8; ++x) {
    el.edges.push_back({0, x});
    el.edges.push_back({1, x});
  }
  el.edges.push_back({0, 1});  // hub-hub edge
  el.edges.push_back({2, 3});  // HNN via hub 0 (and hub 1): two HNN triangles
  el.edges.push_back({4, 5});
  el.edges.push_back({5, 6});
  el.edges.push_back({4, 6});  // NNN triangle 4-5-6 (plus HNN with hubs)
  const auto graph = g::build_undirected(el);

  LotusConfig config;
  config.hub_count = 2;
  config.relabel_fraction = 0.0;  // only hubs reordered
  const auto r = lotus::core::count_triangles(graph, config);
  EXPECT_EQ(r.triangles, brute_force(graph));
  EXPECT_EQ(r.hhh, 0u);          // only 2 hubs: no 3-hub triangle
  EXPECT_EQ(r.hhn, 6u);          // (0,1,x) for x=2..7
  EXPECT_EQ(r.nnn, 1u);          // 4-5-6
  EXPECT_EQ(r.hnn, r.triangles - 7u);
}

TEST(LotusCount, HhhOnlyGraph) {
  // Complete graph where every vertex is a hub: all triangles are HHH.
  const auto graph = g::build_undirected(g::complete(20));
  LotusConfig config;
  config.hub_count = 20;
  const auto r = lotus::core::count_triangles(graph, config);
  EXPECT_EQ(r.hhh, g::complete_triangles(20));
  EXPECT_EQ(r.hhn + r.hnn + r.nnn, 0u);
}

TEST(LotusCount, NnnOnlyWhenNoHubsTouchTriangles) {
  // Star (hub-heavy, no triangles) plus a distant triangle of low-degree
  // vertices: with 1 hub (the star centre) the triangle must be NNN.
  g::EdgeList el{104, {}};
  for (g::VertexId x = 1; x <= 100; ++x) el.edges.push_back({0, x});
  el.edges.push_back({101, 102});
  el.edges.push_back({102, 103});
  el.edges.push_back({101, 103});
  const auto graph = g::build_undirected(el);
  LotusConfig config;
  config.hub_count = 1;
  config.relabel_fraction = 0.0;
  const auto r = lotus::core::count_triangles(graph, config);
  EXPECT_EQ(r.triangles, 1u);
  EXPECT_EQ(r.nnn, 1u);
}

struct LotusCase {
  std::string name;
  std::function<g::CsrGraph()> make;
};

class LotusProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
 public:
  static std::vector<LotusCase> graphs() {
    return {
        {"rmat", [] {
           return g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 11}));
         }},
        {"holme_kim", [] {
           return g::build_undirected(g::holme_kim(
               {.num_vertices = 2000, .edges_per_vertex = 6, .p_triad = 0.6, .seed = 12}));
         }},
        {"copy_web", [] {
           return g::build_undirected(g::copy_web(
               {.num_vertices = 2000, .edges_per_vertex = 7, .p_copy = 0.7,
                .locality_window = 128, .seed = 13}));
         }},
        {"erdos_renyi", [] { return g::build_undirected(g::erdos_renyi(2000, 12.0, 14)); }},
        {"watts_strogatz", [] {
           return g::build_undirected(g::watts_strogatz(
               {.num_vertices = 1500, .ring_degree = 6, .rewire_prob = 0.15, .seed = 15}));
         }},
    };
  }
  static std::vector<g::VertexId> hub_counts() { return {0, 1, 16, 256, 65536}; }
};

TEST_P(LotusProperty, MatchesBruteForceAcrossHubCounts) {
  const auto [graph_index, hub_index] = GetParam();
  const auto testcase = LotusProperty::graphs()[static_cast<std::size_t>(graph_index)];
  const auto graph = testcase.make();
  const std::uint64_t expected = brute_force(graph);

  LotusConfig config;
  config.hub_count = LotusProperty::hub_counts()[static_cast<std::size_t>(hub_index)];
  const auto r = lotus::core::count_triangles(graph, config);
  EXPECT_EQ(r.triangles, expected)
      << testcase.name << " hubs=" << config.hub_count;
  EXPECT_EQ(r.triangles, r.hhh + r.hhn + r.hnn + r.nnn);
}

INSTANTIATE_TEST_SUITE_P(
    GraphsByHubCounts, LotusProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 5)),
    [](const auto& info) {
      const auto cases = LotusProperty::graphs();
      return cases[static_cast<std::size_t>(std::get<0>(info.param))].name + "_hubs" +
             std::to_string(LotusProperty::hub_counts()[static_cast<std::size_t>(
                 std::get<1>(info.param))]);
    });

TEST(LotusCount, FusedModeMatchesSplit) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 10, .seed = 21}));
  LotusConfig split;
  LotusConfig fused = split;
  fused.fuse_hnn_nnn = true;
  const auto rs = lotus::core::count_triangles(graph, split);
  const auto rf = lotus::core::count_triangles(graph, fused);
  EXPECT_EQ(rs.triangles, rf.triangles);
}

TEST(LotusCount, EdgeBalancedPolicyCountsIdentically) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 11, .edge_factor = 10, .seed = 22}));
  LotusConfig config;
  const auto lg = LotusGraph::build(graph, config);
  const auto squared =
      lotus::core::count_hhh_hhn(lg, config, TilingPolicy::kSquared);
  const auto balanced =
      lotus::core::count_hhh_hhn(lg, config, TilingPolicy::kEdgeBalanced);
  EXPECT_EQ(squared.hhh, balanced.hhh);
  EXPECT_EQ(squared.hhn, balanced.hhn);
}

TEST(LotusCount, TinyTilingThresholdStillCorrect) {
  // Force squared tiling onto every vertex (threshold 1).
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 23}));
  LotusConfig config;
  config.tiling_degree_threshold = 1;
  const auto r = lotus::core::count_triangles(graph, config);
  EXPECT_EQ(r.triangles, brute_force(graph));
}

TEST(LotusCount, BreakdownTimesAreNonNegativeAndSum) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 24}));
  const auto r = lotus::core::count_triangles(graph);
  EXPECT_GE(r.preprocess_s, 0.0);
  EXPECT_GE(r.hhh_hhn_s, 0.0);
  EXPECT_GE(r.hnn_s, 0.0);
  EXPECT_GE(r.nnn_s, 0.0);
  EXPECT_DOUBLE_EQ(r.total_s(), r.preprocess_s + r.count_s());
}

TEST(LotusCount, EmptyGraph) {
  const auto r = lotus::core::count_triangles(g::build_undirected({0, {}}));
  EXPECT_EQ(r.triangles, 0u);
}

TEST(LotusCount, InvariantUnderInputReordering) {
  // LOTUS does its own relabeling, so the total count must not change with
  // the input order. The per-type split MAY change: hub selection breaks
  // degree ties by input position, so the marginal hubs differ.
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 25}));
  const auto reference = lotus::core::count_triangles(graph);
  for (auto ordering : g::all_orderings()) {
    const auto relabeled =
        g::relabel(graph, g::make_ordering(graph, ordering, 13));
    const auto r = lotus::core::count_triangles(relabeled);
    EXPECT_EQ(r.triangles, reference.triangles) << g::ordering_name(ordering);
    EXPECT_EQ(r.triangles, r.hhh + r.hhn + r.hnn + r.nnn)
        << g::ordering_name(ordering);
  }
}

TEST(LotusCount, IdenticalUnderBothParallelBackends) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 10, .seed = 26}));
  lotus::parallel::set_backend(lotus::parallel::Backend::kPool);
  const auto pool_result = lotus::core::count_triangles(graph);
  lotus::parallel::set_backend(lotus::parallel::Backend::kOpenMP);
  const auto omp_result = lotus::core::count_triangles(graph);
  lotus::parallel::set_backend(lotus::parallel::Backend::kPool);
  EXPECT_EQ(pool_result.triangles, omp_result.triangles);
  EXPECT_EQ(pool_result.hnn, omp_result.hnn);
}

TEST(LotusCount, RepeatedRunsAreDeterministic) {
  const auto graph = g::build_undirected(g::copy_web(
      {.num_vertices = 3000, .edges_per_vertex = 7, .p_copy = 0.7,
       .locality_window = 256, .core_size = 64, .p_core = 0.3, .seed = 27}));
  const auto first = lotus::core::count_triangles(graph);
  for (int run = 0; run < 3; ++run) {
    const auto r = lotus::core::count_triangles(graph);
    EXPECT_EQ(r.triangles, first.triangles);
    EXPECT_EQ(r.hhh, first.hhh);
    EXPECT_EQ(r.hhn, first.hhn);
    EXPECT_EQ(r.hnn, first.hnn);
    EXPECT_EQ(r.nnn, first.nnn);
  }
}

}  // namespace
