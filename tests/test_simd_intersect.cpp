// AVX2 block intersection: exact agreement with the scalar merge across
// sizes that exercise full blocks, tails, and block-boundary matches.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "baselines/intersect.hpp"
#include "baselines/simd_intersect.hpp"
#include "util/prng.hpp"

namespace {

using namespace lotus::baselines;

std::vector<std::uint32_t> sorted_unique(lotus::util::Xoshiro256& rng,
                                         std::size_t n, std::uint32_t universe) {
  std::set<std::uint32_t> s;
  while (s.size() < n) s.insert(static_cast<std::uint32_t>(rng.next_below(universe)));
  return {s.begin(), s.end()};
}

TEST(SimdIntersect, TinyListsUseTailPath) {
  const std::vector<std::uint32_t> a = {1, 5, 9}, b = {5, 9, 11};
  EXPECT_EQ(intersect_simd(a, b), 2u);
}

TEST(SimdIntersect, EmptyInputs) {
  const std::vector<std::uint32_t> empty, some = {1, 2, 3};
  EXPECT_EQ(intersect_simd(empty, some), 0u);
  EXPECT_EQ(intersect_simd(some, empty), 0u);
}

TEST(SimdIntersect, ExactBlockMultiples) {
  std::vector<std::uint32_t> a(32), b(32);
  for (std::uint32_t i = 0; i < 32; ++i) {
    a[i] = 2 * i;      // evens
    b[i] = 3 * i;      // multiples of 3
  }
  // Common: multiples of 6 below min(62, 93): 0,6,...,60 -> 11 values.
  EXPECT_EQ(intersect_simd(a, b), 11u);
}

TEST(SimdIntersect, MatchesAcrossBlockBoundaries) {
  // Single common element positioned at every offset relative to the
  // 8-lane blocks of both lists.
  for (std::uint32_t pos_a = 0; pos_a < 20; ++pos_a) {
    for (std::uint32_t pos_b = 0; pos_b < 20; ++pos_b) {
      std::vector<std::uint32_t> a(20), b(20);
      for (std::uint32_t i = 0; i < 20; ++i) {
        a[i] = 10 * i + 1;
        b[i] = 10 * i + 2;
      }
      a[pos_a] = 10 * pos_a + 5;
      b[pos_b] = 10 * pos_b + 5;
      const std::uint64_t expected =
          intersect_merge<std::uint32_t>(a, b);
      ASSERT_EQ(intersect_simd(a, b), expected)
          << "pos_a=" << pos_a << " pos_b=" << pos_b;
    }
  }
}

TEST(SimdIntersect, RandomizedAgreementWithMerge) {
  lotus::util::Xoshiro256 rng(2024);
  for (int round = 0; round < 50; ++round) {
    const auto na = 1 + rng.next_below(300);
    const auto nb = 1 + rng.next_below(300);
    const auto universe = static_cast<std::uint32_t>(100 + rng.next_below(1000));
    const auto a = sorted_unique(rng, std::min<std::size_t>(na, universe / 2), universe);
    const auto b = sorted_unique(rng, std::min<std::size_t>(nb, universe / 2), universe);
    ASSERT_EQ(intersect_simd(a, b), (intersect_merge<std::uint32_t>(a, b)))
        << "round " << round;
  }
}

TEST(SimdIntersect, IdenticalLargeLists) {
  std::vector<std::uint32_t> a(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) a[i] = i * 7 + 3;
  EXPECT_EQ(intersect_simd(a, a), 1000u);
}

TEST(SimdIntersect, AvailabilityIsStable) {
  EXPECT_EQ(simd_intersect_available(), simd_intersect_available());
}

TEST(SimdIntersect16, TinyAndEmpty) {
  const std::vector<std::uint16_t> a = {1, 5, 9}, b = {5, 9, 11}, empty;
  EXPECT_EQ(intersect_simd16(a, b), 2u);
  EXPECT_EQ(intersect_simd16(empty, b), 0u);
  EXPECT_EQ(intersect_simd16(a, empty), 0u);
}

TEST(SimdIntersect16, FullBlocksWithKnownOverlap) {
  std::vector<std::uint16_t> a(64), b(64);
  for (std::uint16_t i = 0; i < 64; ++i) {
    a[i] = static_cast<std::uint16_t>(2 * i);  // evens 0..126
    b[i] = static_cast<std::uint16_t>(3 * i);  // multiples of 3, 0..189
  }
  // Common: multiples of 6 up to min(126, 189) -> 0, 6, ..., 126: 22 values.
  EXPECT_EQ(intersect_simd16(a, b), 22u);
}

TEST(SimdIntersect16, MatchAtEveryRotationOffset) {
  // One common element at every relative lane offset within 16-lane blocks.
  for (std::uint32_t pos_a = 0; pos_a < 16; ++pos_a) {
    for (std::uint32_t pos_b = 0; pos_b < 16; ++pos_b) {
      std::vector<std::uint16_t> a(16), b(16);
      for (std::uint16_t i = 0; i < 16; ++i) {
        a[i] = static_cast<std::uint16_t>(100 * i + 1);
        b[i] = static_cast<std::uint16_t>(100 * i + 2);
      }
      a[pos_a] = static_cast<std::uint16_t>(100 * pos_a + 50);
      b[pos_b] = static_cast<std::uint16_t>(100 * pos_b + 50);
      const std::uint64_t expected = intersect_merge<std::uint16_t>(a, b);
      ASSERT_EQ(intersect_simd16(a, b), expected)
          << "pos_a=" << pos_a << " pos_b=" << pos_b;
    }
  }
}

TEST(SimdIntersect16, RandomizedAgreementWithMerge) {
  lotus::util::Xoshiro256 rng(4048);
  for (int round = 0; round < 50; ++round) {
    const auto make16 = [&rng](std::size_t n) {
      std::set<std::uint16_t> s;
      while (s.size() < n)
        s.insert(static_cast<std::uint16_t>(rng.next_below(2000)));
      return std::vector<std::uint16_t>(s.begin(), s.end());
    };
    const auto a = make16(1 + rng.next_below(400));
    const auto b = make16(1 + rng.next_below(400));
    ASSERT_EQ(intersect_simd16(a, b), (intersect_merge<std::uint16_t>(a, b)))
        << "round " << round;
  }
}

TEST(SimdIntersect16, MaxValueIds) {
  // 16-bit boundary values (the largest hub IDs LOTUS can store in HE).
  const std::vector<std::uint16_t> a = {65530, 65533, 65535};
  const std::vector<std::uint16_t> b = {65531, 65533, 65535};
  EXPECT_EQ(intersect_simd16(a, b), 2u);
}

}  // namespace
