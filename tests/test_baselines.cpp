// Cross-algorithm agreement: every baseline TC algorithm must produce the
// brute-force count on deterministic families and on randomized graphs from
// every generator (parameterized property sweep).
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

namespace g = lotus::graph;
namespace b = lotus::baselines;

using Algorithm = std::function<std::uint64_t(const g::CsrGraph&)>;

struct NamedAlgorithm {
  std::string name;
  Algorithm run;
};

std::vector<NamedAlgorithm> all_algorithms() {
  return {
      {"forward_merge", [](const g::CsrGraph& gr) { return b::forward_merge(gr).triangles; }},
      {"forward_gallop", [](const g::CsrGraph& gr) { return b::forward_gallop(gr).triangles; }},
      {"forward_hashed", [](const g::CsrGraph& gr) { return b::forward_hashed(gr).triangles; }},
      {"forward_bitmap", [](const g::CsrGraph& gr) { return b::forward_bitmap(gr).triangles; }},
      {"edge_parallel", [](const g::CsrGraph& gr) { return b::edge_parallel_forward(gr).triangles; }},
      {"edge_iterator", [](const g::CsrGraph& gr) { return b::edge_iterator(gr).triangles; }},
      {"node_iterator", [](const g::CsrGraph& gr) { return b::node_iterator(gr).triangles; }},
      {"blocked_64", [](const g::CsrGraph& gr) { return b::blocked_tc(gr, 64).triangles; }},
      {"blocked_1", [](const g::CsrGraph& gr) { return b::blocked_tc(gr, 1).triangles; }},
  };
}

void expect_all_agree(const g::CsrGraph& graph, const std::string& label) {
  const std::uint64_t expected = b::brute_force(graph);
  for (const auto& alg : all_algorithms())
    EXPECT_EQ(alg.run(graph), expected) << label << " / " << alg.name;
}

TEST(Baselines, CompleteGraphs) {
  for (g::VertexId n : {3u, 4u, 10u, 25u}) {
    const auto graph = g::build_undirected(g::complete(n));
    const std::uint64_t expected = g::complete_triangles(n);
    EXPECT_EQ(b::brute_force(graph), expected);
    expect_all_agree(graph, "K_" + std::to_string(n));
  }
}

TEST(Baselines, TriangleFreeGraphs) {
  expect_all_agree(g::build_undirected(g::star(64)), "star");
  expect_all_agree(g::build_undirected(g::grid(8, 8)), "grid");
  expect_all_agree(g::build_undirected(g::complete_bipartite(10, 12)), "bipartite");
}

TEST(Baselines, EmptyAndTinyGraphs) {
  expect_all_agree(g::build_undirected({0, {}}), "empty");
  expect_all_agree(g::build_undirected({1, {}}), "single-vertex");
  expect_all_agree(g::build_undirected({2, {{0, 1}}}), "single-edge");
  expect_all_agree(g::build_undirected(g::cycle(3)), "triangle");
}

TEST(Baselines, WheelFamilies) {
  for (g::VertexId rim : {4u, 9u, 17u})
    expect_all_agree(g::build_undirected(g::wheel(rim)), "wheel");
}

struct GeneratorCase {
  std::string name;
  std::function<g::EdgeList(std::uint64_t seed)> make;
};

class BaselineProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 public:
  static std::vector<GeneratorCase> generators() {
    return {
        {"rmat", [](std::uint64_t s) {
           return g::rmat({.scale = 9, .edge_factor = 6, .seed = s});
         }},
        {"erdos_renyi", [](std::uint64_t s) { return g::erdos_renyi(600, 10.0, s); }},
        {"holme_kim", [](std::uint64_t s) {
           return g::holme_kim({.num_vertices = 500, .edges_per_vertex = 5,
                                .p_triad = 0.5, .seed = s});
         }},
        {"copy_web", [](std::uint64_t s) {
           return g::copy_web({.num_vertices = 500, .edges_per_vertex = 6,
                               .p_copy = 0.6, .locality_window = 64, .seed = s});
         }},
        {"watts_strogatz", [](std::uint64_t s) {
           return g::watts_strogatz({.num_vertices = 400, .ring_degree = 5,
                                     .rewire_prob = 0.2, .seed = s});
         }},
    };
  }
};

TEST_P(BaselineProperty, AgreesWithBruteForce) {
  const auto [gen_index, seed] = GetParam();
  const GeneratorCase gen = BaselineProperty::generators()[static_cast<std::size_t>(gen_index)];
  const auto graph = g::build_undirected(gen.make(seed));
  expect_all_agree(graph, gen.name + " seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    GeneratorsBySeeds, BaselineProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(1u, 17u, 99u)),
    [](const auto& info) {
      const auto gens = BaselineProperty::generators();
      return gens[static_cast<std::size_t>(std::get<0>(info.param))].name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Baselines, PreprocessAndCountTimesAreRecorded) {
  const auto graph = g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 1}));
  const auto r = b::forward_merge(graph);
  EXPECT_GE(r.preprocess_s, 0.0);
  EXPECT_GE(r.count_s, 0.0);
  EXPECT_DOUBLE_EQ(r.total_s(), r.preprocess_s + r.count_s);
}

}  // namespace
