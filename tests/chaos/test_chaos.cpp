// Chaos suite (ctest label `chaos`; scripts/check_chaos.sh runs it under
// ASan with a fixed fault matrix).
//
// Every test sweeps a deterministic fault-plan matrix — site × probability ×
// seed, all through util/fault.hpp's seeded hash so a failing cell replays
// identically — and asserts the only two acceptable outcomes: the operation
// succeeds with an exactly-correct result, or it fails with a clean mapped
// Status. Crashes, hangs, leaks (ASan), and silently-wrong counts are the
// bugs this suite exists to catch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "parallel/thread_pool.hpp"
#include "tc/api.hpp"
#include "tc/engine.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace {

namespace g = lotus::graph;
namespace tc = lotus::tc;
namespace fault = lotus::util::fault;
using lotus::util::StatusCode;

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

struct Oracle {
  g::CsrGraph graph;
  std::uint64_t triangles;
};

const Oracle& oracle() {
  static const Oracle o = [] {
    Oracle built;
    built.graph = g::build_undirected(
        g::rmat({.scale = 9, .edge_factor = 8, .seed = 13}));
    built.triangles = lotus::baselines::brute_force(built.graph);
    return built;
  }();
  return o;
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Chaos, AllocFaultsNeverCorruptCounts) {
  for (const double p : {0.3, 1.0}) {
    for (const std::uint64_t seed : kSeeds) {
      fault::ScopedFaultPlan plan(
          fault::single_site_plan(fault::Site::kAlloc, p, seed));
      for (const auto algorithm :
           {tc::Algorithm::kLotus, tc::Algorithm::kAdaptive,
            tc::Algorithm::kForwardHashed, tc::Algorithm::kForwardBitmap}) {
        const auto result = tc::query(algorithm, oracle().graph).value();
        if (result.ok()) {
          EXPECT_EQ(result.result.triangles, oracle().triangles)
              << tc::name(algorithm) << " p=" << p << " seed=" << seed;
        } else {
          EXPECT_EQ(result.status.code(), StatusCode::kOutOfMemory)
              << tc::name(algorithm) << " p=" << p << " seed=" << seed << ": "
              << result.status.to_string();
        }
      }
    }
  }
}

TEST(Chaos, AllocFaultsWithoutDegradationFailCleanly) {
  tc::QueryOptions options;
  options.allow_degradation = false;
  for (const std::uint64_t seed : kSeeds) {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kAlloc, 1.0, seed));
    const auto result =
        tc::query(tc::Algorithm::kLotus, oracle().graph, options).value();
    ASSERT_FALSE(result.ok()) << "seed=" << seed;
    EXPECT_EQ(result.status.code(), StatusCode::kOutOfMemory);
  }
}

TEST(Chaos, ShortReadsAreRetriedToTheExactGraph) {
  TempFile file("chaos_short_read.bin");
  ASSERT_TRUE(g::write_csr_binary_s(file.path(), oracle().graph).ok());
  for (const std::uint64_t seed : kSeeds) {
    // Every read returns short; the bounded retry loop must still assemble
    // the full graph (each retry halves the request, which is progress).
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kReadShort, 1.0, seed));
    auto loaded = g::read_csr_binary_s(file.path());
    ASSERT_TRUE(loaded.ok()) << "seed=" << seed << ": "
                             << loaded.status().to_string();
    EXPECT_GT(fault::injected_count(fault::Site::kReadShort), 0u);
    const g::CsrGraph& graph = loaded.value();
    ASSERT_EQ(graph.num_vertices(), oracle().graph.num_vertices());
    ASSERT_EQ(graph.num_edges(), oracle().graph.num_edges());
    EXPECT_EQ(lotus::baselines::brute_force(graph), oracle().triangles);
  }
}

TEST(Chaos, ReadFailuresMapToIoErrorOrExactGraph) {
  TempFile file("chaos_read_fail.bin");
  ASSERT_TRUE(g::write_csr_binary_s(file.path(), oracle().graph).ok());
  bool saw_failure = false;
  for (const double p : {0.5, 1.0}) {
    for (const std::uint64_t seed : kSeeds) {
      fault::ScopedFaultPlan plan(
          fault::single_site_plan(fault::Site::kReadFail, p, seed));
      auto loaded = g::read_csr_binary_s(file.path());
      if (loaded.ok()) {
        EXPECT_EQ(lotus::baselines::brute_force(loaded.value()),
                  oracle().triangles)
            << "p=" << p << " seed=" << seed;
      } else {
        saw_failure = true;
        EXPECT_EQ(loaded.status().code(), StatusCode::kIoError)
            << "p=" << p << " seed=" << seed << ": "
            << loaded.status().to_string();
      }
    }
  }
  EXPECT_TRUE(saw_failure);  // p=1 must fail every seed
}

TEST(Chaos, ThreadSpawnFaultsLeaveWorkingPools) {
  for (const double p : {0.5, 1.0}) {
    for (const std::uint64_t seed : kSeeds) {
      fault::ScopedFaultPlan plan(
          fault::single_site_plan(fault::Site::kThreadSpawn, p, seed));
      lotus::parallel::ThreadPool pool(8);
      EXPECT_GE(pool.size(), 1u);
      EXPECT_LE(pool.size(), 8u);
      std::atomic<unsigned> sum{0};
      pool.execute([&](unsigned) { sum.fetch_add(1); });
      EXPECT_EQ(sum.load(), pool.size()) << "p=" << p << " seed=" << seed;
    }
  }
}

TEST(Chaos, HwcFaultsDegradeToSimulatedEvents) {
  for (const std::uint64_t seed : kSeeds) {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kHwc, 1.0, seed));
    tc::QueryOptions options;
    options.profile = true;
    options.events = lotus::obs::EventSource::kHardware;
    const auto report = tc::query(tc::Algorithm::kLotus, oracle().graph, options)
                            .value()
                            .profile.value();
    ASSERT_TRUE(report.status.ok()) << report.status.to_string();
    EXPECT_EQ(report.result.triangles, oracle().triangles);
    EXPECT_EQ(report.event_source, lotus::obs::EventSource::kSimulated);
    ASSERT_FALSE(report.degradations.empty());
    EXPECT_EQ(report.degradations[0].site, "hwc");
  }
}

TEST(Chaos, EngineCancelAndEvictMidQueryStaysSane) {
  // The serving layer's chaos cell: a tiny cache budget forces evictions, a
  // canceller thread flips one query's token at varying points, and the
  // alloc fault site can veto artifact builds. Acceptable outcomes per
  // query: exact count, kCancelled, or kOutOfMemory — never a wrong count
  // presented as ok, never a hang, never a leak (ASan).
  for (const std::uint64_t seed : kSeeds) {
    fault::ScopedFaultPlan plan(
        fault::single_site_plan(fault::Site::kAlloc, 0.2, seed));
    tc::EngineOptions engine_options;
    engine_options.num_drivers = 2;
    engine_options.threads_per_query = 2;
    engine_options.cache_budget_bytes = 64 * 1024;  // forces LRU churn
    tc::Engine engine(engine_options);

    lotus::util::CancelToken token;
    std::atomic<bool> stop{false};
    std::thread canceller([&token, &stop, seed] {
      std::uint64_t spin_target = 1000 * (seed + 1);
      while (!stop.load(std::memory_order_acquire)) {
        std::atomic<std::uint64_t> spin{0};
        while (spin.fetch_add(1, std::memory_order_relaxed) < spin_target) {
        }
        token.cancel();
        token.reset();
      }
    });

    std::vector<std::future<lotus::util::Expected<tc::QueryResult>>> futures;
    for (int i = 0; i < 8; ++i) {
      tc::QueryOptions options;
      if (i % 2 == 0) options.cancel = &token;
      futures.push_back(engine.submit(
          {i % 3 == 0 ? tc::Algorithm::kForwardMerge : tc::Algorithm::kLotus,
           "chaos", &oracle().graph, options}));
      if (i == 4) engine.invalidate("chaos");  // evict under the queries
    }
    int exact = 0;
    for (auto& future : futures) {
      auto outcome = future.get();
      ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
      const auto& result = outcome.value();
      if (result.ok()) {
        EXPECT_EQ(result.result.triangles, oracle().triangles)
            << "seed=" << seed;
        ++exact;
      } else {
        EXPECT_TRUE(result.status.code() == StatusCode::kCancelled ||
                    result.status.code() == StatusCode::kOutOfMemory)
            << "seed=" << seed << ": " << result.status.to_string();
        EXPECT_EQ(result.result.triangles, 0u);
      }
    }
    stop.store(true, std::memory_order_release);
    canceller.join();
    // gap-forward is scratch-free and never cancellable here on the odd
    // indices... but cancellable even ones may still finish first; just
    // require the engine stayed alive and accounted every query.
    EXPECT_EQ(engine.stats().completed, 8u) << "seed=" << seed;
    (void)exact;
  }
}

TEST(Chaos, EverythingAtOnceStaysSaneEndToEnd) {
  // The full pipeline — write, read back, profiled run — under a plan where
  // every site can fire. Any outcome is fine except a crash, a hang, or a
  // wrong count reported as ok.
  TempFile file("chaos_everything.bin");
  ASSERT_TRUE(g::write_csr_binary_s(file.path(), oracle().graph).ok());
  for (const std::uint64_t seed : kSeeds) {
    fault::FaultPlan chaos;
    chaos.seed = seed;
    chaos.probability[static_cast<std::size_t>(fault::Site::kAlloc)] = 0.2;
    chaos.probability[static_cast<std::size_t>(fault::Site::kReadShort)] = 0.2;
    chaos.probability[static_cast<std::size_t>(fault::Site::kReadFail)] = 0.2;
    chaos.probability[static_cast<std::size_t>(fault::Site::kHwc)] = 0.2;
    fault::ScopedFaultPlan plan(chaos);

    auto loaded = g::read_csr_binary_s(file.path());
    if (!loaded.ok()) {
      // IO faults surface as kIoError; the loader's budget charge is an
      // alloc site, so kAlloc plans surface as kOutOfMemory.
      EXPECT_TRUE(loaded.status().code() == StatusCode::kIoError ||
                  loaded.status().code() == StatusCode::kOutOfMemory)
          << "seed=" << seed << ": " << loaded.status().to_string();
      continue;
    }
    tc::QueryOptions options;
    options.profile = true;
    options.events = lotus::obs::EventSource::kHardware;
    const auto report = tc::query(tc::Algorithm::kLotus, loaded.value(), options)
                            .value()
                            .profile.value();
    if (report.status.ok()) {
      EXPECT_EQ(report.result.triangles, oracle().triangles) << "seed=" << seed;
    } else {
      EXPECT_EQ(report.status.code(), StatusCode::kOutOfMemory)
          << "seed=" << seed << ": " << report.status.to_string();
      EXPECT_EQ(report.result.triangles, 0u);
    }
  }
}

}  // namespace
