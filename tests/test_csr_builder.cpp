// Tests for CSR construction, orientation, and relabeling invariants.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace {

using lotus::graph::build_undirected;
using lotus::graph::CsrGraph;
using lotus::graph::Edge;
using lotus::graph::EdgeList;
using lotus::graph::orient_by_id;
using lotus::graph::relabel;
using lotus::graph::VertexId;

EdgeList triangle_with_tail() {
  // 0-1-2 triangle plus tail 2-3.
  return {4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}};
}

TEST(Builder, SymmetrizesAndSorts) {
  const CsrGraph g = build_undirected(triangle_with_tail());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 8u);  // 4 undirected edges, both directions
  EXPECT_TRUE(g.neighbors_sorted());
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Builder, DropsSelfLoops) {
  const CsrGraph g = build_undirected({3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}}});
  EXPECT_EQ(g.num_edges(), 4u);
  for (VertexId v = 0; v < 3; ++v)
    for (VertexId u : g.neighbors(v)) EXPECT_NE(u, v);
}

TEST(Builder, MergesDuplicateAndReversedEdges) {
  const CsrGraph g = build_undirected({2, {{0, 1}, {1, 0}, {0, 1}, {0, 1}}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(build_undirected({2, {{0, 5}}}), std::invalid_argument);
}

TEST(Builder, EmptyGraph) {
  const CsrGraph g = build_undirected({0, {}});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, IsolatedVerticesKeepZeroDegree) {
  const CsrGraph g = build_undirected({5, {{0, 4}}});
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Orient, KeepsOnlyLowerNeighbors) {
  const CsrGraph g = build_undirected(triangle_with_tail());
  const auto oriented = orient_by_id(g);
  EXPECT_EQ(oriented.num_edges(), 4u);  // one entry per undirected edge
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId u : oriented.neighbors(v)) EXPECT_LT(u, v);
}

TEST(Orient, PreservesEdgeCount) {
  const CsrGraph g =
      build_undirected(lotus::graph::rmat({.scale = 10, .edge_factor = 8, .seed = 3}));
  const auto oriented = orient_by_id(g);
  EXPECT_EQ(oriented.num_edges(), g.num_edges() / 2);
  EXPECT_TRUE(oriented.neighbors_sorted());
}

TEST(Relabel, IdentityPermutationIsNoop) {
  const CsrGraph g = build_undirected(triangle_with_tail());
  std::vector<VertexId> id(g.num_vertices());
  std::iota(id.begin(), id.end(), 0);
  EXPECT_EQ(relabel(g, id), g);
}

TEST(Relabel, PreservesDegreesUnderPermutation) {
  const CsrGraph g =
      build_undirected(lotus::graph::rmat({.scale = 8, .edge_factor = 4, .seed = 9}));
  std::vector<VertexId> perm(g.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  // Reverse permutation.
  std::reverse(perm.begin(), perm.end());
  const CsrGraph h = relabel(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(h.degree(perm[v]), g.degree(v));
  EXPECT_TRUE(h.neighbors_sorted());
}

TEST(Relabel, MapsAdjacencyCorrectly) {
  const CsrGraph g = build_undirected({3, {{0, 1}, {1, 2}}});
  const CsrGraph h = relabel(g, {2, 0, 1});  // 0->2, 1->0, 2->1
  // Old edge (0,1) becomes (2,0); old (1,2) becomes (0,1).
  auto n0 = h.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(Relabel, RejectsNonPermutation) {
  const CsrGraph g = build_undirected({2, {{0, 1}}});
  EXPECT_THROW(relabel(g, {0, 5}), std::invalid_argument);
  EXPECT_THROW(relabel(g, {0}), std::invalid_argument);
}

TEST(Csr, TopologyBytesAccounting) {
  const CsrGraph g = build_undirected(triangle_with_tail());
  // 5 offsets * 8 bytes + 8 neighbours * 4 bytes.
  EXPECT_EQ(g.topology_bytes(), 5u * 8 + 8u * 4);
}

}  // namespace
