// Analytics layer: local triangle counts, clustering coefficients, and
// transitivity, validated on closed-form families and against brute force.
#include <gtest/gtest.h>

#include <numeric>

#include "analytics/clustering.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

namespace g = lotus::graph;
namespace a = lotus::analytics;

TEST(LocalCounts, CompleteGraphEveryVertexSeesAllItsTriangles) {
  const auto graph = g::build_undirected(g::complete(10));
  const auto counts = a::local_triangle_counts(graph);
  // Each vertex of K_10 is in C(9,2) = 36 triangles.
  for (auto c : counts) EXPECT_EQ(c, 36u);
}

TEST(LocalCounts, CornerSumIsThreeTimesTriangles) {
  const auto graph =
      g::build_undirected(g::rmat({.scale = 10, .edge_factor = 8, .seed = 41}));
  const auto counts = a::local_triangle_counts(graph);
  const auto corner_sum =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_EQ(corner_sum, 3 * lotus::baselines::brute_force(graph));
}

TEST(LocalCounts, WheelHubSeesEveryTriangle) {
  const auto graph = g::build_undirected(g::wheel(10));
  const auto counts = a::local_triangle_counts(graph);
  EXPECT_EQ(counts[0], 10u);  // hub participates in all 10 rim triangles
  for (std::size_t v = 1; v < counts.size(); ++v) EXPECT_EQ(counts[v], 2u);
}

TEST(Clustering, CompleteGraphHasCoefficientOne) {
  const auto coefficients =
      a::clustering_coefficients(g::build_undirected(g::complete(8)));
  for (double c : coefficients) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Clustering, TriangleFreeGraphHasZero) {
  const auto coefficients =
      a::clustering_coefficients(g::build_undirected(g::grid(6, 6)));
  for (double c : coefficients) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Clustering, LowDegreeVerticesAreZeroNotNan) {
  const auto coefficients =
      a::clustering_coefficients(g::build_undirected(g::path(5)));
  for (double c : coefficients) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Transitivity, CompleteGraphIsOne) {
  const auto t = a::transitivity(g::build_undirected(g::complete(12)));
  EXPECT_DOUBLE_EQ(t.global_transitivity, 1.0);
  EXPECT_DOUBLE_EQ(t.avg_clustering, 1.0);
  EXPECT_EQ(t.triangles, g::complete_triangles(12));
}

TEST(Transitivity, StarIsZeroWithManyWedges) {
  const auto t = a::transitivity(g::build_undirected(g::star(20)));
  EXPECT_EQ(t.triangles, 0u);
  EXPECT_EQ(t.wedges, 19ull * 18 / 2);  // all through the centre
  EXPECT_DOUBLE_EQ(t.global_transitivity, 0.0);
}

TEST(Transitivity, MatchesBruteForceTriangleCount) {
  const auto graph = g::build_undirected(g::holme_kim(
      {.num_vertices = 1000, .edges_per_vertex = 5, .p_triad = 0.6, .seed = 42}));
  const auto t = a::transitivity(graph);
  EXPECT_EQ(t.triangles, lotus::baselines::brute_force(graph));
  EXPECT_GT(t.avg_clustering, 0.1);  // triad formation forces clustering
}

}  // namespace
