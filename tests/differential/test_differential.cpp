// Differential matrix driver: every counting path × every corpus graph ×
// every (backend, thread-count) cell must produce the brute-force count.
//
// On a mismatch the offending graph is dumped as a text edge list next to
// the test binary and the failure message carries a one-line
// `lotus_diff_repro` command that replays exactly that cell.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/tc_baselines.hpp"
#include "diff_harness.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace {

using lotus::testing::DiffExecution;
using lotus::testing::DiffGraph;
using lotus::testing::DiffPath;

/// Corpus graphs are generated once per process; the brute-force oracle is
/// computed once per graph (it does not depend on backend or threads).
struct PreparedGraph {
  DiffGraph spec;
  lotus::graph::CsrGraph csr;
  std::uint64_t expected = 0;
};

const std::vector<PreparedGraph>& prepared_corpus() {
  static const std::vector<PreparedGraph>* corpus = [] {
    auto* out = new std::vector<PreparedGraph>;
    for (DiffGraph& spec : lotus::testing::differential_corpus()) {
      PreparedGraph p;
      p.csr = lotus::graph::build_undirected(spec.edges);
      p.expected = lotus::baselines::brute_force(p.csr);
      p.spec = std::move(spec);
      out->push_back(std::move(p));
    }
    return out;
  }();
  return *corpus;
}

const std::vector<DiffPath>& paths() {
  static const std::vector<DiffPath>* p =
      new std::vector<DiffPath>(lotus::testing::differential_paths());
  return *p;
}

class DifferentialMatrix : public ::testing::TestWithParam<DiffExecution> {
 protected:
  void TearDown() override {
    // Leave the process-wide runtime the way the other suites expect it.
    lotus::testing::apply_execution({lotus::parallel::Backend::kPool, 0});
  }
};

TEST_P(DifferentialMatrix, EveryPathMatchesBruteForce) {
  const DiffExecution execution = GetParam();
  lotus::testing::apply_execution(execution);

  for (const PreparedGraph& graph : prepared_corpus()) {
    for (const DiffPath& path : paths()) {
      const std::uint64_t actual = path.count(graph.csr, graph.spec.config);
      if (actual == graph.expected) continue;
      // Mismatch: dump the graph and print the single-cell repro command.
      const std::string dump =
          "diff_" + graph.spec.name + "_" + path.name + ".el";
      lotus::graph::write_edge_list_text(dump, graph.spec.edges);
      ADD_FAILURE() << "triangle count mismatch: graph=" << graph.spec.name
                    << " path=" << path.name << " backend="
                    << lotus::testing::backend_name(execution.backend)
                    << " threads=" << execution.threads << " expected="
                    << graph.expected << " actual=" << actual
                    << "\n  graph dumped to " << dump << "\n  repro: "
                    << lotus::testing::repro_command(dump, graph.spec,
                                                     path.name, execution);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByThreads, DifferentialMatrix,
    ::testing::ValuesIn(lotus::testing::execution_matrix()),
    [](const ::testing::TestParamInfo<DiffExecution>& cell) {
      return lotus::testing::backend_name(cell.param.backend) + "_t" +
             std::to_string(cell.param.threads);
    });

// The acceptance bar of the harness: the matrix must span at least 200
// (graph × path × backend × threads) combinations. Computed from the
// definitions, so it holds independent of test sharding or ordering.
TEST(DifferentialCoverage, AtLeast200Combinations) {
  const std::size_t graphs = lotus::testing::differential_corpus().size();
  const std::size_t path_count = lotus::testing::differential_paths().size();
  const std::size_t cells = lotus::testing::execution_matrix().size();
  const std::size_t combinations = graphs * path_count * cells;
  RecordProperty("combinations", static_cast<int>(combinations));
  EXPECT_GE(combinations, 200u)
      << graphs << " graphs x " << path_count << " paths x " << cells
      << " execution cells";
}

// Every corpus name and path name is unique — duplicated names would make
// repro commands and dump files ambiguous.
TEST(DifferentialCoverage, NamesAreUnique) {
  std::map<std::string, int> seen;
  for (const auto& graph : lotus::testing::differential_corpus())
    EXPECT_EQ(++seen["g:" + graph.name], 1) << graph.name;
  for (const auto& path : paths())
    EXPECT_EQ(++seen["p:" + path.name], 1) << path.name;
}

// The dump/reload cycle used on mismatch is itself lossless for counting:
// a corpus graph written as .el and read back counts the same.
TEST(DifferentialCoverage, DumpRoundTripPreservesCount) {
  const PreparedGraph& graph = prepared_corpus().front().spec.edges.edges.empty()
                                   ? prepared_corpus()[2]
                                   : prepared_corpus().front();
  const std::string dump = "diff_roundtrip_check.el";
  lotus::graph::write_edge_list_text(dump, graph.spec.edges);
  const auto reloaded =
      lotus::graph::build_undirected(lotus::graph::read_edge_list_text(dump));
  EXPECT_EQ(lotus::baselines::brute_force(reloaded), graph.expected);
  std::remove(dump.c_str());
}

}  // namespace
