// lotus_diff_repro — replay one cell of the differential matrix.
//
// The differential test suite prints an invocation of this tool whenever a
// counting path disagrees with the brute-force oracle, e.g.:
//
//   lotus_diff_repro --graph diff_rmat_s10_forward_gallop.el
//       --path forward_gallop --backend pool --threads 4
//
// The tool loads the dumped edge list, applies the same configuration, runs
// the single failing path, and compares against brute force. Exit status 0
// means the counts agree (bug no longer reproduces), 1 means mismatch, 2
// means usage error. Other failure classes exit with their util::exit_code
// (docs/ROBUSTNESS.md) — unreadable input 3 (io_error), allocation failure 4
// (out_of_memory), thread failure 7 (resource_exhausted) — each with one
// "error (<code>): <message>" line on stderr.
#include <cstdint>
#include <exception>
#include <iostream>
#include <string>

#include "baselines/tc_baselines.hpp"
#include "diff_harness.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"
#include "util/status.hpp"

namespace {

int fail(const lotus::util::Status& status) {
  std::cerr << "error (" << lotus::util::status_code_name(status.code())
            << "): " << status.message() << "\n";
  return lotus::util::exit_code(status.code());
}

}  // namespace

int main(int argc, char** argv) {
  lotus::util::Cli cli(
      "Replay one (graph, path, backend, threads) cell of the differential "
      "correctness matrix against the brute-force oracle.");
  cli.opt("graph", "",
          "corpus graph name or edge-list file dumped by the suite")
      .opt("path", "lotus", "counting path name (see --list)")
      .opt("backend", "pool", "execution backend: pool | openmp")
      .opt("threads", "1", "thread count for the run")
      .opt("hub-count", "0", "LotusConfig::hub_count (0 = automatic)")
      .opt("relabel-fraction", "0.1", "LotusConfig::relabel_fraction")
      .flag("list", "print every known graph and path name and exit");
  if (!cli.parse(argc, argv)) return 2;

  const auto paths = lotus::testing::differential_paths();
  if (cli.get_flag("list")) {
    std::cout << "graphs:\n";
    for (const auto& g : lotus::testing::differential_corpus())
      std::cout << "  " << g.name << "\n";
    std::cout << "paths:\n";
    for (const auto& path : paths) std::cout << "  " << path.name << "\n";
    return 0;
  }

  const lotus::testing::DiffPath* path =
      lotus::testing::find_path(paths, cli.get("path"));
  if (path == nullptr) {
    std::cerr << "unknown path '" << cli.get("path") << "' (try --list)\n";
    return 2;
  }
  if (cli.get("graph").empty()) {
    std::cerr << "--graph is required\n";
    return 2;
  }

  lotus::testing::DiffExecution execution;
  const std::string backend = cli.get("backend");
  if (backend == "openmp") {
    if (!lotus::parallel::openmp_available()) {
      std::cerr << "this build has no OpenMP backend\n";
      return 2;
    }
    execution.backend = lotus::parallel::Backend::kOpenMP;
  } else if (backend != "pool") {
    std::cerr << "unknown backend '" << backend << "'\n";
    return 2;
  }
  execution.threads = static_cast<unsigned>(cli.get_int("threads"));

  // --graph names either a corpus entry (exact name match; brings that
  // graph's LOTUS config along) or an edge-list file on disk. Explicit
  // --hub-count / --relabel-fraction always win over the corpus config.
  lotus::core::LotusConfig config;
  lotus::graph::EdgeList edges;
  bool from_corpus = false;
  for (const auto& g : lotus::testing::differential_corpus()) {
    if (g.name == cli.get("graph")) {
      edges = g.edges;
      config = g.config;
      from_corpus = true;
      break;
    }
  }
  if (!from_corpus) {
    auto loaded = lotus::graph::read_edge_list_text_s(cli.get("graph"));
    if (!loaded.ok()) {
      const auto status = loaded.status();
      std::cerr << "'" << cli.get("graph")
                << "' is neither a corpus graph name (try --list) nor a "
                   "readable edge list\n";
      return fail(status);
    }
    edges = loaded.take();
  }
  if (cli.get_int("hub-count") != 0)
    config.hub_count =
        static_cast<lotus::graph::VertexId>(cli.get_int("hub-count"));
  if (cli.get("relabel-fraction") != "0.1")
    config.relabel_fraction = cli.get_double("relabel-fraction");

  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
  try {
    const auto csr = lotus::graph::build_undirected(edges);
    expected = lotus::baselines::brute_force(csr);
    lotus::testing::apply_execution(execution);
    actual = path->count(csr, config);
  } catch (...) {
    // bad_alloc -> 4, system_error -> 7, invalid_argument -> 2, other -> 1;
    // never aborts, so the suite's repro line always gets a diagnosable exit.
    return fail(lotus::util::status_from_current_exception());
  }

  std::cout << "graph=" << cli.get("graph") << " path=" << path->name
            << " backend=" << lotus::testing::backend_name(execution.backend)
            << " threads=" << execution.threads << "\n"
            << "brute_force=" << expected << " path_count=" << actual << " -> "
            << (actual == expected ? "MATCH" : "MISMATCH") << "\n";
  return actual == expected ? 0 : 1;
}
