// Differential correctness harness.
//
// The repository implements the same quantity — the triangle count of a
// simple undirected graph — through ~20 independent code paths: the LOTUS
// three-phase counter under both tiling policies, the Forward baselines over
// four intersection kernels (plus branchless and SIMD variants), matrix
// algebra, k-clique enumeration at k = 3, the streaming hub counter, and the
// blocked/fused HNN alternatives. This harness pits every path against a
// brute-force oracle over a seeded corpus of generated and adversarial
// graphs, across thread counts and execution backends.
//
// Any mismatch is a bug in exactly one place; the driver dumps the offending
// graph as a text edge list and prints a one-line `lotus_diff_repro` command
// that replays the single failing (graph, path, backend, threads) cell.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "lotus/config.hpp"
#include "parallel/parallel_for.hpp"

namespace lotus::testing {

/// One corpus entry: the raw edge list (exactly what gets dumped on a
/// mismatch), the LOTUS configuration the LOTUS-family paths run with, and a
/// size class so sanitizer runs can stick to the cheap graphs.
struct DiffGraph {
  std::string name;
  graph::EdgeList edges;
  core::LotusConfig config;
  bool heavy = false;  // generator-sized; excluded from the smoke corpus
};

/// One counting path: a name (stable; the repro CLI looks paths up by it)
/// and a function producing the full triangle count through that path.
/// Baseline paths ignore the config; LOTUS-family paths honour it.
struct DiffPath {
  std::string name;
  std::function<std::uint64_t(const graph::CsrGraph&, const core::LotusConfig&)>
      count;
};

/// One cell of the execution matrix.
struct DiffExecution {
  parallel::Backend backend = parallel::Backend::kPool;
  unsigned threads = 1;
};

/// Full seeded corpus: every generator family in src/graph/generators.* at
/// several sizes, plus the adversarial shapes (empty, single edge, star,
/// clique, all-hubs, zero-hub triangles, self-loops/duplicates, ...).
[[nodiscard]] std::vector<DiffGraph> differential_corpus();

/// Adversarial/deterministic subset only — cheap enough to run under TSan.
[[nodiscard]] std::vector<DiffGraph> smoke_corpus();

/// Every counting path the repository implements.
[[nodiscard]] std::vector<DiffPath> differential_paths();

/// Paths by `name`; nullptr when unknown (repro CLI lookup).
[[nodiscard]] const DiffPath* find_path(const std::vector<DiffPath>& paths,
                                        const std::string& name);

/// Thread-count axis {1, 4, hardware max}, deduplicated and sorted.
[[nodiscard]] std::vector<unsigned> thread_axis();

/// Backend × thread matrix; the OpenMP column is present only when OpenMP is
/// compiled in.
[[nodiscard]] std::vector<DiffExecution> execution_matrix();

/// Point the process-wide runtime at one matrix cell: resizes the default
/// pool and (when compiled in) the OpenMP runtime to `threads`, and selects
/// the backend.
void apply_execution(const DiffExecution& execution);

/// Stable display name ("pool" / "openmp").
[[nodiscard]] std::string backend_name(parallel::Backend backend);

/// The one-line repro command printed on a mismatch.
[[nodiscard]] std::string repro_command(const std::string& graph_file,
                                        const DiffGraph& graph,
                                        const std::string& path_name,
                                        const DiffExecution& execution);

}  // namespace lotus::testing
