#include "diff_harness.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "baselines/intersect.hpp"
#include "baselines/matrix_tc.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/oocore.hpp"
#include "lotus/count.hpp"
#include "lotus/kclique.hpp"
#include "lotus/lotus.hpp"
#include "lotus/lotus_graph.hpp"
#include "lotus/streaming.hpp"
#include "parallel/thread_pool.hpp"

namespace lotus::testing {

namespace {

namespace g = lotus::graph;

/// The adversarial / deterministic shapes: closed-form or trivially known
/// counts, plus the corner configurations (no vertices, no hubs, only hubs,
/// dirty input) that historically break exactly one path at a time.
std::vector<DiffGraph> adversarial_graphs() {
  std::vector<DiffGraph> corpus;

  corpus.push_back({"empty", g::EdgeList{0, {}}, {}, false});
  corpus.push_back({"single_edge", g::EdgeList{2, {{0, 1}}}, {}, false});
  corpus.push_back(
      {"single_triangle", g::EdgeList{3, {{0, 1}, {1, 2}, {0, 2}}}, {}, false});
  corpus.push_back({"two_triangles_shared_edge",
                    g::EdgeList{4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}}},
                    {},
                    false});

  // Dirty input: self-loops and duplicate edges in both orientations must be
  // cleaned identically by every path's preprocessing.
  corpus.push_back({"self_loops_dups",
                    g::EdgeList{5,
                                {{0, 1}, {1, 0}, {2, 2}, {0, 1}, {1, 2},
                                 {0, 2}, {3, 4}, {4, 3}, {4, 4}}},
                    {},
                    false});

  corpus.push_back({"star_200", g::star(200), {}, false});
  corpus.push_back({"path_100", g::path(100), {}, false});
  corpus.push_back({"cycle_64", g::cycle(64), {}, false});
  corpus.push_back({"wheel_24", g::wheel(24), {}, false});
  corpus.push_back({"grid_8x8", g::grid(8, 8), {}, false});
  corpus.push_back({"bipartite_16_16", g::complete_bipartite(16, 16), {}, false});
  corpus.push_back({"clique_24", g::complete(24), {}, false});

  // All-hubs: every vertex is a hub, so every triangle is HHH and the NHE
  // sub-graph is empty.
  {
    core::LotusConfig config;
    config.hub_count = 32;
    corpus.push_back({"clique_32_all_hubs", g::complete(32), config, false});
  }

  // Zero-hub triangles: the single hub (the star centre) touches no
  // triangle, so every triangle must be found by the NNN phase alone.
  {
    g::EdgeList el{44, {}};
    for (g::VertexId x = 1; x <= 40; ++x) el.edges.push_back({0, x});
    el.edges.push_back({41, 42});
    el.edges.push_back({42, 43});
    el.edges.push_back({41, 43});
    core::LotusConfig config;
    config.hub_count = 1;
    config.relabel_fraction = 0.0;
    corpus.push_back({"zero_hub_triangle", std::move(el), config, false});
  }

  return corpus;
}

/// Every generator family of src/graph/generators.* at two sizes each,
/// seeded so the corpus is identical on every run and machine.
std::vector<DiffGraph> generator_graphs() {
  std::vector<DiffGraph> corpus;
  corpus.push_back(
      {"rmat_s8", g::rmat({.scale = 8, .edge_factor = 8, .seed = 101}), {}, true});
  corpus.push_back(
      {"rmat_s10", g::rmat({.scale = 10, .edge_factor = 8, .seed = 102}), {}, true});
  corpus.push_back({"erdos_renyi_500", g::erdos_renyi(500, 8.0, 103), {}, true});
  corpus.push_back({"erdos_renyi_1500", g::erdos_renyi(1500, 12.0, 104), {}, true});
  corpus.push_back({"holme_kim_800",
                    g::holme_kim({.num_vertices = 800, .edges_per_vertex = 5,
                                  .p_triad = 0.6, .seed = 105}),
                    {},
                    true});
  corpus.push_back({"holme_kim_1600_local",
                    g::holme_kim({.num_vertices = 1600, .edges_per_vertex = 6,
                                  .p_triad = 0.5, .p_local = 0.3, .seed = 106}),
                    {},
                    true});
  corpus.push_back({"watts_strogatz_600",
                    g::watts_strogatz({.num_vertices = 600, .ring_degree = 6,
                                       .rewire_prob = 0.1, .seed = 107}),
                    {},
                    true});
  corpus.push_back({"watts_strogatz_1200",
                    g::watts_strogatz({.num_vertices = 1200, .ring_degree = 8,
                                       .rewire_prob = 0.2, .seed = 108}),
                    {},
                    true});
  corpus.push_back({"copy_web_800",
                    g::copy_web({.num_vertices = 800, .edges_per_vertex = 6,
                                 .p_copy = 0.7, .locality_window = 128,
                                 .seed = 109}),
                    {},
                    true});
  corpus.push_back({"copy_web_1600_core",
                    g::copy_web({.num_vertices = 1600, .edges_per_vertex = 7,
                                 .p_copy = 0.7, .locality_window = 256,
                                 .core_size = 64, .p_core = 0.3,
                                 .p_local = 0.2, .seed = 110}),
                    {},
                    true});
  return corpus;
}

/// LOTUS phases assembled by hand so the non-default phase-1 tiling policy
/// and HNN traversal variants get their own differential paths.
std::uint64_t lotus_phases(const g::CsrGraph& graph,
                           const core::LotusConfig& config,
                           core::TilingPolicy policy, bool blocked_hnn) {
  const auto lg = core::LotusGraph::build(graph, config);
  const auto hub = core::count_hhh_hhn(lg, config, policy);
  const std::uint64_t hnn = blocked_hnn
                                ? core::count_hnn_blocked(lg, 64)
                                : core::count_hnn(lg);
  return hub.hhh + hub.hhn + hnn + core::count_nnn(lg);
}

/// Streaming replay: feed every edge of the relabeled graph (arrival order
/// is irrelevant; CSR order is used) into the StreamingHubCounter and take
/// its exact HHH count; the remaining triangle classes come from the offline
/// phases. A disagreement in the HHH component shows up as a total mismatch.
std::uint64_t streaming_replay(const g::CsrGraph& graph,
                               const core::LotusConfig& config) {
  const auto lg = core::LotusGraph::build(graph, config);
  core::StreamingHubCounter counter(lg.hub_count());
  const auto& new_id = lg.relabeling();
  for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
    for (g::VertexId u : graph.neighbors(v))
      if (u < v) counter.add_edge(new_id[v], new_id[u]);
  const auto hub = core::count_hhh_hhn(lg, config);
  return counter.hhh_triangles() + hub.hhn + core::count_hnn(lg) +
         core::count_nnn(lg);
}

/// Forward algorithm over an explicit intersection kernel — covers the
/// branchless kernels that no named baseline exercises end-to-end.
template <typename Kernel>
std::uint64_t forward_with_kernel(const g::CsrGraph& graph, Kernel&& kernel) {
  const auto oriented = g::orient_by_id(graph);
  std::uint64_t count = 0;
  for (g::VertexId v = 0; v < oriented.num_vertices(); ++v) {
    const auto nv = oriented.neighbors(v);
    for (g::VertexId u : nv) count += kernel(nv, oriented.neighbors(u));
  }
  return count;
}

/// Out-of-core rows stage each corpus graph on disk in a uniquely named temp
/// file and push it through the pipeline under test, so a divergence in the
/// external builder, the mmap loader, or the parallel loader surfaces as an
/// ordinary count mismatch with the usual repro line.
std::string oocore_temp_path(const char* tag) {
  // The sequence alone is not unique across processes (ctest -j runs each
  // test case in its own process, and every process counts from 0), so the
  // pid rides along too.
  static std::atomic<std::uint64_t> seq{0};
  return (std::filesystem::temp_directory_path() /
          ("lotus_diff_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(seq.fetch_add(1)) + ".tmp"))
      .string();
}

std::uint64_t oocore_external_build(const g::CsrGraph& graph) {
  const std::string file = oocore_temp_path("el");
  {
    // Dump each undirected edge once; the builder symmetrizes.
    g::EdgeList el{graph.num_vertices(), {}};
    for (g::VertexId v = 0; v < graph.num_vertices(); ++v)
      for (g::VertexId u : graph.neighbors(v))
        if (v < u) el.edges.push_back({v, u});
    g::write_edge_list_text(file, el);
  }
  g::oocore::ExternalBuildOptions options;
  options.sort_budget_bytes = 1ull << 20;  // the floor: smallest buckets
  auto rebuilt = g::oocore::build_undirected_external_s(file, options);
  std::remove(file.c_str());
  if (!rebuilt.ok()) throw std::runtime_error(rebuilt.status().to_string());
  return baselines::forward_merge(rebuilt.value()).triangles;
}

std::uint64_t oocore_mapped_csx(const g::CsrGraph& graph,
                                const core::LotusConfig& config) {
  const std::string file = oocore_temp_path("csx");
  g::write_csr_binary(file, graph);
  auto mapped = g::oocore::read_csr_mapped_s(file);
  std::remove(file.c_str());  // the mapping outlives the unlink
  if (!mapped.ok()) throw std::runtime_error(mapped.status().to_string());
  // Full LOTUS pipeline over the zero-copy views, not just a read check.
  return core::count_triangles(mapped.value(), config).triangles;
}

std::uint64_t oocore_parallel_load(const g::CsrGraph& graph) {
  const std::string file = oocore_temp_path("par");
  g::write_csr_binary(file, graph);
  g::oocore::LoaderOptions options;
  options.chunk_bytes = 1;  // clamped to the 1 MiB floor: several chunks
  auto loaded = g::oocore::read_csr_binary_parallel_s(file, options);
  std::remove(file.c_str());
  if (!loaded.ok()) throw std::runtime_error(loaded.status().to_string());
  return baselines::forward_merge(loaded.value()).triangles;
}

}  // namespace

std::vector<DiffGraph> differential_corpus() {
  auto corpus = adversarial_graphs();
  auto heavy = generator_graphs();
  corpus.insert(corpus.end(), std::make_move_iterator(heavy.begin()),
                std::make_move_iterator(heavy.end()));
  return corpus;
}

std::vector<DiffGraph> smoke_corpus() { return adversarial_graphs(); }

std::vector<DiffPath> differential_paths() {
  using baselines::NullProbe;
  std::vector<DiffPath> paths;

  // --- LOTUS family (honours the per-graph config).
  paths.push_back({"lotus", [](const auto& graph, const auto& config) {
                     return core::count_triangles(graph, config).triangles;
                   }});
  paths.push_back(
      {"lotus_edge_balanced", [](const auto& graph, const auto& config) {
         return lotus_phases(graph, config, core::TilingPolicy::kEdgeBalanced,
                             false);
       }});
  paths.push_back({"lotus_fused", [](const auto& graph, const auto& config) {
                     auto fused = config;
                     fused.fuse_hnn_nnn = true;
                     return core::count_triangles(graph, fused).triangles;
                   }});
  paths.push_back(
      {"lotus_hnn_blocked", [](const auto& graph, const auto& config) {
         return lotus_phases(graph, config, core::TilingPolicy::kSquared, true);
       }});
  paths.push_back({"lotus_streaming_replay", streaming_replay});
  // Scalar reference path of the kernel layer: the dispatched SIMD kernels
  // disabled, probe-templated scalar mirrors everywhere.
  paths.push_back({"lotus_scalar_kernels", [](const auto& graph,
                                              const auto& config) {
                     auto scalar = config;
                     scalar.vectorize = false;
                     return core::count_triangles(graph, scalar).triangles;
                   }});

  // --- Forward over every intersection kernel.
  paths.push_back({"forward_merge", [](const auto& graph, const auto&) {
                     return baselines::forward_merge(graph).triangles;
                   }});
  paths.push_back({"forward_gallop", [](const auto& graph, const auto&) {
                     return baselines::forward_gallop(graph).triangles;
                   }});
  paths.push_back({"forward_hashed", [](const auto& graph, const auto&) {
                     return baselines::forward_hashed(graph).triangles;
                   }});
  paths.push_back({"forward_bitmap", [](const auto& graph, const auto&) {
                     return baselines::forward_bitmap(graph).triangles;
                   }});
  paths.push_back({"forward_simd", [](const auto& graph, const auto&) {
                     return baselines::forward_simd(graph).triangles;
                   }});
  paths.push_back({"forward_hybrid", [](const auto& graph, const auto&) {
                     return baselines::forward_hybrid(graph).triangles;
                   }});
  paths.push_back({"forward_hybrid_all_dense", [](const auto& graph,
                                                  const auto&) {
                     const auto oriented = g::degree_ordered_oriented(graph);
                     return baselines::forward_hybrid_prepared(oriented, 2);
                   }});
  paths.push_back({"forward_merge_branchless",
                   [](const auto& graph, const auto&) {
                     return forward_with_kernel(graph, [](auto a, auto b) {
                       return baselines::intersect_merge_branchless<g::VertexId>(
                           a, b);
                     });
                   }});
  paths.push_back({"forward_binary_branchfree",
                   [](const auto& graph, const auto&) {
                     return forward_with_kernel(graph, [](auto a, auto b) {
                       return baselines::intersect_binary_branchfree<g::VertexId>(
                           a, b);
                     });
                   }});

  // --- Other parallelization / iteration strategies.
  paths.push_back({"edge_parallel", [](const auto& graph, const auto&) {
                     return baselines::edge_parallel_forward(graph).triangles;
                   }});
  paths.push_back({"edge_iterator", [](const auto& graph, const auto&) {
                     return baselines::edge_iterator(graph).triangles;
                   }});
  paths.push_back({"node_iterator", [](const auto& graph, const auto&) {
                     return baselines::node_iterator(graph).triangles;
                   }});
  paths.push_back({"blocked_tc", [](const auto& graph, const auto&) {
                     return baselines::blocked_tc(graph).triangles;
                   }});

  // --- Matrix algebra and clique enumeration.
  paths.push_back({"ayz", [](const auto& graph, const auto&) {
                     return baselines::ayz_tc(graph);
                   }});
  paths.push_back({"spgemm_masked", [](const auto& graph, const auto&) {
                     return baselines::spgemm_masked_tc(graph);
                   }});
  paths.push_back({"kclique3", [](const auto& graph, const auto&) {
                     return core::count_kcliques(graph, 3).cliques;
                   }});

  // --- Out-of-core pipeline (docs/OUT_OF_CORE.md).
  paths.push_back({"oocore_external_build", [](const auto& graph, const auto&) {
                     return oocore_external_build(graph);
                   }});
  paths.push_back({"oocore_mapped_csx", [](const auto& graph,
                                           const auto& config) {
                     return oocore_mapped_csx(graph, config);
                   }});
  paths.push_back({"oocore_parallel_load", [](const auto& graph, const auto&) {
                     return oocore_parallel_load(graph);
                   }});

  return paths;
}

const DiffPath* find_path(const std::vector<DiffPath>& paths,
                          const std::string& name) {
  const auto it = std::find_if(paths.begin(), paths.end(),
                               [&](const DiffPath& p) { return p.name == name; });
  return it == paths.end() ? nullptr : &*it;
}

std::vector<unsigned> thread_axis() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::vector<unsigned> axis{1, 4, hw};
  std::sort(axis.begin(), axis.end());
  axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
  return axis;
}

std::vector<DiffExecution> execution_matrix() {
  std::vector<DiffExecution> matrix;
  for (unsigned threads : thread_axis())
    matrix.push_back({parallel::Backend::kPool, threads});
  if (parallel::openmp_available())
    for (unsigned threads : thread_axis())
      matrix.push_back({parallel::Backend::kOpenMP, threads});
  return matrix;
}

void apply_execution(const DiffExecution& execution) {
  parallel::set_num_threads(execution.threads);
#ifdef _OPENMP
  // omp_set_num_threads rejects 0; "hardware default" must be spelled out.
  unsigned omp_threads = execution.threads;
  if (omp_threads == 0) omp_threads = std::thread::hardware_concurrency();
  if (omp_threads == 0) omp_threads = 1;
  omp_set_num_threads(static_cast<int>(omp_threads));
#endif
  parallel::set_backend(execution.backend);
}

std::string backend_name(parallel::Backend backend) {
  return backend == parallel::Backend::kOpenMP ? "openmp" : "pool";
}

std::string repro_command(const std::string& graph_file, const DiffGraph& graph,
                          const std::string& path_name,
                          const DiffExecution& execution) {
  std::ostringstream cmd;
  cmd << "lotus_diff_repro --graph " << graph_file << " --path " << path_name
      << " --backend " << backend_name(execution.backend) << " --threads "
      << execution.threads << " --hub-count " << graph.config.hub_count
      << " --relabel-fraction " << graph.config.relabel_fraction;
  return cmd.str();
}

}  // namespace lotus::testing
