#include "simcache/cache_model.hpp"

#include <bit>
#include <stdexcept>

namespace lotus::simcache {

namespace {
std::uint32_t log2_exact(std::uint64_t value, const char* what) {
  if (value == 0 || (value & (value - 1)) != 0)
    throw std::invalid_argument(std::string(what) + " must be a power of two");
  return static_cast<std::uint32_t>(std::countr_zero(value));
}
}  // namespace

CacheModel::CacheModel(const CacheConfig& config) : config_(config) {
  line_shift_ = log2_exact(config.line_bytes, "line_bytes");
  const std::uint64_t lines = config.size_bytes / config.line_bytes;
  if (lines == 0 || lines % config.associativity != 0)
    throw std::invalid_argument("cache size must be a multiple of assoc * line");
  // Set counts need not be powers of two (Haswell's 25.6 MB / 20-way L3 has
  // 20480 sets); indexing uses modulo.
  num_sets_ = static_cast<std::uint32_t>(lines / config.associativity);
  ways_.resize(static_cast<std::size_t>(num_sets_) * config.associativity);
}

bool CacheModel::access(std::uint64_t addr) {
  ++clock_;
  const std::uint64_t line = addr >> line_shift_;
  const auto set = static_cast<std::uint32_t>(line % num_sets_);
  Way* begin = &ways_[static_cast<std::size_t>(set) * config_.associativity];

  Way* victim = begin;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (begin[w].tag == line) {
      begin[w].last_use = clock_;
      ++hits_;
      return true;
    }
    if (begin[w].last_use < victim->last_use) victim = &begin[w];
  }
  victim->tag = line;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

TlbModel::TlbModel(const TlbConfig& config)
    : config_(config),
      cache_(CacheConfig{
          "tlb",
          static_cast<std::uint64_t>(config.entries) * config.page_bytes,
          config.page_bytes, config.associativity}) {}

bool TlbModel::access(std::uint64_t addr) { return cache_.access(addr); }

}  // namespace lotus::simcache
