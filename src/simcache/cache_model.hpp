// Set-associative LRU cache model.
//
// The paper reads LLC/DTLB miss counters via PAPI on three real servers
// (Table 3). That hardware is not available here, so Figs. 4 and 5 are
// reproduced by replaying each algorithm's exact memory-access stream
// through this model. Only relative behaviour (Lotus vs Forward) matters
// for those figures, which an LRU set-associative model preserves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lotus::simcache {

struct CacheConfig {
  std::string name;
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;
};

/// One cache level. `access` returns true on hit and updates LRU state.
class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  /// Probe the line containing `addr`; allocates on miss (write-allocate,
  /// no distinction between loads and stores at this fidelity).
  bool access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

  void reset_counters() { hits_ = misses_ = 0; }

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t last_use = 0;
  };

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_;
  std::vector<Way> ways_;  // num_sets * associativity, row-major by set
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// TLB as a fully/set-associative LRU cache over page numbers.
struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;
  std::uint32_t associativity = 4;
};

class TlbModel {
 public:
  explicit TlbModel(const TlbConfig& config);

  bool access(std::uint64_t addr);

  [[nodiscard]] std::uint64_t hits() const noexcept { return cache_.hits(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return cache_.misses(); }

 private:
  TlbConfig config_;
  CacheModel cache_;  // reuse the LRU machinery with line = page
};

}  // namespace lotus::simcache
