// SimEventProvider: the simcache hardware model exposed through the
// obs::EventProvider interface, making it the portable fallback for
// `--events hw` (obs/hwc.hpp) on machines where perf_event_open is denied.
//
// Instrumented replays (tc/instrumented.hpp) feed `model()`; read() maps the
// model's PerfCounters onto the schema event vector. Cycles are not modeled
// directly by simcache, so they are derived from a coarse stall model
// (1 cycle per instruction plus fixed miss penalties) — good enough to rank
// phases, clearly labeled "simulated" in every export.
//
// Thread-safety: the wrapped PerfModel is stateful and unsynchronized;
// feed and read it from one thread at a time (replays run single-threaded).
//
// Overhead: inherited from the replay path — orders of magnitude slower than
// native counting; use only for attribution runs, never on hot paths.
#pragma once

#include <string>

#include "obs/hwc.hpp"
#include "simcache/machines.hpp"
#include "simcache/perf_model.hpp"

namespace lotus::simcache {

/// Map a model snapshot onto the schema event vector. `l2_misses` and
/// `llc_misses` are the model's exact equivalents; cycles come from the
/// stall model described above.
[[nodiscard]] inline obs::EventCounts to_event_counts(const PerfCounters& c) {
  obs::EventCounts out;
  out[obs::Event::kInstructions] = c.instructions();
  out[obs::Event::kL2Misses] = c.l2_misses;
  out[obs::Event::kLlcMisses] = c.llc_misses;
  out[obs::Event::kDtlbMisses] = c.dtlb_misses;
  out[obs::Event::kBranchMispredicts] = c.mispredicts;
  // Coarse stall model: 1 cycle/instruction + L2 12, LLC 40, DTLB-walk 100,
  // mispredict 15 cycles. Ranks phases; not a latency simulator.
  out[obs::Event::kCycles] = c.instructions() + 12 * c.l2_misses +
                             40 * c.llc_misses + 100 * c.dtlb_misses +
                             15 * c.mispredicts;
  return out;
}

class SimEventProvider final : public obs::EventProvider {
 public:
  explicit SimEventProvider(const MachineConfig& machine)
      : model_(machine), machine_name_(machine.name) {}

  /// The probe instrumented replays feed (read/branch/op calls).
  [[nodiscard]] PerfModel& model() noexcept { return model_; }

  [[nodiscard]] obs::EventSource source() const noexcept override {
    return obs::EventSource::kSimulated;
  }
  [[nodiscard]] std::string backend() const override {
    return "simcache:" + machine_name_;
  }
  [[nodiscard]] obs::EventCounts read() override {
    return to_event_counts(model_.counters());
  }

 private:
  PerfModel model_;
  std::string machine_name_;
};

}  // namespace lotus::simcache
