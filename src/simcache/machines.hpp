// Machine models from Table 3.
//
// Each entry describes one evaluation machine's per-core cache hierarchy and
// TLB. Because the replayed workloads are laptop-scale stand-ins for the
// paper's billion-edge graphs, each machine also has a `scaled(k)` variant
// that divides capacities by k — keeping the cache:working-set ratio, and
// therefore the Fig. 4/5 contrasts, representative.
#pragma once

#include <cstdint>
#include <string>

#include "simcache/cache_model.hpp"

namespace lotus::simcache {

struct MachineConfig {
  std::string name;
  CacheConfig l1;
  CacheConfig l2;
  CacheConfig l3;  // the slice visible to one core's accesses
  TlbConfig dtlb;

  [[nodiscard]] MachineConfig scaled(std::uint32_t factor) const {
    MachineConfig m = *this;
    m.name = name + "/÷" + std::to_string(factor);
    const auto shrink = [factor](CacheConfig& cache) {
      const std::uint64_t way_bytes =
          static_cast<std::uint64_t>(cache.line_bytes) * cache.associativity;
      std::uint64_t size = cache.size_bytes / factor;
      size -= size % way_bytes;  // keep set count integral
      cache.size_bytes = std::max(way_bytes, size);
    };
    shrink(m.l1);
    shrink(m.l2);
    shrink(m.l3);
    return m;
  }
};

/// Intel Xeon Gold 6130 (Table 3): 32K L1, 1M L2, 22M shared L3.
inline MachineConfig skylakex() {
  return {
      "SkyLakeX",
      {"L1", 32 * 1024, 64, 8},
      {"L2", 1024 * 1024, 64, 16},
      {"L3", 22ull * 1024 * 1024, 64, 11},
      {64, 4096, 4},
  };
}

/// Intel Xeon E5-4627 (Haswell): 32K L1, 256K L2, 25.6M L3.
inline MachineConfig haswell() {
  return {
      "Haswell",
      {"L1", 32 * 1024, 64, 8},
      {"L2", 256 * 1024, 64, 8},
      {"L3", 25ull * 1024 * 1024, 64, 20},
      {64, 4096, 4},
  };
}

/// AMD Epyc 7702: 32K L1, 512K L2, 16M L3 per CCX (512M total).
inline MachineConfig epyc() {
  return {
      "Epyc",
      {"L1", 32 * 1024, 64, 8},
      {"L2", 512 * 1024, 64, 8},
      {"L3", 16ull * 1024 * 1024, 64, 16},
      {64, 4096, 4},
  };
}

}  // namespace lotus::simcache
