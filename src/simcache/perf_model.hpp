// PerfModel: the composite hardware model + the probe fed to instrumented
// kernels.
//
// Implements the probe interface expected by the intersection kernels and
// LOTUS phases (read / branch / op). Each `read` walks L1 → L2 → L3 and the
// DTLB; each `branch` updates the gshare predictor; each `op` counts one
// arithmetic/compare instruction. The counters map onto the paper's figures:
//   Fig. 4a LLC misses     -> l3.misses()
//   Fig. 4b DTLB misses    -> dtlb.misses()
//   Fig. 5a memory accesses-> loads()
//   Fig. 5b instructions   -> instructions() (ops + loads + branches)
//   Fig. 5c branch mispred.-> mispredicts()
#pragma once

#include <cstdint>

#include "simcache/branch_predictor.hpp"
#include "simcache/cache_model.hpp"
#include "simcache/machines.hpp"

namespace lotus::simcache {

struct PerfCounters {
  std::uint64_t loads = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t ops = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;

  [[nodiscard]] std::uint64_t instructions() const {
    return ops + loads + branches;
  }
};

class PerfModel {
 public:
  explicit PerfModel(const MachineConfig& machine)
      : l1_(machine.l1), l2_(machine.l2), l3_(machine.l3), dtlb_(machine.dtlb) {}

  // --- Probe interface (matches baselines::NullProbe).
  void read(const void* addr, std::size_t /*bytes*/) {
    const auto a = reinterpret_cast<std::uint64_t>(addr);
    ++counters_.loads;
    dtlb_.access(a);
    if (l1_.access(a)) return;
    ++counters_.l1_misses;
    if (l2_.access(a)) return;
    ++counters_.l2_misses;
    if (l3_.access(a)) return;
    ++counters_.llc_misses;
  }

  void branch(std::uint64_t site, bool taken) { predictor_.record(site, taken); }

  void op(std::uint64_t count = 1) { counters_.ops += count; }

  /// Snapshot with derived fields filled in.
  [[nodiscard]] PerfCounters counters() const {
    PerfCounters c = counters_;
    c.dtlb_misses = dtlb_.misses();
    c.branches = predictor_.branches();
    c.mispredicts = predictor_.mispredicts();
    return c;
  }

 private:
  CacheModel l1_;
  CacheModel l2_;
  CacheModel l3_;
  TlbModel dtlb_;
  GsharePredictor predictor_;
  PerfCounters counters_;
};

}  // namespace lotus::simcache
