// Gshare branch predictor model.
//
// Fig. 5c compares branch mispredictions of Lotus and Forward. The
// mispredictions in triangle counting come almost entirely from the
// data-dependent comparisons inside intersection loops; a gshare predictor
// (global history XOR site, 2-bit saturating counters) captures exactly the
// predictability difference the paper measures.
#pragma once

#include <cstdint>
#include <vector>

namespace lotus::simcache {

class GsharePredictor {
 public:
  explicit GsharePredictor(unsigned history_bits = 12)
      : history_bits_(history_bits),
        table_(std::size_t{1} << history_bits, 1 /* weakly not-taken */) {}

  /// Record one dynamic branch at static `site` with outcome `taken`;
  /// returns true if the prediction was correct.
  bool record(std::uint64_t site, bool taken) {
    const std::size_t index =
        static_cast<std::size_t>((site ^ history_) & ((1ull << history_bits_) - 1));
    std::uint8_t& counter = table_[index];
    const bool predicted_taken = counter >= 2;
    const bool correct = predicted_taken == taken;
    if (taken && counter < 3) ++counter;
    if (!taken && counter > 0) --counter;
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & ((1ull << history_bits_) - 1);
    ++branches_;
    mispredicts_ += correct ? 0u : 1u;
    return correct;
  }

  [[nodiscard]] std::uint64_t branches() const noexcept { return branches_; }
  [[nodiscard]] std::uint64_t mispredicts() const noexcept { return mispredicts_; }

 private:
  unsigned history_bits_;
  std::vector<std::uint8_t> table_;
  std::uint64_t history_ = 0;
  std::uint64_t branches_ = 0;
  std::uint64_t mispredicts_ = 0;
};

}  // namespace lotus::simcache
