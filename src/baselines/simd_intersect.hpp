// SIMD sorted-set intersection.
//
// The paper's framework survey (Sec. 5.1.4) separates vectorized TC from
// scalar implementations; these entry points are the vectorized
// representative. Since the kernel layer landed they are thin veneers over
// the runtime ISA dispatch table (src/kernels, docs/KERNELS.md): the
// original ad-hoc AVX2 block-compare lives on as the AVX2 tier, and the
// same call now also reaches AVX-512/NEON where available, honouring the
// LOTUS_ISA override.
//
// The probe-templated overloads are the scalar mirrors the instrumentation
// contract requires (baselines/intersect.hpp): simcache replays cannot
// observe SIMD lane traffic, so a probed call replays the merge-equivalent
// scalar access stream — producing the identical count — and flushes
// comparison totals to obs exactly like intersect_merge.
#pragma once

#include <cstdint>
#include <span>

#include "baselines/intersect.hpp"

namespace lotus::baselines {

/// |a ∩ b| for strictly sorted 32-bit lists via the dispatched merge kernel
/// (AVX-512/AVX2/NEON when supported, scalar merge otherwise).
std::uint64_t intersect_simd(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b);

/// 16-bit variant (twice the lanes per block) matching the 2-byte neighbour
/// IDs of the LOTUS HE sub-graph — the compactness of Sec. 4.2 pays twice
/// when the intersection is vectorized.
std::uint64_t intersect_simd16(std::span<const std::uint16_t> a,
                               std::span<const std::uint16_t> b);

/// True when a vectorized tier (anything above scalar) is active.
bool simd_intersect_available();

/// Probe-templated scalar mirror of intersect_simd: identical count, exact
/// scalar access/branch stream for instrumented replays.
template <typename Probe>
std::uint64_t intersect_simd(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b, Probe& probe) {
  return intersect_merge<std::uint32_t>(a, b, probe);
}

/// Probe-templated scalar mirror of intersect_simd16 (the HE-phase kernel);
/// without it, simcache replays of the HE phase silently diverged from the
/// SIMD path.
template <typename Probe>
std::uint64_t intersect_simd16(std::span<const std::uint16_t> a,
                               std::span<const std::uint16_t> b, Probe& probe) {
  return intersect_merge<std::uint16_t>(a, b, probe);
}

}  // namespace lotus::baselines
