// SIMD sorted-set intersection.
//
// The paper's framework survey (Sec. 5.1.4) separates vectorized TC from
// scalar implementations; this kernel is the vectorized representative: an
// AVX2 block-compare intersection (each 8-lane block of one list compared
// against all rotations of the other's block), with a scalar merge tail and
// a runtime-dispatch fallback for non-AVX2 hosts.
#pragma once

#include <cstdint>
#include <span>

namespace lotus::baselines {

/// |a ∩ b| for strictly sorted 32-bit lists. Uses AVX2 when the CPU
/// supports it, otherwise falls back to scalar merge join.
std::uint64_t intersect_simd(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b);

/// 16-bit variant (16 lanes per block) matching the 2-byte neighbour IDs of
/// the LOTUS HE sub-graph — the compactness of Sec. 4.2 pays twice when the
/// intersection is vectorized.
std::uint64_t intersect_simd16(std::span<const std::uint16_t> a,
                               std::span<const std::uint16_t> b);

/// True when the AVX2 path is compiled in and the CPU supports it.
bool simd_intersect_available();

}  // namespace lotus::baselines
