// Sorted-set intersection kernels.
//
// These are the four standard intersection strategies surveyed by the paper
// (Sec. 2.2 / 6.3): merge join, binary/galloping search, hashing, and bitmap
// lookup. Every kernel is templated on a memory probe so the instrumented
// replays (src/tc) can feed the exact access/branch stream into the hardware
// models without duplicating algorithm code; the default NullProbe compiles
// to nothing.
//
// The merge and gallop kernels additionally flush element-comparison and
// fruitless-search totals to the per-thread obs counters (one flush per
// call; see obs/counters.hpp). Building with LOTUS_OBS=0 turns the flush
// into a no-op and the optimizer removes the local accumulators.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/counters.hpp"
#include "util/bitset.hpp"

namespace lotus::baselines {

/// No-op probe: kernels instantiated with it carry zero overhead.
struct NullProbe {
  void read(const void* /*addr*/, std::size_t /*bytes*/) noexcept {}
  void branch(std::uint64_t /*site*/, bool /*taken*/) noexcept {}
  void op(std::uint64_t /*count*/ = 1) noexcept {}
};

inline NullProbe null_probe;  // shared default; stateless by construction

/// |a ∩ b| by simultaneous scan. The kernel of choice for short, similarly
/// sized lists (LOTUS uses it for NNN and HNN; Sec. 4.4.3).
template <typename T, typename Probe = NullProbe>
std::uint64_t intersect_merge(std::span<const T> a, std::span<const T> b,
                              Probe& probe = null_probe) {
  std::uint64_t count = 0;
  std::uint64_t comparisons = 0;  // dead when LOTUS_OBS=0
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    probe.read(&a[i], sizeof(T));
    probe.read(&b[j], sizeof(T));
    probe.op();
    ++comparisons;
    const bool less = a[i] < b[j];
    probe.branch(0, less);
    if (less) {
      ++i;
    } else {
      const bool greater = a[i] > b[j];
      probe.branch(1, greater);
      if (greater) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
  }
  obs::count(obs::Counter::kIntersectComparisons, comparisons);
  if (count == 0 && comparisons > 0)
    obs::count(obs::Counter::kFruitlessSearches);
  return count;
}

/// |a ∩ b| with galloping (exponential + binary) search of each element of
/// the shorter list in the longer one — the GPU-favoured strategy of [31].
template <typename T, typename Probe = NullProbe>
std::uint64_t intersect_gallop(std::span<const T> a, std::span<const T> b,
                               Probe& probe = null_probe) {
  if (a.size() > b.size()) return intersect_gallop(b, a, probe);
  std::uint64_t count = 0;
  std::uint64_t comparisons = 0;  // dead when LOTUS_OBS=0
  std::size_t lo = 0;
  for (const T& x : a) {
    probe.read(&x, sizeof(T));
    // Gallop to bracket x, then binary-search the bracket.
    std::size_t step = 1, hi = lo;
    while (hi < b.size()) {
      probe.read(&b[hi], sizeof(T));
      probe.op();
      ++comparisons;
      const bool keep_going = b[hi] < x;
      probe.branch(2, keep_going);
      if (!keep_going) break;
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    std::size_t right = hi < b.size() ? hi + 1 : b.size();
    while (lo < right) {
      const std::size_t mid = lo + (right - lo) / 2;
      probe.read(&b[mid], sizeof(T));
      probe.op();
      ++comparisons;
      const bool go_right = b[mid] < x;
      probe.branch(3, go_right);
      if (go_right)
        lo = mid + 1;
      else
        right = mid;
    }
    if (lo < b.size()) {
      probe.read(&b[lo], sizeof(T));
      ++comparisons;
      if (b[lo] == x) {
        ++count;
        ++lo;
      }
    } else {
      break;  // every remaining a element exceeds b's maximum
    }
  }
  obs::count(obs::Counter::kIntersectComparisons, comparisons);
  if (count == 0 && comparisons > 0)
    obs::count(obs::Counter::kFruitlessSearches);
  return count;
}

/// Merge join that reports each common element to `visit` — used by the
/// per-vertex (local) triangle counter, which must know *which* third
/// vertex closes each triangle, not just how many do.
template <typename T, typename Visitor>
void intersect_merge_visit(std::span<const T> a, std::span<const T> b,
                           Visitor&& visit) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      visit(a[i]);
      ++i;
      ++j;
    }
  }
}

/// Branch-free merge: advances are computed arithmetically so the
/// data-dependent comparison never becomes a mispredictable branch — the
/// branch-miss reduction idea of [32] applied to merge join.
template <typename T, typename Probe = NullProbe>
std::uint64_t intersect_merge_branchless(std::span<const T> a,
                                         std::span<const T> b,
                                         Probe& probe = null_probe) {
  std::uint64_t count = 0;
  std::uint64_t comparisons = 0;  // dead when LOTUS_OBS=0
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const T x = a[i];
    const T y = b[j];
    probe.read(&a[i], sizeof(T));
    probe.read(&b[j], sizeof(T));
    probe.op();
    ++comparisons;
    count += x == y ? 1u : 0u;
    i += x <= y ? 1u : 0u;  // compiles to cmov/setcc, not a branch
    j += y <= x ? 1u : 0u;
  }
  obs::count(obs::Counter::kIntersectComparisons, comparisons);
  if (count == 0 && comparisons > 0)
    obs::count(obs::Counter::kFruitlessSearches);
  return count;
}

/// Branch-free binary search of each element of the shorter list in the
/// longer (Khuong-Morin array layout search [40], as deployed by [33]).
template <typename T, typename Probe = NullProbe>
std::uint64_t intersect_binary_branchfree(std::span<const T> a,
                                          std::span<const T> b,
                                          Probe& probe = null_probe) {
  if (a.size() > b.size()) return intersect_binary_branchfree(b, a, probe);
  if (b.empty()) return 0;
  std::uint64_t count = 0;
  for (const T& x : a) {
    probe.read(&x, sizeof(T));
    const T* base = b.data();
    std::size_t n = b.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      probe.read(&base[half - 1], sizeof(T));
      probe.op();
      base += base[half - 1] < x ? half : 0;  // cmov, no branch
      n -= half;
    }
    probe.read(base, sizeof(T));
    count += *base == x ? 1u : 0u;
  }
  return count;
}

/// Open-addressing hash set sized for one neighbour list; reused across
/// probes of the same list (forward-hashed of Schank & Wagner).
///
/// The empty-slot sentinel is the all-ones 64-bit value. Keys narrower than
/// 64 bits (the vertex-ID instantiations) widen to values that can never
/// equal the sentinel; a 64-bit key equal to ~0 would be indistinguishable
/// from an empty slot and silently unstorable, so build() rejects it with
/// std::invalid_argument instead of corrupting the table.
template <typename T>
class HashedSet {
 public:
  void build(std::span<const T> keys) {
    std::size_t cap = 16;
    while (cap < keys.size() * 2) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, kEmpty);
    for (const T& k : keys) {
      if constexpr (sizeof(T) >= sizeof(std::uint64_t))
        if (static_cast<std::uint64_t>(k) == kEmpty)
          throw std::invalid_argument(
              "HashedSet: key ~0 collides with the empty-slot sentinel");
      insert(k);
    }
  }

  template <typename Probe = NullProbe>
  [[nodiscard]] bool contains(T key, Probe& probe = null_probe) const {
    // Default-constructed set: no slots, nothing is a member. Without this
    // guard mask_ == 0 would index slots_[0] of an empty vector.
    if (slots_.empty()) return false;
    std::size_t slot = hash(key) & mask_;
    for (;;) {
      probe.read(&slots_[slot], sizeof(std::uint64_t));
      probe.op();
      const std::uint64_t s = slots_[slot];
      if (s == kEmpty) return false;
      if (static_cast<T>(s) == key) return true;
      slot = (slot + 1) & mask_;
    }
  }

  template <typename Probe = NullProbe>
  [[nodiscard]] std::uint64_t count_hits(std::span<const T> queries,
                                         Probe& probe = null_probe) const {
    std::uint64_t count = 0;
    for (const T& q : queries) {
      probe.read(&q, sizeof(T));
      count += contains(q, probe) ? 1u : 0u;
    }
    return count;
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::size_t hash(T key) noexcept {
    std::uint64_t x = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(x >> 32);
  }

  void insert(T key) {
    std::size_t slot = hash(key) & mask_;
    while (slots_[slot] != kEmpty) {
      if (static_cast<T>(slots_[slot]) == key) return;
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = static_cast<std::uint64_t>(key);
  }

  std::size_t mask_ = 0;
  std::vector<std::uint64_t> slots_;
};

/// Bitmap membership: caller sets bits for the reference list, then counts
/// hits of query lists (Latapy's new-vertex-listing).
template <typename T, typename Probe = NullProbe>
std::uint64_t count_bitmap_hits(std::span<const T> queries,
                                const util::Bitset& bitmap,
                                Probe& probe = null_probe) {
  std::uint64_t count = 0;
  for (const T& q : queries) {
    probe.read(&q, sizeof(T));
    probe.op();
    count += bitmap.test(q) ? 1u : 0u;
  }
  return count;
}

}  // namespace lotus::baselines
