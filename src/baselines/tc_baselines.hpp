// Baseline triangle-counting algorithms.
//
// These reimplement, from scratch, the comparator kernels of the paper's
// evaluation (Sec. 5.1.4) plus the classical algorithms of Sec. 2.2:
//   * forward_*            — Alg. 1 (Forward with degree ordering); the merge
//                            variant is the GAP-style kernel, the gallop
//                            variant the binary-search flavour of [31].
//   * edge_parallel_forward— GBBS-style: parallelism over oriented edges
//                            rather than vertices (parallelized intersection).
//   * edge_iterator        — GraphGrind-style iterator over full lists.
//   * node_iterator        — classical pair-enumeration algorithm.
//   * forward_hashed       — Schank & Wagner's hash-container variant.
//   * forward_bitmap       — Latapy's bitmap (new-vertex-listing) variant.
//   * forward_hybrid       — sparse-vs-dense degree split: dense-bitmap
//                            popcount probing above a degree threshold,
//                            dispatched SIMD merge below (kernels/hybrid.hpp).
//   * blocked_tc           — BBTC-style block-based traversal.
//   * brute_force          — O(V·d_max^2) oracle used only by tests.
//
// Functions taking a `CsrGraph` run end-to-end (preprocessing included) and
// report phase timings; `*_prepared` variants consume an already oriented
// graph for kernel-only comparisons.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace lotus::baselines {

/// End-to-end result: triangle count plus the two phases the paper times.
struct TcResult {
  std::uint64_t triangles = 0;
  double preprocess_s = 0.0;
  double count_s = 0.0;

  [[nodiscard]] double total_s() const { return preprocess_s + count_s; }
};

// --- Kernel-only entry points (prepared, degree-ordered oriented input).
std::uint64_t forward_merge_prepared(const graph::OrientedCsr& oriented);
std::uint64_t forward_simd_prepared(const graph::OrientedCsr& oriented);
std::uint64_t forward_gallop_prepared(const graph::OrientedCsr& oriented);
std::uint64_t forward_hashed_prepared(const graph::OrientedCsr& oriented);
std::uint64_t forward_bitmap_prepared(const graph::OrientedCsr& oriented);
std::uint64_t forward_hybrid_prepared(const graph::OrientedCsr& oriented,
                                      std::uint32_t degree_threshold = 64);
std::uint64_t edge_parallel_forward_prepared(const graph::OrientedCsr& oriented);
std::uint64_t blocked_tc_prepared(const graph::OrientedCsr& oriented,
                                  graph::VertexId block_size);

// --- End-to-end entry points (symmetric input; includes degree ordering).
TcResult forward_merge(const graph::CsrGraph& graph);
TcResult forward_simd(const graph::CsrGraph& graph);  // AVX2 intersection
TcResult forward_gallop(const graph::CsrGraph& graph);
TcResult forward_hashed(const graph::CsrGraph& graph);
TcResult forward_bitmap(const graph::CsrGraph& graph);
TcResult forward_hybrid(const graph::CsrGraph& graph);
TcResult edge_parallel_forward(const graph::CsrGraph& graph);
TcResult edge_iterator(const graph::CsrGraph& graph);
TcResult node_iterator(const graph::CsrGraph& graph);
TcResult blocked_tc(const graph::CsrGraph& graph,
                    graph::VertexId block_size = 1 << 14);

/// Reference oracle: correct for any simple symmetric graph; quadratic in
/// the maximum degree, so tests only.
std::uint64_t brute_force(const graph::CsrGraph& graph);

}  // namespace lotus::baselines
