#include "baselines/simd_intersect.hpp"

#include "baselines/intersect.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#define LOTUS_HAVE_AVX2_PATH 1
#endif

namespace lotus::baselines {

namespace {

#ifdef LOTUS_HAVE_AVX2_PATH

__attribute__((target("avx2"))) std::uint64_t intersect_avx2(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  const std::size_t na = a.size(), nb = b.size();

  // Rotate-left-by-one lane permutation, applied repeatedly to enumerate
  // all 8x8 lane pairings of the two blocks.
  const __m256i rotate = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);

  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&a[i]));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&b[j]));
    __m256i match = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb));
      vb = _mm256_permutevar8x32_epi32(vb, rotate);
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(match));
    count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(mask)));

    // Advance whichever block's maximum is smaller; both on a tie. All
    // cross-block pairs with the retired block have been compared.
    const std::uint32_t amax = a[i + 7];
    const std::uint32_t bmax = b[j + 7];
    i += amax <= bmax ? 8u : 0u;
    j += bmax <= amax ? 8u : 0u;
  }

  // Scalar merge over the tails.
  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

__attribute__((target("avx2"))) std::uint64_t intersect16_avx2(
    std::span<const std::uint16_t> a, std::span<const std::uint16_t> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  const std::size_t na = a.size(), nb = b.size();

  while (i + 16 <= na && j + 16 <= nb) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&a[i]));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(&b[j]));
    __m256i match = _mm256_setzero_si256();
    // 16 lane pairings: rotate b by one 16-bit lane per step. AVX2 has no
    // cross-lane 16-bit rotate, so compose an in-lane byte shift with a
    // 128-bit half swap every step.
    for (int r = 0; r < 16; ++r) {
      match = _mm256_or_si256(match, _mm256_cmpeq_epi16(va, vb));
      const __m256i swapped = _mm256_permute2x128_si256(vb, vb, 0x01);
      vb = _mm256_alignr_epi8(swapped, vb, 2);
    }
    const auto mask =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(match));
    // Each 16-bit match sets 2 mask bits.
    count += static_cast<unsigned>(__builtin_popcount(mask)) / 2;

    const std::uint16_t amax = a[i + 15];
    const std::uint16_t bmax = b[j + 15];
    i += amax <= bmax ? 16u : 0u;
    j += bmax <= amax ? 16u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

#endif  // LOTUS_HAVE_AVX2_PATH

bool cpu_has_avx2() {
#ifdef LOTUS_HAVE_AVX2_PATH
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

bool simd_intersect_available() {
  static const bool available = cpu_has_avx2();
  return available;
}

std::uint64_t intersect_simd(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) {
#ifdef LOTUS_HAVE_AVX2_PATH
  if (simd_intersect_available()) return intersect_avx2(a, b);
#endif
  return intersect_merge<std::uint32_t>(a, b);
}

std::uint64_t intersect_simd16(std::span<const std::uint16_t> a,
                               std::span<const std::uint16_t> b) {
#ifdef LOTUS_HAVE_AVX2_PATH
  if (simd_intersect_available()) return intersect16_avx2(a, b);
#endif
  return intersect_merge<std::uint16_t>(a, b);
}

}  // namespace lotus::baselines
