#include "baselines/simd_intersect.hpp"

#include "kernels/intersect.hpp"
#include "kernels/isa.hpp"

namespace lotus::baselines {

bool simd_intersect_available() {
  return kernels::active_isa() != kernels::Isa::kScalar;
}

std::uint64_t intersect_simd(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) {
  return kernels::intersect<std::uint32_t>(a, b);
}

std::uint64_t intersect_simd16(std::span<const std::uint16_t> a,
                               std::span<const std::uint16_t> b) {
  return kernels::intersect<std::uint16_t>(a, b);
}

}  // namespace lotus::baselines
