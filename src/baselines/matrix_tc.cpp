#include "baselines/matrix_tc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "graph/degree_order.hpp"
#include "parallel/parallel_for.hpp"
#include "util/bitset.hpp"

namespace lotus::baselines {

using graph::CsrGraph;
using graph::VertexId;

std::uint64_t ayz_tc(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return 0;
  const auto threshold = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(graph.num_edges() / 2))));

  // Rank vertices by (degree, id); a vertex is "low" if degree <= threshold.
  std::vector<VertexId> rank(n);
  {
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      return graph.degree(a) < graph.degree(b);
    });
    for (VertexId r = 0; r < n; ++r) rank[order[r]] = r;
  }
  auto is_low = [&](VertexId v) { return graph.degree(v) <= threshold; };

  // --- Triangles containing at least one low vertex, counted exactly once
  // at their rank-minimal low corner.
  const std::uint64_t with_low = parallel::parallel_reduce_add<std::uint64_t>(
      0, n, 64, [&](std::uint64_t vi) {
        const auto v = static_cast<VertexId>(vi);
        if (!is_low(v)) return std::uint64_t{0};
        auto nv = graph.neighbors(v);
        std::uint64_t local = 0;
        for (std::size_t i = 0; i < nv.size(); ++i) {
          const VertexId a = nv[i];
          if (is_low(a) && rank[a] < rank[v]) continue;  // a owns that triangle
          auto na = graph.neighbors(a);
          for (std::size_t j = i + 1; j < nv.size(); ++j) {
            const VertexId b = nv[j];
            if (is_low(b) && rank[b] < rank[v]) continue;
            local += std::binary_search(na.begin(), na.end(), b) ? 1u : 0u;
          }
        }
        return local;
      });

  // --- Triangles among high-degree vertices only: dense bit-matrix product
  // over the (≤ 2·sqrt(E)-vertex) high core.
  std::vector<VertexId> high;
  for (VertexId v = 0; v < n; ++v)
    if (!is_low(v)) high.push_back(v);
  std::vector<VertexId> high_index(n, 0);
  for (VertexId i = 0; i < high.size(); ++i) high_index[high[i]] = i;

  const auto h = static_cast<VertexId>(high.size());
  std::vector<util::Bitset> rows;
  rows.reserve(h);
  for (VertexId i = 0; i < h; ++i) {
    util::Bitset row(h);
    for (VertexId u : graph.neighbors(high[i]))
      if (!is_low(u) && high_index[u] < i) row.set(high_index[u]);
    rows.push_back(std::move(row));
  }
  // For each oriented high edge (i, j<i): common lower-index neighbours.
  std::uint64_t high_only = 0;
  for (VertexId i = 0; i < h; ++i)
    for (VertexId u : graph.neighbors(high[i])) {
      if (is_low(u)) continue;
      const VertexId j = high_index[u];
      if (j < i) high_only += util::Bitset::and_popcount(rows[i], rows[j]);
    }

  return with_low + high_only;
}

std::uint64_t spgemm_masked_tc(const CsrGraph& graph) {
  const graph::OrientedCsr oriented = graph::degree_ordered_oriented(graph);
  const VertexId n = oriented.num_vertices();

  // Row-wise masked product: (L·L) ∘ L. Each thread keeps one sparse
  // accumulator (counts + touched list) sized to the vertex count.
  std::vector<parallel::Padded<std::uint64_t>> partial(parallel::max_parallelism());
  parallel::parallel_for(0, n, 64,
      [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
        thread_local std::vector<std::uint32_t> spa;
        thread_local std::vector<VertexId> touched;
        if (spa.size() < n) spa.assign(n, 0);
        std::uint64_t local = 0;
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto i = static_cast<VertexId>(vi);
          auto row = oriented.neighbors(i);
          // Expand: row_i of L times L.
          for (VertexId k : row)
            for (VertexId j : oriented.neighbors(k)) {
              if (spa[j]++ == 0) touched.push_back(j);
            }
          // Mask with row_i: only (i, j) ∈ L contribute.
          for (VertexId j : row) local += spa[j];
          for (VertexId j : touched) spa[j] = 0;
          touched.clear();
        }
        partial[thread_index].value += local;
      });

  std::uint64_t total = 0;
  for (const auto& p : partial) total += p.value;
  return total;
}

}  // namespace lotus::baselines
