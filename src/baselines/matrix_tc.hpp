// Matrix-algebra triangle counting baselines (Sec. 6.1 context).
//
//   * ayz_tc           — Alon-Yuster-Zwick [1, 2]: vertices below the
//                        sqrt(E) degree threshold are handled by ordered
//                        pair enumeration; the dense high-degree core is
//                        multiplied as bit matrices (popcount AND).
//   * spgemm_masked_tc — masked sparse matrix product (the linear-algebra
//                        formulation of [8]): expand wedges row by row into
//                        a sparse accumulator, then mask with the adjacency
//                        row. Equivalent to "skip the intersection" [3].
// Both are exact and serve as additional comparators in the tests.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace lotus::baselines {

std::uint64_t ayz_tc(const graph::CsrGraph& graph);

std::uint64_t spgemm_masked_tc(const graph::CsrGraph& graph);

}  // namespace lotus::baselines
