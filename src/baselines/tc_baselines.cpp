#include "baselines/tc_baselines.hpp"

#include <algorithm>
#include <vector>

#include "baselines/intersect.hpp"
#include "baselines/simd_intersect.hpp"
#include "graph/builder.hpp"
#include "kernels/hybrid.hpp"
#include "graph/degree_order.hpp"
#include "parallel/parallel_for.hpp"
#include "util/bitset.hpp"
#include "util/memory_budget.hpp"
#include "util/timer.hpp"

namespace lotus::baselines {

using graph::CsrGraph;
using graph::OrientedCsr;
using graph::VertexId;

namespace {

/// Wrap a prepared kernel with the shared degree-ordering preprocessing.
template <typename Kernel>
TcResult end_to_end(const CsrGraph& g, Kernel&& kernel) {
  util::Timer timer;
  const OrientedCsr oriented = graph::degree_ordered_oriented(g);
  TcResult result;
  result.preprocess_s = timer.elapsed_s();
  timer.reset();
  result.triangles = kernel(oriented);
  result.count_s = timer.elapsed_s();
  return result;
}

}  // namespace

std::uint64_t forward_merge_prepared(const OrientedCsr& oriented) {
  const VertexId n = oriented.num_vertices();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, n, 64, [&](std::uint64_t vi) {
        const auto v = static_cast<VertexId>(vi);
        auto nv = oriented.neighbors(v);
        std::uint64_t local = 0;
        for (VertexId u : nv)
          local += intersect_merge<VertexId>(nv, oriented.neighbors(u));
        return local;
      });
}

std::uint64_t forward_simd_prepared(const OrientedCsr& oriented) {
  const VertexId n = oriented.num_vertices();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, n, 64, [&](std::uint64_t vi) {
        const auto v = static_cast<VertexId>(vi);
        auto nv = oriented.neighbors(v);
        std::uint64_t local = 0;
        for (VertexId u : nv)
          local += intersect_simd(nv, oriented.neighbors(u));
        return local;
      });
}

std::uint64_t forward_gallop_prepared(const OrientedCsr& oriented) {
  const VertexId n = oriented.num_vertices();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, n, 64, [&](std::uint64_t vi) {
        const auto v = static_cast<VertexId>(vi);
        auto nv = oriented.neighbors(v);
        std::uint64_t local = 0;
        for (VertexId u : nv)
          local += intersect_gallop<VertexId>(oriented.neighbors(u), nv);
        return local;
      });
}

std::uint64_t forward_hashed_prepared(const OrientedCsr& oriented) {
  const VertexId n = oriented.num_vertices();
  // The per-thread HashedSet scratch peaks at the largest out-degree; charge
  // it up front (master thread) so a memory budget can veto this kernel and
  // the caller can degrade to the scratch-free merge intersection.
  if (util::memory_accounting_active()) {
    std::size_t max_degree = 0;
    for (VertexId v = 0; v < n; ++v)
      max_degree = std::max(max_degree, oriented.neighbors(v).size());
    std::size_t cap = 16;
    while (cap < max_degree * 2) cap <<= 1;
    util::charge_current(static_cast<std::uint64_t>(parallel::max_parallelism()) *
                             cap * sizeof(std::uint64_t),
                         "hash_scratch");
  }
  std::vector<parallel::Padded<std::uint64_t>> partial(parallel::max_parallelism());
  parallel::parallel_for(0, n, 64,
      [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
        HashedSet<VertexId> set;  // rebuilt per outer vertex, reused per chunk
        std::uint64_t local = 0;
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = oriented.neighbors(v);
          if (nv.size() < 2) continue;
          set.build(nv);
          for (VertexId u : nv) local += set.count_hits(oriented.neighbors(u));
        }
        partial[thread_index].value += local;
      });
  std::uint64_t total = 0;
  for (const auto& p : partial) total += p.value;
  return total;
}

std::uint64_t forward_bitmap_prepared(const OrientedCsr& oriented) {
  const VertexId n = oriented.num_vertices();
  // Each thread owns an n-bit bitmap; charge all of them up front (master
  // thread) so a budget can veto the kernel before any worker allocates.
  util::charge_current(static_cast<std::uint64_t>(parallel::max_parallelism()) *
                           ((static_cast<std::uint64_t>(n) + 63) / 64 * 8),
                       "bitmap_scratch");
  std::vector<parallel::Padded<std::uint64_t>> partial(parallel::max_parallelism());
  parallel::parallel_for(0, n, 64,
      [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
        util::Bitset bitmap(n);  // per-chunk; bits are unset after each vertex
        std::uint64_t local = 0;
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = oriented.neighbors(v);
          if (nv.size() < 2) continue;
          for (VertexId u : nv) bitmap.set(u);
          for (VertexId u : nv)
            local += count_bitmap_hits<VertexId>(oriented.neighbors(u), bitmap);
          for (VertexId u : nv) bitmap.clear(u);
        }
        partial[thread_index].value += local;
      });
  std::uint64_t total = 0;
  for (const auto& p : partial) total += p.value;
  return total;
}

std::uint64_t forward_hybrid_prepared(const OrientedCsr& oriented,
                                      std::uint32_t degree_threshold) {
  const VertexId n = oriented.num_vertices();
  // The hybrid's per-thread bitmaps allocate lazily on worker threads, where
  // a budget cannot be charged; charge the worst case up front (master
  // thread) like forward_bitmap — but only when some vertex will actually
  // reach the dense path.
  if (util::memory_accounting_active()) {
    bool any_dense = false;
    for (VertexId v = 0; v < n && !any_dense; ++v)
      any_dense = oriented.neighbors(v).size() >= degree_threshold;
    if (any_dense)
      util::charge_current(
          static_cast<std::uint64_t>(parallel::max_parallelism()) *
              ((static_cast<std::uint64_t>(n) + 63) / 64 * 8),
          "hybrid_scratch");
  }
  return kernels::hybrid_forward_count(
      n, [&](std::uint32_t v) { return oriented.neighbors(v); },
      degree_threshold);
}

std::uint64_t edge_parallel_forward_prepared(const OrientedCsr& oriented) {
  // GBBS-style: the flat loop over oriented edges exposes the intersection
  // work of heavy vertices to many threads instead of one.
  const std::uint64_t m = oriented.num_edges();
  const auto& offsets = oriented.offsets();
  const auto& nbrs = oriented.neighbor_array();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, m, 2048, [&](std::uint64_t edge_index) {
        // Source vertex of this CSR slot, found by binary search on offsets.
        const auto it = std::upper_bound(offsets.begin(), offsets.end(), edge_index);
        const auto v = static_cast<VertexId>(it - offsets.begin() - 1);
        const VertexId u = nbrs[edge_index];
        return intersect_merge<VertexId>(oriented.neighbors(v),
                                         oriented.neighbors(u));
      });
}

std::uint64_t blocked_tc_prepared(const OrientedCsr& oriented,
                                  VertexId block_size) {
  // BBTC-style schedule: vertices are grouped into ranges and each
  // (source-block, neighbour-block) pair is one task, so the randomly
  // accessed second lists of a task fall inside one block.
  const VertexId n = oriented.num_vertices();
  if (block_size == 0) block_size = 1;
  const VertexId num_blocks = (n + block_size - 1) / block_size;
  const std::uint64_t tasks = static_cast<std::uint64_t>(num_blocks) * num_blocks;
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, tasks, 1, [&](std::uint64_t task) {
        const auto bv = static_cast<VertexId>(task / num_blocks);
        const auto bu = static_cast<VertexId>(task % num_blocks);
        if (bu > bv) return std::uint64_t{0};  // u < v, so bu <= bv only
        const VertexId v_begin = bv * block_size;
        const VertexId v_end = std::min<VertexId>(n, v_begin + block_size);
        const VertexId u_begin = bu * block_size;
        const VertexId u_end = std::min<VertexId>(n, u_begin + block_size);
        std::uint64_t local = 0;
        for (VertexId v = v_begin; v < v_end; ++v) {
          auto nv = oriented.neighbors(v);
          const auto first = std::lower_bound(nv.begin(), nv.end(), u_begin);
          for (auto it = first; it != nv.end() && *it < u_end; ++it)
            local += intersect_merge<VertexId>(nv, oriented.neighbors(*it));
        }
        return local;
      });
}

TcResult forward_merge(const CsrGraph& g) { return end_to_end(g, forward_merge_prepared); }
TcResult forward_simd(const CsrGraph& g) { return end_to_end(g, forward_simd_prepared); }
TcResult forward_gallop(const CsrGraph& g) { return end_to_end(g, forward_gallop_prepared); }
TcResult forward_hashed(const CsrGraph& g) { return end_to_end(g, forward_hashed_prepared); }
TcResult forward_bitmap(const CsrGraph& g) { return end_to_end(g, forward_bitmap_prepared); }
TcResult forward_hybrid(const CsrGraph& g) {
  return end_to_end(g, [](const OrientedCsr& oriented) {
    return forward_hybrid_prepared(oriented);
  });
}
TcResult edge_parallel_forward(const CsrGraph& g) {
  return end_to_end(g, edge_parallel_forward_prepared);
}
TcResult blocked_tc(const CsrGraph& g, VertexId block_size) {
  return end_to_end(g, [block_size](const OrientedCsr& oriented) {
    return blocked_tc_prepared(oriented, block_size);
  });
}

TcResult edge_iterator(const CsrGraph& g) {
  // Intersects the full neighbour lists of both endpoints of every
  // undirected edge; each triangle is found once per edge, i.e. 3 times.
  util::Timer timer;
  const OrientedCsr oriented = graph::orient_by_id(g);
  TcResult result;
  result.preprocess_s = timer.elapsed_s();
  timer.reset();
  const VertexId n = g.num_vertices();
  const std::uint64_t tripled = parallel::parallel_reduce_add<std::uint64_t>(
      0, n, 64, [&](std::uint64_t vi) {
        const auto v = static_cast<VertexId>(vi);
        std::uint64_t local = 0;
        for (VertexId u : oriented.neighbors(v))
          local += intersect_merge<VertexId>(g.neighbors(v), g.neighbors(u));
        return local;
      });
  result.triangles = tripled / 3;
  result.count_s = timer.elapsed_s();
  return result;
}

TcResult node_iterator(const CsrGraph& g) {
  // For every vertex, tests each pair of neighbours for adjacency (via
  // binary search); every triangle is seen from each corner, i.e. 3 times.
  util::Timer timer;
  TcResult result;
  result.preprocess_s = timer.elapsed_s();
  timer.reset();
  const VertexId n = g.num_vertices();
  const std::uint64_t tripled = parallel::parallel_reduce_add<std::uint64_t>(
      0, n, 16, [&](std::uint64_t vi) {
        const auto v = static_cast<VertexId>(vi);
        auto nv = g.neighbors(v);
        std::uint64_t local = 0;
        for (std::size_t i = 0; i < nv.size(); ++i) {
          auto nu = g.neighbors(nv[i]);
          for (std::size_t j = i + 1; j < nv.size(); ++j)
            local += std::binary_search(nu.begin(), nu.end(), nv[j]) ? 1u : 0u;
        }
        return local;
      });
  result.triangles = tripled / 3;
  result.count_s = timer.elapsed_s();
  return result;
}

std::uint64_t brute_force(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    auto nv = g.neighbors(v);
    for (std::size_t i = 0; i < nv.size(); ++i) {
      if (nv[i] >= v) break;  // enforce w < u < v: count each triangle once
      for (std::size_t j = i + 1; j < nv.size(); ++j) {
        if (nv[j] >= v) break;
        auto nu = g.neighbors(nv[j]);
        total += std::binary_search(nu.begin(), nu.end(), nv[i]) ? 1u : 0u;
      }
    }
  }
  return total;
}

}  // namespace lotus::baselines
