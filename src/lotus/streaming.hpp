// Streaming hub-triangle counting (the Sec. 6.2 extension).
//
// The paper observes that hubs create most triangles, so in a streaming
// setting LOTUS can keep the hub adjacency resident in memory and count hub
// triangles of the stream exactly and cheaply. This counter maintains one
// bit-row per hub and, on each arriving hub-to-hub edge (h1, h2), adds
// |N(h1) ∩ N(h2)| within the hub set via word-parallel AND+popcount — the
// number of HHH triangles the edge closes. Non-hub edges only update
// stream statistics.
//
// Memory: hub_count^2 bits (2 MB at 4096 hubs); intended for modest hub
// universes, which is exactly the streaming regime the paper sketches.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/types.hpp"
#include "util/bitset.hpp"

namespace lotus::core {

class StreamingHubCounter {
 public:
  /// `hub_count` fixes the hub universe: vertex IDs < hub_count are hubs
  /// (LOTUS ID space — callers relabel via LotusGraph::relabeling()).
  explicit StreamingHubCounter(graph::VertexId hub_count)
      : hub_count_(hub_count) {
    if (hub_count > (1u << 16))
      throw std::invalid_argument("streaming counter: hub_count above 2^16");
    rows_.reserve(hub_count);
    for (graph::VertexId h = 0; h < hub_count; ++h)
      rows_.emplace_back(hub_count);
  }

  /// Feed one undirected edge, in any order, duplicates tolerated.
  void add_edge(graph::VertexId u, graph::VertexId v) {
    if (u == v) return;
    if (u < hub_count_ && v < hub_count_) {
      if (rows_[u].test(v)) return;  // duplicate hub edge
      hhh_ += util::Bitset::and_popcount(rows_[u], rows_[v]);
      rows_[u].set(v);
      rows_[v].set(u);
      ++hub_hub_edges_;
    } else if (u < hub_count_ || v < hub_count_) {
      ++hub_nonhub_edges_;
    } else {
      ++nonhub_edges_;
    }
  }

  /// Exact count of triangles whose three vertices are all hubs.
  [[nodiscard]] std::uint64_t hhh_triangles() const noexcept { return hhh_; }

  [[nodiscard]] std::uint64_t hub_hub_edges() const noexcept { return hub_hub_edges_; }
  [[nodiscard]] std::uint64_t hub_nonhub_edges() const noexcept { return hub_nonhub_edges_; }
  [[nodiscard]] std::uint64_t nonhub_edges() const noexcept { return nonhub_edges_; }
  [[nodiscard]] graph::VertexId hub_count() const noexcept { return hub_count_; }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return static_cast<std::uint64_t>(hub_count_) * ((hub_count_ + 63) / 64) * 8;
  }

 private:
  graph::VertexId hub_count_;
  std::vector<util::Bitset> rows_;  // square hub adjacency, one row per hub
  std::uint64_t hhh_ = 0;
  std::uint64_t hub_hub_edges_ = 0;
  std::uint64_t hub_nonhub_edges_ = 0;
  std::uint64_t nonhub_edges_ = 0;
};

}  // namespace lotus::core
