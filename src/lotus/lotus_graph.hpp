// The LOTUS graph structure (Sec. 4.2) and its preprocessing (Alg. 2).
//
// A LotusGraph holds:
//   * H2H — triangular bit array of hub-to-hub edges (randomly accessed,
//     cache-resident working set of phase 1);
//   * HE  — CSX of each vertex's lower-ID hub neighbours, 16-bit IDs;
//   * NHE — CSX of each vertex's lower-ID non-hub neighbours, 32-bit IDs;
//   * the relabeling array mapping original to LOTUS IDs.
// Hub-to-hub edges appear both in H2H and in HE (the paper stores them
// twice; Fig. 3a).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "lotus/config.hpp"
#include "lotus/h2h_bitarray.hpp"
#include "obs/trace.hpp"

namespace lotus::core {

class LotusGraph {
 public:
  /// Alg. 2: relabel, split every lower-ID neighbour list into hub (HE) and
  /// non-hub (NHE) parts, and populate the H2H bit array. Runs in parallel
  /// over vertices. A non-null `tracer` receives the "relabel", "partition"
  /// and "serialize" sub-spans of the preprocessing breakdown.
  static LotusGraph build(const graph::CsrGraph& graph, const LotusConfig& config = {},
                          obs::PhaseTracer* tracer = nullptr);

  /// Reassemble from previously built parts (deserialization); validates
  /// structural consistency and throws std::invalid_argument on mismatch.
  /// Parts may be owned or mmap-backed (see lotus/serialize.hpp). Pass
  /// `validate = false` only for artifacts this process wrote itself (engine
  /// spill files): it skips the O(V+E) structural scan so a cold mapped load
  /// does not have to fault in every page up front.
  static LotusGraph from_parts(graph::VertexId hub_count, TriangularBitArray h2h,
                               graph::Csr16 he, graph::CsrGraph nhe,
                               util::ConstArray<graph::VertexId> new_id,
                               bool validate = true);

  [[nodiscard]] graph::VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] graph::VertexId hub_count() const noexcept { return hub_count_; }
  [[nodiscard]] bool is_hub(graph::VertexId v) const noexcept { return v < hub_count_; }

  [[nodiscard]] const TriangularBitArray& h2h() const noexcept { return h2h_; }
  [[nodiscard]] const graph::Csr16& he() const noexcept { return he_; }
  [[nodiscard]] const graph::CsrGraph& nhe() const noexcept { return nhe_; }

  /// new_id[old_id]; needed to translate external queries into LOTUS IDs.
  [[nodiscard]] const util::ConstArray<graph::VertexId>& relabeling() const noexcept {
    return new_id_;
  }

  /// Total topology bytes: HE + NHE (index arrays + neighbour IDs) + H2H
  /// (Table 7 accounting).
  [[nodiscard]] std::uint64_t topology_bytes() const noexcept {
    return he_.topology_bytes() + nhe_.topology_bytes() + h2h_.size_bytes();
  }

  /// Heap bytes pinned (≈0 for a fully mmap-backed LotusGraph) — what the
  /// engine cache charges for a remapped artifact.
  [[nodiscard]] std::uint64_t owned_bytes() const noexcept {
    return he_.owned_bytes() + nhe_.owned_bytes() + h2h_.owned_bytes() +
           new_id_.owned_bytes();
  }

 private:
  graph::VertexId num_vertices_ = 0;
  graph::VertexId hub_count_ = 0;
  TriangularBitArray h2h_;
  graph::Csr16 he_;
  graph::CsrGraph nhe_;
  util::ConstArray<graph::VertexId> new_id_;
};

}  // namespace lotus::core
