#include "lotus/recursive.hpp"

#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "lotus/count.hpp"
#include "lotus/lotus_graph.hpp"
#include "util/timer.hpp"

namespace lotus::core {

using graph::CsrGraph;
using graph::VertexId;

namespace {

/// The NHE sub-graph as a standalone symmetric graph over the non-hub
/// vertices, reindexed to [0, V - hubs).
CsrGraph extract_nhe_graph(const LotusGraph& lg) {
  const VertexId hubs = lg.hub_count();
  graph::EdgeList edges;
  edges.num_vertices = lg.num_vertices() - hubs;
  edges.edges.reserve(lg.nhe().num_edges());
  for (VertexId v = hubs; v < lg.num_vertices(); ++v)
    for (VertexId u : lg.nhe().neighbors(v))
      edges.edges.push_back({v - hubs, u - hubs});
  return graph::build_undirected(edges);
}

}  // namespace

RecursiveLotusResult count_triangles_recursive(const CsrGraph& graph,
                                               const LotusConfig& config,
                                               unsigned max_levels) {
  RecursiveLotusResult result;
  CsrGraph current = graph;

  for (unsigned level = 0; level < max_levels; ++level) {
    util::Timer timer;
    const LotusGraph lg = LotusGraph::build(current, config);
    result.preprocess_s += timer.elapsed_s();
    ++result.levels_used;

    timer.reset();
    const HubPhaseCounts hub_phase = count_hhh_hhn(lg, config);
    const std::uint64_t hnn = count_hnn(lg);
    result.triangles += hub_phase.hhh + hub_phase.hhn + hnn;

    const bool last_level = level + 1 == max_levels ||
                            lg.nhe().num_edges() < 4096 ||
                            lg.hub_count() >= lg.num_vertices();
    if (last_level) {
      // Close out with the plain NNN pass (Forward on NHE).
      result.triangles += count_nnn(lg);
      result.count_s += timer.elapsed_s();
      break;
    }
    result.count_s += timer.elapsed_s();

    // Recurse into the non-hub residue: its triangles are exactly the NNN
    // triangles of this level.
    timer.reset();
    current = extract_nhe_graph(lg);
    result.preprocess_s += timer.elapsed_s();
  }
  return result;
}

}  // namespace lotus::core
