// Tunable parameters of the LOTUS algorithm.
#pragma once

#include <algorithm>
#include <cstdint>

#include "graph/types.hpp"

namespace lotus::core {

struct LotusConfig {
  /// Number of hub vertices. 0 selects the automatic rule below; the paper
  /// fixes 64 Ki (Sec. 4.2), which is the upper bound here because HE stores
  /// neighbour IDs in 16 bits.
  graph::VertexId hub_count = 0;

  /// Fraction of highest-degree vertices relabeled to the first IDs
  /// (Sec. 4.3.1 uses 10%; hubs are always included).
  double relabel_fraction = 0.10;

  /// Squared edge tiling kicks in above this HE degree (Sec. 5.8 uses 512).
  std::uint32_t tiling_degree_threshold = 512;

  /// Tiles per heavy vertex = this factor × thread count (Sec. 5.8 uses 2).
  unsigned tiling_partitions_per_thread = 2;

  /// Ablation knob (Sec. 4.5): run the HNN and NNN loops fused instead of as
  /// two passes. The paper argues (and Fig. 4 confirms) split is better.
  bool fuse_hnn_nnn = false;

  /// Route the counting phases through the runtime-dispatched SIMD kernel
  /// layer (src/kernels, docs/KERNELS.md): word-level H2H row popcounts,
  /// 16-bit vectorized merge for HNN, and the sparse-vs-dense hybrid for
  /// NNN. false pins the probe-templated scalar reference kernels;
  /// instrumented (probed) runs use those regardless of this flag. The
  /// effective ISA tier additionally honours LOTUS_ISA (kernels/isa.hpp).
  bool vectorize = true;

  /// Degree at or above which the hybrid kernels switch a vertex from merge
  /// intersection to the dense-bitmap set/probe/clear strategy (the
  /// GraphChallenge-style vertex-range split). 0 disables the bitmap side
  /// (pure vectorized merge). Only meaningful with `vectorize`.
  std::uint32_t hybrid_degree_threshold = 64;

  /// Resolve the hub count for a graph with `num_vertices` vertices.
  /// Auto rule: 1% of vertices (the hub definition of Table 1), clamped to
  /// [16, min(2^16, V/2)] so scaled-down graphs keep a meaningful hub set
  /// and HE IDs always fit in 16 bits.
  [[nodiscard]] graph::VertexId resolve_hub_count(graph::VertexId num_vertices) const {
    constexpr graph::VertexId kMax = 1u << 16;
    if (hub_count != 0)
      return std::min({hub_count, kMax, std::max<graph::VertexId>(1, num_vertices)});
    const graph::VertexId one_percent = num_vertices / 100;
    const graph::VertexId cap = std::min(kMax, std::max<graph::VertexId>(1, num_vertices / 2));
    return std::clamp<graph::VertexId>(one_percent, std::min<graph::VertexId>(16, cap), cap);
  }
};

}  // namespace lotus::core
