// LotusGraph serialization.
//
// Preprocessing is ~19% of end-to-end time (Fig. 6); applications that count
// repeatedly (streaming snapshots, parameter sweeps, local counts after the
// global count) can persist the built structure and skip Alg. 2 on reload.
#pragma once

#include <string>

#include "lotus/lotus_graph.hpp"

namespace lotus::core {

/// Binary format "LOTUSLG1": header, relabeling array, H2H words, HE and
/// NHE arrays. Throws std::runtime_error on IO failure.
void write_lotus_binary(const std::string& path, const LotusGraph& lotus_graph);

/// Reads and structurally validates; throws std::runtime_error on bad
/// magic/truncation and std::invalid_argument on inconsistent content.
LotusGraph read_lotus_binary(const std::string& path);

}  // namespace lotus::core
