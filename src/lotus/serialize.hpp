// LotusGraph serialization.
//
// Preprocessing is ~19% of end-to-end time (Fig. 6); applications that count
// repeatedly (streaming snapshots, parameter sweeps, local counts after the
// global count) can persist the built structure and skip Alg. 2 on reload.
//
// Two on-disk versions exist:
//   * "LOTUSLG1" (legacy): length-prefixed arrays packed back to back.
//     Readable, no longer written. Sections are not alignment-guaranteed, so
//     a v1 file cannot be mmap'ed — read_lotus_mapped_s rejects it.
//   * "LOTUSLG2" (current): fixed 64-byte header carrying all array lengths,
//     followed by the six sections each padded to an 8-byte boundary
//     (docs/OUT_OF_CORE.md has the byte-level layout). Every array is
//     naturally aligned at a header-derivable offset, so a reader can either
//     stream the file into heap vectors or mmap it and serve the arrays as
//     zero-copy views.
//
// Writes go through a temp file + fsync + atomic rename (util/file_io.hpp):
// a crash mid-write never leaves a torn artifact at the target path.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "graph/oocore.hpp"
#include "lotus/lotus_graph.hpp"
#include "util/mmap_file.hpp"
#include "util/status.hpp"

namespace lotus::core {

/// Write `lotus_graph` as a v2 ("LOTUSLG2") artifact, durably (temp file,
/// fsync, atomic rename). Never throws.
[[nodiscard]] util::Status write_lotus_binary_s(const std::string& path,
                                                const LotusGraph& lotus_graph);

/// Read a v1 or v2 artifact into heap-owned arrays, with full structural
/// validation. Never throws.
[[nodiscard]] util::Expected<LotusGraph> read_lotus_binary_s(
    const std::string& path);

/// Map a v2 artifact and build a LotusGraph whose arrays are zero-copy views
/// into the page cache (owned_bytes() ≈ 0). Access-pattern hints follow the
/// counting kernels' iteration order: HE/NHE sections get MADV_SEQUENTIAL
/// (ascending relabeled-vertex order — the order the squared edge tiling
/// visits), the H2H words get MADV_WILLNEED (small, randomly probed).
///
/// `validate` controls the O(V+E) structural scan; pass false only for
/// artifacts this process wrote itself (engine spill files), where skipping
/// it keeps the cold load from faulting in every page. Header consistency
/// (sizes, offsets monotonicity bounds) is always checked. `verify` controls
/// checksum-footer verification of the mapped sections (kEager runs it under
/// the SIGBUS guard; footerless legacy files always load unverified).
/// Never throws.
[[nodiscard]] util::Expected<LotusGraph> read_lotus_mapped_s(
    const std::string& path, bool validate = true,
    graph::oocore::MapVerify verify = graph::oocore::MapVerify::kEager);

/// Append a complete v2 image to `out` at its current position (the engine
/// spill format embeds LotusGraph sections this way; tc/prepared.cpp). The
/// image must start on an 8-byte file offset for the mapped reader to work.
/// `path` is for error messages only.
[[nodiscard]] util::Status write_lotus_v2_stream_s(std::FILE* out,
                                                   const std::string& path,
                                                   const LotusGraph& lotus_graph);

/// Zero-copy LotusGraph over a v2 image spanning [base, base + size) inside
/// an existing mapping; `base` must be 8-aligned. read_lotus_mapped_s is
/// this with base = 0, size = whole file. `verify` as above.
[[nodiscard]] util::Expected<LotusGraph> read_lotus_v2_mapped_at_s(
    const std::shared_ptr<util::MappedFile>& file, std::uint64_t base,
    std::uint64_t size, bool validate,
    graph::oocore::MapVerify verify = graph::oocore::MapVerify::kEager);

/// Throwing conveniences (std::runtime_error on IO/format failure).
void write_lotus_binary(const std::string& path, const LotusGraph& lotus_graph);
LotusGraph read_lotus_binary(const std::string& path);
LotusGraph read_lotus_mapped(const std::string& path);

}  // namespace lotus::core
