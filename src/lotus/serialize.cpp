#include "lotus/serialize.hpp"

#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/checksum.hpp"
#include "util/file_io.hpp"
#include "util/mapguard.hpp"
#include "util/memory_budget.hpp"
#include "util/mmap_file.hpp"

namespace lotus::core {

namespace {

namespace cks = util::checksum;

using util::Expected;
using util::Status;
using util::StatusCode;

constexpr std::array<char, 8> kMagicV1 = {'L', 'O', 'T', 'U', 'S', 'L', 'G', '1'};
constexpr std::array<char, 8> kMagicV2 = {'L', 'O', 'T', 'U', 'S', 'L', 'G', '2'};

/// v2 header: magic + five u64 lengths + two reserved u64 = 64 bytes, so the
/// first section starts 8-aligned without any padding games.
constexpr std::uint64_t kHeaderBytesV2 = 64;

Status io_error(const std::string& path, const std::string& what) {
  return {StatusCode::kIoError, path + ": " + what};
}

Status bad_data(const std::string& path, const std::string& what) {
  return {StatusCode::kInvalidArgument, path + ": " + what};
}

struct HeaderV2 {
  std::uint64_t n = 0;
  std::uint64_t hubs = 0;
  std::uint64_t h2h_words = 0;
  std::uint64_t he_edges = 0;
  std::uint64_t nhe_edges = 0;
};

constexpr std::uint64_t pad8(std::uint64_t bytes) noexcept {
  return (bytes + 7) & ~std::uint64_t{7};
}

/// Checksum of a section over its pad8-padded on-disk extent: the footer
/// sums cover the zero padding too, so a flipped pad byte is also caught.
/// Heap-loaded arrays lack the padding; re-feed it as zeros.
std::uint64_t padded_checksum(const void* data, std::uint64_t bytes) {
  cks::Checksummer c;
  c.update(data, bytes);
  const std::uint64_t padding = pad8(bytes) - bytes;
  if (padding > 0) {
    const std::array<unsigned char, 8> zeros{};
    c.update(zeros.data(), padding);
  }
  return c.digest();
}

/// Reconstruct the exact 64-byte v2 header image for checksum verification.
std::array<unsigned char, kHeaderBytesV2> header_image(const HeaderV2& h) {
  std::array<unsigned char, kHeaderBytesV2> header{};
  std::memcpy(header.data(), kMagicV2.data(), kMagicV2.size());
  const std::array<std::uint64_t, 5> fields = {h.n, h.hubs, h.h2h_words,
                                               h.he_edges, h.nhe_edges};
  std::memcpy(header.data() + 8, fields.data(), sizeof fields);
  return header;
}

/// Byte offsets of the six sections. Every section starts on an 8-byte
/// boundary (u16/u32 sections are zero-padded up to one), so a mapped view
/// of any array is naturally aligned.
struct LayoutV2 {
  std::uint64_t new_id, h2h, he_offsets, he_neighbors, nhe_offsets,
      nhe_neighbors, total;
};

LayoutV2 layout_for(const HeaderV2& h) noexcept {
  LayoutV2 l{};
  std::uint64_t pos = kHeaderBytesV2;
  l.new_id = pos;
  pos += pad8(h.n * sizeof(graph::VertexId));
  l.h2h = pos;
  pos += h.h2h_words * sizeof(std::uint64_t);
  l.he_offsets = pos;
  pos += (h.n + 1) * sizeof(std::uint64_t);
  l.he_neighbors = pos;
  pos += pad8(h.he_edges * sizeof(std::uint16_t));
  l.nhe_offsets = pos;
  pos += (h.n + 1) * sizeof(std::uint64_t);
  l.nhe_neighbors = pos;
  pos += pad8(h.nhe_edges * sizeof(graph::VertexId));
  l.total = pos;
  return l;
}

/// Reject headers whose sizes are impossible before any arithmetic that
/// could overflow or any allocation a hostile file could inflate.
Status check_header(const std::string& path, const HeaderV2& h) {
  if (h.n > 0xffffffffULL) return bad_data(path, "vertex count exceeds 32 bits");
  if (h.hubs > (1ull << 16)) return bad_data(path, "corrupt header (hub count)");
  const std::uint64_t bits = h.hubs * (h.hubs - (h.hubs > 0 ? 1 : 0)) / 2;
  if (h.h2h_words != (bits + 63) / 64)
    return bad_data(path, "H2H word count does not match hub count");
  if (h.he_edges > (1ull << 48) || h.nhe_edges > (1ull << 48))
    return bad_data(path, "implausible edge count");
  return Status::Ok();
}

Status check_offsets(const std::string& path,
                     const util::ConstArray<std::uint64_t>& offsets,
                     std::uint64_t edges) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != edges)
    return bad_data(path, "corrupt offsets");
  for (std::size_t i = 1; i < offsets.size(); ++i)
    if (offsets[i] < offsets[i - 1]) return bad_data(path, "corrupt offsets");
  return Status::Ok();
}

/// Assemble the parts; converts from_parts' invalid_argument (and a budget
/// bad_alloc from validation scratch) into a Status.
Expected<LotusGraph> assemble(const std::string& path, const HeaderV2& h,
                              util::ConstArray<std::uint64_t> h2h_words,
                              util::ConstArray<std::uint64_t> he_offsets,
                              util::ConstArray<std::uint16_t> he_neighbors,
                              util::ConstArray<std::uint64_t> nhe_offsets,
                              util::ConstArray<graph::VertexId> nhe_neighbors,
                              util::ConstArray<graph::VertexId> new_id,
                              bool validate) {
  if (validate) {
    Status status = check_offsets(path, he_offsets, he_neighbors.size());
    if (status.ok()) status = check_offsets(path, nhe_offsets, nhe_neighbors.size());
    if (!status.ok()) return status;
  }
  try {
    TriangularBitArray h2h(static_cast<graph::VertexId>(h.hubs),
                           std::move(h2h_words));
    graph::Csr16 he(std::move(he_offsets), std::move(he_neighbors));
    graph::CsrGraph nhe(std::move(nhe_offsets), std::move(nhe_neighbors));
    return LotusGraph::from_parts(static_cast<graph::VertexId>(h.hubs),
                                  std::move(h2h), std::move(he), std::move(nhe),
                                  std::move(new_id), validate);
  } catch (...) {
    Status status = util::status_from_current_exception(StatusCode::kInvalidArgument);
    return Status{status.code(), path + ": " + status.message()};
  }
}

/// v1: length-prefixed arrays, unaligned; still readable for old artifacts.
template <typename T>
Status read_vector_v1(std::FILE* in, const std::string& path,
                      std::vector<T>& out) {
  std::uint64_t count = 0;
  Status status = util::fileio::read_fully(in, &count, sizeof count, path);
  if (!status.ok()) return status;
  // Sanity bound: refuse obviously corrupt lengths before allocating.
  if (count > (1ull << 36)) return bad_data(path, "implausible array length");
  util::charge_current(count * sizeof(T), "graph-load");
  out.resize(count);
  return util::fileio::read_fully(in, out.data(), count * sizeof(T), path);
}

Expected<LotusGraph> read_v1_body(std::FILE* in, const std::string& path) {
  std::uint64_t n = 0, hubs = 0;
  Status status = util::fileio::read_fully(in, &n, sizeof n, path);
  if (status.ok()) status = util::fileio::read_fully(in, &hubs, sizeof hubs, path);
  if (!status.ok()) return status;
  if (n > 0xffffffffULL || hubs > (1ull << 16))
    return bad_data(path, "corrupt header");

  std::vector<graph::VertexId> new_id;
  std::vector<std::uint64_t> h2h_words, he_offsets, nhe_offsets;
  std::vector<std::uint16_t> he_neighbors;
  std::vector<graph::VertexId> nhe_neighbors;
  status = read_vector_v1(in, path, new_id);
  if (status.ok()) status = read_vector_v1(in, path, h2h_words);
  if (status.ok()) status = read_vector_v1(in, path, he_offsets);
  if (status.ok()) status = read_vector_v1(in, path, he_neighbors);
  if (status.ok()) status = read_vector_v1(in, path, nhe_offsets);
  if (status.ok()) status = read_vector_v1(in, path, nhe_neighbors);
  if (!status.ok()) return status;

  if (new_id.size() != n || he_offsets.size() != n + 1 ||
      nhe_offsets.size() != n + 1)
    return bad_data(path, "array sizes disagree with header");
  HeaderV2 h;
  h.n = n;
  h.hubs = hubs;
  h.h2h_words = h2h_words.size();
  h.he_edges = he_neighbors.size();
  h.nhe_edges = nhe_neighbors.size();
  const std::uint64_t bits = hubs * (hubs - (hubs > 0 ? 1 : 0)) / 2;
  if (h.h2h_words != (bits + 63) / 64)
    return bad_data(path, "H2H word count does not match hub count");
  return assemble(path, h, std::move(h2h_words), std::move(he_offsets),
                  std::move(he_neighbors), std::move(nhe_offsets),
                  std::move(nhe_neighbors), std::move(new_id),
                  /*validate=*/true);
}

Status read_and_check_size_v2(std::FILE* in, const std::string& path,
                              HeaderV2& h, LayoutV2& layout, bool& has_footer,
                              std::uint64_t* sums /* kLotusSections */) {
  std::array<std::uint64_t, 7> fields{};  // n, hubs, words, he_e, nhe_e, 2 reserved
  Status status =
      util::fileio::read_fully(in, fields.data(), sizeof fields, path);
  if (!status.ok()) return status;
  h.n = fields[0];
  h.hubs = fields[1];
  h.h2h_words = fields[2];
  h.he_edges = fields[3];
  h.nhe_edges = fields[4];
  status = check_header(path, h);
  if (!status.ok()) return status;
  layout = layout_for(h);
  if (util::fileio::seek64(in, 0, SEEK_END) != 0)
    return io_error(path, "cannot determine file size");
  const std::int64_t end_pos = util::fileio::tell64(in);
  if (end_pos < 0) return io_error(path, "cannot determine file size");
  // The payload may be followed by a checksum footer (current writers) or
  // end exactly at the last section (pre-footer files, unverified).
  constexpr std::uint64_t kFooterSize = cks::footer_bytes(cks::kLotusSections);
  const auto file_size = static_cast<std::uint64_t>(end_pos);
  has_footer = file_size == layout.total + kFooterSize;
  if (!has_footer && file_size != layout.total)
    return bad_data(path, "file size does not match header");
  if (has_footer) {
    unsigned char footer[kFooterSize];
    if (util::fileio::seek64(in, static_cast<std::int64_t>(layout.total),
                             SEEK_SET) != 0)
      return io_error(path, "seek failed");
    status = util::fileio::read_fully(in, footer, sizeof footer, path);
    if (!status.ok()) return status;
    status = cks::read_footer(footer, cks::kLotusSections, path, sums);
    if (!status.ok()) return status;
    // Verify the header before any allocation its sizes could inflate.
    const auto header = header_image(h);
    if (cks::block_checksum(header.data(), header.size()) != sums[0])
      return io_error(path, "checksum mismatch in section 'header'");
  }
  return Status::Ok();
}

template <typename T>
Status read_section(std::FILE* in, const std::string& path, std::uint64_t offset,
                    std::uint64_t count, std::vector<T>& out) {
  if (util::fileio::seek64(in, static_cast<std::int64_t>(offset), SEEK_SET) != 0)
    return io_error(path, "seek failed");
  util::charge_current(count * sizeof(T), "graph-load");
  out.resize(count);
  return util::fileio::read_fully(in, out.data(), count * sizeof(T), path);
}

Expected<LotusGraph> read_v2_body(std::FILE* in, const std::string& path) {
  HeaderV2 h;
  LayoutV2 layout{};
  bool has_footer = false;
  std::uint64_t sums[cks::kLotusSections] = {};
  Status status = read_and_check_size_v2(in, path, h, layout, has_footer, sums);
  if (!status.ok()) return status;

  std::vector<graph::VertexId> new_id;
  std::vector<std::uint64_t> h2h_words, he_offsets, nhe_offsets;
  std::vector<std::uint16_t> he_neighbors;
  std::vector<graph::VertexId> nhe_neighbors;
  status = read_section(in, path, layout.new_id, h.n, new_id);
  if (status.ok())
    status = read_section(in, path, layout.h2h, h.h2h_words, h2h_words);
  if (status.ok())
    status = read_section(in, path, layout.he_offsets, h.n + 1, he_offsets);
  if (status.ok())
    status = read_section(in, path, layout.he_neighbors, h.he_edges, he_neighbors);
  if (status.ok())
    status = read_section(in, path, layout.nhe_offsets, h.n + 1, nhe_offsets);
  if (status.ok())
    status =
        read_section(in, path, layout.nhe_neighbors, h.nhe_edges, nhe_neighbors);
  if (!status.ok()) return status;
  if (has_footer) {
    // Streamed loads always verify eagerly: the bytes are already in the
    // heap, so hashing them costs one extra pass, no extra IO. The on-disk
    // sums cover each section's padded extent; padded_checksum re-feeds the
    // zero padding the heap arrays do not carry.
    const struct {
      const char* name;
      const void* data;
      std::uint64_t bytes;
    } sections[] = {
        {cks::kLotusSectionNames[1], new_id.data(),
         h.n * sizeof(graph::VertexId)},
        {cks::kLotusSectionNames[2], h2h_words.data(),
         h.h2h_words * sizeof(std::uint64_t)},
        {cks::kLotusSectionNames[3], he_offsets.data(),
         (h.n + 1) * sizeof(std::uint64_t)},
        {cks::kLotusSectionNames[4], he_neighbors.data(),
         h.he_edges * sizeof(std::uint16_t)},
        {cks::kLotusSectionNames[5], nhe_offsets.data(),
         (h.n + 1) * sizeof(std::uint64_t)},
        {cks::kLotusSectionNames[6], nhe_neighbors.data(),
         h.nhe_edges * sizeof(graph::VertexId)},
    };
    for (std::size_t i = 0; i < cks::kLotusSections - 1; ++i) {
      if (padded_checksum(sections[i].data, sections[i].bytes) != sums[i + 1])
        return io_error(path, "checksum mismatch in section '" +
                                  std::string(sections[i].name) + "'");
    }
  }
  return assemble(path, h, std::move(h2h_words), std::move(he_offsets),
                  std::move(he_neighbors), std::move(nhe_offsets),
                  std::move(nhe_neighbors), std::move(new_id),
                  /*validate=*/true);
}

}  // namespace

util::Status write_lotus_v2_stream_s(std::FILE* out, const std::string& tmp,
                                     const LotusGraph& lg) {
  HeaderV2 h;
  h.n = lg.num_vertices();
  h.hubs = lg.hub_count();
  h.h2h_words = lg.h2h().words().size();
  h.he_edges = lg.he().num_edges();
  h.nhe_edges = lg.nhe().num_edges();

  const auto header = header_image(h);
  Status status =
      util::fileio::write_fully(out, header.data(), header.size(), tmp);

  // One checksum per section, over its padded on-disk extent; the footer
  // follows the last section so readers can verify each array on load.
  std::uint64_t sums[cks::kLotusSections] = {};
  sums[0] = cks::block_checksum(header.data(), header.size());
  std::size_t section = 1;
  const auto write_section = [&](const void* data, std::uint64_t bytes) {
    if (!status.ok()) return;
    status = util::fileio::write_fully(out, data, bytes, tmp);
    const std::uint64_t padding = pad8(bytes) - bytes;
    if (status.ok() && padding > 0) {
      const std::array<unsigned char, 8> zeros{};
      status = util::fileio::write_fully(out, zeros.data(), padding, tmp);
    }
    sums[section++] = padded_checksum(data, bytes);
  };
  write_section(lg.relabeling().data(),
                h.n * sizeof(graph::VertexId));
  write_section(lg.h2h().words().data(), h.h2h_words * sizeof(std::uint64_t));
  write_section(lg.he().offsets().data(), (h.n + 1) * sizeof(std::uint64_t));
  write_section(lg.he().neighbor_array().data(),
                h.he_edges * sizeof(std::uint16_t));
  write_section(lg.nhe().offsets().data(), (h.n + 1) * sizeof(std::uint64_t));
  write_section(lg.nhe().neighbor_array().data(),
                h.nhe_edges * sizeof(graph::VertexId));
  if (status.ok()) {
    unsigned char footer[cks::footer_bytes(cks::kLotusSections)];
    cks::write_footer(sums, cks::kLotusSections, footer);
    status = util::fileio::write_fully(out, footer, sizeof footer, tmp);
  }
  return status;
}

util::Status write_lotus_binary_s(const std::string& path,
                                  const LotusGraph& lg) {
  util::fileio::AtomicFileWriter writer(path);
  if (!writer.ok()) return writer.open_status();
  const Status status =
      write_lotus_v2_stream_s(writer.file(), writer.temp_path(), lg);
  if (!status.ok()) return status;  // destructor unlinks the temp file
  return writer.commit();
}

util::Expected<LotusGraph> read_lotus_binary_s(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr)
    return io_error(path,
                    std::string("cannot open for reading: ") + std::strerror(errno));
  Expected<LotusGraph> result = [&]() -> Expected<LotusGraph> {
    std::array<char, 8> magic{};
    const Status status = util::fileio::read_fully(in, magic.data(), magic.size(), path);
    if (!status.ok()) return status;
    try {
      if (std::memcmp(magic.data(), kMagicV2.data(), kMagicV2.size()) == 0)
        return read_v2_body(in, path);
      if (std::memcmp(magic.data(), kMagicV1.data(), kMagicV1.size()) == 0)
        return read_v1_body(in, path);
    } catch (...) {
      // charge_current / resize can throw under a memory budget.
      return util::status_from_current_exception(StatusCode::kOutOfMemory);
    }
    return bad_data(path, "not a lotus graph file (bad magic)");
  }();
  std::fclose(in);
  return result;
}

util::Expected<LotusGraph> read_lotus_v2_mapped_at_s(
    const std::shared_ptr<util::MappedFile>& file, std::uint64_t base,
    std::uint64_t size, bool validate, graph::oocore::MapVerify verify) {
  const std::string& path = file->path();
  if (base % 8 != 0) return bad_data(path, "image offset is not 8-aligned");
  if (base > file->size() || size > file->size() - base)
    return bad_data(path, "image extends past end of file");
  if (size < kHeaderBytesV2) return bad_data(path, "truncated header");
  const std::byte* image = file->data() + base;
  if (std::memcmp(image, kMagicV1.data(), kMagicV1.size()) == 0)
    return bad_data(path,
                    "v1 artifact cannot be memory-mapped; rewrite it with "
                    "write_lotus_binary to upgrade to v2");
  if (std::memcmp(image, kMagicV2.data(), kMagicV2.size()) != 0)
    return bad_data(path, "not a lotus graph file (bad magic)");

  HeaderV2 h;
  std::array<std::uint64_t, 5> fields{};
  std::memcpy(fields.data(), image + 8, sizeof fields);
  h.n = fields[0];
  h.hubs = fields[1];
  h.h2h_words = fields[2];
  h.he_edges = fields[3];
  h.nhe_edges = fields[4];
  Status status = check_header(path, h);
  if (!status.ok()) return status;
  LayoutV2 layout = layout_for(h);
  constexpr std::uint64_t kFooterSize = cks::footer_bytes(cks::kLotusSections);
  const bool has_footer = size == layout.total + kFooterSize;
  if (!has_footer && size != layout.total)
    return bad_data(path, "image size does not match header");
  if (has_footer && verify == graph::oocore::MapVerify::kEager) {
    // One sequential pass over the mapping (doubling as readahead), under
    // the SIGBUS guard: truncation or bit rot surfaces as kIoError, not a
    // crash. Padded extents are contiguous on disk, so each section's extent
    // runs to the next section's offset.
    status = util::with_mapped_fault_guard(path, [&]() -> Status {
      std::uint64_t sums[cks::kLotusSections] = {};
      Status s = cks::read_footer(image + layout.total, cks::kLotusSections,
                                  path, sums);
      if (!s.ok()) return s;
      const cks::Section sections[cks::kLotusSections] = {
          {cks::kLotusSectionNames[0], image, kHeaderBytesV2},
          {cks::kLotusSectionNames[1], image + layout.new_id,
           layout.h2h - layout.new_id},
          {cks::kLotusSectionNames[2], image + layout.h2h,
           layout.he_offsets - layout.h2h},
          {cks::kLotusSectionNames[3], image + layout.he_offsets,
           layout.he_neighbors - layout.he_offsets},
          {cks::kLotusSectionNames[4], image + layout.he_neighbors,
           layout.nhe_offsets - layout.he_neighbors},
          {cks::kLotusSectionNames[5], image + layout.nhe_offsets,
           layout.nhe_neighbors - layout.nhe_offsets},
          {cks::kLotusSectionNames[6], image + layout.nhe_neighbors,
           layout.total - layout.nhe_neighbors},
      };
      return cks::verify_sections(sections, cks::kLotusSections, sums, path);
    });
    if (!status.ok()) return status;
  }
  layout.new_id += base;
  layout.h2h += base;
  layout.he_offsets += base;
  layout.he_neighbors += base;
  layout.nhe_offsets += base;
  layout.nhe_neighbors += base;
  layout.total += base;

  // Hints keyed to the counting kernels' access order (see header comment):
  // offset/neighbour sections are walked in ascending relabeled-vertex order
  // — the squared edge tiling's visit order — so sequential readahead wins;
  // the H2H words are probed randomly and should just be resident.
  using Advice = util::MappedFile::Advice;
  file->advise(Advice::kSequential, layout.he_offsets,
               layout.nhe_offsets - layout.he_offsets);
  file->advise(Advice::kSequential, layout.nhe_offsets,
               layout.total - layout.nhe_offsets);
  file->advise(Advice::kSequential, layout.new_id, layout.h2h - layout.new_id);
  file->advise(Advice::kWillNeed, layout.h2h, layout.he_offsets - layout.h2h);

  return assemble(
      path, h, util::mapped_view<std::uint64_t>(file, layout.h2h, h.h2h_words),
      util::mapped_view<std::uint64_t>(file, layout.he_offsets, h.n + 1),
      util::mapped_view<std::uint16_t>(file, layout.he_neighbors, h.he_edges),
      util::mapped_view<std::uint64_t>(file, layout.nhe_offsets, h.n + 1),
      util::mapped_view<graph::VertexId>(file, layout.nhe_neighbors, h.nhe_edges),
      util::mapped_view<graph::VertexId>(file, layout.new_id, h.n), validate);
}

util::Expected<LotusGraph> read_lotus_mapped_s(const std::string& path,
                                               bool validate,
                                               graph::oocore::MapVerify verify) {
  Expected<std::shared_ptr<util::MappedFile>> mapped = util::MappedFile::map(path);
  if (!mapped.ok()) return mapped.status();
  const std::shared_ptr<util::MappedFile> file = mapped.take();
  return read_lotus_v2_mapped_at_s(file, 0, file->size(), validate, verify);
}

namespace {
[[noreturn]] void rethrow(const Status& status) {
  throw std::runtime_error(status.message().empty() ? status.to_string()
                                                    : status.message());
}
}  // namespace

void write_lotus_binary(const std::string& path, const LotusGraph& lg) {
  const Status status = write_lotus_binary_s(path, lg);
  if (!status.ok()) rethrow(status);
}

LotusGraph read_lotus_binary(const std::string& path) {
  Expected<LotusGraph> result = read_lotus_binary_s(path);
  if (!result.ok()) rethrow(result.status());
  return result.take();
}

LotusGraph read_lotus_mapped(const std::string& path) {
  Expected<LotusGraph> result = read_lotus_mapped_s(path, /*validate=*/true);
  if (!result.ok()) rethrow(result.status());
  return result.take();
}

}  // namespace lotus::core
