#include "lotus/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace lotus::core {

namespace {

constexpr std::array<char, 8> kMagic = {'L', 'O', 'T', 'U', 'S', 'L', 'G', '1'};

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}

template <typename T>
void write_vector(std::ofstream& out, const std::vector<T>& data) {
  const std::uint64_t count = data.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::ifstream& in, const std::string& path) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!in) fail(path, "truncated length field");
  // Sanity bound: refuse obviously corrupt lengths before allocating.
  if (count > (1ull << 36)) fail(path, "implausible array length");
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) fail(path, "truncated array");
  return data;
}

}  // namespace

void write_lotus_binary(const std::string& path, const LotusGraph& lg) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = lg.num_vertices();
  const std::uint64_t hubs = lg.hub_count();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&hubs), sizeof hubs);
  write_vector(out, lg.relabeling());
  write_vector(out, lg.h2h().words());
  write_vector(out, lg.he().offsets());
  write_vector(out, lg.he().neighbor_array());
  write_vector(out, lg.nhe().offsets());
  write_vector(out, lg.nhe().neighbor_array());
  if (!out) fail(path, "write error");
}

LotusGraph read_lotus_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0)
    fail(path, "not a lotus graph file (bad magic)");

  std::uint64_t n = 0, hubs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&hubs), sizeof hubs);
  if (!in) fail(path, "truncated header");
  if (n > 0xffffffffULL || hubs > (1ull << 16)) fail(path, "corrupt header");

  auto new_id = read_vector<graph::VertexId>(in, path);
  auto h2h_words = read_vector<std::uint64_t>(in, path);
  auto he_offsets = read_vector<std::uint64_t>(in, path);
  auto he_neighbors = read_vector<std::uint16_t>(in, path);
  auto nhe_offsets = read_vector<std::uint64_t>(in, path);
  auto nhe_neighbors = read_vector<graph::VertexId>(in, path);

  if (new_id.size() != n || he_offsets.size() != n + 1 || nhe_offsets.size() != n + 1)
    fail(path, "array sizes disagree with header");
  auto check_offsets = [&](const std::vector<std::uint64_t>& offsets,
                           std::uint64_t edges) {
    if (offsets.front() != 0 || offsets.back() != edges) fail(path, "corrupt offsets");
    for (std::size_t i = 1; i < offsets.size(); ++i)
      if (offsets[i] < offsets[i - 1]) fail(path, "corrupt offsets");
  };
  check_offsets(he_offsets, he_neighbors.size());
  check_offsets(nhe_offsets, nhe_neighbors.size());

  TriangularBitArray h2h(static_cast<graph::VertexId>(hubs), std::move(h2h_words));
  graph::Csr16 he(std::move(he_offsets), std::move(he_neighbors));
  graph::CsrGraph nhe(std::move(nhe_offsets), std::move(nhe_neighbors));
  return LotusGraph::from_parts(static_cast<graph::VertexId>(hubs), std::move(h2h),
                                std::move(he), std::move(nhe), std::move(new_id));
}

}  // namespace lotus::core
