// Public entry point of the LOTUS triangle counter.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "lotus/config.hpp"
#include "lotus/lotus_graph.hpp"

namespace lotus::core {

/// Full result: total count, per-type counts, and the per-phase timings of
/// the paper's execution breakdown (Fig. 6).
struct LotusResult {
  std::uint64_t triangles = 0;
  std::uint64_t hhh = 0;  // 3 hubs
  std::uint64_t hhn = 0;  // 2 hubs
  std::uint64_t hnn = 0;  // 1 hub
  std::uint64_t nnn = 0;  // 0 hubs

  double preprocess_s = 0.0;
  double hhh_hhn_s = 0.0;
  double hnn_s = 0.0;
  double nnn_s = 0.0;

  graph::VertexId hub_count = 0;
  std::uint64_t he_edges = 0;
  std::uint64_t nhe_edges = 0;
  std::uint64_t topology_bytes = 0;

  [[nodiscard]] std::uint64_t hub_triangles() const { return hhh + hhn + hnn; }
  [[nodiscard]] double count_s() const { return hhh_hhn_s + hnn_s + nnn_s; }
  [[nodiscard]] double total_s() const { return preprocess_s + count_s(); }
};

/// End-to-end LOTUS: Alg. 2 preprocessing + Alg. 3 three-phase counting.
/// A non-null `tracer` receives the full span tree of the run — "preprocess"
/// (with relabel/partition/serialize children) and "count" (with
/// hhh_hhn/hnn/nnn children) — matching the Fig.-6 breakdown; see
/// docs/METRICS.md for the span names and their metadata.
LotusResult count_triangles(const graph::CsrGraph& graph,
                            const LotusConfig& config = {},
                            obs::PhaseTracer* tracer = nullptr);

/// Counting phases only, on a prebuilt LotusGraph (kernel benchmarking).
LotusResult count_triangles_prepared(const LotusGraph& lotus_graph,
                                     const LotusConfig& config = {},
                                     obs::PhaseTracer* tracer = nullptr);

}  // namespace lotus::core
