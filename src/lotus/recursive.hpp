// Recursive LOTUS (the Sec. 5.5 / Sec. 7 extension).
//
// For graphs with many moderately high-degree vertices (social networks with
// a long hub tail), one level of hub extraction leaves a still-skewed NHE
// sub-graph. Recursive LOTUS re-applies the decomposition: instead of
// counting NNN triangles with the Forward algorithm, it rebuilds the NHE
// sub-graph as a standalone graph, selects fresh hubs there, and recurses —
// splitting it into new H2H / HE / NHE components, as the paper suggests
// ("similar to how iHTL extracts dense flipped blocks").
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "lotus/config.hpp"

namespace lotus::core {

struct RecursiveLotusResult {
  std::uint64_t triangles = 0;
  unsigned levels_used = 0;
  double preprocess_s = 0.0;  // summed over levels
  double count_s = 0.0;       // summed over levels
};

/// Count triangles with up to `max_levels` of hub extraction. Level 1 is
/// plain LOTUS; recursion stops early when the remaining NHE sub-graph is
/// too small or no longer skew-dominated.
RecursiveLotusResult count_triangles_recursive(const graph::CsrGraph& graph,
                                               const LotusConfig& config = {},
                                               unsigned max_levels = 3);

}  // namespace lotus::core
