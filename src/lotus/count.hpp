// LOTUS triangle counting (Alg. 3): three phases, each concentrating its
// random memory accesses on one small data structure (Table 2).
//
// Every phase is templated on a memory probe (default NullProbe → zero
// overhead) so the instrumented replays in src/tc reuse this exact code.
// Probes are stateful and unsynchronized: instrumented runs must execute
// with parallel::set_num_threads(1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baselines/intersect.hpp"
#include "lotus/lotus_graph.hpp"
#include "lotus/tiling.hpp"
#include "obs/counters.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace lotus::core {

struct HubPhaseCounts {
  std::uint64_t hhh = 0;  // triangles whose apex vertex is itself a hub
  std::uint64_t hhn = 0;  // apex is a non-hub with two connected hub neighbours
};

/// One contiguous h1-index range of one vertex's HE list; the unit of
/// phase-1 scheduling.
struct HubTile {
  graph::VertexId v;
  std::uint32_t begin;
  std::uint32_t end;
};

/// Build the phase-1 tile list under a partitioning policy. Squared tiling
/// splits heavy vertices (HE degree > threshold) into equal-pair-work tiles;
/// light vertices are batched separately by the scheduler. Edge-balanced
/// splits the flattened HE entry stream into ~256·threads equal-entry tiles
/// (the comparison policy of Table 9).
std::vector<std::vector<HubTile>> build_hub_tasks(const LotusGraph& lg,
                                                  const LotusConfig& config,
                                                  TilingPolicy policy,
                                                  unsigned threads);

/// Phase 1 — HHH + HHN (Alg. 3 lines 2-6). Iterates all pairs of hub
/// neighbours of every vertex and tests connectivity in the H2H bit array.
/// `busy_s_out`, if non-null, receives per-thread busy seconds (Table 9).
template <typename Probe = baselines::NullProbe>
HubPhaseCounts count_hhh_hhn(const LotusGraph& lg, const LotusConfig& config,
                             TilingPolicy policy = TilingPolicy::kSquared,
                             std::vector<double>* busy_s_out = nullptr,
                             Probe& probe = baselines::null_probe) {
  const TriangularBitArray& h2h = lg.h2h();
  const graph::Csr16& he = lg.he();

  parallel::ThreadPool& pool = parallel::default_pool();
  auto tasks = build_hub_tasks(lg, config, policy, pool.size());

  std::vector<parallel::Padded<HubPhaseCounts>> partial(pool.size());
  std::vector<parallel::WorkStealingScheduler::Task> jobs;
  jobs.reserve(tasks.size());
  for (auto& task : tasks) {
    jobs.emplace_back([&, segments = std::move(task)](unsigned thread_index) {
      HubPhaseCounts local;
      std::uint64_t probes = 0;  // H2H test_bit calls; dead when LOTUS_OBS=0
      for (const HubTile& tile : segments) {
        auto list = he.neighbors(tile.v);
        probes += pair_work(tile.begin, tile.end);
        std::uint64_t found = 0;
        for (std::uint32_t a = tile.begin; a < tile.end; ++a) {
          const std::uint16_t h1 = list[a];
          probe.read(&list[a], sizeof(std::uint16_t));
          const std::uint64_t base = TriangularBitArray::row_base(h1);
          for (std::uint32_t b = 0; b < a; ++b) {
            const std::uint16_t h2 = list[b];
            probe.read(&list[b], sizeof(std::uint16_t));
            const std::uint64_t bit = base + h2;
            probe.read(h2h.word_address(bit), sizeof(std::uint64_t));
            probe.op();
            const bool hit = h2h.test_bit(bit);
            probe.branch(4, hit);
            found += hit ? 1u : 0u;
          }
        }
        (lg.is_hub(tile.v) ? local.hhh : local.hhn) += found;
      }
      obs::count(obs::Counter::kBitarrayProbes, probes);
      partial[thread_index].value.hhh += local.hhh;
      partial[thread_index].value.hhn += local.hhn;
    });
  }

  parallel::WorkStealingScheduler scheduler(pool);
  std::vector<double> busy = scheduler.run(std::move(jobs));
  if (busy_s_out) *busy_s_out = std::move(busy);

  HubPhaseCounts total;
  for (const auto& p : partial) {
    total.hhh += p.value.hhh;
    total.hhn += p.value.hhn;
  }
  return total;
}

/// Phase 2 — HNN (Alg. 3 lines 7-9): for each non-hub edge (v, u), count the
/// common hub neighbours of v and u in the compact 16-bit HE lists.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_hnn(const LotusGraph& lg,
                        Probe& probe = baselines::null_probe) {
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, lg.num_vertices(), 64, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        auto hub_list = he.neighbors(v);
        std::uint64_t local = 0;
        for (graph::VertexId u : nhe.neighbors(v)) {
          probe.read(&u, sizeof(graph::VertexId));
          local += baselines::intersect_merge<std::uint16_t>(
              hub_list, he.neighbors(u), probe);
        }
        return local;
      });
}

/// Phase 3 — NNN (Alg. 3 lines 10-12): Forward algorithm restricted to the
/// NHE sub-graph; hub edges are never touched (the pruning of Sec. 3.3).
template <typename Probe = baselines::NullProbe>
std::uint64_t count_nnn(const LotusGraph& lg,
                        Probe& probe = baselines::null_probe) {
  const graph::CsrGraph& nhe = lg.nhe();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, lg.num_vertices(), 64, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        auto nv = nhe.neighbors(v);
        std::uint64_t local = 0;
        for (graph::VertexId u : nv) {
          probe.read(&u, sizeof(graph::VertexId));
          local += baselines::intersect_merge<graph::VertexId>(
              nv, nhe.neighbors(u), probe);
        }
        return local;
      });
}

/// Blocked HNN (the second Sec. 7 future-work item): processes non-hub
/// edges in blocks of their target u, so the randomly accessed HE lists of
/// one pass come from a bounded ID range and can stay cached. Counting is
/// identical to count_hnn; only the traversal order changes.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_hnn_blocked(const LotusGraph& lg,
                                graph::VertexId block_size,
                                Probe& probe = baselines::null_probe) {
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();
  const graph::VertexId n = lg.num_vertices();
  if (block_size == 0) block_size = 1;
  std::uint64_t total = 0;
  for (graph::VertexId block_begin = lg.hub_count(); block_begin < n;
       block_begin += block_size) {
    const graph::VertexId block_end =
        block_begin + block_size < n ? block_begin + block_size : n;
    total += parallel::parallel_reduce_add<std::uint64_t>(
        0, n, 256, [&](std::uint64_t vi) {
          const auto v = static_cast<graph::VertexId>(vi);
          auto nv = nhe.neighbors(v);
          auto first = std::lower_bound(nv.begin(), nv.end(), block_begin);
          std::uint64_t local = 0;
          for (auto it = first; it != nv.end() && *it < block_end; ++it) {
            probe.read(&*it, sizeof(graph::VertexId));
            local += baselines::intersect_merge<std::uint16_t>(
                he.neighbors(v), he.neighbors(*it), probe);
          }
          return local;
        });
  }
  return total;
}

/// Fused HNN + NNN (the rejected alternative of Sec. 4.5, kept for the
/// ablation bench): one pass over NHE doing both intersections, enlarging
/// the randomly accessed working set.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_hnn_nnn_fused(const LotusGraph& lg,
                                  Probe& probe = baselines::null_probe) {
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, lg.num_vertices(), 64, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        auto nv = nhe.neighbors(v);
        auto hub_list = he.neighbors(v);
        std::uint64_t local = 0;
        for (graph::VertexId u : nv) {
          probe.read(&u, sizeof(graph::VertexId));
          local += baselines::intersect_merge<std::uint16_t>(
              hub_list, he.neighbors(u), probe);
          local += baselines::intersect_merge<graph::VertexId>(
              nv, nhe.neighbors(u), probe);
        }
        return local;
      });
}

}  // namespace lotus::core
