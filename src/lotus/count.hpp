// LOTUS triangle counting (Alg. 3): three phases, each concentrating its
// random memory accesses on one small data structure (Table 2).
//
// Every phase is templated on a memory probe (default NullProbe → zero
// overhead) so the instrumented replays in src/tc reuse this exact code.
// Probes are stateful and unsynchronized: instrumented runs must execute
// with parallel::set_num_threads(1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "baselines/intersect.hpp"
#include "kernels/hybrid.hpp"
#include "kernels/intersect.hpp"
#include "lotus/lotus_graph.hpp"
#include "lotus/tiling.hpp"
#include "obs/counters.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/memory_budget.hpp"

namespace lotus::core {

struct HubPhaseCounts {
  std::uint64_t hhh = 0;  // triangles whose apex vertex is itself a hub
  std::uint64_t hhn = 0;  // apex is a non-hub with two connected hub neighbours
};

/// One contiguous h1-index range of one vertex's HE list; the unit of
/// phase-1 scheduling.
struct HubTile {
  graph::VertexId v;
  std::uint32_t begin;
  std::uint32_t end;
};

/// Build the phase-1 tile list under a partitioning policy. Squared tiling
/// splits heavy vertices (HE degree > threshold) into equal-pair-work tiles;
/// light vertices are batched separately by the scheduler. Edge-balanced
/// splits the flattened HE entry stream into ~256·threads equal-entry tiles
/// (the comparison policy of Table 9).
std::vector<std::vector<HubTile>> build_hub_tasks(const LotusGraph& lg,
                                                  const LotusConfig& config,
                                                  TilingPolicy policy,
                                                  unsigned threads);

/// Phase 1 — HHH + HHN (Alg. 3 lines 2-6). Iterates all pairs of hub
/// neighbours of every vertex and tests connectivity in the H2H bit array.
/// `busy_s_out`, if non-null, receives per-thread busy seconds (Table 9).
///
/// With `config.vectorize` and no probe attached, dense tiles take the
/// word-level popcount path instead of per-bit probing: the tile's hub
/// prefix is materialized as a per-thread bitmap over hub-ID space (≤ 8 KiB)
/// and every row of the H2H triangle is ANDed against it 64 bits at a time
/// (kernels/dispatch.hpp, and_window_popcount). A per-tile cost model picks
/// whichever side is cheaper, so sparse tiles — where the row scan would
/// read mostly zero words — keep the scalar bit probes. The obs counter
/// kBitarrayProbes keeps counting *logical* (h1, h2) membership tests under
/// both paths, so the Table 8 probe totals stay comparable.
template <typename Probe = baselines::NullProbe>
HubPhaseCounts count_hhh_hhn(const LotusGraph& lg, const LotusConfig& config,
                             TilingPolicy policy = TilingPolicy::kSquared,
                             std::vector<double>* busy_s_out = nullptr,
                             Probe& probe = baselines::null_probe) {
  const TriangularBitArray& h2h = lg.h2h();
  const graph::Csr16& he = lg.he();

  parallel::ThreadPool& pool = parallel::default_pool();
  auto tasks = build_hub_tasks(lg, config, policy, pool.size());

  const kernels::KernelTable& kernel_table = kernels::kernel_table();
  const std::uint64_t mask_words = (static_cast<std::uint64_t>(lg.hub_count()) + 63) / 64;
  std::vector<std::vector<std::uint64_t>> masks(pool.size());

  std::vector<parallel::Padded<HubPhaseCounts>> partial(pool.size());
  std::vector<parallel::WorkStealingScheduler::Task> jobs;
  jobs.reserve(tasks.size());
  for (auto& task : tasks) {
    jobs.emplace_back([&, segments = std::move(task)](unsigned thread_index) {
      HubPhaseCounts local;
      std::uint64_t probes = 0;  // logical H2H tests; dead when LOTUS_OBS=0
      for (const HubTile& tile : segments) {
        auto list = he.neighbors(tile.v);
        probes += pair_work(tile.begin, tile.end);
        std::uint64_t found = 0;
        bool counted = false;
        if constexpr (std::is_same_v<Probe, baselines::NullProbe>) {
          if (config.vectorize && tile.end >= 2) {
            // Model: scalar pays ~1 op per enumerated pair; the popcount
            // path pays ~1 op per row window word plus the bitmap
            // build/clear. Engage on a modeled ≥2× win.
            const std::uint64_t pair_cost = pair_work(tile.begin, tile.end);
            const std::uint64_t row_words =
                (static_cast<std::uint64_t>(list[tile.end - 1]) >> 6) + 1;
            const std::uint64_t word_cost =
                2 * tile.end + (tile.end - tile.begin) * row_words;
            if (word_cost * 2 < pair_cost) {
              std::vector<std::uint64_t>& mask = masks[thread_index];
              if (mask.empty()) mask.assign(mask_words, 0);
              for (std::uint32_t b = 0; b < tile.begin; ++b)
                mask[list[b] >> 6] |= 1ULL << (list[b] & 63);
              for (std::uint32_t a = tile.begin; a < tile.end; ++a) {
                const std::uint16_t h1 = list[a];
                if (a > 0) {
                  // Members list[0..a) all precede h1, so the mask's live
                  // words end at list[a-1]'s word.
                  const std::size_t live_words =
                      (static_cast<std::size_t>(list[a - 1]) >> 6) + 1;
                  found += kernel_table.and_window_popcount(
                      h2h.words().data(), h2h.words().size(),
                      TriangularBitArray::row_base(h1), mask.data(),
                      live_words);
                }
                mask[h1 >> 6] |= 1ULL << (h1 & 63);
              }
              // All set bits are members of list[0..end); zeroing each
              // member's word restores the all-zero invariant.
              for (std::uint32_t b = 0; b < tile.end; ++b)
                mask[list[b] >> 6] = 0;
              counted = true;
            }
          }
        }
        if (!counted) {
          for (std::uint32_t a = tile.begin; a < tile.end; ++a) {
            const std::uint16_t h1 = list[a];
            probe.read(&list[a], sizeof(std::uint16_t));
            const std::uint64_t base = TriangularBitArray::row_base(h1);
            for (std::uint32_t b = 0; b < a; ++b) {
              const std::uint16_t h2 = list[b];
              probe.read(&list[b], sizeof(std::uint16_t));
              const std::uint64_t bit = base + h2;
              probe.read(h2h.word_address(bit), sizeof(std::uint64_t));
              probe.op();
              const bool hit = h2h.test_bit(bit);
              probe.branch(4, hit);
              found += hit ? 1u : 0u;
            }
          }
        }
        (lg.is_hub(tile.v) ? local.hhh : local.hhn) += found;
      }
      obs::count(obs::Counter::kBitarrayProbes, probes);
      partial[thread_index].value.hhh += local.hhh;
      partial[thread_index].value.hhn += local.hhn;
    });
  }

  parallel::WorkStealingScheduler scheduler(pool);
  std::vector<double> busy = scheduler.run(std::move(jobs));
  if (busy_s_out) *busy_s_out = std::move(busy);

  HubPhaseCounts total;
  for (const auto& p : partial) {
    total.hhh += p.value.hhh;
    total.hhn += p.value.hhn;
  }
  return total;
}

/// Phase 2 — HNN (Alg. 3 lines 7-9): for each non-hub edge (v, u), count the
/// common hub neighbours of v and u in the compact 16-bit HE lists — via the
/// dispatched 16-bit vectorized merge when `vectorize` and no probe is
/// attached, the probe-templated scalar mirror otherwise.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_hnn(const LotusGraph& lg,
                        Probe& probe = baselines::null_probe,
                        bool vectorize = true) {
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, lg.num_vertices(), 64, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        auto hub_list = he.neighbors(v);
        std::uint64_t local = 0;
        for (graph::VertexId u : nhe.neighbors(v)) {
          probe.read(&u, sizeof(graph::VertexId));
          local += kernels::intersect<std::uint16_t>(hub_list, he.neighbors(u),
                                                     probe, vectorize);
        }
        return local;
      });
}

/// Phase 3 — NNN (Alg. 3 lines 10-12): Forward algorithm restricted to the
/// NHE sub-graph; hub edges are never touched (the pruning of Sec. 3.3).
/// Uninstrumented vectorized runs go through the sparse-vs-dense hybrid
/// (kernels/hybrid.hpp). Its dense-bitmap scratch is suppressed — threshold
/// pushed out of reach — while a memory budget is accounting, so the LOTUS
/// footprint under a budget stays exactly the accounted topology.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_nnn(const LotusGraph& lg,
                        Probe& probe = baselines::null_probe,
                        bool vectorize = true,
                        std::uint32_t hybrid_degree_threshold = 64) {
  const graph::CsrGraph& nhe = lg.nhe();
  if constexpr (std::is_same_v<Probe, baselines::NullProbe>) {
    if (vectorize) {
      const std::uint32_t threshold =
          util::memory_accounting_active() || hybrid_degree_threshold == 0
              ? ~std::uint32_t{0}
              : hybrid_degree_threshold;
      return kernels::hybrid_forward_count(
          lg.num_vertices(),
          [&](std::uint32_t v) { return nhe.neighbors(v); }, threshold);
    }
  }
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, lg.num_vertices(), 64, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        auto nv = nhe.neighbors(v);
        std::uint64_t local = 0;
        for (graph::VertexId u : nv) {
          probe.read(&u, sizeof(graph::VertexId));
          local += baselines::intersect_merge<graph::VertexId>(
              nv, nhe.neighbors(u), probe);
        }
        return local;
      });
}

/// Blocked HNN (the second Sec. 7 future-work item): processes non-hub
/// edges in blocks of their target u, so the randomly accessed HE lists of
/// one pass come from a bounded ID range and can stay cached. Counting is
/// identical to count_hnn; only the traversal order changes.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_hnn_blocked(const LotusGraph& lg,
                                graph::VertexId block_size,
                                Probe& probe = baselines::null_probe,
                                bool vectorize = true) {
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();
  const graph::VertexId n = lg.num_vertices();
  if (block_size == 0) block_size = 1;
  std::uint64_t total = 0;
  for (graph::VertexId block_begin = lg.hub_count(); block_begin < n;
       block_begin += block_size) {
    const graph::VertexId block_end =
        block_begin + block_size < n ? block_begin + block_size : n;
    total += parallel::parallel_reduce_add<std::uint64_t>(
        0, n, 256, [&](std::uint64_t vi) {
          const auto v = static_cast<graph::VertexId>(vi);
          auto nv = nhe.neighbors(v);
          auto first = std::lower_bound(nv.begin(), nv.end(), block_begin);
          std::uint64_t local = 0;
          for (auto it = first; it != nv.end() && *it < block_end; ++it) {
            probe.read(&*it, sizeof(graph::VertexId));
            local += kernels::intersect<std::uint16_t>(
                he.neighbors(v), he.neighbors(*it), probe, vectorize);
          }
          return local;
        });
  }
  return total;
}

/// Fused HNN + NNN (the rejected alternative of Sec. 4.5, kept for the
/// ablation bench): one pass over NHE doing both intersections, enlarging
/// the randomly accessed working set.
template <typename Probe = baselines::NullProbe>
std::uint64_t count_hnn_nnn_fused(const LotusGraph& lg,
                                  Probe& probe = baselines::null_probe,
                                  bool vectorize = true) {
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();
  return parallel::parallel_reduce_add<std::uint64_t>(
      0, lg.num_vertices(), 64, [&](std::uint64_t vi) {
        const auto v = static_cast<graph::VertexId>(vi);
        auto nv = nhe.neighbors(v);
        auto hub_list = he.neighbors(v);
        std::uint64_t local = 0;
        for (graph::VertexId u : nv) {
          probe.read(&u, sizeof(graph::VertexId));
          local += kernels::intersect<std::uint16_t>(hub_list, he.neighbors(u),
                                                     probe, vectorize);
          local += kernels::intersect<graph::VertexId>(nv, nhe.neighbors(u),
                                                       probe, vectorize);
        }
        return local;
      });
}

}  // namespace lotus::core
