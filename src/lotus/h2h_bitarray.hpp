// H2H: the triangular hub-to-hub adjacency bit array (Sec. 4.2).
//
// For hubs h1 > h2, bit h1·(h1−1)/2 + h2 records whether the edge (h1, h2)
// exists. The layout is "h1-major": all h2 bits of one h1 are consecutive,
// so the inner loop of HHH/HHN counting walks sequential bits and the base
// offset h1·(h1−1)/2 is computed once per h1 (Sec. 4.4.1).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/types.hpp"
#include "util/array_ref.hpp"

namespace lotus::core {

class TriangularBitArray {
 public:
  TriangularBitArray() = default;

  explicit TriangularBitArray(graph::VertexId hub_count)
      : hub_count_(hub_count),
        num_bits_(static_cast<std::uint64_t>(hub_count) * (hub_count - 1) / 2),
        words_(std::vector<std::uint64_t>((num_bits_ + 63) / 64, 0)) {}

  /// Reconstruct from serialized words (lotus/serialize.*) — owned vector or
  /// a view into an mmap'ed artifact. `words` must be exactly the size the
  /// hub count implies. A view-backed array is read-only: set_atomic may not
  /// be called on it (deserialized H2H bits are final).
  TriangularBitArray(graph::VertexId hub_count,
                     util::ConstArray<std::uint64_t> words)
      : hub_count_(hub_count),
        num_bits_(static_cast<std::uint64_t>(hub_count) * (hub_count - 1) / 2) {
    if (words.size() != (num_bits_ + 63) / 64)
      throw std::invalid_argument("H2H word count does not match hub count");
    words_ = std::move(words);
  }

  /// Raw 64-bit words, for serialization.
  [[nodiscard]] const util::ConstArray<std::uint64_t>& words() const noexcept {
    return words_;
  }

  /// Heap bytes pinned (0 when the words view an mmap'ed artifact).
  [[nodiscard]] std::uint64_t owned_bytes() const noexcept {
    return words_.owned_bytes();
  }

  [[nodiscard]] graph::VertexId hub_count() const noexcept { return hub_count_; }
  [[nodiscard]] std::uint64_t num_bits() const noexcept { return num_bits_; }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return words_.size() * 8; }

  /// Bytes a bit array for `hub_count` hubs will occupy — lets callers
  /// charge a memory budget before constructing one.
  [[nodiscard]] static constexpr std::uint64_t size_bytes_for(
      graph::VertexId hub_count) noexcept {
    const std::uint64_t bits =
        static_cast<std::uint64_t>(hub_count) * (hub_count - 1) / 2;
    return (bits + 63) / 64 * 8;
  }

  static constexpr std::uint64_t bit_index(graph::VertexId h1, graph::VertexId h2) noexcept {
    return static_cast<std::uint64_t>(h1) * (h1 - 1) / 2 + h2;
  }

  /// Base offset for row h1; add h2 to address bits of the row (reused
  /// across the inner loop of Alg. 3 line 4).
  static constexpr std::uint64_t row_base(graph::VertexId h1) noexcept {
    return static_cast<std::uint64_t>(h1) * (h1 - 1) / 2;
  }

  /// Thread-safe set; preprocessing writes bits of different vertices that
  /// can share a 64-bit word at row boundaries. Uses std::atomic_ref on the
  /// plain word storage (not a reinterpret_cast, which is UB and invisible
  /// to TSan); plain readers may only run after the writing phase joins.
  /// Owned storage only — a view-backed (mapped) array is read-only.
  void set_atomic(graph::VertexId h1, graph::VertexId h2) noexcept {
    std::uint64_t* mutable_words = words_.mutable_data();
    assert(mutable_words != nullptr && "set_atomic on a mapped H2H array");
    const std::uint64_t bit = bit_index(h1, h2);
    std::atomic_ref<std::uint64_t> word(mutable_words[bit >> 6]);
    word.fetch_or(1ULL << (bit & 63), std::memory_order_relaxed);
  }

  [[nodiscard]] bool test(graph::VertexId h1, graph::VertexId h2) const noexcept {
    return test_bit(bit_index(h1, h2));
  }

  [[nodiscard]] bool test_bit(std::uint64_t bit) const noexcept {
    return (words_[bit >> 6] >> (bit & 63)) & 1ULL;
  }

  /// Address of the word containing `bit` — what the hardware actually
  /// loads; used by the instrumented replays and cacheline histograms.
  [[nodiscard]] const void* word_address(std::uint64_t bit) const noexcept {
    return &words_[bit >> 6];
  }

  [[nodiscard]] std::uint64_t count_set_bits() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t w : words_) total += static_cast<std::uint64_t>(__builtin_popcountll(w));
    return total;
  }

  /// Fraction of 64-byte-aligned blocks whose 512 bits are all zero
  /// (Table 8, column 3).
  [[nodiscard]] double zero_cacheline_fraction() const noexcept {
    if (words_.empty()) return 0.0;
    const std::size_t lines = (words_.size() + 7) / 8;
    std::size_t zero_lines = 0;
    for (std::size_t line = 0; line < lines; ++line) {
      bool all_zero = true;
      for (std::size_t w = line * 8; w < std::min(words_.size(), line * 8 + 8); ++w)
        all_zero &= words_[w] == 0;
      zero_lines += all_zero ? 1u : 0u;
    }
    return static_cast<double>(zero_lines) / static_cast<double>(lines);
  }

 private:
  graph::VertexId hub_count_ = 0;
  std::uint64_t num_bits_ = 0;
  util::ConstArray<std::uint64_t> words_;
};

}  // namespace lotus::core
