#include "lotus/lotus_graph.hpp"

#include <algorithm>
#include <numeric>

#include "lotus/relabel.hpp"
#include "parallel/parallel_for.hpp"
#include "util/memory_budget.hpp"

namespace lotus::core {

using graph::CsrGraph;
using graph::VertexId;

LotusGraph LotusGraph::from_parts(VertexId hub_count, TriangularBitArray h2h,
                                  graph::Csr16 he, CsrGraph nhe,
                                  util::ConstArray<VertexId> new_id,
                                  bool validate) {
  if (he.num_vertices() != nhe.num_vertices() ||
      static_cast<std::size_t>(he.num_vertices()) != new_id.size())
    throw std::invalid_argument("LotusGraph parts disagree on vertex count");
  if (h2h.hub_count() != hub_count)
    throw std::invalid_argument("H2H hub count mismatch");
  const auto n = he.num_vertices();
  if (validate) {
    std::vector<bool> seen(n, false);
    for (VertexId id : new_id) {
      if (id >= n || seen[id])
        throw std::invalid_argument("relabeling array is not a permutation");
      seen[id] = true;
    }
    for (VertexId v = 0; v < n; ++v)
      for (std::uint16_t h : he.neighbors(v))
        if (h >= hub_count || static_cast<VertexId>(h) >= v)
          throw std::invalid_argument("HE entry out of range");
    for (VertexId v = 0; v < n; ++v)
      for (VertexId u : nhe.neighbors(v))
        if (u < hub_count || u >= v)
          throw std::invalid_argument("NHE entry out of range");
  }

  LotusGraph lg;
  lg.num_vertices_ = n;
  lg.hub_count_ = hub_count;
  lg.h2h_ = std::move(h2h);
  lg.he_ = std::move(he);
  lg.nhe_ = std::move(nhe);
  lg.new_id_ = std::move(new_id);
  return lg;
}

LotusGraph LotusGraph::build(const CsrGraph& graph, const LotusConfig& config,
                             obs::PhaseTracer* tracer) {
  LotusGraph lg;
  const VertexId n = graph.num_vertices();
  lg.num_vertices_ = n;
  lg.hub_count_ = config.resolve_hub_count(n);
  const VertexId hubs = lg.hub_count_;

  {
    obs::ScopedSpan span(tracer, "relabel");
    const auto reorder_count = static_cast<VertexId>(std::max<std::uint64_t>(
        hubs, static_cast<std::uint64_t>(config.relabel_fraction * n)));
    // create_relabeling_array holds new_id + by_degree + a bool flag array;
    // old_of_new below adds one more VertexId array.
    util::charge_current(static_cast<std::uint64_t>(n) * (3 * sizeof(VertexId) + 1),
                         "relabel_buffers");
    lg.new_id_ = create_relabeling_array(graph, reorder_count);
    if (tracer != nullptr) {
      tracer->note("hub_count", static_cast<std::uint64_t>(hubs));
      tracer->note("reorder_count", static_cast<std::uint64_t>(reorder_count));
    }
  }

  std::vector<VertexId> old_of_new(n);
  for (VertexId v = 0; v < n; ++v) old_of_new[lg.new_id_[v]] = v;

  // Pass 1: per-vertex HE/NHE degrees (Alg. 2 decides he vs nhe per edge).
  util::charge_current((static_cast<std::uint64_t>(n) + 1) * 2 * sizeof(std::uint64_t),
                       "csx_offsets");
  std::vector<std::uint64_t> he_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::uint64_t> nhe_offsets(static_cast<std::size_t>(n) + 1, 0);
  {
    obs::ScopedSpan span(tracer, "partition");
    parallel::parallel_for(0, n, 512,
        [&](unsigned, std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t wi = b; wi < e; ++wi) {
            const auto v_new = static_cast<VertexId>(wi);
            const VertexId v_old = old_of_new[v_new];
            std::uint64_t he_deg = 0, nhe_deg = 0;
            for (VertexId u_old : graph.neighbors(v_old)) {
              if (u_old == v_old) continue;  // self-edge
              const VertexId u_new = lg.new_id_[u_old];
              if (u_new > v_new) continue;  // symmetric edge
              if (u_new < hubs)
                ++he_deg;
              else
                ++nhe_deg;
            }
            he_offsets[wi + 1] = he_deg;
            nhe_offsets[wi + 1] = nhe_deg;
          }
        });
    std::partial_sum(he_offsets.begin(), he_offsets.end(), he_offsets.begin());
    std::partial_sum(nhe_offsets.begin(), nhe_offsets.end(), nhe_offsets.begin());
  }

  // Pass 2: fill, sort, and set H2H bits.
  {
    obs::ScopedSpan span(tracer, "serialize");
    util::charge_current(TriangularBitArray::size_bytes_for(hubs), "h2h_bitarray");
    lg.h2h_ = TriangularBitArray(hubs);
    util::charge_current(he_offsets.back() * sizeof(std::uint16_t) +
                             nhe_offsets.back() * sizeof(VertexId),
                         "csx_neighbors");
    std::vector<std::uint16_t> he_neighbors(he_offsets.back());
    std::vector<VertexId> nhe_neighbors(nhe_offsets.back());
    parallel::parallel_for(0, n, 512,
        [&](unsigned, std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t wi = b; wi < e; ++wi) {
            const auto v_new = static_cast<VertexId>(wi);
            const VertexId v_old = old_of_new[v_new];
            std::uint64_t he_out = he_offsets[wi];
            std::uint64_t nhe_out = nhe_offsets[wi];
            for (VertexId u_old : graph.neighbors(v_old)) {
              if (u_old == v_old) continue;
              const VertexId u_new = lg.new_id_[u_old];
              if (u_new > v_new) continue;
              if (u_new < hubs) {
                he_neighbors[he_out++] = static_cast<std::uint16_t>(u_new);
                if (v_new < hubs) lg.h2h_.set_atomic(v_new, u_new);
              } else {
                nhe_neighbors[nhe_out++] = u_new;
              }
            }
            std::sort(he_neighbors.begin() + static_cast<std::ptrdiff_t>(he_offsets[wi]),
                      he_neighbors.begin() + static_cast<std::ptrdiff_t>(he_out));
            std::sort(nhe_neighbors.begin() + static_cast<std::ptrdiff_t>(nhe_offsets[wi]),
                      nhe_neighbors.begin() + static_cast<std::ptrdiff_t>(nhe_out));
          }
        });

    lg.he_ = graph::Csr16(std::move(he_offsets), std::move(he_neighbors));
    lg.nhe_ = CsrGraph(std::move(nhe_offsets), std::move(nhe_neighbors));
    if (tracer != nullptr) {
      tracer->note("he_edges", lg.he_.num_edges());
      tracer->note("nhe_edges", lg.nhe_.num_edges());
      tracer->note("topology_bytes", lg.topology_bytes());
    }
  }
  return lg;
}

}  // namespace lotus::core
