#include "lotus/lotus.hpp"

#include "lotus/count.hpp"
#include "obs/trace.hpp"
#include "parallel/exec_context.hpp"
#include "util/timer.hpp"

namespace lotus::core {

LotusResult count_triangles_prepared(const LotusGraph& lg,
                                     const LotusConfig& config,
                                     obs::PhaseTracer* tracer) {
  LotusResult result;
  result.hub_count = lg.hub_count();
  result.he_edges = lg.he().num_edges();
  result.nhe_edges = lg.nhe().num_edges();
  result.topology_bytes = lg.topology_bytes();

  obs::ScopedSpan count_span(tracer, "count");

  util::Timer timer;
  {
    obs::ScopedSpan span(tracer, "hhh_hhn");
    const HubPhaseCounts hub_phase = count_hhh_hhn(lg, config);
    result.hhh = hub_phase.hhh;
    result.hhn = hub_phase.hhn;
    if (tracer != nullptr) {
      tracer->note("hhh", result.hhh);
      tracer->note("hhn", result.hhn);
    }
  }
  result.hhh_hhn_s = timer.elapsed_s();

  // Cancellation/deadline checks at phase boundaries: once interrupted the
  // remaining phases are skipped. The counts are then partial, which is
  // fine — the layer that installed the ExecContext (tc::query)
  // re-checks it after the run and discards the numbers.
  if (parallel::interrupted()) return result;

  if (config.fuse_hnn_nnn) {
    timer.reset();
    std::uint64_t fused = 0;
    {
      obs::ScopedSpan span(tracer, "hnn_nnn_fused");
      fused = count_hnn_nnn_fused(lg, baselines::null_probe, config.vectorize);
      if (tracer != nullptr) tracer->note("hnn_nnn", fused);
    }
    // Fused mode cannot attribute per type; report everything as HNN time.
    result.hnn_s = timer.elapsed_s();
    result.hnn = fused;  // hnn + nnn combined
    result.nnn = 0;
    result.triangles = result.hhh + result.hhn + fused;
    return result;
  }

  timer.reset();
  {
    obs::ScopedSpan span(tracer, "hnn");
    result.hnn = count_hnn(lg, baselines::null_probe, config.vectorize);
    if (tracer != nullptr) tracer->note("hnn", result.hnn);
  }
  result.hnn_s = timer.elapsed_s();

  if (parallel::interrupted()) return result;

  timer.reset();
  {
    obs::ScopedSpan span(tracer, "nnn");
    result.nnn = count_nnn(lg, baselines::null_probe, config.vectorize,
                           config.hybrid_degree_threshold);
    if (tracer != nullptr) tracer->note("nnn", result.nnn);
  }
  result.nnn_s = timer.elapsed_s();

  result.triangles = result.hhh + result.hhn + result.hnn + result.nnn;
  return result;
}

LotusResult count_triangles(const graph::CsrGraph& graph,
                            const LotusConfig& config,
                            obs::PhaseTracer* tracer) {
  util::Timer timer;
  LotusGraph lg;
  {
    obs::ScopedSpan span(tracer, "preprocess");
    lg = LotusGraph::build(graph, config, tracer);
  }
  const double preprocess_s = timer.elapsed_s();
  if (parallel::interrupted()) {
    LotusResult result;
    result.preprocess_s = preprocess_s;
    return result;
  }
  LotusResult result = count_triangles_prepared(lg, config, tracer);
  result.preprocess_s = preprocess_s;
  return result;
}

}  // namespace lotus::core
