#include "lotus/lotus.hpp"

#include "lotus/count.hpp"
#include "util/timer.hpp"

namespace lotus::core {

LotusResult count_triangles_prepared(const LotusGraph& lg,
                                     const LotusConfig& config) {
  LotusResult result;
  result.hub_count = lg.hub_count();
  result.he_edges = lg.he().num_edges();
  result.nhe_edges = lg.nhe().num_edges();
  result.topology_bytes = lg.topology_bytes();

  util::Timer timer;
  const HubPhaseCounts hub_phase = count_hhh_hhn(lg, config);
  result.hhh_hhn_s = timer.elapsed_s();
  result.hhh = hub_phase.hhh;
  result.hhn = hub_phase.hhn;

  if (config.fuse_hnn_nnn) {
    timer.reset();
    const std::uint64_t fused = count_hnn_nnn_fused(lg);
    // Fused mode cannot attribute per type; report everything as HNN time.
    result.hnn_s = timer.elapsed_s();
    result.hnn = fused;  // hnn + nnn combined
    result.nnn = 0;
    result.triangles = result.hhh + result.hhn + fused;
    return result;
  }

  timer.reset();
  result.hnn = count_hnn(lg);
  result.hnn_s = timer.elapsed_s();

  timer.reset();
  result.nnn = count_nnn(lg);
  result.nnn_s = timer.elapsed_s();

  result.triangles = result.hhh + result.hhn + result.hnn + result.nnn;
  return result;
}

LotusResult count_triangles(const graph::CsrGraph& graph,
                            const LotusConfig& config) {
  util::Timer timer;
  const LotusGraph lg = LotusGraph::build(graph, config);
  const double preprocess_s = timer.elapsed_s();
  LotusResult result = count_triangles_prepared(lg, config);
  result.preprocess_s = preprocess_s;
  return result;
}

}  // namespace lotus::core
