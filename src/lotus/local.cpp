#include "lotus/local.hpp"

#include <atomic>

#include "baselines/intersect.hpp"
#include "lotus/lotus_graph.hpp"
#include "parallel/parallel_for.hpp"

namespace lotus::core {

using graph::VertexId;

std::vector<std::uint64_t> count_triangles_local(const graph::CsrGraph& graph,
                                                 const LotusConfig& config) {
  const VertexId n = graph.num_vertices();
  const LotusGraph lg = LotusGraph::build(graph, config);
  const TriangularBitArray& h2h = lg.h2h();
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();

  std::vector<std::atomic<std::uint64_t>> counts(n);  // LOTUS ID space
  auto credit = [&counts](VertexId v) {
    counts[v].fetch_add(1, std::memory_order_relaxed);
  };

  // Phase 1 — HHH & HHN: every connected hub pair closes a triangle with v.
  parallel::parallel_for(0, n, 128,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto list = he.neighbors(v);
          for (std::size_t a = 1; a < list.size(); ++a) {
            const std::uint64_t base = TriangularBitArray::row_base(list[a]);
            for (std::size_t c = 0; c < a; ++c) {
              if (h2h.test_bit(base + list[c])) {
                credit(v);
                credit(list[a]);
                credit(list[c]);
              }
            }
          }
        }
      });

  // Phase 2 — HNN: common hub neighbours of each non-hub edge.
  parallel::parallel_for(0, n, 128,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto hub_list = he.neighbors(v);
          for (VertexId u : nhe.neighbors(v)) {
            baselines::intersect_merge_visit<std::uint16_t>(
                hub_list, he.neighbors(u), [&](std::uint16_t h) {
                  credit(v);
                  credit(u);
                  credit(h);
                });
          }
        }
      });

  // Phase 3 — NNN: Forward restricted to the NHE sub-graph.
  parallel::parallel_for(0, n, 128,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = nhe.neighbors(v);
          for (VertexId u : nv) {
            baselines::intersect_merge_visit<VertexId>(
                nv, nhe.neighbors(u), [&](VertexId w) {
                  credit(v);
                  credit(u);
                  credit(w);
                });
          }
        }
      });

  const auto& new_id = lg.relabeling();
  std::vector<std::uint64_t> by_original(n);
  for (VertexId v = 0; v < n; ++v)
    by_original[v] = counts[new_id[v]].load(std::memory_order_relaxed);
  return by_original;
}

}  // namespace lotus::core
