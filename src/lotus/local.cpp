#include "lotus/local.hpp"

#include <atomic>

#include "baselines/intersect.hpp"
#include "lotus/lotus_graph.hpp"
#include "parallel/parallel_for.hpp"
#include "util/memory_budget.hpp"

namespace lotus::core {

using graph::VertexId;

std::vector<std::uint64_t> count_triangles_local_prepared(const LotusGraph& lg) {
  const VertexId n = lg.num_vertices();
  const TriangularBitArray& h2h = lg.h2h();
  const graph::Csr16& he = lg.he();
  const graph::CsrGraph& nhe = lg.nhe();

  // Two n-sized arrays live at once (atomic accumulators + the remapped
  // output); charge both up front so a budgeted query degrades instead of
  // dying mid-phase.
  util::charge_current(2 * static_cast<std::uint64_t>(n) * sizeof(std::uint64_t),
                       "local/per-vertex-counts");
  std::vector<std::atomic<std::uint64_t>> counts(n);  // LOTUS ID space
  auto credit = [&counts](VertexId v) {
    counts[v].fetch_add(1, std::memory_order_relaxed);
  };

  // Phase 1 — HHH & HHN: every connected hub pair closes a triangle with v.
  parallel::parallel_for(0, n, 128,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto list = he.neighbors(v);
          for (std::size_t a = 1; a < list.size(); ++a) {
            const std::uint64_t base = TriangularBitArray::row_base(list[a]);
            for (std::size_t c = 0; c < a; ++c) {
              if (h2h.test_bit(base + list[c])) {
                credit(v);
                credit(list[a]);
                credit(list[c]);
              }
            }
          }
        }
      });

  // Phase 2 — HNN: common hub neighbours of each non-hub edge.
  parallel::parallel_for(0, n, 128,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto hub_list = he.neighbors(v);
          for (VertexId u : nhe.neighbors(v)) {
            baselines::intersect_merge_visit<std::uint16_t>(
                hub_list, he.neighbors(u), [&](std::uint16_t h) {
                  credit(v);
                  credit(u);
                  credit(h);
                });
          }
        }
      });

  // Phase 3 — NNN: Forward restricted to the NHE sub-graph.
  parallel::parallel_for(0, n, 128,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = nhe.neighbors(v);
          for (VertexId u : nv) {
            baselines::intersect_merge_visit<VertexId>(
                nv, nhe.neighbors(u), [&](VertexId w) {
                  credit(v);
                  credit(u);
                  credit(w);
                });
          }
        }
      });

  const auto& new_id = lg.relabeling();
  std::vector<std::uint64_t> by_original(n);
  for (VertexId v = 0; v < n; ++v)
    by_original[v] = counts[new_id[v]].load(std::memory_order_relaxed);
  return by_original;
}

std::vector<std::uint64_t> count_triangles_local(const graph::CsrGraph& graph,
                                                 const LotusConfig& config) {
  return count_triangles_local_prepared(LotusGraph::build(graph, config));
}

}  // namespace lotus::core
