// k-clique counting with hub attribution (the first Sec. 7 future-work item).
//
// TC is the k = 3 case of k-clique counting. The paper conjectures that the
// hub-dominance statistics become even more skewed for larger cliques; this
// module counts k-cliques on a degree-ordered oriented graph and attributes
// each clique by whether it contains a hub (its minimum-ID member decides,
// since hubs occupy the lowest IDs after degree ordering).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace lotus::core {

struct KCliqueResult {
  unsigned k = 0;
  std::uint64_t cliques = 0;
  std::uint64_t hub_cliques = 0;  // cliques containing >= 1 hub vertex

  [[nodiscard]] double hub_pct() const {
    return cliques > 0
        ? 100.0 * static_cast<double>(hub_cliques) / static_cast<double>(cliques)
        : 0.0;
  }
};

/// Count k-cliques (k >= 3) in a simple symmetric graph; `hub_fraction`
/// designates the top-degree share treated as hubs (Table 1 uses 1%).
/// Runs the standard ordered enumeration (Chiba-Nishizeki style) in
/// parallel over root vertices via the mining layer (mining/vertex_miner.hpp).
KCliqueResult count_kcliques(const graph::CsrGraph& graph, unsigned k,
                             double hub_fraction = 0.01);

/// Same census over a prebuilt degree-ordered oriented CSR — the entry point
/// the Engine-served analytic uses so a cached ArtifactKind::kOriented
/// artifact is shared with plain triangle counting. Throws
/// std::invalid_argument for k < 3.
KCliqueResult count_kcliques_prepared(const graph::OrientedCsr& oriented,
                                      unsigned k, double hub_fraction = 0.01);

}  // namespace lotus::core
