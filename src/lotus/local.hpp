// Per-vertex (local) triangle counting through the LOTUS phases.
//
// Local triangle counts drive the clustering-coefficient and local-motif
// analyses the paper's introduction motivates [11, 12]. This runs the same
// three locality-optimized phases as the scalar counter, crediting all
// three corners of every discovered triangle.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "lotus/config.hpp"

namespace lotus::core {

/// Triangles through each vertex, indexed by ORIGINAL vertex ID (the
/// relabeling is internal). Sum over all vertices = 3 × triangle count.
std::vector<std::uint64_t> count_triangles_local(const graph::CsrGraph& graph,
                                                 const LotusConfig& config = {});

}  // namespace lotus::core
