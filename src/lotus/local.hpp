// Per-vertex (local) triangle counting through the LOTUS phases.
//
// Local triangle counts drive the clustering-coefficient and local-motif
// analyses the paper's introduction motivates [11, 12]. This runs the same
// three locality-optimized phases as the scalar counter, crediting all
// three corners of every discovered triangle.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "lotus/config.hpp"

namespace lotus::core {

class LotusGraph;

/// Triangles through each vertex, indexed by ORIGINAL vertex ID (the
/// relabeling is internal). Sum over all vertices = 3 × triangle count.
std::vector<std::uint64_t> count_triangles_local(const graph::CsrGraph& graph,
                                                 const LotusConfig& config = {});

/// Same counts over an already-built LotusGraph — the entry point the
/// Engine-served kLocalCounts analytic uses so a cached
/// ArtifactKind::kLotus artifact is shared with scalar LOTUS counting.
/// Output is indexed by ORIGINAL vertex ID (remapped via lg.relabeling()).
/// Charges the per-vertex output against the active memory budget.
std::vector<std::uint64_t> count_triangles_local_prepared(const LotusGraph& lg);

}  // namespace lotus::core
