#include "lotus/relabel.hpp"

#include <algorithm>
#include <numeric>

namespace lotus::core {

using graph::CsrGraph;
using graph::VertexId;

std::vector<VertexId> create_relabeling_array(const CsrGraph& graph,
                                              VertexId reorder_count) {
  const VertexId n = graph.num_vertices();
  reorder_count = std::min(reorder_count, n);

  // Select the reorder_count highest-degree vertices; stable tie-break on
  // original ID keeps the mapping deterministic.
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.degree(a) > graph.degree(b);
                   });

  std::vector<VertexId> new_id(n);
  std::vector<bool> reordered(n, false);
  for (VertexId rank = 0; rank < reorder_count; ++rank) {
    new_id[by_degree[rank]] = rank;
    reordered[by_degree[rank]] = true;
  }

  // Remaining vertices: original order, after the reordered block.
  VertexId next = reorder_count;
  for (VertexId v = 0; v < n; ++v)
    if (!reordered[v]) new_id[v] = next++;
  return new_id;
}

}  // namespace lotus::core
