// LOTUS relabeling (Sec. 4.3.1).
//
// The first consecutive IDs go to the highest-degree vertices — at least the
// hubs, and by default the top 10% — sorted by descending degree. All other
// vertices keep their original relative order, preserving whatever locality
// the input ordering had (full degree ordering is known to destroy it).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::core {

/// Returns new_id[old_id]. `reorder_count` vertices get degree-sorted front
/// IDs; callers pass max(hub_count, relabel_fraction · V).
std::vector<graph::VertexId> create_relabeling_array(const graph::CsrGraph& graph,
                                                     graph::VertexId reorder_count);

}  // namespace lotus::core
