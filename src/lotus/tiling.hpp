// Squared Edge Tiling (Sec. 4.6).
//
// Phase-1 work for a vertex with d hub neighbours is the triangular loop of
// d·(d−1)/2 pairs: the h1 at index i contributes i units. Cutting the h1
// range at i_k = d·sqrt(k/p) gives p tiles of equal pair-work. The paper
// applies this to vertices with degree > 512 and p = 2 × #threads, with the
// sqrt(k/p) values precomputed once and shared by all heavy vertices.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace lotus::core {

/// Tile boundaries for one policy over a triangular (pair) loop of `degree`
/// entries. Returns `partitions + 1` non-decreasing indices from 0 to degree.
enum class TilingPolicy {
  kSquared,       // i_k = degree · sqrt(k/p): equal pair-work per tile
  kEdgeBalanced,  // i_k = degree · k/p: equal entries, skewed pair-work
};

inline std::vector<std::uint32_t> tile_boundaries(std::uint32_t degree,
                                                  unsigned partitions,
                                                  TilingPolicy policy) {
  if (partitions == 0) partitions = 1;
  std::vector<std::uint32_t> bounds(partitions + 1);
  bounds[0] = 0;
  bounds[partitions] = degree;
  for (unsigned k = 1; k < partitions; ++k) {
    const double f = static_cast<double>(k) / partitions;
    const double cut = policy == TilingPolicy::kSquared
                           ? degree * std::sqrt(f)
                           : degree * f;
    bounds[k] = static_cast<std::uint32_t>(cut);
    if (bounds[k] < bounds[k - 1]) bounds[k] = bounds[k - 1];
  }
  return bounds;
}

/// Precomputed sqrt(k/p) factors (Sec. 4.6 notes these are fixed across
/// vertices); multiply by the degree to get the cut points.
inline std::vector<double> squared_tiling_factors(unsigned partitions) {
  std::vector<double> f(partitions + 1);
  for (unsigned k = 0; k <= partitions; ++k)
    f[k] = std::sqrt(static_cast<double>(k) / partitions);
  return f;
}

/// Pair-work of the h1 range [begin, end): sum of i over the range.
constexpr std::uint64_t pair_work(std::uint32_t begin, std::uint32_t end) {
  const std::uint64_t b = begin, e = end;
  return e * (e - 1) / 2 - b * (b - 1) / 2;
}

}  // namespace lotus::core
