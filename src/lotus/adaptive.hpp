// Adaptive algorithm selection (Sec. 5.5).
//
// LOTUS pays off on skewed-degree graphs; for low-skew inputs (the
// Friendster case) the Forward algorithm is the better choice. Following
// the GAP heuristic the paper cites, we compare the average degree against
// a sampled median and dispatch accordingly.
#pragma once

#include "graph/csr.hpp"
#include "lotus/config.hpp"
#include "lotus/lotus.hpp"

namespace lotus::core {

enum class ChosenAlgorithm { kLotus, kForward };

struct AdaptiveResult {
  std::uint64_t triangles = 0;
  double preprocess_s = 0.0;
  double count_s = 0.0;
  ChosenAlgorithm algorithm = ChosenAlgorithm::kLotus;
};

/// Inspect the degree distribution and run LOTUS (skewed) or Forward
/// (low-skew). The decision itself costs one O(V) degree scan.
AdaptiveResult adaptive_count(const graph::CsrGraph& graph,
                              const LotusConfig& config = {});

/// The dispatch predicate, exposed for tests: true → LOTUS.
bool should_use_lotus(const graph::CsrGraph& graph);

}  // namespace lotus::core
