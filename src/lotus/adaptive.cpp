#include "lotus/adaptive.hpp"

#include "baselines/tc_baselines.hpp"
#include "graph/stats.hpp"

namespace lotus::core {

bool should_use_lotus(const graph::CsrGraph& graph) {
  return graph::degree_stats(graph).is_skewed();
}

AdaptiveResult adaptive_count(const graph::CsrGraph& graph,
                              const LotusConfig& config) {
  AdaptiveResult out;
  if (should_use_lotus(graph)) {
    const LotusResult r = count_triangles(graph, config);
    out.triangles = r.triangles;
    out.preprocess_s = r.preprocess_s;
    out.count_s = r.count_s();
    out.algorithm = ChosenAlgorithm::kLotus;
  } else {
    const baselines::TcResult r = baselines::forward_merge(graph);
    out.triangles = r.triangles;
    out.preprocess_s = r.preprocess_s;
    out.count_s = r.count_s;
    out.algorithm = ChosenAlgorithm::kForward;
  }
  return out;
}

}  // namespace lotus::core
