#include "lotus/kclique.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/degree_order.hpp"
#include "mining/vertex_miner.hpp"

namespace lotus::core {

using graph::OrientedCsr;
using graph::VertexId;

KCliqueResult count_kcliques_prepared(const OrientedCsr& oriented, unsigned k,
                                      double hub_fraction) {
  if (k < 3) throw std::invalid_argument("count_kcliques: k must be >= 3");
  KCliqueResult result;
  result.k = k;
  const VertexId n = oriented.num_vertices();
  if (n == 0) return result;

  const auto hub_count = static_cast<VertexId>(
      std::max<double>(1.0, std::ceil(hub_fraction * n)));
  const mining::CliqueCensus census = mining::count_cliques(oriented, k, hub_count);
  result.cliques = census.cliques;
  result.hub_cliques = census.hub_cliques;
  return result;
}

KCliqueResult count_kcliques(const graph::CsrGraph& graph, unsigned k,
                             double hub_fraction) {
  if (k < 3) throw std::invalid_argument("count_kcliques: k must be >= 3");
  if (graph.num_vertices() == 0) {
    KCliqueResult result;
    result.k = k;
    return result;
  }
  return count_kcliques_prepared(graph::degree_ordered_oriented(graph), k,
                                 hub_fraction);
}

}  // namespace lotus::core
