#include "lotus/kclique.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/degree_order.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/padded.hpp"

namespace lotus::core {

using graph::OrientedCsr;
using graph::VertexId;

namespace {

struct Partial {
  std::uint64_t cliques = 0;
  std::uint64_t hub_cliques = 0;
};

/// Recursive ordered enumeration. `cands` holds common lower neighbours of
/// the clique built so far (IDs strictly decrease along a clique, so the
/// last vertex added is the minimum and decides hubness).
void expand(const OrientedCsr& oriented, VertexId hub_count,
            const std::vector<VertexId>& cands, unsigned remaining,
            Partial& out, std::vector<std::vector<VertexId>>& scratch,
            unsigned depth) {
  if (remaining == 1) {
    out.cliques += cands.size();
    // Sorted ascending: hubs form a prefix.
    out.hub_cliques += static_cast<std::uint64_t>(
        std::lower_bound(cands.begin(), cands.end(), hub_count) - cands.begin());
    return;
  }
  std::vector<VertexId>& next = scratch[depth];
  for (VertexId w : cands) {
    auto nw = oriented.neighbors(w);
    next.clear();
    std::set_intersection(cands.begin(), cands.end(), nw.begin(), nw.end(),
                          std::back_inserter(next));
    if (next.size() >= remaining - 1)  // enough candidates left to finish
      expand(oriented, hub_count, next, remaining - 1, out, scratch, depth + 1);
  }
}

}  // namespace

KCliqueResult count_kcliques(const graph::CsrGraph& graph, unsigned k,
                             double hub_fraction) {
  if (k < 3) throw std::invalid_argument("count_kcliques: k must be >= 3");
  KCliqueResult result;
  result.k = k;
  const VertexId n = graph.num_vertices();
  if (n == 0) return result;

  const auto hub_count = static_cast<VertexId>(
      std::max<double>(1.0, std::ceil(hub_fraction * n)));
  const OrientedCsr oriented = graph::degree_ordered_oriented(graph);

  std::vector<parallel::Padded<Partial>> partials(parallel::max_parallelism());
  parallel::parallel_for(0, n, 32,
      [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
        Partial local;
        std::vector<std::vector<VertexId>> scratch(k);
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = oriented.neighbors(v);
          if (nv.size() + 1 < k) continue;
          const std::vector<VertexId> cands(nv.begin(), nv.end());
          expand(oriented, hub_count, cands, k - 1, local, scratch, 0);
        }
        partials[thread_index].value.cliques += local.cliques;
        partials[thread_index].value.hub_cliques += local.hub_cliques;
      });

  for (const auto& p : partials) {
    result.cliques += p.value.cliques;
    result.hub_cliques += p.value.hub_cliques;
  }
  return result;
}

}  // namespace lotus::core
