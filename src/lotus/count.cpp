#include "lotus/count.hpp"

#include <algorithm>

namespace lotus::core {

using graph::VertexId;

std::vector<std::vector<HubTile>> build_hub_tasks(const LotusGraph& lg,
                                                  const LotusConfig& config,
                                                  TilingPolicy policy,
                                                  unsigned threads) {
  const graph::Csr16& he = lg.he();
  const VertexId n = lg.num_vertices();
  std::vector<std::vector<HubTile>> tasks;

  if (policy == TilingPolicy::kEdgeBalanced) {
    // The comparison policy of Table 9 (GraphGrind/Polymer-style): cut the
    // edge stream into 256 · #threads equal-entry partitions at vertex
    // boundaries. A heavy vertex's whole triangular loop (quadratic in its
    // degree) lands in a single partition — the imbalance squared edge
    // tiling removes.
    const std::uint64_t total_entries = he.num_edges();
    const std::uint64_t partitions = std::max<std::uint64_t>(1, 256ULL * threads);
    const std::uint64_t per_task = std::max<std::uint64_t>(1, (total_entries + partitions - 1) / partitions);
    std::vector<HubTile> current;
    std::uint64_t filled = 0;
    for (VertexId v = 0; v < n; ++v) {
      const std::uint32_t deg = he.degree(v);
      if (deg < 2) continue;  // no pairs to enumerate
      current.push_back({v, 0, deg});
      filled += deg;
      if (filled >= per_task) {
        tasks.push_back(std::move(current));
        current.clear();
        filled = 0;
      }
    }
    if (!current.empty()) tasks.push_back(std::move(current));
    return tasks;
  }

  // Squared edge tiling: heavy vertices get p equal-pair-work tiles each;
  // light vertices are batched into tasks of roughly equal total pair-work.
  const unsigned p = std::max(1u, config.tiling_partitions_per_thread * threads);
  std::uint64_t light_work = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t deg = he.degree(v);
    if (deg > config.tiling_degree_threshold) {
      const auto bounds = tile_boundaries(deg, p, TilingPolicy::kSquared);
      for (unsigned k = 0; k < p; ++k)
        if (bounds[k] < bounds[k + 1])
          tasks.push_back({HubTile{v, bounds[k], bounds[k + 1]}});
    } else {
      light_work += pair_work(0, deg);
    }
  }

  const std::uint64_t light_target_tasks = std::max<std::uint64_t>(1, 64ULL * threads);
  const std::uint64_t work_per_task =
      std::max<std::uint64_t>(1, (light_work + light_target_tasks - 1) / light_target_tasks);
  std::vector<HubTile> current;
  std::uint64_t filled = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t deg = he.degree(v);
    if (deg > config.tiling_degree_threshold || deg < 2) continue;
    current.push_back({v, 0, deg});
    filled += pair_work(0, deg);
    if (filled >= work_per_task) {
      tasks.push_back(std::move(current));
      current.clear();
      filled = 0;
    }
  }
  if (!current.empty()) tasks.push_back(std::move(current));
  return tasks;
}

}  // namespace lotus::core
