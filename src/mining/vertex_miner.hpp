// Vertex-extension mining over the degree-ordered oriented CSR — the shared
// traversal engine behind every analytic tc::query() serves (triangles,
// k-clique, per-vertex local counts, k-truss support).
//
// The design follows Pangolin's VertexMinerDFS policy split: one generic
// depth-first extension over the oriented DAG (each vertex keeps only its
// lower-ID neighbours, so an embedding is a strictly-decreasing ID chain and
// every k-clique is enumerated exactly once), with small analytic policies
// deciding what happens at the leaves. A policy sees the embedding built so
// far plus the final candidate set — the sorted common out-neighbourhood of
// every embedding member — and either counts it (k-clique census), walks it
// (per-corner crediting for local counts / truss supports), or both.
//
// Sharing one traversal is what makes the Engine's prepared-graph cache span
// analytics: every policy consumes the same ArtifactKind::kOriented artifact
// a plain Forward triangle count uses, so a k-clique query after a TC query
// is a cache hit (tc/engine.hpp).
//
// Cancellation/deadline: the root loop runs through parallel::parallel_for,
// which polls the installed ExecContext at chunk granularity — a cancelled
// query stops extending within one chunk of roots. Deep per-root subtrees
// additionally poll between root-level branches.
//
// Thread-safety: the traversal only reads the oriented CSR; policies own
// their mutable state (per-thread partials or atomic arrays).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/exec_context.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel_for.hpp"

namespace lotus::mining {

/// Chunk of root vertices a worker grabs per scheduling round; small because
/// per-root subtree cost is wildly skewed (hubs own most embeddings).
inline constexpr std::uint64_t kRootGrain = 32;

namespace detail {

/// Recursive extension step. `embedding` holds the chain so far (strictly
/// decreasing IDs), `cands` its common out-neighbourhood. At `remaining == 1`
/// every candidate completes one embedding and the policy consumes the leaf;
/// above that, each candidate is tentatively appended and the candidate set
/// intersected with its out-neighbours.
template <typename Policy>
void extend(const graph::OrientedCsr& dag, std::vector<graph::VertexId>& embedding,
            const std::vector<graph::VertexId>& cands, unsigned remaining,
            std::vector<std::vector<graph::VertexId>>& scratch, unsigned depth,
            Policy& policy) {
  if (remaining == 1) {
    policy.leaf(std::span<const graph::VertexId>(embedding),
                std::span<const graph::VertexId>(cands));
    return;
  }
  std::vector<graph::VertexId>& next = scratch[depth];
  for (const graph::VertexId w : cands) {
    if (!policy.to_extend(static_cast<unsigned>(embedding.size()), w)) continue;
    auto nw = dag.neighbors(w);
    next.clear();
    std::set_intersection(cands.begin(), cands.end(), nw.begin(), nw.end(),
                          std::back_inserter(next));
    if (next.size() + 1 < remaining) continue;  // cannot finish from here
    embedding.push_back(w);
    extend(dag, embedding, next, remaining - 1, scratch, depth + 1, policy);
    embedding.pop_back();
  }
}

}  // namespace detail

/// Run `make_policy(thread_index)`'s policy over every size-k embedding of
/// the oriented DAG, in parallel over root vertices. `k >= 2`; k = 3
/// enumerates triangles. The factory runs once per worker so policies can
/// hold per-thread accumulators without sharing.
template <typename PolicyFactory>
void mine_dfs(const graph::OrientedCsr& dag, unsigned k,
              PolicyFactory&& make_policy) {
  if (k < 2) return;
  const graph::VertexId n = dag.num_vertices();
  parallel::parallel_for(
      0, n, kRootGrain,
      [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
        // decltype(auto): factories returning a reference (shared per-thread
        // accumulators) must not be copied into a discarded local.
        decltype(auto) policy = make_policy(thread_index);
        std::vector<std::vector<graph::VertexId>> scratch(k);
        std::vector<graph::VertexId> embedding;
        embedding.reserve(k);
        const parallel::ExecContext* ctx = parallel::current_exec_context();
        for (std::uint64_t vi = b; vi < e; ++vi) {
          // Roots are cheap to skip but subtrees are not: poll between roots
          // so a deep chunk still honours cancellation promptly.
          if (parallel::check_interrupt(ctx) != parallel::Interrupt::kNone)
            return;
          const auto v = static_cast<graph::VertexId>(vi);
          auto nv = dag.neighbors(v);
          if (nv.size() + 1 < k) continue;
          const std::vector<graph::VertexId> cands(nv.begin(), nv.end());
          embedding.assign(1, v);
          detail::extend(dag, embedding, cands, k - 1, scratch, 0, policy);
        }
      });
}

/// Policy: count embeddings, attributing those whose minimum-ID member falls
/// below `hub_count` (after degree ordering, hubs occupy the lowest IDs, and
/// the IDs along an embedding strictly decrease — so the leaf candidate is
/// the minimum and a sorted candidate set has its hub members as a prefix).
struct CliqueCensusPolicy {
  graph::VertexId hub_count = 0;
  std::uint64_t cliques = 0;
  std::uint64_t hub_cliques = 0;

  static bool to_extend(unsigned, graph::VertexId) { return true; }
  void leaf(std::span<const graph::VertexId>,
            std::span<const graph::VertexId> cands) {
    cliques += cands.size();
    hub_cliques += static_cast<std::uint64_t>(
        std::lower_bound(cands.begin(), cands.end(), hub_count) -
        cands.begin());
  }
};

/// Policy adapter for triangle-shaped analytics (k = 3): invokes
/// `fn(v, u, w)` once per triangle, with v > u > w in the oriented ID order.
template <typename Fn>
struct TriangleVisitPolicy {
  Fn fn;

  static bool to_extend(unsigned, graph::VertexId) { return true; }
  void leaf(std::span<const graph::VertexId> embedding,
            std::span<const graph::VertexId> cands) {
    for (const graph::VertexId w : cands) fn(embedding[0], embedding[1], w);
  }
};

/// Count k-cliques (k >= 3) with hub attribution over a prebuilt
/// degree-ordered oriented CSR — the policy instance the k-clique analytic
/// and core::count_kcliques() share.
struct CliqueCensus {
  std::uint64_t cliques = 0;
  std::uint64_t hub_cliques = 0;
};

inline CliqueCensus count_cliques(const graph::OrientedCsr& dag, unsigned k,
                                  graph::VertexId hub_count) {
  std::vector<parallel::Padded<CliqueCensusPolicy>> partials(
      parallel::max_parallelism());
  for (auto& p : partials) p.value.hub_count = hub_count;
  mine_dfs(dag, k, [&](unsigned thread_index) -> CliqueCensusPolicy& {
    return partials[thread_index].value;
  });
  CliqueCensus out;
  for (const auto& p : partials) {
    out.cliques += p.value.cliques;
    out.hub_cliques += p.value.hub_cliques;
  }
  return out;
}

/// Visit every triangle of the oriented DAG: `fn(v, u, w)` per triangle,
/// callable concurrently from pool workers (use atomics or per-thread state).
template <typename Fn>
void for_each_triangle(const graph::OrientedCsr& dag, const Fn& fn) {
  mine_dfs(dag, 3, [&](unsigned) { return TriangleVisitPolicy<const Fn&>{fn}; });
}

}  // namespace lotus::mining
