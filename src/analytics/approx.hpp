// Approximate triangle counting (the Sec. 6.2 context).
//
// Two classical estimators, used by the approximation bench and example:
//   * DOULION [71] — keep each edge with probability p, count exactly on
//     the sparsified graph, scale by 1/p^3. Unbiased; variance shrinks as
//     the true count grows.
//   * Wedge sampling [39-style] — sample wedges (length-2 paths) uniformly,
//     measure the closure probability (global transitivity), and convert to
//     a triangle count via the exact wedge total.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace lotus::analytics {

struct ApproxResult {
  double estimated_triangles = 0.0;
  double relative_stderr = 0.0;  // estimated relative standard error
  double elapsed_s = 0.0;
};

/// DOULION: `keep_probability` in (0, 1]. p = 1 degenerates to exact.
ApproxResult doulion(const graph::CsrGraph& graph, double keep_probability,
                     std::uint64_t seed = 1);

/// Wedge sampling with `samples` closure checks.
ApproxResult wedge_sampling(const graph::CsrGraph& graph, std::uint64_t samples,
                            std::uint64_t seed = 1);

}  // namespace lotus::analytics
