#include "analytics/clustering.hpp"

#include <atomic>

#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "parallel/parallel_for.hpp"

namespace lotus::analytics {

using graph::CsrGraph;
using graph::VertexId;

std::vector<std::uint64_t> local_triangle_counts(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  const auto new_id = graph::degree_descending_permutation(graph);
  const auto oriented = graph::orient_by_id(graph::relabel(graph, new_id));

  std::vector<std::atomic<std::uint64_t>> counts(n);  // indexed by NEW id
  parallel::parallel_for(0, n, 64,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = oriented.neighbors(v);
          for (VertexId u : nv) {
            auto nu = oriented.neighbors(u);
            std::size_t i = 0, j = 0;
            while (i < nv.size() && j < nu.size()) {
              if (nv[i] < nu[j]) {
                ++i;
              } else if (nv[i] > nu[j]) {
                ++j;
              } else {
                // Triangle (w, u, v): credit all three corners.
                counts[nv[i]].fetch_add(1, std::memory_order_relaxed);
                counts[u].fetch_add(1, std::memory_order_relaxed);
                counts[v].fetch_add(1, std::memory_order_relaxed);
                ++i;
                ++j;
              }
            }
          }
        }
      });

  std::vector<std::uint64_t> by_original(n);
  for (VertexId v = 0; v < n; ++v)
    by_original[v] = counts[new_id[v]].load(std::memory_order_relaxed);
  return by_original;
}

std::vector<double> clustering_coefficients(const CsrGraph& graph) {
  const auto triangles = local_triangle_counts(graph);
  const VertexId n = graph.num_vertices();
  std::vector<double> coefficients(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = graph.degree(v);
    if (d >= 2)
      coefficients[v] = 2.0 * static_cast<double>(triangles[v]) /
                        (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return coefficients;
}

TransitivitySummary transitivity(const CsrGraph& graph) {
  TransitivitySummary out;
  const auto triangles = local_triangle_counts(graph);
  const VertexId n = graph.num_vertices();
  std::uint64_t corner_sum = 0;
  double coefficient_sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = graph.degree(v);
    out.wedges += d * (d - 1) / 2;
    corner_sum += triangles[v];
    if (d >= 2)
      coefficient_sum += 2.0 * static_cast<double>(triangles[v]) /
                         (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  out.triangles = corner_sum / 3;
  out.global_transitivity =
      out.wedges > 0 ? static_cast<double>(corner_sum) / static_cast<double>(out.wedges) : 0.0;
  out.avg_clustering = n > 0 ? coefficient_sum / n : 0.0;
  return out;
}

}  // namespace lotus::analytics
