#include "analytics/clustering.hpp"

#include <atomic>

#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "mining/vertex_miner.hpp"
#include "util/memory_budget.hpp"

namespace lotus::analytics {

using graph::CsrGraph;
using graph::VertexId;

std::vector<std::uint64_t> local_triangle_counts_prepared(
    const graph::OrientedCsr& oriented, const std::vector<VertexId>& new_id) {
  const VertexId n = oriented.num_vertices();
  // Atomic accumulators + the remapped output coexist: charge both.
  util::charge_current(2 * static_cast<std::uint64_t>(n) * sizeof(std::uint64_t),
                       "clustering/per-vertex-counts");
  std::vector<std::atomic<std::uint64_t>> counts(n);  // indexed by NEW id
  mining::for_each_triangle(oriented, [&](VertexId v, VertexId u, VertexId w) {
    counts[v].fetch_add(1, std::memory_order_relaxed);
    counts[u].fetch_add(1, std::memory_order_relaxed);
    counts[w].fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<std::uint64_t> by_original(n);
  for (VertexId v = 0; v < n; ++v)
    by_original[v] = counts[new_id[v]].load(std::memory_order_relaxed);
  return by_original;
}

std::vector<std::uint64_t> local_triangle_counts(const CsrGraph& graph) {
  const auto new_id = graph::degree_descending_permutation(graph);
  const auto oriented = graph::orient_by_id(graph::relabel(graph, new_id));
  return local_triangle_counts_prepared(oriented, new_id);
}

std::vector<double> coefficients_from_counts(
    const CsrGraph& graph, const std::vector<std::uint64_t>& triangles) {
  const VertexId n = graph.num_vertices();
  util::charge_current(static_cast<std::uint64_t>(n) * sizeof(double),
                       "clustering/coefficients");
  std::vector<double> coefficients(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = graph.degree(v);
    if (d >= 2)
      coefficients[v] = 2.0 * static_cast<double>(triangles[v]) /
                        (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return coefficients;
}

TransitivitySummary transitivity_from_counts(
    const CsrGraph& graph, const std::vector<std::uint64_t>& triangles) {
  TransitivitySummary out;
  const VertexId n = graph.num_vertices();
  std::uint64_t corner_sum = 0;
  double coefficient_sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = graph.degree(v);
    out.wedges += d * (d - 1) / 2;
    corner_sum += triangles[v];
    if (d >= 2)
      coefficient_sum += 2.0 * static_cast<double>(triangles[v]) /
                         (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  out.triangles = corner_sum / 3;
  out.global_transitivity =
      out.wedges > 0 ? static_cast<double>(corner_sum) / static_cast<double>(out.wedges) : 0.0;
  out.avg_clustering = n > 0 ? coefficient_sum / n : 0.0;
  return out;
}

std::vector<double> clustering_coefficients(const CsrGraph& graph) {
  return coefficients_from_counts(graph, local_triangle_counts(graph));
}

TransitivitySummary transitivity(const CsrGraph& graph) {
  return transitivity_from_counts(graph, local_triangle_counts(graph));
}

}  // namespace lotus::analytics
