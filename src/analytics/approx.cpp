#include "analytics/approx.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/tc_baselines.hpp"
#include "graph/builder.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace lotus::analytics {

using graph::CsrGraph;
using graph::VertexId;

ApproxResult doulion(const CsrGraph& graph, double keep_probability,
                     std::uint64_t seed) {
  if (keep_probability <= 0.0 || keep_probability > 1.0)
    throw std::invalid_argument("doulion: keep probability must be in (0, 1]");
  util::Timer timer;
  util::Xoshiro256 rng(seed);

  // Sparsify undirected edges (each kept/dropped once, both directions).
  graph::EdgeList kept;
  kept.num_vertices = graph.num_vertices();
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    for (VertexId u : graph.neighbors(v))
      if (u < v && rng.next_double() < keep_probability)
        kept.edges.push_back({u, v});

  const CsrGraph sparse = graph::build_undirected(kept);
  const auto count = baselines::forward_merge(sparse).triangles;

  ApproxResult out;
  const double p3 = keep_probability * keep_probability * keep_probability;
  out.estimated_triangles = static_cast<double>(count) / p3;
  // Per-triangle survival is Bernoulli(p^3): relative stderr ≈
  // sqrt((1−p^3)/(T·p^3)) with T approximated by the estimate itself.
  if (out.estimated_triangles > 0)
    out.relative_stderr =
        std::sqrt((1.0 - p3) / (out.estimated_triangles * p3));
  out.elapsed_s = timer.elapsed_s();
  return out;
}

ApproxResult wedge_sampling(const CsrGraph& graph, std::uint64_t samples,
                            std::uint64_t seed) {
  if (samples == 0) throw std::invalid_argument("wedge_sampling: need samples > 0");
  util::Timer timer;
  util::Xoshiro256 rng(seed);
  const VertexId n = graph.num_vertices();

  // Cumulative wedge counts for centre-vertex sampling ∝ C(d, 2).
  std::vector<double> cumulative(static_cast<std::size_t>(n) + 1, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const double d = graph.degree(v);
    cumulative[v + 1] = cumulative[v] + d * (d - 1) / 2.0;
  }
  const double total_wedges = cumulative.back();
  ApproxResult out;
  if (total_wedges == 0) {
    out.elapsed_s = timer.elapsed_s();
    return out;
  }

  std::uint64_t closed = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const double target = rng.next_double() * total_wedges;
    const auto centre = static_cast<VertexId>(
        std::upper_bound(cumulative.begin(), cumulative.end(), target) -
        cumulative.begin() - 1);
    auto ns = graph.neighbors(centre);
    const auto i = rng.next_below(ns.size());
    auto j = rng.next_below(ns.size() - 1);
    if (j >= i) ++j;  // distinct pair, uniform
    const VertexId a = ns[i], b = ns[j];
    auto na = graph.neighbors(a);
    closed += std::binary_search(na.begin(), na.end(), b) ? 1u : 0u;
  }

  const double closure = static_cast<double>(closed) / static_cast<double>(samples);
  // Every triangle closes exactly 3 wedges.
  out.estimated_triangles = closure * total_wedges / 3.0;
  if (closed > 0)
    out.relative_stderr =
        std::sqrt((1.0 - closure) / static_cast<double>(closed));
  out.elapsed_s = timer.elapsed_s();
  return out;
}

}  // namespace lotus::analytics
