// Graph-mining analytics built on triangle counting: per-vertex triangle
// counts, local clustering coefficients, and global transitivity. These are
// the downstream uses the paper's introduction motivates (community
// structure, social-capital metrics, motif analysis).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace lotus::analytics {

/// Number of triangles through each vertex (each triangle contributes to
/// all three corners). Computed with the Forward algorithm over a
/// degree-ordered oriented graph; results are indexed by ORIGINAL vertex ID.
std::vector<std::uint64_t> local_triangle_counts(const graph::CsrGraph& graph);

/// Watts-Strogatz local clustering coefficient per vertex:
/// 2·tri(v) / (deg(v)·(deg(v)−1)); 0 for degree < 2.
std::vector<double> clustering_coefficients(const graph::CsrGraph& graph);

struct TransitivitySummary {
  std::uint64_t triangles = 0;       // distinct triangles
  std::uint64_t wedges = 0;          // paths of length 2 (open + closed)
  double global_transitivity = 0.0;  // 3·triangles / wedges
  double avg_clustering = 0.0;       // mean local coefficient
};

TransitivitySummary transitivity(const graph::CsrGraph& graph);

}  // namespace lotus::analytics
