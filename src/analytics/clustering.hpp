// Graph-mining analytics built on triangle counting: per-vertex triangle
// counts, local clustering coefficients, and global transitivity. These are
// the downstream uses the paper's introduction motivates (community
// structure, social-capital metrics, motif analysis).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace lotus::analytics {

/// Number of triangles through each vertex (each triangle contributes to
/// all three corners). Computed with the Forward algorithm over a
/// degree-ordered oriented graph; results are indexed by ORIGINAL vertex ID.
std::vector<std::uint64_t> local_triangle_counts(const graph::CsrGraph& graph);

/// Watts-Strogatz local clustering coefficient per vertex:
/// 2·tri(v) / (deg(v)·(deg(v)−1)); 0 for degree < 2.
std::vector<double> clustering_coefficients(const graph::CsrGraph& graph);

struct TransitivitySummary {
  std::uint64_t triangles = 0;       // distinct triangles
  std::uint64_t wedges = 0;          // paths of length 2 (open + closed)
  double global_transitivity = 0.0;  // 3·triangles / wedges
  double avg_clustering = 0.0;       // mean local coefficient
};

TransitivitySummary transitivity(const graph::CsrGraph& graph);

// -- Prepared-artifact variants ---------------------------------------------
// Entry points for the Engine-served analytics (tc/analytics_exec.cpp): the
// caller supplies a degree-ordered oriented CSR (the shared cached artifact)
// plus the permutation that built it, so nothing here re-sorts the graph.

/// Per-vertex counts over a prebuilt oriented CSR; `new_id[v]` is v's ID in
/// the oriented graph (i.e. the degree-descending permutation used to build
/// it). Results are indexed by ORIGINAL vertex ID. Charges the per-vertex
/// arrays against the active memory budget; triangle enumeration runs
/// through the mining layer and honours cancellation/deadline.
std::vector<std::uint64_t> local_triangle_counts_prepared(
    const graph::OrientedCsr& oriented,
    const std::vector<graph::VertexId>& new_id);

/// Coefficients from precomputed per-vertex counts (indexed by original ID).
std::vector<double> coefficients_from_counts(
    const graph::CsrGraph& graph, const std::vector<std::uint64_t>& triangles);

/// Transitivity summary from precomputed per-vertex counts.
TransitivitySummary transitivity_from_counts(
    const graph::CsrGraph& graph, const std::vector<std::uint64_t>& triangles);

}  // namespace lotus::analytics
