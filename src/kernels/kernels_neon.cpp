// NEON tier (aarch64): 4×u32 / 8×u16 block-compare merge via vext lane
// rotation and vcnt-based bitmap popcounts. NEON is baseline on aarch64, so
// no target attributes or cpuid checks are needed — the whole tier is
// compile-time gated. On x86 this TU compiles to the nullptr stub.
#include "kernels/dispatch.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>
#define LOTUS_KERNELS_NEON 1
#endif

namespace lotus::kernels::detail {

#ifdef LOTUS_KERNELS_NEON

namespace {

std::uint64_t merge_u32_neon(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  while (i + 4 <= na && j + 4 <= nb) {
    const uint32x4_t va = vld1q_u32(a + i);
    uint32x4_t vb = vld1q_u32(b + j);
    uint32x4_t match = vdupq_n_u32(0);
    // All 4×4 lane pairings; vext needs a constant immediate, so the
    // rotate-by-one is unrolled.
    match = vorrq_u32(match, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    match = vorrq_u32(match, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    match = vorrq_u32(match, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    match = vorrq_u32(match, vceqq_u32(va, vb));
    count += vaddvq_u32(vandq_u32(match, vdupq_n_u32(1)));

    const std::uint32_t amax = a[i + 3];
    const std::uint32_t bmax = b[j + 3];
    i += amax <= bmax ? 4u : 0u;
    j += bmax <= amax ? 4u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

std::uint64_t merge_u16_neon(const std::uint16_t* a, std::size_t na,
                             const std::uint16_t* b, std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  while (i + 8 <= na && j + 8 <= nb) {
    const uint16x8_t va = vld1q_u16(a + i);
    uint16x8_t vb = vld1q_u16(b + j);
    uint16x8_t match = vdupq_n_u16(0);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    count += vaddvq_u16(vandq_u16(match, vdupq_n_u16(1)));

    const std::uint16_t amax = a[i + 7];
    const std::uint16_t bmax = b[j + 7];
    i += amax <= bmax ? 8u : 0u;
    j += bmax <= amax ? 8u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

std::uint64_t and_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint8x16_t bytes =
        vcntq_u8(vreinterpretq_u8_u64(vandq_u64(va, vb)));
    total += vaddvq_u8(bytes);
  }
  for (; i < words; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

std::uint64_t popcount_neon(const std::uint64_t* words, std::size_t count) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2)
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(words + i))));
  for (; i < count; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[i]));
  return total;
}

}  // namespace

const KernelTable* neon_kernel_table() noexcept {
  static const KernelTable table = [] {
    KernelTable t = scalar_kernel_table();
    t.isa = Isa::kNeon;
    t.merge_u32 = &merge_u32_neon;
    t.merge_u16 = &merge_u16_neon;
    t.and_popcount = &and_popcount_neon;
    t.popcount = &popcount_neon;
    return t;
  }();
  return &table;
}

#else  // !LOTUS_KERNELS_NEON

const KernelTable* neon_kernel_table() noexcept { return nullptr; }

#endif

}  // namespace lotus::kernels::detail
