// NEON tier (aarch64): 4×u32 / 8×u16 block-compare merge via vext lane
// rotation and vcnt-based bitmap popcounts. NEON is baseline on aarch64, so
// no target attributes or cpuid checks are needed — the whole tier is
// compile-time gated. On x86 this TU compiles to the nullptr stub.
#include "kernels/dispatch.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>
#define LOTUS_KERNELS_NEON 1
#endif

namespace lotus::kernels::detail {

#ifdef LOTUS_KERNELS_NEON

namespace {

std::uint64_t merge_u32_neon(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  while (i + 4 <= na && j + 4 <= nb) {
    const uint32x4_t va = vld1q_u32(a + i);
    uint32x4_t vb = vld1q_u32(b + j);
    uint32x4_t match = vdupq_n_u32(0);
    // All 4×4 lane pairings; vext needs a constant immediate, so the
    // rotate-by-one is unrolled.
    match = vorrq_u32(match, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    match = vorrq_u32(match, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    match = vorrq_u32(match, vceqq_u32(va, vb));
    vb = vextq_u32(vb, vb, 1);
    match = vorrq_u32(match, vceqq_u32(va, vb));
    count += vaddvq_u32(vandq_u32(match, vdupq_n_u32(1)));

    const std::uint32_t amax = a[i + 3];
    const std::uint32_t bmax = b[j + 3];
    i += amax <= bmax ? 4u : 0u;
    j += bmax <= amax ? 4u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

std::uint64_t merge_u16_neon(const std::uint16_t* a, std::size_t na,
                             const std::uint16_t* b, std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  while (i + 8 <= na && j + 8 <= nb) {
    const uint16x8_t va = vld1q_u16(a + i);
    uint16x8_t vb = vld1q_u16(b + j);
    uint16x8_t match = vdupq_n_u16(0);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    vb = vextq_u16(vb, vb, 1);
    match = vorrq_u16(match, vceqq_u16(va, vb));
    count += vaddvq_u16(vandq_u16(match, vdupq_n_u16(1)));

    const std::uint16_t amax = a[i + 7];
    const std::uint16_t bmax = b[j + 7];
    i += amax <= bmax ? 8u : 0u;
    j += bmax <= amax ? 8u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

std::uint64_t and_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint8x16_t bytes =
        vcntq_u8(vreinterpretq_u8_u64(vandq_u64(va, vb)));
    total += vaddvq_u8(bytes);
  }
  for (; i < words; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

std::uint64_t popcount_neon(const std::uint64_t* words, std::size_t count) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2)
    total += vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(words + i))));
  for (; i < count; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[i]));
  return total;
}

void checksum_stripes_neon(std::uint64_t* acc, const unsigned char* data,
                           std::size_t stripes) {
  // Four 2xu64 accumulator pairs; the pairwise data swap is vext by one
  // 64-bit lane and the 32x32->64 product is vmull over the narrowed
  // halves. Lane-exact with the scalar reference.
  uint64x2_t a0 = vld1q_u64(acc);
  uint64x2_t a1 = vld1q_u64(acc + 2);
  uint64x2_t a2 = vld1q_u64(acc + 4);
  uint64x2_t a3 = vld1q_u64(acc + 6);
  const uint64x2_t s0 = vld1q_u64(kChecksumSecret);
  const uint64x2_t s1 = vld1q_u64(kChecksumSecret + 2);
  const uint64x2_t s2 = vld1q_u64(kChecksumSecret + 4);
  const uint64x2_t s3 = vld1q_u64(kChecksumSecret + 6);
  for (std::size_t s = 0; s < stripes; ++s, data += 64) {
    const uint64x2_t d0 = vreinterpretq_u64_u8(vld1q_u8(data));
    const uint64x2_t d1 = vreinterpretq_u64_u8(vld1q_u8(data + 16));
    const uint64x2_t d2 = vreinterpretq_u64_u8(vld1q_u8(data + 32));
    const uint64x2_t d3 = vreinterpretq_u64_u8(vld1q_u8(data + 48));
    const uint64x2_t k0 = veorq_u64(d0, s0);
    const uint64x2_t k1 = veorq_u64(d1, s1);
    const uint64x2_t k2 = veorq_u64(d2, s2);
    const uint64x2_t k3 = veorq_u64(d3, s3);
    a0 = vaddq_u64(a0, vextq_u64(d0, d0, 1));
    a1 = vaddq_u64(a1, vextq_u64(d1, d1, 1));
    a2 = vaddq_u64(a2, vextq_u64(d2, d2, 1));
    a3 = vaddq_u64(a3, vextq_u64(d3, d3, 1));
    a0 = vmlal_u32(a0, vmovn_u64(k0), vshrn_n_u64(k0, 32));
    a1 = vmlal_u32(a1, vmovn_u64(k1), vshrn_n_u64(k1, 32));
    a2 = vmlal_u32(a2, vmovn_u64(k2), vshrn_n_u64(k2, 32));
    a3 = vmlal_u32(a3, vmovn_u64(k3), vshrn_n_u64(k3, 32));
  }
  vst1q_u64(acc, a0);
  vst1q_u64(acc + 2, a1);
  vst1q_u64(acc + 4, a2);
  vst1q_u64(acc + 6, a3);
}

}  // namespace

const KernelTable* neon_kernel_table() noexcept {
  static const KernelTable table = [] {
    KernelTable t = scalar_kernel_table();
    t.isa = Isa::kNeon;
    t.merge_u32 = &merge_u32_neon;
    t.merge_u16 = &merge_u16_neon;
    t.and_popcount = &and_popcount_neon;
    t.popcount = &popcount_neon;
    t.checksum_stripes = &checksum_stripes_neon;
    return t;
  }();
  return &table;
}

#else  // !LOTUS_KERNELS_NEON

const KernelTable* neon_kernel_table() noexcept { return nullptr; }

#endif

}  // namespace lotus::kernels::detail
