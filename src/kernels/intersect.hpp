// Probe-aware front door to the dispatched merge kernels.
//
// The instrumentation contract (baselines/intersect.hpp): every kernel the
// counting phases call must accept a memory probe and, when one is attached,
// replay the exact scalar access stream — SIMD lanes have no per-element
// addresses to report. This wrapper enforces that contract at compile time:
// a NullProbe call with vectorization enabled goes through the runtime
// dispatch table; any other probe type — or vectorize == false, the scalar
// reference path of QueryOptions — routes to the probe-templated scalar
// mirror, which produces the identical count.
//
// obs accounting: the dispatched path flushes |a|+|b| element comparisons
// (both lists are read in full by the block compare) once per call, plus a
// fruitless-search tick for empty intersections, mirroring intersect_merge.
// Identical across ISA tiers, so forcing LOTUS_ISA never shifts counters
// between tiers; the scalar mirror reports its exact merge-step count, which
// is ≤ |a|+|b|. See docs/KERNELS.md.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "baselines/intersect.hpp"
#include "kernels/dispatch.hpp"
#include "obs/counters.hpp"

namespace lotus::kernels {

/// |a ∩ b| of strictly ascending lists (u16 for the HE compact IDs, u32 for
/// vertex IDs), dispatched per active_isa() when uninstrumented.
template <typename T, typename Probe = baselines::NullProbe>
std::uint64_t intersect(std::span<const T> a, std::span<const T> b,
                        Probe& probe = baselines::null_probe,
                        bool vectorize = true) {
  static_assert(std::is_unsigned_v<T> && (sizeof(T) == 2 || sizeof(T) == 4),
                "dispatch table covers u16 and u32 element types");
  if constexpr (std::is_same_v<Probe, baselines::NullProbe>) {
    if (vectorize) {
      const KernelTable& table = kernel_table();
      std::uint64_t found;
      if constexpr (sizeof(T) == 2)
        found = table.merge_u16(reinterpret_cast<const std::uint16_t*>(a.data()),
                                a.size(),
                                reinterpret_cast<const std::uint16_t*>(b.data()),
                                b.size());
      else
        found = table.merge_u32(reinterpret_cast<const std::uint32_t*>(a.data()),
                                a.size(),
                                reinterpret_cast<const std::uint32_t*>(b.data()),
                                b.size());
      const std::uint64_t comparisons =
          a.empty() || b.empty() ? 0 : a.size() + b.size();
      obs::count(obs::Counter::kIntersectComparisons, comparisons);
      if (found == 0 && comparisons > 0)
        obs::count(obs::Counter::kFruitlessSearches);
      return found;
    }
  }
  return baselines::intersect_merge<T>(a, b, probe);
}

}  // namespace lotus::kernels
