// Runtime-dispatched SIMD kernel table.
//
// One KernelTable per ISA tier (scalar always; AVX2/AVX-512 on x86, NEON on
// aarch64), each entry a plain function pointer so the per-tier code can be
// compiled with __attribute__((target(...))) in its own translation unit and
// selected by cpuid at runtime. Entries a tier does not specialize fall back
// to the scalar implementation, so every table is always fully populated.
//
// These kernels are the *uninstrumented* fast paths: they take raw pointers,
// carry no memory probe, and flush no obs counters themselves. The
// probe/obs contract of baselines/intersect.hpp is preserved one layer up —
// kernels/intersect.hpp routes probed calls to the scalar mirror and flushes
// comparison totals for dispatched calls. See docs/KERNELS.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/isa.hpp"

namespace lotus::kernels {

struct KernelTable {
  /// Tier this table executes as (after scalar fallbacks are filled in).
  Isa isa = Isa::kScalar;

  /// |a ∩ b| of strictly ascending u32 lists — vectorized merge (block
  /// compare against all lane rotations on the SIMD tiers).
  std::uint64_t (*merge_u32)(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb);

  /// 16-bit variant for the LOTUS HE compact-ID lists (twice the lanes).
  std::uint64_t (*merge_u16)(const std::uint16_t* a, std::size_t na,
                             const std::uint16_t* b, std::size_t nb);

  /// popcount(a[i] & b[i]) summed over `words` — dense × dense bitmap
  /// intersection.
  std::uint64_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words);

  /// Total set bits over `words`.
  std::uint64_t (*popcount)(const std::uint64_t* words, std::size_t count);

  /// Sparse × dense: how many of `keys` have their bit set in `bits`
  /// (bit k lives at bits[k >> 6] >> (k & 63)). Every key must index a
  /// word the caller allocated.
  std::uint64_t (*hits_bitset)(const std::uint32_t* keys, std::size_t count,
                               const std::uint64_t* bits);

  /// popcount(window & mask) where the window is `mask_words` 64-bit words
  /// of the bit stream `bits` starting at *bit* `offset` (not word-aligned;
  /// `bits_words` bounds the reads) — the H2H triangular-row kernel: rows
  /// start at row_base(h1), a bit offset with no alignment guarantee.
  std::uint64_t (*and_window_popcount)(const std::uint64_t* bits,
                                       std::size_t bits_words,
                                       std::uint64_t offset,
                                       const std::uint64_t* mask,
                                       std::size_t mask_words);

  /// Accumulate `stripes` 64-byte stripes into the 8-lane block-checksum
  /// state (util/checksum.hpp): per u64 lane j with data word x and
  /// k = x ^ kChecksumSecret[j], acc[j] += u32(k) * u32(k >> 32) and
  /// acc[j ^ 1] += x. Lane words are little-endian loads; every tier
  /// produces bit-identical state, so artifact checksums never depend on
  /// which ISA wrote or verified the file.
  void (*checksum_stripes)(std::uint64_t* acc, const unsigned char* data,
                           std::size_t stripes);
};

/// Fixed per-lane key material for `checksum_stripes`; shared by the scalar
/// reference and every SIMD tier so all tables mix identically.
inline constexpr std::uint64_t kChecksumSecret[8] = {
    0xbe4ba423396cfeb8ULL, 0x1cad21f72c81017cULL,
    0xdb979083e96dd4deULL, 0x1f67b3b7a4a44072ULL,
    0x78e5c0cc4ee679cbULL, 0x2172ffcc7dd05a82ULL,
    0x8e2443f7744608b8ULL, 0x4c263a81e69035e0ULL,
};

/// Table of an explicit tier; unsupported requests clamp down (isa.hpp).
[[nodiscard]] const KernelTable& kernel_table(Isa isa) noexcept;

/// Table of active_isa() — what the counting phases call.
[[nodiscard]] const KernelTable& kernel_table() noexcept;

/// Dispatch-table kernel names, one per KernelTable entry. scripts/
/// check_docs.sh parses the block below and requires a docs/KERNELS.md
/// inventory entry for every name — keep the markers intact.
// KERNEL-INVENTORY-BEGIN
inline constexpr const char* kKernelNames[] = {
    "merge_u32",     "merge_u16", "and_popcount",
    "popcount",      "hits_bitset", "and_window_popcount",
    "checksum_stripes",
};
// KERNEL-INVENTORY-END

namespace detail {
/// Per-tier table builders. The scalar table always exists; the SIMD tiers
/// return nullptr when their architecture is not compiled in (their TUs
/// still build everywhere — the bodies are preprocessor-gated). Tier tables
/// copy scalar entries for kernels they do not specialize.
[[nodiscard]] const KernelTable& scalar_kernel_table() noexcept;
[[nodiscard]] const KernelTable* avx2_kernel_table() noexcept;
[[nodiscard]] const KernelTable* avx512_kernel_table() noexcept;
[[nodiscard]] const KernelTable* neon_kernel_table() noexcept;
}  // namespace detail

}  // namespace lotus::kernels
