#include "kernels/dispatch.hpp"

#include <cstring>

namespace lotus::kernels {

namespace {

// Scalar reference kernels. Branch-free merge advances (cmov) rather than
// the branching merge of baselines/intersect.hpp: the dispatched fast path
// has no probe to report branches to, so the branchless form is strictly
// better here. Counts are identical.
template <typename T>
std::uint64_t merge_scalar(const T* a, std::size_t na, const T* b,
                           std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const T x = a[i];
    const T y = b[j];
    count += x == y ? 1u : 0u;
    i += x <= y ? 1u : 0u;
    j += y <= x ? 1u : 0u;
  }
  return count;
}

std::uint64_t merge_u32_scalar(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb) {
  return merge_scalar(a, na, b, nb);
}

std::uint64_t merge_u16_scalar(const std::uint16_t* a, std::size_t na,
                               const std::uint16_t* b, std::size_t nb) {
  return merge_scalar(a, na, b, nb);
}

std::uint64_t and_popcount_scalar(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

std::uint64_t popcount_scalar(const std::uint64_t* words, std::size_t count) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[i]));
  return total;
}

std::uint64_t hits_bitset_scalar(const std::uint32_t* keys, std::size_t count,
                                 const std::uint64_t* bits) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i)
    total += (bits[keys[i] >> 6] >> (keys[i] & 63)) & 1ULL;
  return total;
}

std::uint64_t and_window_popcount_scalar(const std::uint64_t* bits,
                                         std::size_t bits_words,
                                         std::uint64_t offset,
                                         const std::uint64_t* mask,
                                         std::size_t mask_words) {
  const std::size_t base = static_cast<std::size_t>(offset >> 6);
  const unsigned shift = static_cast<unsigned>(offset & 63);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < mask_words; ++i) {
    std::uint64_t window = bits[base + i] >> shift;
    // The straddling high half; the last valid word has no successor, and
    // the caller's mask is zero wherever the window runs past its row.
    if (shift != 0 && base + i + 1 < bits_words)
      window |= bits[base + i + 1] << (64 - shift);
    total += static_cast<std::uint64_t>(__builtin_popcountll(window & mask[i]));
  }
  return total;
}

void checksum_stripes_scalar(std::uint64_t* acc, const unsigned char* data,
                             std::size_t stripes) {
  for (std::size_t s = 0; s < stripes; ++s, data += 64) {
    for (std::size_t j = 0; j < 8; ++j) {
      std::uint64_t x;
      std::memcpy(&x, data + 8 * j, 8);
      const std::uint64_t k = x ^ kChecksumSecret[j];
      acc[j ^ 1] += x;
      acc[j] += (k & 0xffffffffULL) * (k >> 32);
    }
  }
}

constexpr KernelTable kScalarTable = {
    Isa::kScalar,        &merge_u32_scalar,   &merge_u16_scalar,
    &and_popcount_scalar, &popcount_scalar,   &hits_bitset_scalar,
    &and_window_popcount_scalar, &checksum_stripes_scalar,
};

}  // namespace

namespace detail {
const KernelTable& scalar_kernel_table() noexcept { return kScalarTable; }
}  // namespace detail

const KernelTable& kernel_table(Isa isa) noexcept {
  switch (clamp_to_supported(isa)) {
    case Isa::kAvx512:
      if (const KernelTable* t = detail::avx512_kernel_table()) return *t;
      break;
    case Isa::kAvx2:
      if (const KernelTable* t = detail::avx2_kernel_table()) return *t;
      break;
    case Isa::kNeon:
      if (const KernelTable* t = detail::neon_kernel_table()) return *t;
      break;
    case Isa::kScalar:
      break;
  }
  return kScalarTable;
}

const KernelTable& kernel_table() noexcept { return kernel_table(active_isa()); }

}  // namespace lotus::kernels
