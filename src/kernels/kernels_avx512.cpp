// AVX-512 tier: 16×u32 / 32×u16 block-compare merge on the 512-bit lane
// permute units (vpermd/vpermw), VPOPCNTDQ bitmap kernels when the CPU has
// them, and 8-wide gathered bitmap probing. The tier requires avx512f +
// avx512bw (kernels/isa.cpp); avx512vpopcntdq is probed separately and the
// popcount entries fall back to the AVX2-style split when it is absent.
#include "kernels/dispatch.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LOTUS_KERNELS_X86 1
#endif

namespace lotus::kernels::detail {

#ifdef LOTUS_KERNELS_X86

namespace {

__attribute__((target("avx512f,avx512bw"))) std::uint64_t merge_u32_avx512(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  const __m512i rotate = _mm512_set_epi32(0, 15, 14, 13, 12, 11, 10, 9, 8, 7,
                                          6, 5, 4, 3, 2, 1);

  while (i + 16 <= na && j + 16 <= nb) {
    const __m512i va = _mm512_loadu_si512(a + i);
    __m512i vb = _mm512_loadu_si512(b + j);
    __mmask16 match = 0;
    for (int r = 0; r < 16; ++r) {
      match |= _mm512_cmpeq_epi32_mask(va, vb);
      vb = _mm512_permutexvar_epi32(rotate, vb);
    }
    count += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(match)));

    const std::uint32_t amax = a[i + 15];
    const std::uint32_t bmax = b[j + 15];
    i += amax <= bmax ? 16u : 0u;
    j += bmax <= amax ? 16u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

__attribute__((target("avx512f,avx512bw"))) std::uint64_t merge_u16_avx512(
    const std::uint16_t* a, std::size_t na, const std::uint16_t* b,
    std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  const __m512i rotate = _mm512_set_epi16(
      0, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15,
      14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);

  while (i + 32 <= na && j + 32 <= nb) {
    const __m512i va = _mm512_loadu_si512(a + i);
    __m512i vb = _mm512_loadu_si512(b + j);
    __mmask32 match = 0;
    for (int r = 0; r < 32; ++r) {
      match |= _mm512_cmpeq_epi16_mask(va, vb);
      vb = _mm512_permutexvar_epi16(rotate, vb);
    }
    count += static_cast<unsigned>(__builtin_popcount(match));

    const std::uint16_t amax = a[i + 31];
    const std::uint16_t bmax = b[j + 31];
    i += amax <= bmax ? 32u : 0u;
    j += bmax <= amax ? 32u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
and_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < words; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
popcount_avx512(const std::uint64_t* words, std::size_t count) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8)
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(words + i)));
  std::uint64_t total = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < count; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(words[i]));
  return total;
}

__attribute__((target("avx512f"))) std::uint64_t hits_bitset_avx512(
    const std::uint32_t* keys, std::size_t count, const std::uint64_t* bits) {
  __m512i acc = _mm512_setzero_si512();
  const __m512i low6 = _mm512_set1_epi64(63);
  const __m512i one = _mm512_set1_epi64(1);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i word_index = _mm256_srli_epi32(k, 6);
    const __m512i words = _mm512_i32gather_epi64(word_index, bits, 8);
    const __m512i bit_index =
        _mm512_and_si512(_mm512_cvtepu32_epi64(k), low6);
    acc = _mm512_add_epi64(
        acc, _mm512_and_si512(_mm512_srlv_epi64(words, bit_index), one));
  }
  std::uint64_t total = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < count; ++i)
    total += (bits[keys[i] >> 6] >> (keys[i] & 63)) & 1ULL;
  return total;
}

__attribute__((target("avx512f"))) void checksum_stripes_avx512(
    std::uint64_t* acc, const unsigned char* data, std::size_t stripes) {
  // One full 8×u64 accumulator vector per stripe; same lane math as the
  // AVX2/scalar forms (vpmuludq product + pairwise-swapped data add).
  __m512i accv = _mm512_loadu_si512(acc);
  const __m512i sec = _mm512_loadu_si512(kChecksumSecret);
  for (std::size_t s = 0; s < stripes; ++s, data += 64) {
    const __m512i d = _mm512_loadu_si512(data);
    const __m512i k = _mm512_xor_si512(d, sec);
    const __m512i p = _mm512_mul_epu32(k, _mm512_srli_epi64(k, 32));
    const __m512i w = _mm512_shuffle_epi32(
        d, static_cast<_MM_PERM_ENUM>(_MM_SHUFFLE(1, 0, 3, 2)));
    accv = _mm512_add_epi64(accv, _mm512_add_epi64(p, w));
  }
  _mm512_storeu_si512(acc, accv);
}

}  // namespace

const KernelTable* avx512_kernel_table() noexcept {
  static const KernelTable table = [] {
    KernelTable t = *avx2_kernel_table();  // AVX2 popcount split as fallback
    t.isa = Isa::kAvx512;
    t.merge_u32 = &merge_u32_avx512;
    t.merge_u16 = &merge_u16_avx512;
    t.hits_bitset = &hits_bitset_avx512;
    t.checksum_stripes = &checksum_stripes_avx512;
    if (__builtin_cpu_supports("avx512vpopcntdq")) {
      t.and_popcount = &and_popcount_avx512;
      t.popcount = &popcount_avx512;
    }
    return t;
  }();
  return &table;
}

#else  // !LOTUS_KERNELS_X86

const KernelTable* avx512_kernel_table() noexcept { return nullptr; }

#endif

}  // namespace lotus::kernels::detail
