// Sparse-vs-dense hybrid Forward counting.
//
// The degree-split recipe of the fastest GraphChallenge single-node
// counters: vertices whose oriented neighbour list is long are counted by
// materializing the list as a dense per-thread bitmap and popcount-probing
// each second list against it (one O(1) probe per element instead of a
// merge step), while the low-degree tail keeps the vectorized merge, whose
// locality is unbeatable on short lists. The threshold is a QueryOptions /
// LotusConfig knob (hybrid_degree_threshold).
//
// Memory: each thread lazily allocates one ⌈n/64⌉-word bitmap the first
// time it meets a dense vertex. Callers running under an active memory
// budget must either charge that scratch up front on the master thread
// (baselines::forward_hybrid_prepared does) or pass a threshold no vertex
// reaches, which keeps the kernel allocation-free (the LOTUS NNN phase
// does). See docs/KERNELS.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/dispatch.hpp"
#include "obs/counters.hpp"
#include "parallel/padded.hpp"
#include "parallel/parallel_for.hpp"

namespace lotus::kernels {

/// Count closed wedges over an oriented adjacency: for every vertex v and
/// every u in neighbors(v), |neighbors(v) ∩ neighbors(u)|. `neighbors` must
/// return std::span<const std::uint32_t>-compatible ascending lists and be
/// safe to call concurrently; every neighbour ID must be < num_vertices.
template <typename NeighborsFn>
std::uint64_t hybrid_forward_count(std::uint64_t num_vertices,
                                   NeighborsFn&& neighbors,
                                   std::uint32_t degree_threshold) {
  const KernelTable& table = kernel_table();
  const std::uint64_t bitmap_words = (num_vertices + 63) / 64;
  const unsigned slots = parallel::max_parallelism();
  std::vector<parallel::Padded<std::uint64_t>> partial(slots);
  std::vector<std::vector<std::uint64_t>> bitmaps(slots);

  parallel::parallel_for(
      0, num_vertices, 64,
      [&](unsigned thread_index, std::uint64_t chunk_begin,
          std::uint64_t chunk_end) {
        std::uint64_t local = 0;
        std::uint64_t comparisons = 0;  // dead when LOTUS_OBS=0
        std::vector<std::uint64_t>& bitmap = bitmaps[thread_index];
        for (std::uint64_t vi = chunk_begin; vi < chunk_end; ++vi) {
          const std::span<const std::uint32_t> nv =
              neighbors(static_cast<std::uint32_t>(vi));
          if (nv.size() < 2) continue;
          if (nv.size() >= degree_threshold) {
            if (bitmap.empty()) bitmap.assign(bitmap_words, 0);
            for (const std::uint32_t u : nv)
              bitmap[u >> 6] |= 1ULL << (u & 63);
            for (const std::uint32_t u : nv) {
              const std::span<const std::uint32_t> nu = neighbors(u);
              local += table.hits_bitset(nu.data(), nu.size(), bitmap.data());
              comparisons += nu.size();
            }
            // Every set bit belongs to nv, so zeroing each member's whole
            // word restores the all-zero invariant.
            for (const std::uint32_t u : nv) bitmap[u >> 6] = 0;
          } else {
            for (const std::uint32_t u : nv) {
              const std::span<const std::uint32_t> nu = neighbors(u);
              local += table.merge_u32(nv.data(), nv.size(), nu.data(),
                                       nu.size());
              comparisons += nu.empty() ? 0 : nv.size() + nu.size();
            }
          }
        }
        obs::count(obs::Counter::kIntersectComparisons, comparisons);
        partial[thread_index].value += local;
      });

  std::uint64_t total = 0;
  for (const auto& p : partial) total += p.value;
  return total;
}

}  // namespace lotus::kernels
