// Runtime instruction-set (ISA) selection for the SIMD kernel layer.
//
// The dispatch table (kernels/dispatch.hpp) is keyed by an Isa tier. The
// tier that actually runs is resolved once per process from, in priority
// order: a programmatic override (set_isa_override, used by tests), the
// LOTUS_ISA environment variable, and cpuid probing. A requested tier the
// CPU cannot execute clamps *down* to the best supported tier at or below
// it — forcing `avx512` on an AVX2-only host runs AVX2, forcing `neon` on
// x86 runs scalar — so forced-ISA test matrices degrade gracefully instead
// of crashing on SIGILL. See docs/KERNELS.md.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace lotus::kernels {

/// Dispatch tiers, ascending by preference. NEON ranks below AVX2 so the
/// clamp-down walk (AVX-512 → AVX2 → NEON → scalar) is a single ordered
/// scan; x86 and aarch64 tiers are never supported simultaneously.
enum class Isa : unsigned {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Stable lowercase name ("scalar", "neon", "avx2", "avx512") — the LOTUS_ISA
/// vocabulary and the bench/metric key segment.
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Inverse of isa_name(); nullopt for unknown names ("native" is not an Isa —
/// the LOTUS_ISA parser maps it to detected_isa() itself).
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name) noexcept;

/// Best tier this binary can execute on this CPU (cpuid-probed once).
[[nodiscard]] Isa detected_isa() noexcept;

/// True when `isa` can execute here (kScalar always can).
[[nodiscard]] bool isa_supported(Isa isa) noexcept;

/// All supported tiers, ascending; always starts with kScalar.
[[nodiscard]] std::vector<Isa> supported_isas();

/// `requested` if supported, otherwise the best supported tier below it.
[[nodiscard]] Isa clamp_to_supported(Isa requested) noexcept;

/// The tier the dispatch table serves right now: the set_isa_override()
/// value if one is installed, else the LOTUS_ISA choice, else detected_isa().
/// LOTUS_ISA is read once per process; unknown values warn on stderr and
/// fall back to detection.
[[nodiscard]] Isa active_isa() noexcept;

/// Install (clamped) or remove (nullopt) a process-wide tier override.
/// Takes priority over LOTUS_ISA; intended for tests and benches that force
/// the full tier matrix from one process.
void set_isa_override(std::optional<Isa> isa) noexcept;

}  // namespace lotus::kernels
