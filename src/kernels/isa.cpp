#include "kernels/isa.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lotus::kernels {

namespace {

Isa probe_cpu() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw"))
    return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  return Isa::kScalar;
#elif defined(__aarch64__)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

Isa env_isa() noexcept {
  const char* env = std::getenv("LOTUS_ISA");
  if (env == nullptr || *env == '\0') return detected_isa();
  const std::string_view request(env);
  if (request == "native") return detected_isa();
  if (const auto parsed = parse_isa(request); parsed.has_value())
    return clamp_to_supported(*parsed);
  std::fprintf(stderr,
               "[kernels] unknown LOTUS_ISA=%s (want scalar|neon|avx2|avx512|"
               "native); using %s\n",
               env, isa_name(detected_isa()));
  return detected_isa();
}

// -1 = no override installed; otherwise the (already clamped) Isa value.
std::atomic<int> g_override{-1};

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kNeon: return "neon";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(std::string_view name) noexcept {
  for (Isa isa : {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512})
    if (name == isa_name(isa)) return isa;
  return std::nullopt;
}

Isa detected_isa() noexcept {
  static const Isa detected = probe_cpu();
  return detected;
}

bool isa_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
    case Isa::kAvx2:
    case Isa::kAvx512: {
      const Isa best = detected_isa();
      return best == isa || (best == Isa::kAvx512 && isa == Isa::kAvx2);
    }
  }
  return false;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kNeon, Isa::kAvx2, Isa::kAvx512})
    if (isa_supported(isa)) out.push_back(isa);
  return out;
}

Isa clamp_to_supported(Isa requested) noexcept {
  // Walk down the tier order from `requested`; scalar is always supported.
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon, Isa::kScalar})
    if (static_cast<unsigned>(isa) <= static_cast<unsigned>(requested) &&
        isa_supported(isa))
      return isa;
  return Isa::kScalar;
}

Isa active_isa() noexcept {
  const int override_value = g_override.load(std::memory_order_acquire);
  if (override_value >= 0) return static_cast<Isa>(override_value);
  static const Isa from_env = env_isa();
  return from_env;
}

void set_isa_override(std::optional<Isa> isa) noexcept {
  g_override.store(
      isa.has_value() ? static_cast<int>(clamp_to_supported(*isa)) : -1,
      std::memory_order_release);
}

}  // namespace lotus::kernels
