// AVX2 tier: 8×u32 / 16×u16 block-compare merge (each block of one list
// compared against every lane rotation of the other's block), 4-word
// AND+popcount, and gathered sparse-vs-dense bitmap probing. Compiled with
// per-function target attributes so the rest of the binary stays baseline;
// only reachable after cpuid reports AVX2 (kernels/isa.cpp).
#include "kernels/dispatch.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LOTUS_KERNELS_X86 1
#endif

namespace lotus::kernels::detail {

#ifdef LOTUS_KERNELS_X86

namespace {

__attribute__((target("avx2"))) std::uint64_t merge_u32_avx2(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  // Rotate-left-by-one lane permutation, applied repeatedly to enumerate
  // all 8×8 lane pairings of the two blocks.
  const __m256i rotate = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);

  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i match = _mm256_setzero_si256();
    for (int r = 0; r < 8; ++r) {
      match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb));
      vb = _mm256_permutevar8x32_epi32(vb, rotate);
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(match));
    count += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(mask)));

    // Advance whichever block's maximum is smaller; both on a tie. All
    // cross-block pairs with the retired block have been compared.
    const std::uint32_t amax = a[i + 7];
    const std::uint32_t bmax = b[j + 7];
    i += amax <= bmax ? 8u : 0u;
    j += bmax <= amax ? 8u : 0u;
  }

  // Scalar merge over the tails.
  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

__attribute__((target("avx2"))) std::uint64_t merge_u16_avx2(
    const std::uint16_t* a, std::size_t na, const std::uint16_t* b,
    std::size_t nb) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;

  while (i + 16 <= na && j + 16 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i match = _mm256_setzero_si256();
    // 16 lane pairings: rotate b by one 16-bit lane per step. AVX2 has no
    // cross-lane 16-bit rotate, so compose an in-lane byte shift with a
    // 128-bit half swap every step.
    for (int r = 0; r < 16; ++r) {
      match = _mm256_or_si256(match, _mm256_cmpeq_epi16(va, vb));
      const __m256i swapped = _mm256_permute2x128_si256(vb, vb, 0x01);
      vb = _mm256_alignr_epi8(swapped, vb, 2);
    }
    const auto mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(match));
    // Each 16-bit match sets 2 mask bits.
    count += static_cast<unsigned>(__builtin_popcount(mask)) / 2;

    const std::uint16_t amax = a[i + 15];
    const std::uint16_t bmax = b[j + 15];
    i += amax <= bmax ? 16u : 0u;
    j += bmax <= amax ? 16u : 0u;
  }

  while (i < na && j < nb) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++count; ++i; ++j; }
  }
  return count;
}

__attribute__((target("avx2"))) std::uint64_t and_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  // One 256-bit load+AND feeds four hardware popcnts; the win over scalar
  // is halving the load/AND op count, popcnt throughput is the same.
  std::uint64_t total = 0;
  std::size_t i = 0;
  alignas(32) std::uint64_t lanes[4];
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_and_si256(va, vb));
    total += static_cast<std::uint64_t>(__builtin_popcountll(lanes[0])) +
             static_cast<std::uint64_t>(__builtin_popcountll(lanes[1])) +
             static_cast<std::uint64_t>(__builtin_popcountll(lanes[2])) +
             static_cast<std::uint64_t>(__builtin_popcountll(lanes[3]));
  }
  for (; i < words; ++i)
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  return total;
}

__attribute__((target("avx2"))) std::uint64_t hits_bitset_avx2(
    const std::uint32_t* keys, std::size_t count, const std::uint64_t* bits) {
  // Four keys per step: gather their words, variable-shift each by key&63,
  // mask to the tested bit, and accumulate. The gather hides the four
  // dependent scalar loads of the reference loop.
  __m256i acc = _mm256_setzero_si256();
  const __m256i low6 = _mm256_set1_epi64x(63);
  const __m256i one = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i k =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const __m128i word_index = _mm_srli_epi32(k, 6);
    const __m256i words = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(bits), word_index, 8);
    const __m256i bit_index =
        _mm256_and_si256(_mm256_cvtepu32_epi64(k), low6);
    acc = _mm256_add_epi64(
        acc, _mm256_and_si256(_mm256_srlv_epi64(words, bit_index), one));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i)
    total += (bits[keys[i] >> 6] >> (keys[i] & 63)) & 1ULL;
  return total;
}

__attribute__((target("avx2"))) void checksum_stripes_avx2(
    std::uint64_t* acc, const unsigned char* data, std::size_t stripes) {
  // Two 4×u64 accumulator halves. Per stripe: k = x ^ secret, then
  // acc[j] += u32(k)·u32(k>>32) (vpmuludq) and acc[j] += x[j^1] (the
  // pairwise 64-bit swap is an in-lane 32-bit shuffle) — lane-exact with
  // the scalar reference.
  __m256i acc0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc));
  __m256i acc1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + 4));
  const __m256i sec0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kChecksumSecret));
  const __m256i sec1 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kChecksumSecret + 4));
  for (std::size_t s = 0; s < stripes; ++s, data += 64) {
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + 32));
    const __m256i k0 = _mm256_xor_si256(d0, sec0);
    const __m256i k1 = _mm256_xor_si256(d1, sec1);
    const __m256i p0 = _mm256_mul_epu32(k0, _mm256_srli_epi64(k0, 32));
    const __m256i p1 = _mm256_mul_epu32(k1, _mm256_srli_epi64(k1, 32));
    const __m256i w0 = _mm256_shuffle_epi32(d0, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i w1 = _mm256_shuffle_epi32(d1, _MM_SHUFFLE(1, 0, 3, 2));
    acc0 = _mm256_add_epi64(acc0, _mm256_add_epi64(p0, w0));
    acc1 = _mm256_add_epi64(acc1, _mm256_add_epi64(p1, w1));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), acc0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 4), acc1);
}

}  // namespace

const KernelTable* avx2_kernel_table() noexcept {
  static const KernelTable table = [] {
    KernelTable t = scalar_kernel_table();  // unspecialized entries stay scalar
    t.isa = Isa::kAvx2;
    t.merge_u32 = &merge_u32_avx2;
    t.merge_u16 = &merge_u16_avx2;
    t.and_popcount = &and_popcount_avx2;
    t.hits_bitset = &hits_bitset_avx2;
    t.checksum_stripes = &checksum_stripes_avx2;
    return t;
  }();
  return &table;
}

#else  // !LOTUS_KERNELS_X86

const KernelTable* avx2_kernel_table() noexcept { return nullptr; }

#endif

}  // namespace lotus::kernels::detail
