// ExecContext: the cancellation/deadline environment of the current run.
//
// tc::run_with_status installs a ScopedExecContext around each counting run;
// parallel_for and the work-stealing scheduler call check_interrupt() at
// chunk/task granularity and stop handing out work once it reports an
// interrupt, and the LOTUS driver checks it between phases. Both conditions
// are sticky (util/cancel.hpp), so the caller that installed the context can
// re-check after the run to learn whether any work was skipped.
//
// Thread-safety: the context pointer is a process-global atomic (the tc API
// runs one counting run at a time); check_interrupt is safe from any
// thread. Overhead with no context installed: one relaxed atomic load per
// chunk.
#pragma once

#include <atomic>

#include "util/cancel.hpp"

namespace lotus::parallel {

/// What, if anything, interrupted the run. Deadline wins ties only when the
/// cancel token is untouched — cancellation is the stronger, explicit signal.
enum class Interrupt { kNone, kCancelled, kDeadlineExceeded };

/// The cancellation environment: either member may be absent.
struct ExecContext {
  const util::CancelToken* cancel = nullptr;
  util::Deadline deadline;
};

namespace detail {
inline std::atomic<const ExecContext*>& exec_context_ref() {
  static std::atomic<const ExecContext*> current{nullptr};
  return current;
}
}  // namespace detail

/// Poll the installed context. kNone when no context is installed.
[[nodiscard]] inline Interrupt check_interrupt() noexcept {
  const ExecContext* ctx =
      detail::exec_context_ref().load(std::memory_order_acquire);
  if (ctx == nullptr) return Interrupt::kNone;
  if (ctx->cancel != nullptr && ctx->cancel->cancelled())
    return Interrupt::kCancelled;
  if (ctx->deadline.expired()) return Interrupt::kDeadlineExceeded;
  return Interrupt::kNone;
}

[[nodiscard]] inline bool interrupted() noexcept {
  return check_interrupt() != Interrupt::kNone;
}

/// Install `context` for the lifetime of this object (pass by pointer; the
/// caller keeps ownership and must outlive the scope).
class ScopedExecContext {
 public:
  explicit ScopedExecContext(const ExecContext* context)
      : previous_(detail::exec_context_ref().exchange(
            context, std::memory_order_acq_rel)) {}
  ~ScopedExecContext() {
    detail::exec_context_ref().store(previous_, std::memory_order_release);
  }
  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  const ExecContext* previous_;
};

}  // namespace lotus::parallel
