// ExecContext: the cancellation/deadline environment of the current query.
//
// tc::query / tc::Engine install a ScopedExecContext on the thread that
// drives a counting run; parallel_for and the work-stealing scheduler
// capture the driver's context when a loop starts and poll it at chunk/task
// granularity (so pool workers observe the interrupt of exactly the query
// they are executing), and the LOTUS driver checks it between phases. Both
// conditions are sticky (util/cancel.hpp), so the caller that installed the
// context can re-check after the run to learn whether any work was skipped.
//
// Thread-safety: the installed context pointer is thread-local — each query
// driver thread carries its own, which is what lets tc::Engine run several
// queries concurrently without their cancellations cross-firing.
// check_interrupt(ctx) with a captured pointer is safe from any thread as
// long as the context outlives the parallel region (the installing scope
// guarantees that). Overhead with no context installed: one thread-local
// load per chunk.
#pragma once

#include "util/cancel.hpp"

namespace lotus::parallel {

/// What, if anything, interrupted the run. Deadline wins ties only when the
/// cancel token is untouched — cancellation is the stronger, explicit signal.
enum class Interrupt { kNone, kCancelled, kDeadlineExceeded };

/// The cancellation environment: either member may be absent.
struct ExecContext {
  const util::CancelToken* cancel = nullptr;
  util::Deadline deadline;
};

namespace detail {
inline const ExecContext*& exec_context_ref() noexcept {
  thread_local const ExecContext* current = nullptr;
  return current;
}
}  // namespace detail

/// The context installed on the calling thread (nullptr = none). Parallel
/// primitives capture this before fanning out so workers poll the right one.
[[nodiscard]] inline const ExecContext* current_exec_context() noexcept {
  return detail::exec_context_ref();
}

/// Poll an explicit (usually captured) context. kNone for nullptr.
[[nodiscard]] inline Interrupt check_interrupt(const ExecContext* ctx) noexcept {
  if (ctx == nullptr) return Interrupt::kNone;
  if (ctx->cancel != nullptr && ctx->cancel->cancelled())
    return Interrupt::kCancelled;
  if (ctx->deadline.expired()) return Interrupt::kDeadlineExceeded;
  return Interrupt::kNone;
}

/// Poll the context installed on this thread. kNone when none is installed.
[[nodiscard]] inline Interrupt check_interrupt() noexcept {
  return check_interrupt(current_exec_context());
}

[[nodiscard]] inline bool interrupted() noexcept {
  return check_interrupt() != Interrupt::kNone;
}

/// Install `context` on the calling thread for the lifetime of this object
/// (pass by pointer; the caller keeps ownership and must outlive the scope).
class ScopedExecContext {
 public:
  explicit ScopedExecContext(const ExecContext* context)
      : previous_(detail::exec_context_ref()) {
    detail::exec_context_ref() = context;
  }
  ~ScopedExecContext() { detail::exec_context_ref() = previous_; }
  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  const ExecContext* previous_;
};

}  // namespace lotus::parallel
