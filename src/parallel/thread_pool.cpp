#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <system_error>

#include "obs/counters.hpp"
#include "obs/trace_export.hpp"
#include "parallel/exec_context.hpp"
#include "util/fault.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace lotus::parallel {

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  // std::thread construction fails with std::system_error when the system
  // is out of thread resources (EAGAIN). Degrade instead of dying: keep the
  // workers that did start (the caller is always thread 0, so the pool is
  // never smaller than 1) and shrink size() to the real concurrency.
  for (unsigned i = 1; i < num_threads_; ++i) {
    try {
      if (util::fault::should_fail(util::fault::Site::kThreadSpawn))
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected thread-spawn failure (fault site thread_spawn)");
      workers_.emplace_back([this, i] { worker_loop(i); });
    } catch (const std::system_error&) {
      num_threads_ = i;  // threads [1, i) started; the caller makes i total
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute(const std::function<void(unsigned)>& fn) {
  obs::bind_thread(0);  // the caller is pool thread 0 for this fork-join
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned index) {
  obs::bind_thread(index);
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      job = job_;
    }
    // Mirror the pool's query-scoped counter domain onto this worker for
    // the duration of the job (the driver thread installs its own copy).
    obs::set_thread_counter_domain(
        counter_domain_.load(std::memory_order_acquire));
    (*job)(index);
    obs::set_thread_counter_domain(nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

namespace {

/// A task plus its submission index, so trace events can name it.
struct NumberedTask {
  WorkStealingScheduler::Task fn;
  std::uint64_t id = 0;
};

/// One mutex-protected deque per worker. The owner pops from the front, a
/// thief pops from the back; at graph-partition granularity the lock cost is
/// negligible relative to task bodies.
struct TaskDeque {
  std::mutex mutex;
  std::deque<NumberedTask> tasks;

  bool pop_front(NumberedTask& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return false;
    out = std::move(tasks.front());
    tasks.pop_front();
    return true;
  }

  bool steal_back(NumberedTask& out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (tasks.empty()) return false;
    out = std::move(tasks.back());
    tasks.pop_back();
    return true;
  }
};

}  // namespace

std::vector<double> WorkStealingScheduler::run(std::vector<Task> tasks) {
  const unsigned n = pool_.size();
  std::vector<std::unique_ptr<TaskDeque>> deques;
  deques.reserve(n);
  for (unsigned i = 0; i < n; ++i) deques.push_back(std::make_unique<TaskDeque>());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    deques[i % n]->tasks.push_back({std::move(tasks[i]), i});

  std::atomic<std::size_t> outstanding{tasks.size()};
  std::vector<Padded<double>> busy_s(n);
  // Timeline recording is off unless a sink is installed (one atomic load
  // per run); events buffer thread-locally and flush once per thread. A
  // pool-scoped sink wins over the process-wide one so concurrent queries
  // record separate timelines.
  obs::SchedEventLog* sink = pool_.sched_sink();
  if (sink == nullptr) sink = obs::sched_event_sink();
  // Capture the driver's cancellation context: the workers executing this
  // run must poll the interrupt of exactly this query, not whatever context
  // their own thread carries.
  const ExecContext* ctx = current_exec_context();

  pool_.execute([&](unsigned thread_index) {
    util::Xoshiro256 rng(0x5eedULL + thread_index);
    util::Timer wall;
    NumberedTask task;
    double local_busy = 0.0;
    // Dead when LOTUS_OBS=0: the flush below becomes a no-op and the
    // optimizer strips the accumulators.
    std::uint64_t tasks_run = 0, steal_attempts = 0, steals = 0;
    std::vector<obs::SchedEvent> events;
    double idle_since = -1.0;  // trace timestamp of the current idle interval
    const auto close_idle = [&] {
      if (idle_since < 0.0) return;
      events.push_back({obs::SchedEvent::Kind::kIdle, thread_index, idle_since,
                        obs::trace_clock_s() - idle_since, 0, -1});
      idle_since = -1.0;
    };
    while (outstanding.load(std::memory_order_acquire) != 0) {
      bool got = deques[thread_index]->pop_front(task);
      if (!got) {
        // Steal from a random victim; scan all once before re-checking.
        const unsigned start = static_cast<unsigned>(rng.next_below(n));
        unsigned victim = thread_index;
        for (unsigned probe = 0; probe < n && !got; ++probe) {
          victim = (start + probe) % n;
          if (victim == thread_index) continue;
          ++steal_attempts;
          got = deques[victim]->steal_back(task);
        }
        if (got) {
          ++steals;
          if (sink != nullptr) {
            close_idle();
            events.push_back({obs::SchedEvent::Kind::kSteal, thread_index,
                              obs::trace_clock_s(), 0.0, task.id,
                              static_cast<int>(victim)});
          }
        }
      }
      if (got && check_interrupt(ctx) != Interrupt::kNone) {
        // Cancelled/expired: drain without running, so `outstanding` still
        // reaches zero and no task leaks into a later run.
        task.fn = nullptr;
        outstanding.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (got) {
        if (sink != nullptr) close_idle();
        const double trace_start = sink != nullptr ? obs::trace_clock_s() : 0.0;
        util::Timer t;
        task.fn(thread_index);
        const double elapsed = t.elapsed_s();
        local_busy += elapsed;
        ++tasks_run;
        if (sink != nullptr)
          events.push_back({obs::SchedEvent::Kind::kTask, thread_index,
                            trace_start, elapsed, task.id, -1});
        outstanding.fetch_sub(1, std::memory_order_acq_rel);
      } else {
        if (sink != nullptr && idle_since < 0.0) idle_since = obs::trace_clock_s();
        std::this_thread::yield();
      }
    }
    if (sink != nullptr) {
      close_idle();
      sink->append(std::move(events));
    }
    busy_s[thread_index].value = local_busy;
    obs::count(obs::Counter::kTasksExecuted, tasks_run);
    obs::count(obs::Counter::kStealAttempts, steal_attempts);
    obs::count(obs::Counter::kSteals, steals);
    obs::count(obs::Counter::kSchedBusyNs,
               static_cast<std::uint64_t>(local_busy * 1e9));
    obs::count(obs::Counter::kSchedIdleNs,
               static_cast<std::uint64_t>(
                   std::max(0.0, wall.elapsed_s() - local_busy) * 1e9));
  });

  std::vector<double> out(n);
  for (unsigned i = 0; i < n; ++i) out[i] = busy_s[i].value;
  return out;
}

namespace {
std::unique_ptr<ThreadPool> g_pool;       // NOLINT: intentional process-wide pool
std::mutex g_pool_mutex;
unsigned g_requested_threads = 0;
}  // namespace

ThreadPool& default_pool() {
  if (ThreadPool* scoped = detail::scoped_pool_ref(); scoped != nullptr)
    return *scoped;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    unsigned n = g_requested_threads;
    if (n == 0) n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

void set_num_threads(unsigned num_threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_requested_threads = num_threads;
  g_pool.reset();  // re-created lazily at the new size
}

unsigned num_threads() { return default_pool().size(); }

}  // namespace lotus::parallel
