// Master–worker thread pool with work stealing.
//
// The paper's implementation (Sec. 5.1.3) uses a pthread master–worker model
// with futex-based synchronization and work stealing over graph partitions.
// This pool reproduces those semantics with std::thread + condition
// variables:
//   * a fixed set of persistent workers (fork–join `execute`),
//   * per-worker task deques with random-victim stealing (`run_tasks`),
//   * per-thread busy-time accounting, from which the idle-time measurements
//     of Table 9 are derived.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/padded.hpp"

namespace lotus::obs {
class CounterDomain;
class SchedEventLog;
}  // namespace lotus::obs

namespace lotus::parallel {

/// Fixed-size pool of persistent worker threads.
///
/// Thread 0 is the calling (master) thread: `execute(fn)` runs
/// `fn(0) .. fn(size()-1)` concurrently, with `fn(0)` on the caller, and
/// returns when all invocations finish. This fork–join primitive underlies
/// `parallel_for` and the work-stealing task scheduler.
class ThreadPool {
 public:
  /// Starts `num_threads - 1` workers (the caller is thread 0). Worker
  /// construction failure (std::system_error, e.g. EAGAIN under thread
  /// limits, or the `thread_spawn` fault site) is survived: the pool keeps
  /// the threads that did start — never fewer than the caller alone — and
  /// size() reports the actual concurrency.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Actual thread count (caller + workers that really started).
  [[nodiscard]] unsigned size() const noexcept { return num_threads_; }

  /// Run `fn(thread_index)` once on every thread of the pool; blocks until
  /// all are done. Exceptions thrown by `fn` terminate (counting kernels are
  /// noexcept by design).
  void execute(const std::function<void(unsigned)>& fn);

  /// Query-scoped counter domain mirrored onto the worker threads around
  /// each job (obs/counters.hpp). The query driver installs the same domain
  /// on itself (ScopedCounterDomain) and here; set nullptr to clear. Must
  /// not change while a job is in flight.
  void set_counter_domain(obs::CounterDomain* domain) noexcept {
    counter_domain_.store(domain, std::memory_order_release);
  }
  [[nodiscard]] obs::CounterDomain* counter_domain() const noexcept {
    return counter_domain_.load(std::memory_order_acquire);
  }

  /// Pool-scoped scheduler-event sink; overrides the process-wide sink
  /// (obs::set_sched_event_sink) for runs driven through this pool, so
  /// concurrent queries record separate timelines. Must not change while a
  /// scheduler run is in flight.
  void set_sched_sink(obs::SchedEventLog* sink) noexcept {
    sched_sink_.store(sink, std::memory_order_release);
  }
  [[nodiscard]] obs::SchedEventLog* sched_sink() const noexcept {
    return sched_sink_.load(std::memory_order_acquire);
  }

 private:
  void worker_loop(unsigned index);

  unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutting_down_ = false;

  std::atomic<obs::CounterDomain*> counter_domain_{nullptr};
  std::atomic<obs::SchedEventLog*> sched_sink_{nullptr};
};

/// Task list executed with per-worker deques and random-victim stealing.
///
/// Tasks are distributed round-robin at submission; each worker drains its
/// own deque from the front and steals from the back of a random victim when
/// empty. Per-thread busy seconds are recorded so callers can compute idle
/// fractions (Table 9). When a trace sink is installed
/// (obs::set_sched_event_sink), each run also records timestamped
/// task/steal/idle events for the Chrome-trace timeline export.
/// Cancellation/deadline (parallel/exec_context.hpp) is honoured at task
/// granularity: once interrupted, remaining tasks are drained unrun, so
/// run() still returns and no task leaks into a later run.
class WorkStealingScheduler {
 public:
  using Task = std::function<void(unsigned thread_index)>;

  explicit WorkStealingScheduler(ThreadPool& pool) : pool_(pool) {}

  /// Run all tasks to completion; returns per-thread busy time in seconds.
  std::vector<double> run(std::vector<Task> tasks);

 private:
  ThreadPool& pool_;
};

namespace detail {
inline ThreadPool*& scoped_pool_ref() noexcept {
  thread_local ThreadPool* pool = nullptr;
  return pool;
}
}  // namespace detail

/// The pool `default_pool()` resolves to on the calling thread: a scoped
/// override when one is installed (tc::Engine gives each query driver its
/// own pool this way), otherwise the process-wide pool. Size defaults to
/// hardware_concurrency and may be overridden (before first use or between
/// uses) via `set_num_threads`; `set_num_threads` never touches scoped
/// pools.
ThreadPool& default_pool();
void set_num_threads(unsigned num_threads);
unsigned num_threads();

/// Route this thread's `default_pool()` to `pool` for the lifetime of this
/// object. Kernels and parallel_for pick the pool up transparently, which is
/// how one binary runs several isolated counting queries at once.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool* pool) : previous_(detail::scoped_pool_ref()) {
    detail::scoped_pool_ref() = pool;
  }
  ~ScopedPool() { detail::scoped_pool_ref() = previous_; }
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace lotus::parallel
