// Master–worker thread pool with work stealing.
//
// The paper's implementation (Sec. 5.1.3) uses a pthread master–worker model
// with futex-based synchronization and work stealing over graph partitions.
// This pool reproduces those semantics with std::thread + condition
// variables:
//   * a fixed set of persistent workers (fork–join `execute`),
//   * per-worker task deques with random-victim stealing (`run_tasks`),
//   * per-thread busy-time accounting, from which the idle-time measurements
//     of Table 9 are derived.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/padded.hpp"

namespace lotus::parallel {

/// Fixed-size pool of persistent worker threads.
///
/// Thread 0 is the calling (master) thread: `execute(fn)` runs
/// `fn(0) .. fn(size()-1)` concurrently, with `fn(0)` on the caller, and
/// returns when all invocations finish. This fork–join primitive underlies
/// `parallel_for` and the work-stealing task scheduler.
class ThreadPool {
 public:
  /// Starts `num_threads - 1` workers (the caller is thread 0). Worker
  /// construction failure (std::system_error, e.g. EAGAIN under thread
  /// limits, or the `thread_spawn` fault site) is survived: the pool keeps
  /// the threads that did start — never fewer than the caller alone — and
  /// size() reports the actual concurrency.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Actual thread count (caller + workers that really started).
  [[nodiscard]] unsigned size() const noexcept { return num_threads_; }

  /// Run `fn(thread_index)` once on every thread of the pool; blocks until
  /// all are done. Exceptions thrown by `fn` terminate (counting kernels are
  /// noexcept by design).
  void execute(const std::function<void(unsigned)>& fn);

 private:
  void worker_loop(unsigned index);

  unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutting_down_ = false;
};

/// Task list executed with per-worker deques and random-victim stealing.
///
/// Tasks are distributed round-robin at submission; each worker drains its
/// own deque from the front and steals from the back of a random victim when
/// empty. Per-thread busy seconds are recorded so callers can compute idle
/// fractions (Table 9). When a trace sink is installed
/// (obs::set_sched_event_sink), each run also records timestamped
/// task/steal/idle events for the Chrome-trace timeline export.
/// Cancellation/deadline (parallel/exec_context.hpp) is honoured at task
/// granularity: once interrupted, remaining tasks are drained unrun, so
/// run() still returns and no task leaks into a later run.
class WorkStealingScheduler {
 public:
  using Task = std::function<void(unsigned thread_index)>;

  explicit WorkStealingScheduler(ThreadPool& pool) : pool_(pool) {}

  /// Run all tasks to completion; returns per-thread busy time in seconds.
  std::vector<double> run(std::vector<Task> tasks);

 private:
  ThreadPool& pool_;
};

/// Process-wide default pool. Size defaults to hardware_concurrency and may
/// be overridden (before first use or between uses) via `set_num_threads`.
ThreadPool& default_pool();
void set_num_threads(unsigned num_threads);
unsigned num_threads();

}  // namespace lotus::parallel
