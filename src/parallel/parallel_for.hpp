// Data-parallel loops over the default thread pool.
//
// `parallel_for` uses dynamic self-scheduling (an atomic cursor handing out
// fixed-size chunks), which matches the schedule(dynamic) idiom of OpenMP
// loops in graph kernels where per-vertex work is wildly skewed.
// `parallel_reduce_add` layers per-thread partial sums (padded against false
// sharing) on top.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/counters.hpp"
#include "parallel/exec_context.hpp"
#include "parallel/padded.hpp"
#include "parallel/thread_pool.hpp"

namespace lotus::parallel {

/// Execution backend for the data-parallel loops. The pool backend is the
/// default (paper-faithful master-worker threads); the OpenMP backend maps
/// the same loops onto `omp parallel for schedule(dynamic)`, handy when
/// embedding the library into an application that already owns an OpenMP
/// runtime. Counting results are identical either way.
enum class Backend { kPool, kOpenMP };

inline Backend& backend_ref() {
  static Backend backend = Backend::kPool;
  return backend;
}
inline Backend backend() { return backend_ref(); }

/// True when the OpenMP backend is compiled in (i.e. set_backend(kOpenMP)
/// can succeed).
inline constexpr bool openmp_available() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

/// Select the execution backend. Returns true when the requested backend is
/// now active; requesting kOpenMP in a build without OpenMP leaves the pool
/// backend active and returns false (the caller decides whether that is an
/// error — no silent pretend-switch).
inline bool set_backend(Backend b) {
  if (b == Backend::kOpenMP && !openmp_available()) {
    backend_ref() = Backend::kPool;
    return false;
  }
  backend_ref() = b;
  return true;
}

/// Upper bound on thread indices `parallel_for` may pass to its body under
/// the current backend; size per-thread accumulators with this.
inline unsigned max_parallelism() {
#ifdef _OPENMP
  if (backend() == Backend::kOpenMP)
    return static_cast<unsigned>(omp_get_max_threads());
#endif
  return num_threads();
}

/// Invoke `fn(thread_index, begin_i, end_i)` over dynamic chunks of
/// [begin, end). `grain` is the chunk size handed to a thread per grab.
///
/// Cancellation/deadline (parallel/exec_context.hpp) is honoured at chunk
/// granularity: once check_interrupt() reports an interrupt, remaining
/// chunks are skipped and the loop returns early. Results are then partial;
/// the caller that installed the ExecContext is responsible for re-checking
/// the context and discarding them (tc::query does).
template <typename Fn>
void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                  Fn&& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  // Capture the driver's cancellation context once: workers poll the
  // interrupt of exactly this query, not whatever their own thread carries.
  const ExecContext* ctx = current_exec_context();
#ifdef _OPENMP
  if (backend() == Backend::kOpenMP) {
    const auto chunks =
        static_cast<std::int64_t>((end - begin + grain - 1) / grain);
#pragma omp parallel for schedule(dynamic)
    for (std::int64_t c = 0; c < chunks; ++c) {
      if (check_interrupt(ctx) != Interrupt::kNone)
        continue;  // omp loops cannot break; skip bodies
      const std::uint64_t chunk_begin = begin + static_cast<std::uint64_t>(c) * grain;
      const std::uint64_t chunk_end =
          chunk_begin + grain < end ? chunk_begin + grain : end;
      fn(static_cast<unsigned>(omp_get_thread_num()), chunk_begin, chunk_end);
    }
    return;
  }
#endif
  ThreadPool& pool = default_pool();
  if (pool.size() == 1 || end - begin <= grain) {
    if (ctx == nullptr) {
      obs::count(obs::Counter::kParallelChunks);
      fn(0u, begin, end);
      return;
    }
    // A context is installed: run chunk by chunk so even single-threaded
    // runs observe cancellation at chunk granularity.
    std::uint64_t chunks = 0;
    for (std::uint64_t b = begin;
         b < end && check_interrupt(ctx) == Interrupt::kNone; b += grain) {
      const std::uint64_t e = b + grain < end ? b + grain : end;
      ++chunks;
      fn(0u, b, e);
    }
    obs::count(obs::Counter::kParallelChunks, chunks);
    return;
  }
  std::atomic<std::uint64_t> cursor{begin};
  pool.execute([&](unsigned thread_index) {
    std::uint64_t chunks = 0;  // dead when LOTUS_OBS=0
    for (;;) {
      if (check_interrupt(ctx) != Interrupt::kNone) break;
      const std::uint64_t chunk_begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      const std::uint64_t chunk_end =
          chunk_begin + grain < end ? chunk_begin + grain : end;
      ++chunks;
      fn(thread_index, chunk_begin, chunk_end);
    }
    obs::count(obs::Counter::kParallelChunks, chunks);
  });
}

/// Sum-reduction over [begin, end): `fn(i)` returns the per-index
/// contribution; partial sums are accumulated per thread.
template <typename T, typename Fn>
T parallel_reduce_add(std::uint64_t begin, std::uint64_t end,
                      std::uint64_t grain, Fn&& fn) {
  std::vector<Padded<T>> partial(max_parallelism());
  parallel_for(begin, end, grain,
               [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
                 T local{};
                 for (std::uint64_t i = b; i < e; ++i) local += fn(i);
                 partial[thread_index].value += local;
               });
  T total{};
  for (const auto& p : partial) total += p.value;
  return total;
}

}  // namespace lotus::parallel
