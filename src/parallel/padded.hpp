// Cache-line padding for per-thread counters.
//
// Per-thread triangle counters and busy-time accumulators are written at high
// frequency from distinct threads; padding them to a cache line prevents
// false sharing, which would otherwise dominate the very kernels whose
// locality behaviour this project measures.
#pragma once

#include <cstddef>
#include <new>

namespace lotus::parallel {

// Fixed at 64 (x86-64/AArch64 line size) rather than
// hardware_destructive_interference_size, whose value is not ABI-stable.
inline constexpr std::size_t kCacheLineSize = 64;

/// Value wrapper aligned and padded to a full cache line.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

}  // namespace lotus::parallel
