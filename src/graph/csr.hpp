// Compressed sparse row/column (CSX) graph storage.
//
// The neighbour type is a template parameter because LOTUS stores the hub
// sub-graph (HE) with 16-bit neighbour IDs and the non-hub sub-graph (NHE)
// with 32-bit IDs (Sec. 4.2); baselines use 32-bit throughout.
//
// Arrays are util::ConstArray, so a Csr either owns its offset/neighbour
// vectors (the common, heap-resident case) or views them inside an mmap'ed
// artifact file (the out-of-core case, docs/OUT_OF_CORE.md) — kernels and
// accessors are identical either way. owned_bytes() reports only the heap
// side, which is what memory budgets charge for a mapped graph.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "util/array_ref.hpp"

namespace lotus::graph {

template <typename NeighborT>
class Csr {
 public:
  using neighbor_type = NeighborT;

  Csr() : offsets_(std::vector<std::uint64_t>(1, 0)) {}

  Csr(std::vector<std::uint64_t> offsets, std::vector<NeighborT> neighbors)
      : Csr(util::ConstArray<std::uint64_t>(std::move(offsets)),
            util::ConstArray<NeighborT>(std::move(neighbors))) {}

  /// Owned-or-view construction; the view form is how mmap-backed loaders
  /// (graph/oocore.hpp, lotus/serialize.hpp) hand out graphs without copying.
  Csr(util::ConstArray<std::uint64_t> offsets,
      util::ConstArray<NeighborT> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
    assert(!offsets_.empty());
    assert(offsets_.front() == 0);
    assert(offsets_.back() == neighbors_.size());
  }

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of stored adjacency entries. For a symmetric graph this is twice
  /// the number of undirected edges; for an oriented graph it equals them.
  [[nodiscard]] EdgeId num_edges() const noexcept { return neighbors_.size(); }

  [[nodiscard]] std::uint32_t degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  [[nodiscard]] std::span<const NeighborT> neighbors(VertexId v) const noexcept {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint64_t offset(VertexId v) const noexcept { return offsets_[v]; }

  [[nodiscard]] const util::ConstArray<std::uint64_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const util::ConstArray<NeighborT>& neighbor_array() const noexcept {
    return neighbors_;
  }

  /// Bytes of topology data: index array + neighbour IDs (Table 7 accounting).
  [[nodiscard]] std::uint64_t topology_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) +
           neighbors_.size() * sizeof(NeighborT);
  }

  /// Heap bytes this graph pins (≈0 when fully mmap-backed) — what a memory
  /// budget or the engine cache should charge.
  [[nodiscard]] std::uint64_t owned_bytes() const noexcept {
    return offsets_.owned_bytes() + neighbors_.owned_bytes();
  }

  /// True when at least one array views an external mapping instead of
  /// owning heap storage.
  [[nodiscard]] bool mapped() const noexcept {
    return !offsets_.owns() || !neighbors_.owns();
  }

  /// True if every neighbour list is sorted ascending (required by all
  /// merge/binary-search intersections). O(E); used by tests and builders.
  [[nodiscard]] bool neighbors_sorted() const {
    for (VertexId v = 0; v < num_vertices(); ++v) {
      auto ns = neighbors(v);
      for (std::size_t i = 1; i < ns.size(); ++i)
        if (ns[i - 1] >= ns[i]) return false;
    }
    return true;
  }

  /// Element-wise topology equality (mapped and owned graphs compare equal
  /// when they describe the same adjacency).
  friend bool operator==(const Csr& a, const Csr& b) {
    return a.offsets_ == b.offsets_ && a.neighbors_ == b.neighbors_;
  }

 private:
  util::ConstArray<std::uint64_t> offsets_;  // size = num_vertices + 1
  util::ConstArray<NeighborT> neighbors_;    // size = num_edges
};

/// Symmetric (both directions stored) 32-bit graph — the common input format.
using CsrGraph = Csr<VertexId>;

/// Oriented graph (only lower-ID neighbours kept), 32-bit.
using OrientedCsr = Csr<VertexId>;

/// 16-bit-neighbour CSX used by the LOTUS HE sub-graph.
using Csr16 = Csr<std::uint16_t>;

}  // namespace lotus::graph
