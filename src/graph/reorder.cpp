#include "graph/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/degree_order.hpp"
#include "util/prng.hpp"

namespace lotus::graph {

namespace {

std::vector<VertexId> random_permutation(VertexId n, std::uint64_t seed) {
  std::vector<VertexId> new_id(n);
  std::iota(new_id.begin(), new_id.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = n; i > 1; --i)
    std::swap(new_id[i - 1], new_id[rng.next_below(i)]);
  return new_id;
}

/// Visit order -> permutation; unreached vertices (other components) are
/// appended in original order.
std::vector<VertexId> from_visit_order(VertexId n,
                                       const std::vector<VertexId>& visited) {
  std::vector<VertexId> new_id(n, n);  // n = "unassigned"
  VertexId next = 0;
  for (VertexId v : visited) new_id[v] = next++;
  for (VertexId v = 0; v < n; ++v)
    if (new_id[v] == n) new_id[v] = next++;
  return new_id;
}

VertexId max_degree_vertex(const CsrGraph& graph) {
  VertexId best = 0;
  for (VertexId v = 1; v < graph.num_vertices(); ++v)
    if (graph.degree(v) > graph.degree(best)) best = v;
  return best;
}

std::vector<VertexId> bfs_order(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<VertexId> queue;
  queue.reserve(n);
  // Restart from every component, highest-degree roots first.
  std::vector<VertexId> roots(n);
  std::iota(roots.begin(), roots.end(), 0);
  std::stable_sort(roots.begin(), roots.end(), [&](VertexId a, VertexId b) {
    return graph.degree(a) > graph.degree(b);
  });
  for (VertexId root : roots) {
    if (seen[root]) continue;
    seen[root] = true;
    std::size_t head = queue.size();
    queue.push_back(root);
    while (head < queue.size()) {
      const VertexId v = queue[head++];
      for (VertexId u : graph.neighbors(v)) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
  }
  return from_visit_order(n, queue);
}

std::vector<VertexId> dfs_order(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<VertexId> visited;
  visited.reserve(n);
  std::vector<VertexId> stack;
  const VertexId start = n > 0 ? max_degree_vertex(graph) : 0;
  for (VertexId offset = 0; offset < n; ++offset) {
    const VertexId root = (start + offset) % n;
    if (seen[root]) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (seen[v]) continue;
      seen[v] = true;
      visited.push_back(v);
      auto ns = graph.neighbors(v);
      for (auto it = ns.rbegin(); it != ns.rend(); ++it)
        if (!seen[*it]) stack.push_back(*it);
    }
  }
  return from_visit_order(n, visited);
}

}  // namespace

std::vector<VertexId> make_ordering(const CsrGraph& graph, Ordering ordering,
                                    std::uint64_t seed) {
  const VertexId n = graph.num_vertices();
  switch (ordering) {
    case Ordering::kOriginal: {
      std::vector<VertexId> identity(n);
      std::iota(identity.begin(), identity.end(), 0);
      return identity;
    }
    case Ordering::kRandom:
      return random_permutation(n, seed);
    case Ordering::kDegreeDesc:
      return degree_descending_permutation(graph);
    case Ordering::kBfs:
      return bfs_order(graph);
    case Ordering::kDfs:
      return dfs_order(graph);
  }
  return {};
}

const char* ordering_name(Ordering ordering) {
  switch (ordering) {
    case Ordering::kOriginal: return "original";
    case Ordering::kRandom: return "random";
    case Ordering::kDegreeDesc: return "degree";
    case Ordering::kBfs: return "bfs";
    case Ordering::kDfs: return "dfs";
  }
  return "?";
}

std::vector<Ordering> all_orderings() {
  return {Ordering::kOriginal, Ordering::kRandom, Ordering::kDegreeDesc,
          Ordering::kBfs, Ordering::kDfs};
}

double average_neighbor_gap(const CsrGraph& graph) {
  if (graph.num_edges() == 0) return 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v)
    for (VertexId u : graph.neighbors(v))
      total += std::abs(static_cast<double>(v) - static_cast<double>(u));
  return total / static_cast<double>(graph.num_edges());
}

double log_gap_cost_bits(const CsrGraph& graph) {
  if (graph.num_edges() == 0) return 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    VertexId previous = 0;
    bool first = true;
    for (VertexId u : graph.neighbors(v)) {
      const auto gap = first ? u : u - previous - 1;
      total += std::log2(1.0 + static_cast<double>(gap));
      previous = u;
      first = false;
    }
  }
  return total / static_cast<double>(graph.num_edges());
}

}  // namespace lotus::graph
