#include "graph/compressed.hpp"

#include <stdexcept>

namespace lotus::graph {

namespace {

void encode_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

}  // namespace

CompressedCsr CompressedCsr::encode(const CsrGraph& graph) {
  CompressedCsr out;
  const VertexId n = graph.num_vertices();
  out.offsets_.resize(static_cast<std::size_t>(n) + 1, 0);
  out.num_edges_ = graph.num_edges();
  out.bytes_.reserve(graph.num_edges());  // ≥1 byte per edge lower bound

  for (VertexId v = 0; v < n; ++v) {
    out.offsets_[v] = out.bytes_.size();
    VertexId previous = 0;
    bool first = true;
    for (VertexId u : graph.neighbors(v)) {
      if (!first && u <= previous)
        throw std::invalid_argument("compress: neighbour lists must be strictly sorted");
      encode_varint(out.bytes_, first ? u : u - previous - 1);
      previous = u;
      first = false;
    }
  }
  out.offsets_[n] = out.bytes_.size();
  return out;
}

void CompressedCsr::decode_neighbors(VertexId v, std::vector<VertexId>& out) const {
  out.clear();
  for_each_neighbor(v, [&out](VertexId u) { out.push_back(u); });
}

CsrGraph CompressedCsr::decode() const {
  const VertexId n = num_vertices();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(num_edges_);
  for (VertexId v = 0; v < n; ++v) {
    for_each_neighbor(v, [&neighbors](VertexId u) { neighbors.push_back(u); });
    offsets[v + 1] = neighbors.size();
  }
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace lotus::graph
