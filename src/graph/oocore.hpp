// Out-of-core graph pipeline: mmap-backed CSX loading, chunked parallel
// binary reads, and external-memory CSR construction (docs/OUT_OF_CORE.md).
//
// Three ways to get a graph that does not fit comfortably in heap memory:
//   * read_csr_mapped_s — mmap a "LOTUSGR1" CSX file and serve the offset
//     and neighbour arrays as zero-copy views into the page cache. The
//     returned graph pins ~no heap (Csr::owned_bytes() ≈ 0), so it passes
//     memory budgets that the heap-resident reader fails.
//   * read_csr_binary_parallel_s — heap-resident load of the same format,
//     but the body is fetched by worker threads issuing positional preads
//     over disjoint chunks (cold-cache loads are bandwidth-bound on one
//     thread). Optionally uses O_DIRECT with aligned bounce buffers and
//     falls back to buffered IO wherever the platform/filesystem refuses.
//   * build_undirected_external_s / build_csx_file_external_s — build a CSR
//     from a text edge list whose symmetrized arc set exceeds memory:
//     arcs are bucketed to temp files by source range, each bucket is
//     sorted and deduplicated within the sort budget, and buckets are
//     emitted in vertex order (the file variant streams straight into a
//     durable "LOTUSGR1" CSX artifact that read_csr_mapped_s can map).
//
// All functions follow the *_s contract: they never throw, and report
// failures (IO, corrupt input, budget refusal) as Status codes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "util/mmap_file.hpp"
#include "util/status.hpp"

namespace lotus::graph::oocore {

// LOTUS-KNOB-INVENTORY-BEGIN
// Every knob below must be documented in docs/OUT_OF_CORE.md
// (scripts/check_docs.sh cross-checks the names).

/// Knobs for read_csr_binary_parallel_s.
struct LoaderOptions {
  /// loader_threads: worker threads issuing preads; 0 = hardware concurrency.
  unsigned loader_threads = 0;
  /// chunk_bytes: bytes per positional read request (floor 1 MiB).
  std::uint64_t chunk_bytes = 8ull << 20;
  /// direct_io: bypass the page cache with O_DIRECT + aligned bounce
  /// buffers; silently falls back to buffered reads when the open or any
  /// read is refused (EINVAL) or the platform lacks O_DIRECT.
  bool direct_io = false;
};

/// Knobs for the external-memory builders.
struct ExternalBuildOptions {
  /// sort_budget_bytes: ceiling on one bucket's in-memory arc array; buckets
  /// are sized so sorting never holds more than this (floor 1 MiB).
  std::uint64_t sort_budget_bytes = 256ull << 20;
  /// temp_dir: directory for bucket spill files; "" = alongside the input.
  std::string temp_dir;
};

/// Checksum policy for the mapped (zero-copy) readers. Streamed loads
/// always verify footers eagerly — the bytes are in the heap anyway.
enum class MapVerify {
  /// map_verify: kEager (default) checksum-verifies every footered section
  /// at map time under the SIGBUS guard — one sequential pass that doubles
  /// as readahead; kOff maps without touching the payload, preserving pure
  /// zero-copy cold starts (the engine's background-verify knob re-checks
  /// such mappings off the query path). Footerless legacy files always load
  /// unverified.
  kEager,
  kOff,
};
// LOTUS-KNOB-INVENTORY-END

/// Map a "LOTUSGR1" CSX file; offsets/neighbours are zero-copy views pinned
/// by the mapping (freed when the graph is destroyed). The file is fully
/// validated (header vs size, offset monotonicity, neighbour range) —
/// corrupt files are rejected, exactly like read_csr_binary_s — and its
/// checksum footer is verified per `verify`.
[[nodiscard]] util::Expected<CsrGraph> read_csr_mapped_s(
    const std::string& path, MapVerify verify = MapVerify::kEager);

/// Append a complete "LOTUSGR1" CSX image for `graph` to `out` at its
/// current position (the engine spill format embeds CSX sections this way;
/// tc/prepared.cpp). The image must start on an 8-byte file offset for the
/// mapped reader to work. `path` is for error messages only.
[[nodiscard]] util::Status write_csx_stream_s(std::FILE* out,
                                              const std::string& path,
                                              const CsrGraph& graph);

/// Zero-copy CSX views over a "LOTUSGR1" image spanning [base, base + size)
/// inside an existing mapping; `base` must be 8-aligned. `validate` skips
/// the O(V+E) body scan for self-written (trusted) artifacts; `verify`
/// controls checksum-footer verification independently (a trusted layout
/// can still be checked for bit rot).
[[nodiscard]] util::Expected<CsrGraph> read_csr_mapped_at_s(
    const std::shared_ptr<util::MappedFile>& file, std::uint64_t base,
    std::uint64_t size, bool validate, MapVerify verify = MapVerify::kEager);

/// Heap-resident load of a "LOTUSGR1" CSX file with chunked parallel preads.
/// Identical result and validation as read_csr_binary_s; the heap arrays are
/// charged to the installed memory budget at site "graph-load".
[[nodiscard]] util::Expected<CsrGraph> read_csr_binary_parallel_s(
    const std::string& path, const LoaderOptions& options = {});

/// External-memory equivalent of read_edge_list_text + build_undirected:
/// symmetrize, drop self-loops, dedup, sort — without ever materializing the
/// full arc set in memory (peak heap ≈ sort_budget_bytes + the result).
[[nodiscard]] util::Expected<CsrGraph> build_undirected_external_s(
    const std::string& edge_list_path, const ExternalBuildOptions& options = {});

/// Same pipeline, but the CSR is streamed straight into a durable "LOTUSGR1"
/// CSX file at `out_path` (temp + fsync + atomic rename) instead of being
/// returned; peak heap ≈ sort_budget_bytes + the (v+1)-entry offset array.
/// Load the artifact with read_csr_mapped_s to count without ever holding
/// the neighbour set in heap memory.
[[nodiscard]] util::Status build_csx_file_external_s(
    const std::string& edge_list_path, const std::string& out_path,
    const ExternalBuildOptions& options = {});

}  // namespace lotus::graph::oocore
