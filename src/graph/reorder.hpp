// Graph reordering algorithms and locality metrics (Sec. 6.5 context).
//
// The LOTUS relabeling preserves the input order of non-hub vertices
// because full degree ordering is known to destroy the spatial locality
// that crawl/LLP orderings provide (Sec. 4.3.1, [44]). This module supplies
// the orderings needed to study that effect — plus the gap-based locality
// metrics that quantify it — and feeds the ordering ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

enum class Ordering {
  kOriginal,    // identity
  kRandom,      // destroys all locality (worst case)
  kDegreeDesc,  // classical degree ordering (Forward's preprocessing)
  kBfs,         // breadth-first from the max-degree vertex; community-local
  kDfs,         // depth-first; path-local
};

/// Permutation new_id[old_id] for the requested ordering. Deterministic for
/// a given (graph, seed).
std::vector<VertexId> make_ordering(const CsrGraph& graph, Ordering ordering,
                                    std::uint64_t seed = 1);

[[nodiscard]] const char* ordering_name(Ordering ordering);
[[nodiscard]] std::vector<Ordering> all_orderings();

/// Mean |v − u| over all adjacency entries: small when neighbours have
/// nearby IDs (spatial locality).
double average_neighbor_gap(const CsrGraph& graph);

/// Mean log2(1 + gap) between consecutive sorted neighbours — the bit cost
/// a gap coder pays per edge, i.e. a compression-friendliness proxy.
double log_gap_cost_bits(const CsrGraph& graph);

}  // namespace lotus::graph
