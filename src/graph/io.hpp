// Graph serialization: whitespace-separated text edge lists (the common
// interchange format of SNAP/KONECT dumps) and a fast binary CSR format.
//
// Two API layers: the *_s functions return util::Status/Expected and never
// throw — this is the form services should call — while the historical
// throwing functions wrap them and raise std::runtime_error with the status
// message. Binary reads go through a bounded EINTR/short-read retry loop
// and check every fread/fclose return value, so a signal-interrupted or
// slowly-filling file descriptor is retried instead of misreported as
// corruption (fault sites read_short / read_fail exercise both paths).
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace lotus::graph {

/// Read "u v" pairs, one per line; lines starting with '#' or '%' and
/// whitespace-only lines are skipped, tokens after the first two on a line
/// are ignored (tolerates weighted/timestamped dumps). Self-loops are kept
/// (builders drop them). num_vertices = max endpoint + 1. Errors:
/// io_error for unreadable files, invalid_argument for malformed lines or
/// endpoint IDs that do not fit in 32 bits.
util::Expected<EdgeList> read_edge_list_text_s(const std::string& path);

util::Status write_edge_list_text_s(const std::string& path,
                                    const EdgeList& edges);

/// Binary CSX: magic "LOTUSGR1", u64 num_vertices, u64 num_edges, offsets,
/// 32-bit neighbours.
util::Status write_csr_binary_s(const std::string& path, const CsrGraph& graph);

/// Read the binary CSX format back. The declared (v, e) header is validated
/// against the actual file size before anything is allocated, so corrupt or
/// hostile headers cannot trigger multi-gigabyte allocations; offsets and
/// neighbour IDs are range-checked after reading. Errors: io_error on
/// unreadable/truncated files, invalid_argument on structural corruption
/// (bad magic, inconsistent header, non-monotone offsets, out-of-range IDs).
util::Expected<CsrGraph> read_csr_binary_s(const std::string& path);

/// Throwing wrappers (std::runtime_error carrying the status message) for
/// callers that predate the status model.
EdgeList read_edge_list_text(const std::string& path);
void write_edge_list_text(const std::string& path, const EdgeList& edges);
void write_csr_binary(const std::string& path, const CsrGraph& graph);
CsrGraph read_csr_binary(const std::string& path);

}  // namespace lotus::graph
