// Graph serialization: whitespace-separated text edge lists (the common
// interchange format of SNAP/KONECT dumps) and a fast binary CSR format.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

/// Read "u v" pairs, one per line; lines starting with '#' or '%' and
/// whitespace-only lines are skipped, tokens after the first two on a line
/// are ignored (tolerates weighted/timestamped dumps). Self-loops are kept
/// (builders drop them). num_vertices = max endpoint + 1. Throws
/// std::runtime_error on unreadable files, malformed lines, or endpoint IDs
/// that do not fit in 32 bits.
EdgeList read_edge_list_text(const std::string& path);

void write_edge_list_text(const std::string& path, const EdgeList& edges);

/// Binary CSX: magic "LOTUSGR1", u64 num_vertices, u64 num_edges, offsets,
/// 32-bit neighbours. Throws std::runtime_error on bad magic / truncation.
void write_csr_binary(const std::string& path, const CsrGraph& graph);

/// Read the binary CSX format back. The declared (v, e) header is validated
/// against the actual file size before anything is allocated, so corrupt or
/// hostile headers cannot trigger multi-gigabyte allocations; offsets and
/// neighbour IDs are range-checked after reading. Throws std::runtime_error
/// on any inconsistency.
CsrGraph read_csr_binary(const std::string& path);

}  // namespace lotus::graph
