// Graph serialization: whitespace-separated text edge lists (the common
// interchange format of SNAP/KONECT dumps) and a fast binary CSR format.
#pragma once

#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

/// Read "u v" pairs, one per line; lines starting with '#' or '%' are
/// comments. num_vertices = max endpoint + 1. Throws std::runtime_error on
/// unreadable files or malformed lines.
EdgeList read_edge_list_text(const std::string& path);

void write_edge_list_text(const std::string& path, const EdgeList& edges);

/// Binary CSX: magic "LOTUSGR1", u64 num_vertices, u64 num_edges, offsets,
/// 32-bit neighbours. Throws std::runtime_error on bad magic / truncation.
void write_csr_binary(const std::string& path, const CsrGraph& graph);
CsrGraph read_csr_binary(const std::string& path);

}  // namespace lotus::graph
