#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "graph/degree_order.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/padded.hpp"
#include "util/prng.hpp"

namespace lotus::graph {

std::vector<std::uint32_t> degrees(const CsrGraph& graph) {
  std::vector<std::uint32_t> out(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) out[v] = graph.degree(v);
  return out;
}

DegreeStats degree_stats(const CsrGraph& graph, std::uint64_t sample_seed) {
  DegreeStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) return stats;

  stats.min_degree = graph.degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t d = graph.degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
  }
  stats.avg_degree = static_cast<double>(graph.num_edges()) / n;

  // Fixed-size degree sample, as in GAP's WorthRelabelling heuristic.
  constexpr std::size_t kSamples = 1000;
  util::Xoshiro256 rng(sample_seed);
  std::vector<std::uint32_t> sample(kSamples);
  for (auto& s : sample)
    s = graph.degree(static_cast<VertexId>(rng.next_below(n)));
  std::nth_element(sample.begin(), sample.begin() + kSamples / 2, sample.end());
  stats.sampled_median_degree = sample[kSamples / 2];
  return stats;
}

HubStats hub_stats(const CsrGraph& graph, double hub_fraction) {
  HubStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) return stats;

  const auto hub_count = static_cast<VertexId>(
      std::max<double>(1.0, std::ceil(hub_fraction * n)));
  stats.hub_count = hub_count;

  // After degree-descending relabeling, vertex v is a hub iff v < hub_count.
  const OrientedCsr oriented = degree_ordered_oriented(graph);

  // --- Edge classes (Table 1 columns 2-5). Each oriented entry (v, u<v) is
  // one undirected edge.
  std::uint64_t h2h = 0, h2n = 0, n2n = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : oriented.neighbors(v)) {
      if (v < hub_count)
        ++h2h;  // u < v so u is a hub too
      else if (u < hub_count)
        ++h2n;
      else
        ++n2n;
    }
  }
  const auto total_edges = static_cast<double>(oriented.num_edges());
  if (total_edges > 0) {
    stats.hub_to_hub_edges_pct = 100.0 * static_cast<double>(h2h) / total_edges;
    stats.hub_to_nonhub_edges_pct = 100.0 * static_cast<double>(h2n) / total_edges;
    stats.hub_edges_total_pct = stats.hub_to_hub_edges_pct + stats.hub_to_nonhub_edges_pct;
    stats.nonhub_edges_pct = 100.0 * static_cast<double>(n2n) / total_edges;
  }

  // --- Relative density of the hub sub-graph (Sec. 3.4).
  const double rd_num = static_cast<double>(h2h) /
                        (static_cast<double>(hub_count) * hub_count);
  const double rd_den = total_edges / (static_cast<double>(n) * n);
  stats.relative_density_hubs = rd_den > 0 ? rd_num / rd_den : 0.0;

  // --- Triangle enumeration with merge join (Forward algorithm), tracking:
  //   * hub triangles: the smallest vertex of a triangle decides hubness
  //     (ids are degree-ranked, so w < u < v makes w the only candidate);
  //   * fruitless accesses (Sec. 3.3): elements read during intersections of
  //     vertices v with no hub neighbour, where the element is a hub ID.
  struct Partial {
    std::uint64_t triangles = 0;
    std::uint64_t hub_triangles = 0;
    std::uint64_t hubless_accesses = 0;  // accesses while processing hub-free vertices
    std::uint64_t fruitless = 0;         // ...of which point at hub edges
  };
  std::vector<parallel::Padded<Partial>> partials(parallel::max_parallelism());

  parallel::parallel_for(0, n, 256,
      [&](unsigned thread_index, std::uint64_t b, std::uint64_t e) {
        Partial& p = partials[thread_index].value;
        for (std::uint64_t vi = b; vi < e; ++vi) {
          const auto v = static_cast<VertexId>(vi);
          auto nv = oriented.neighbors(v);
          // Lists are sorted, so "no hub neighbour" = first entry not a hub.
          const bool v_hubless = nv.empty() || nv.front() >= hub_count;
          const bool track_fruitless = v >= hub_count && v_hubless;
          for (VertexId u : nv) {
            auto nu = oriented.neighbors(u);
            std::size_t i = 0, j = 0;
            while (i < nv.size() && j < nu.size()) {
              if (track_fruitless) ++p.hubless_accesses;
              if (nv[i] < nu[j]) {
                ++i;
              } else if (nv[i] > nu[j]) {
                if (track_fruitless && nu[j] < hub_count) ++p.fruitless;
                ++j;
              } else {
                ++p.triangles;
                if (nv[i] < hub_count) ++p.hub_triangles;
                ++i;
                ++j;
              }
            }
          }
        }
      });

  Partial total;
  for (const auto& p : partials) {
    total.triangles += p.value.triangles;
    total.hub_triangles += p.value.hub_triangles;
    total.hubless_accesses += p.value.hubless_accesses;
    total.fruitless += p.value.fruitless;
  }
  stats.total_triangles = total.triangles;
  if (total.triangles > 0)
    stats.hub_triangles_pct =
        100.0 * static_cast<double>(total.hub_triangles) / static_cast<double>(total.triangles);
  if (total.hubless_accesses > 0)
    stats.fruitless_searches_pct = 100.0 * static_cast<double>(total.fruitless) /
                                   static_cast<double>(total.hubless_accesses);
  return stats;
}

}  // namespace lotus::graph
