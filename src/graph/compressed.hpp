// Gap + varint compressed CSX storage (WebGraph-style).
//
// The paper's web-graph datasets ship in the WebGraph compressed format
// [18]; this is the equivalent substrate here: neighbour lists are stored as
// varint-encoded deltas (first ID raw, then gap−1 between consecutive
// sorted neighbours). Graphs whose ordering has spatial locality — which
// the LOTUS relabeling deliberately preserves for the non-hub tail
// (Sec. 4.3.1) — compress far better than randomly ordered ones, which the
// ordering ablation quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

class CompressedCsr {
 public:
  CompressedCsr() = default;

  /// Encode a symmetric or oriented CSR (neighbour lists must be sorted).
  static CompressedCsr encode(const CsrGraph& graph);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept { return num_edges_; }

  /// Compressed topology footprint: offsets + byte stream (Table 7-style
  /// accounting).
  [[nodiscard]] std::uint64_t topology_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) + bytes_.size();
  }

  /// Decode one vertex's neighbour list into `out` (cleared first).
  void decode_neighbors(VertexId v, std::vector<VertexId>& out) const;

  /// Stream a vertex's neighbours without materializing: fn(VertexId).
  template <typename Fn>
  void for_each_neighbor(VertexId v, Fn&& fn) const {
    const std::uint8_t* cursor = bytes_.data() + offsets_[v];
    const std::uint8_t* end = bytes_.data() + offsets_[v + 1];
    VertexId previous = 0;
    bool first = true;
    while (cursor < end) {
      const std::uint64_t delta = decode_varint(cursor);
      const VertexId id = first ? static_cast<VertexId>(delta)
                                : previous + 1 + static_cast<VertexId>(delta);
      fn(id);
      previous = id;
      first = false;
    }
  }

  /// Round-trip back to plain CSR (tests and one-shot conversions).
  [[nodiscard]] CsrGraph decode() const;

 private:
  static std::uint64_t decode_varint(const std::uint8_t*& cursor) noexcept {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
      const std::uint8_t byte = *cursor++;
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::vector<std::uint64_t> offsets_;  // byte offsets, size = V + 1
  std::vector<std::uint8_t> bytes_;
  EdgeId num_edges_ = 0;
};

}  // namespace lotus::graph
