// Synthetic graph generators.
//
// These stand in for the paper's real-world datasets (Table 4), which are
// multi-billion-edge public crawls that cannot ship with the repository.
// Each generator controls the structural property LOTUS exploits:
//   * rmat         — Graph500 power-law; social-network-like degree skew.
//   * holme_kim    — preferential attachment with triad formation; power-law
//                    AND high clustering (LiveJournal/Twitter-like).
//   * copy_web     — linear-growth copying model with prototype locality;
//                    dense hub cores and locally clustered IDs (web-graph-like).
//   * erdos_renyi / watts_strogatz — low-skew controls (Friendster-like case
//                    of Sec. 5.5).
//   * deterministic families — closed-form triangle counts for the oracle
//                    tests (K_n has C(n,3), wheels have rim-size, grids 0, ...).
//
// All generators are deterministic in (parameters, seed). Outputs may contain
// duplicate edges or self-loops; `build_undirected` cleans them.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace lotus::graph {

struct RmatParams {
  unsigned scale = 16;        // num_vertices = 2^scale
  double edge_factor = 16.0;  // undirected edges per vertex
  double a = 0.57, b = 0.19, c = 0.19;  // Graph500 defaults (d = 1-a-b-c)
  std::uint64_t seed = 1;
};
EdgeList rmat(const RmatParams& params);

EdgeList erdos_renyi(VertexId num_vertices, double avg_degree, std::uint64_t seed);

struct HolmeKimParams {
  VertexId num_vertices = 1 << 16;
  unsigned edges_per_vertex = 8;  // m
  double p_triad = 0.5;           // probability of triad-formation step
  /// Extra attachment weight given to the seed clique, steepening the hub
  /// tail toward the gamma ≈ 2.2 exponents of real social networks (plain
  /// BA/Holme-Kim tails are too steep at gamma = 3).
  std::uint32_t seed_boost = 0;
  /// Probability a new vertex attaches "locally" — to a uniformly chosen
  /// recent vertex and its non-seed neighbours instead of by preferential
  /// attachment. Local vertices often end up with no hub edges while their
  /// neighbours keep theirs: the configuration behind the fruitless-search
  /// statistics of Sec. 3.3.
  double p_local = 0.0;
  std::uint64_t seed = 1;
};
EdgeList holme_kim(const HolmeKimParams& params);

struct WattsStrogatzParams {
  VertexId num_vertices = 1 << 16;
  unsigned ring_degree = 8;  // k: neighbours per side on the ring lattice
  double rewire_prob = 0.1;  // beta
  std::uint64_t seed = 1;
};
EdgeList watts_strogatz(const WattsStrogatzParams& params);

struct CopyWebParams {
  VertexId num_vertices = 1 << 16;
  unsigned edges_per_vertex = 12;  // m
  double p_copy = 0.7;             // probability an edge copies the prototype's neighbour
  VertexId locality_window = 4096; // prototypes drawn from the recent window
  /// Dense hub core: the first `core_size` vertices form a clique, and each
  /// new vertex links to a core member with probability `p_core` per edge.
  /// Mirrors the tightly connected hub cores of real web crawls (Sec. 3.4 /
  /// Table 8's packed H2H cachelines).
  VertexId core_size = 0;
  double p_core = 0.0;
  /// Probability a new vertex is "local-only": it never links the core and
  /// avoids copying core neighbours — a page deep inside a site that links
  /// siblings but no portals. Creates the hub-free vertices whose searches
  /// Sec. 3.3 prunes.
  double p_local = 0.0;
  std::uint64_t seed = 1;
};
EdgeList copy_web(const CopyWebParams& params);

// Deterministic families (test oracles).
EdgeList complete(VertexId n);                       // triangles = C(n,3)
EdgeList star(VertexId n);                           // 0 triangles
EdgeList path(VertexId n);                           // 0 triangles
EdgeList cycle(VertexId n);                          // 1 iff n == 3 else 0
EdgeList wheel(VertexId rim);                        // `rim` triangles (hub + C_rim)
EdgeList grid(VertexId rows, VertexId cols);         // 0 triangles
EdgeList complete_bipartite(VertexId a, VertexId b); // 0 triangles

/// Exact expected triangle count for `complete(n)`.
constexpr std::uint64_t complete_triangles(std::uint64_t n) {
  return n < 3 ? 0 : n * (n - 1) * (n - 2) / 6;
}

}  // namespace lotus::graph
