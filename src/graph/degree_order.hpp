// Degree ordering — the preprocessing step of the baseline Forward algorithm
// (Alg. 1 line 1) and the backbone of the LOTUS relabeling.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

/// Permutation mapping old IDs to new IDs such that new ID 0 has the maximum
/// degree. Ties keep original ID order (stable), matching the determinism
/// the tests rely on.
std::vector<VertexId> degree_descending_permutation(const CsrGraph& graph);

/// Degree-order the graph and keep only lower-ID neighbours: the exact input
/// the Forward algorithm consumes. Equivalent to
/// `orient_by_id(relabel(g, degree_descending_permutation(g)))`.
OrientedCsr degree_ordered_oriented(const CsrGraph& graph);

}  // namespace lotus::graph
