// Structural statistics of graphs.
//
// `DegreeStats` feeds the adaptive skewness check (Sec. 5.5, GAP-style
// average-vs-sampled-median heuristic). `HubStats` reproduces every column
// of Table 1: edge-class fractions, hub-triangle fraction, relative density
// of the hub sub-graph, and the fruitless-search fraction of Sec. 3.3.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

struct DegreeStats {
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double avg_degree = 0.0;
  double sampled_median_degree = 0.0;  // median of a fixed-seed degree sample

  /// GAP-style skewness test: power-law-like graphs have an average degree
  /// above the sampled median and a heavy maximum-degree tail. Calibrated so
  /// RMAT/web/social stand-ins register as skewed while Erdős–Rényi and
  /// ring lattices do not.
  [[nodiscard]] bool is_skewed() const {
    return avg_degree > 1.2 * sampled_median_degree && max_degree > 16 * avg_degree;
  }
};

DegreeStats degree_stats(const CsrGraph& graph, std::uint64_t sample_seed = 42);

/// Table 1 row for one dataset; percentages in [0, 100].
struct HubStats {
  std::uint32_t hub_count = 0;
  double hub_to_hub_edges_pct = 0.0;
  double hub_to_nonhub_edges_pct = 0.0;
  double hub_edges_total_pct = 0.0;       // hub_to_hub + hub_to_nonhub
  double nonhub_edges_pct = 0.0;
  double hub_triangles_pct = 0.0;         // triangles with >= 1 hub vertex
  double relative_density_hubs = 0.0;     // RD_H of Sec. 3.4
  double fruitless_searches_pct = 0.0;    // Sec. 3.3 measurement
  std::uint64_t total_triangles = 0;
};

/// Compute hub statistics with the `hub_fraction` highest-degree vertices as
/// hubs (Table 1 uses 1%). Enumerates triangles via a degree-ordered merge
/// join, so intended for the registry-scale graphs, not billion-edge inputs.
HubStats hub_stats(const CsrGraph& graph, double hub_fraction = 0.01);

/// Per-vertex degrees (convenience for generators' distribution tests).
std::vector<std::uint32_t> degrees(const CsrGraph& graph);

}  // namespace lotus::graph
