#include "graph/degree_order.hpp"

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"

namespace lotus::graph {

std::vector<VertexId> degree_descending_permutation(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.degree(a) > graph.degree(b);
                   });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

OrientedCsr degree_ordered_oriented(const CsrGraph& graph) {
  return orient_by_id(relabel(graph, degree_descending_permutation(graph)));
}

}  // namespace lotus::graph
