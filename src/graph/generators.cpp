#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace lotus::graph {

using util::Xoshiro256;

EdgeList rmat(const RmatParams& params) {
  if (params.scale == 0 || params.scale > 30)
    throw std::invalid_argument("rmat: scale must be in [1, 30]");
  const VertexId n = VertexId{1} << params.scale;
  const auto m = static_cast<std::uint64_t>(params.edge_factor * n);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  if (!(params.a > 0 && params.b >= 0 && params.c >= 0 && abc < 1.0))
    throw std::invalid_argument("rmat: bad quadrant probabilities");

  Xoshiro256 rng(params.seed);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (unsigned level = 0; level < params.scale; ++level) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    out.edges.push_back({u, v});
  }
  return out;
}

EdgeList erdos_renyi(VertexId num_vertices, double avg_degree, std::uint64_t seed) {
  if (num_vertices < 2) throw std::invalid_argument("erdos_renyi: need >= 2 vertices");
  const auto m = static_cast<std::uint64_t>(avg_degree * num_vertices / 2.0);
  Xoshiro256 rng(seed);
  EdgeList out;
  out.num_vertices = num_vertices;
  out.edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(num_vertices));
    const auto v = static_cast<VertexId>(rng.next_below(num_vertices));
    out.edges.push_back({u, v});
  }
  return out;
}

EdgeList holme_kim(const HolmeKimParams& params) {
  const VertexId n = params.num_vertices;
  const unsigned m = params.edges_per_vertex;
  if (n <= m + 1) throw std::invalid_argument("holme_kim: too few vertices");

  Xoshiro256 rng(params.seed);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(static_cast<std::size_t>(n) * m);

  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // is degree-proportional (preferential attachment).
  std::vector<VertexId> targets;
  targets.reserve(static_cast<std::size_t>(n) * m * 2);

  // Seed clique over the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u)
    for (VertexId v = u + 1; v <= m; ++v) {
      out.edges.push_back({u, v});
      targets.push_back(u);
      targets.push_back(v);
    }
  // Seed boost: extra attachment weight makes the seed vertices mega-hubs,
  // flattening the degree-distribution tail toward real social networks.
  for (std::uint32_t i = 0; i < params.seed_boost; ++i)
    for (VertexId u = 0; u <= m; ++u) targets.push_back(u);

  // Per-vertex adjacency needed for the triad step (neighbour of the last
  // preferentially chosen vertex).
  std::vector<std::vector<VertexId>> adj(n);
  for (const Edge& e : out.edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }

  for (VertexId v = m + 1; v < n; ++v) {
    const bool local = rng.next_double() < params.p_local;
    VertexId last_pa = 0;
    if (local) {
      // Local community growth: anchor on a uniform recent vertex and stay
      // among its non-seed neighbours; no preferential attachment.
      const VertexId window = std::min<VertexId>(v, 8192);
      last_pa = static_cast<VertexId>(v - 1 - rng.next_below(window));
    }
    for (unsigned j = 0; j < m; ++j) {
      VertexId u;
      if (local) {
        if (j == 0 || adj[last_pa].empty()) {
          u = last_pa;
        } else {
          u = adj[last_pa][rng.next_below(adj[last_pa].size())];
          if (u <= m)  // dodge the seed mega-hubs to stay hub-free
            u = last_pa;
        }
      } else if (j > 0 && rng.next_double() < params.p_triad && !adj[last_pa].empty()) {
        // Triad formation: close a triangle through a neighbour of last_pa.
        u = adj[last_pa][rng.next_below(adj[last_pa].size())];
      } else {
        u = targets[rng.next_below(targets.size())];
        last_pa = u;
      }
      if (u == v) continue;  // duplicates are merged later
      out.edges.push_back({v, u});
      adj[v].push_back(u);
      adj[u].push_back(v);
      targets.push_back(v);
      targets.push_back(u);
    }
  }
  return out;
}

EdgeList watts_strogatz(const WattsStrogatzParams& params) {
  const VertexId n = params.num_vertices;
  const unsigned k = params.ring_degree;
  if (n < 2 * k + 1) throw std::invalid_argument("watts_strogatz: too few vertices");

  Xoshiro256 rng(params.seed);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(static_cast<std::size_t>(n) * k);
  for (VertexId v = 0; v < n; ++v) {
    for (unsigned j = 1; j <= k; ++j) {
      VertexId u = (v + j) % n;
      if (rng.next_double() < params.rewire_prob)
        u = static_cast<VertexId>(rng.next_below(n));
      out.edges.push_back({v, u});
    }
  }
  return out;
}

EdgeList copy_web(const CopyWebParams& params) {
  const VertexId n = params.num_vertices;
  const unsigned m = params.edges_per_vertex;
  if (n <= m + 1) throw std::invalid_argument("copy_web: too few vertices");

  Xoshiro256 rng(params.seed);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(static_cast<std::size_t>(n) * m);

  std::vector<std::vector<VertexId>> adj(n);
  auto add = [&](VertexId a, VertexId b) {
    if (a == b) return;
    out.edges.push_back({a, b});
    adj[a].push_back(b);
    adj[b].push_back(a);
  };

  // Dense hub core with a Zipf staircase: core vertex i links the ~core/(i+1)
  // most popular core vertices. This yields one dominant portal plus a
  // decaying popularity tail — the structure behind both the packed H2H
  // cachelines of Table 8 and the extreme per-vertex pair-work skew that
  // squared edge tiling (Table 9) exists to balance. A uniform clique would
  // make every core vertex equally heavy, which real web cores are not.
  const VertexId core = std::min<VertexId>(params.core_size, n / 4);
  const VertexId inner = core / 3;  // densely interconnected top portals
  for (VertexId i = 1; i < core; ++i) {
    const VertexId reach =
        i < inner ? i : std::max<VertexId>(1, core / (i + 1 - inner));
    for (VertexId j = 0; j < std::min(i, reach); ++j) add(i, j);
  }
  // Seed clique over the first m+1 vertices keeps early growth connected.
  const VertexId first = std::max<VertexId>(m, core);
  for (VertexId u = 0; u <= m; ++u)
    for (VertexId v = u + 1; v <= m; ++v) add(u, v);

  for (VertexId v = first + 1; v < n; ++v) {
    // Prototype from the recent window: preserves the ID locality that web
    // crawls exhibit (Sec. 5.5 notes LWA graphs retain spatial locality).
    const VertexId window = std::min<VertexId>(params.locality_window, v);
    const auto proto = static_cast<VertexId>(v - 1 - rng.next_below(window));
    const bool local = rng.next_double() < params.p_local;
    add(v, proto);
    for (unsigned j = 1; j < m; ++j) {
      if (!local && core > 0 && rng.next_double() < params.p_core) {
        // Link into the hub core with popularity bias (u^2 maps the uniform
        // draw onto a ~1/sqrt(rank) density): pages overwhelmingly link the
        // few top portals.
        const double u01 = rng.next_double();
        add(v, static_cast<VertexId>(static_cast<double>(core) * u01 * u01));
      } else if (rng.next_double() < params.p_copy && !adj[proto].empty()) {
        VertexId u = adj[proto][rng.next_below(adj[proto].size())];
        if (local && u < core) {
          // Local pages copy sibling links but not portal links; fall back
          // to the prototype's own neighbourhood window.
          u = static_cast<VertexId>(v - 1 - rng.next_below(window));
        }
        add(v, u);
      } else {
        VertexId u = static_cast<VertexId>(rng.next_below(v));
        if (local && u < core) u = proto;
        add(v, u);
      }
    }
  }
  return out;
}

EdgeList complete(VertexId n) {
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) out.edges.push_back({u, v});
  return out;
}

EdgeList star(VertexId n) {
  if (n < 2) throw std::invalid_argument("star: need >= 2 vertices");
  EdgeList out;
  out.num_vertices = n;
  for (VertexId v = 1; v < n; ++v) out.edges.push_back({0, v});
  return out;
}

EdgeList path(VertexId n) {
  EdgeList out;
  out.num_vertices = n;
  for (VertexId v = 1; v < n; ++v) out.edges.push_back({v - 1, v});
  return out;
}

EdgeList cycle(VertexId n) {
  if (n < 3) throw std::invalid_argument("cycle: need >= 3 vertices");
  EdgeList out = path(n);
  out.edges.push_back({n - 1, 0});
  return out;
}

EdgeList wheel(VertexId rim) {
  if (rim < 3) throw std::invalid_argument("wheel: need rim >= 3");
  EdgeList out;
  out.num_vertices = rim + 1;  // vertex 0 is the hub
  for (VertexId v = 1; v <= rim; ++v) {
    out.edges.push_back({0, v});
    out.edges.push_back({v, v == rim ? 1 : v + 1});
  }
  return out;
}

EdgeList grid(VertexId rows, VertexId cols) {
  EdgeList out;
  out.num_vertices = rows * cols;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r)
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) out.edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) out.edges.push_back({id(r, c), id(r + 1, c)});
    }
  return out;
}

EdgeList complete_bipartite(VertexId a, VertexId b) {
  EdgeList out;
  out.num_vertices = a + b;
  for (VertexId u = 0; u < a; ++u)
    for (VertexId v = 0; v < b; ++v) out.edges.push_back({u, a + v});
  return out;
}

}  // namespace lotus::graph
