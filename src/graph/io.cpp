#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lotus::graph {

namespace {
constexpr std::array<char, 8> kMagic = {'L', 'O', 'T', 'U', 'S', 'G', 'R', '1'};

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}
}  // namespace

EdgeList read_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");

  EdgeList out;
  std::string line;
  std::uint64_t line_no = 0;
  VertexId max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      fail(path, "malformed edge at line " + std::to_string(line_no));
    // IDs must stay strictly below 2^32 - 1: num_vertices = max ID + 1 must
    // itself fit in the 32-bit VertexId, so the all-ones ID is unusable too.
    if (u >= 0xffffffffULL || v >= 0xffffffffULL)
      fail(path, "vertex ID exceeds 32 bits at line " + std::to_string(line_no));
    out.edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    max_id = std::max({max_id, static_cast<VertexId>(u), static_cast<VertexId>(v)});
    any = true;
  }
  out.num_vertices = any ? max_id + 1 : 0;
  return out;
}

void write_edge_list_text(const std::string& path, const EdgeList& edges) {
  std::ofstream outf(path);
  if (!outf) fail(path, "cannot open for writing");
  outf << "# lotus edge list: " << edges.num_vertices << " vertices, "
       << edges.edges.size() << " edges\n";
  for (const Edge& e : edges.edges) outf << e.u << ' ' << e.v << '\n';
  if (!outf) fail(path, "write error");
}

void write_csr_binary(const std::string& path, const CsrGraph& graph) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) fail(path, "cannot open for writing");
  const std::uint64_t v = graph.num_vertices();
  const std::uint64_t e = graph.num_edges();
  outf.write(kMagic.data(), kMagic.size());
  outf.write(reinterpret_cast<const char*>(&v), sizeof v);
  outf.write(reinterpret_cast<const char*>(&e), sizeof e);
  outf.write(reinterpret_cast<const char*>(graph.offsets().data()),
             static_cast<std::streamsize>((v + 1) * sizeof(std::uint64_t)));
  outf.write(reinterpret_cast<const char*>(graph.neighbor_array().data()),
             static_cast<std::streamsize>(e * sizeof(VertexId)));
  if (!outf) fail(path, "write error");
}

CsrGraph read_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");

  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0)
    fail(path, "not a lotus binary graph (bad magic)");

  std::uint64_t v = 0, e = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  in.read(reinterpret_cast<char*>(&e), sizeof e);
  if (!in) fail(path, "truncated header");
  if (v > 0xffffffffULL) fail(path, "vertex count exceeds 32 bits");

  // Validate the declared (v, e) against the actual file size BEFORE any
  // allocation: a corrupt or hostile header must not be able to demand
  // gigabytes of memory that the file cannot possibly back.
  constexpr std::uint64_t kHeaderBytes = 8 + 2 * sizeof(std::uint64_t);
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < 0) fail(path, "cannot determine file size");
  const auto file_size = static_cast<std::uint64_t>(end_pos);
  if (file_size < kHeaderBytes) fail(path, "truncated header");
  const std::uint64_t body_bytes = file_size - kHeaderBytes;
  // v <= 2^32, so (v + 1) * 8 cannot overflow 64 bits.
  const std::uint64_t offset_bytes = (v + 1) * sizeof(std::uint64_t);
  if (offset_bytes > body_bytes)
    fail(path, "vertex count inconsistent with file size");
  // e is bounded by the division before e * 4 is ever formed, so the
  // multiplication below cannot overflow either.
  if (e > (body_bytes - offset_bytes) / sizeof(VertexId))
    fail(path, "edge count inconsistent with file size");
  if (offset_bytes + e * sizeof(VertexId) != body_bytes)
    fail(path, "file size does not match header");
  in.seekg(static_cast<std::streamoff>(kHeaderBytes), std::ios::beg);

  std::vector<std::uint64_t> offsets(v + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((v + 1) * sizeof(std::uint64_t)));
  std::vector<VertexId> neighbors(e);
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(e * sizeof(VertexId)));
  if (!in) fail(path, "truncated body");
  if (offsets.front() != 0 || offsets.back() != e) fail(path, "corrupt offsets");
  for (std::size_t i = 1; i < offsets.size(); ++i)
    if (offsets[i] < offsets[i - 1]) fail(path, "corrupt offsets");
  for (VertexId u : neighbors)
    if (u >= v) fail(path, "neighbour ID out of range");
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace lotus::graph
