#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fault.hpp"

namespace lotus::graph {

namespace {

using util::Expected;
using util::Status;
using util::StatusCode;

constexpr std::array<char, 8> kMagic = {'L', 'O', 'T', 'U', 'S', 'G', 'R', '1'};

Status error(StatusCode code, const std::string& path, const std::string& what) {
  return {code, path + ": " + what};
}

Status io_error(const std::string& path, const std::string& what) {
  return error(StatusCode::kIoError, path, what);
}

Status bad_data(const std::string& path, const std::string& what) {
  return error(StatusCode::kInvalidArgument, path, what);
}

/// RAII FILE handle. close() reports the fclose return value (a failed
/// close after buffered writes means data loss and must not be ignored);
/// the destructor closes best-effort for early-error paths.
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (file_ != nullptr) std::fclose(file_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  [[nodiscard]] bool open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::FILE* get() const noexcept { return file_; }

  [[nodiscard]] bool close() noexcept {
    if (file_ == nullptr) return true;
    const int rc = std::fclose(file_);
    file_ = nullptr;
    return rc == 0;
  }

 private:
  std::FILE* file_ = nullptr;
};

/// How many times a read may come back short/EINTR before we call the file
/// truncated. A genuine signal storm retries; a truncated file terminates
/// because fread keeps returning 0 at EOF.
constexpr int kMaxReadRetries = 8;

/// Read exactly `bytes` into `dst`, retrying bounded times on EINTR and
/// short reads. The `read_short`/`read_fail` fault sites deterministically
/// simulate both conditions (chaos suite).
Status read_fully(std::FILE* file, void* dst, std::size_t bytes,
                  const std::string& path) {
  auto* out = static_cast<unsigned char*>(dst);
  std::size_t remaining = bytes;
  int retries = 0;
  while (remaining > 0) {
    if (util::fault::should_fail(util::fault::Site::kReadFail))
      return io_error(path, "read failed (injected I/O error)");
    std::size_t want = remaining;
    if (want > 1 && util::fault::should_fail(util::fault::Site::kReadShort))
      want /= 2;  // deterministic short read; the loop must recover
    std::clearerr(file);
    const std::size_t got = std::fread(out, 1, want, file);
    out += got;
    remaining -= got;
    if (remaining == 0) break;
    if (std::ferror(file) != 0) {
      if (errno == EINTR && ++retries <= kMaxReadRetries) continue;
      return io_error(path, std::string("read failed: ") + std::strerror(errno));
    }
    if (got == want) {
      retries = 0;  // the (possibly shortened) request was fully served
      continue;
    }
    if (std::feof(file) != 0)
      return io_error(path, "truncated: unexpected end of file");
    // Short read without error or EOF (rare, e.g. signals on some libcs).
    if (++retries > kMaxReadRetries)
      return io_error(path, "read stalled (too many short reads)");
  }
  return Status::Ok();
}

/// Write exactly `bytes`, retrying bounded times on EINTR/short writes.
Status write_fully(std::FILE* file, const void* src, std::size_t bytes,
                   const std::string& path) {
  const auto* in = static_cast<const unsigned char*>(src);
  std::size_t remaining = bytes;
  int retries = 0;
  while (remaining > 0) {
    const std::size_t put = std::fwrite(in, 1, remaining, file);
    in += put;
    remaining -= put;
    if (remaining == 0) break;
    if (std::ferror(file) != 0 && errno != EINTR)
      return io_error(path, std::string("write failed: ") + std::strerror(errno));
    if (++retries > kMaxReadRetries)
      return io_error(path, "write stalled (too many short writes)");
    std::clearerr(file);
  }
  return Status::Ok();
}

}  // namespace

Expected<EdgeList> read_edge_list_text_s(const std::string& path) {
  std::ifstream in(path);
  if (!in) return io_error(path, "cannot open for reading");

  EdgeList out;
  std::string line;
  std::uint64_t line_no = 0;
  VertexId max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      return bad_data(path, "malformed edge at line " + std::to_string(line_no));
    // IDs must stay strictly below 2^32 - 1: num_vertices = max ID + 1 must
    // itself fit in the 32-bit VertexId, so the all-ones ID is unusable too.
    if (u >= 0xffffffffULL || v >= 0xffffffffULL)
      return bad_data(path,
                      "vertex ID exceeds 32 bits at line " + std::to_string(line_no));
    out.edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    max_id = std::max({max_id, static_cast<VertexId>(u), static_cast<VertexId>(v)});
    any = true;
  }
  if (in.bad()) return io_error(path, "read failed");
  out.num_vertices = any ? max_id + 1 : 0;
  return out;
}

util::Status write_edge_list_text_s(const std::string& path,
                                    const EdgeList& edges) {
  std::ofstream outf(path);
  if (!outf) return io_error(path, "cannot open for writing");
  outf << "# lotus edge list: " << edges.num_vertices << " vertices, "
       << edges.edges.size() << " edges\n";
  for (const Edge& e : edges.edges) outf << e.u << ' ' << e.v << '\n';
  outf.close();
  if (!outf) return io_error(path, "write error");
  return Status::Ok();
}

util::Status write_csr_binary_s(const std::string& path, const CsrGraph& graph) {
  File file(path, "wb");
  if (!file.open())
    return io_error(path, std::string("cannot open for writing: ") +
                              std::strerror(errno));
  const std::uint64_t v = graph.num_vertices();
  const std::uint64_t e = graph.num_edges();
  Status status = write_fully(file.get(), kMagic.data(), kMagic.size(), path);
  if (status.ok()) status = write_fully(file.get(), &v, sizeof v, path);
  if (status.ok()) status = write_fully(file.get(), &e, sizeof e, path);
  if (status.ok())
    status = write_fully(file.get(), graph.offsets().data(),
                         (v + 1) * sizeof(std::uint64_t), path);
  if (status.ok())
    status = write_fully(file.get(), graph.neighbor_array().data(),
                         e * sizeof(VertexId), path);
  if (!file.close() && status.ok())
    status = io_error(path, "close failed (buffered data lost)");
  return status;
}

Expected<CsrGraph> read_csr_binary_s(const std::string& path) {
  File file(path, "rb");
  if (!file.open())
    return io_error(path, std::string("cannot open for reading: ") +
                              std::strerror(errno));
  std::FILE* in = file.get();

  std::array<char, 8> magic{};
  Status status = read_fully(in, magic.data(), magic.size(), path);
  if (!status.ok()) return status;
  if (std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0)
    return bad_data(path, "not a lotus binary graph (bad magic)");

  std::uint64_t v = 0, e = 0;
  status = read_fully(in, &v, sizeof v, path);
  if (status.ok()) status = read_fully(in, &e, sizeof e, path);
  if (!status.ok()) return status;
  if (v > 0xffffffffULL) return bad_data(path, "vertex count exceeds 32 bits");

  // Validate the declared (v, e) against the actual file size BEFORE any
  // allocation: a corrupt or hostile header must not be able to demand
  // gigabytes of memory that the file cannot possibly back.
  constexpr std::uint64_t kHeaderBytes = 8 + 2 * sizeof(std::uint64_t);
  if (std::fseek(in, 0, SEEK_END) != 0)
    return io_error(path, "cannot determine file size");
  const long end_pos = std::ftell(in);
  if (end_pos < 0) return io_error(path, "cannot determine file size");
  const auto file_size = static_cast<std::uint64_t>(end_pos);
  if (file_size < kHeaderBytes) return io_error(path, "truncated header");
  const std::uint64_t body_bytes = file_size - kHeaderBytes;
  // v <= 2^32, so (v + 1) * 8 cannot overflow 64 bits.
  const std::uint64_t offset_bytes = (v + 1) * sizeof(std::uint64_t);
  if (offset_bytes > body_bytes)
    return bad_data(path, "vertex count inconsistent with file size");
  // e is bounded by the division before e * 4 is ever formed, so the
  // multiplication below cannot overflow either.
  if (e > (body_bytes - offset_bytes) / sizeof(VertexId))
    return bad_data(path, "edge count inconsistent with file size");
  if (offset_bytes + e * sizeof(VertexId) != body_bytes)
    return bad_data(path, "file size does not match header");
  if (std::fseek(in, static_cast<long>(kHeaderBytes), SEEK_SET) != 0)
    return io_error(path, "seek failed");

  std::vector<std::uint64_t> offsets(v + 1);
  status = read_fully(in, offsets.data(), (v + 1) * sizeof(std::uint64_t), path);
  if (!status.ok()) return status;
  std::vector<VertexId> neighbors(e);
  status = read_fully(in, neighbors.data(), e * sizeof(VertexId), path);
  if (!status.ok()) return status;
  if (offsets.front() != 0 || offsets.back() != e)
    return bad_data(path, "corrupt offsets");
  for (std::size_t i = 1; i < offsets.size(); ++i)
    if (offsets[i] < offsets[i - 1]) return bad_data(path, "corrupt offsets");
  for (VertexId u : neighbors)
    if (u >= v) return bad_data(path, "neighbour ID out of range");
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

namespace {
[[noreturn]] void rethrow(const Status& status) {
  throw std::runtime_error(status.message().empty() ? status.to_string()
                                                    : status.message());
}
}  // namespace

EdgeList read_edge_list_text(const std::string& path) {
  Expected<EdgeList> result = read_edge_list_text_s(path);
  if (!result.ok()) rethrow(result.status());
  return result.take();
}

void write_edge_list_text(const std::string& path, const EdgeList& edges) {
  const Status status = write_edge_list_text_s(path, edges);
  if (!status.ok()) rethrow(status);
}

void write_csr_binary(const std::string& path, const CsrGraph& graph) {
  const Status status = write_csr_binary_s(path, graph);
  if (!status.ok()) rethrow(status);
}

CsrGraph read_csr_binary(const std::string& path) {
  Expected<CsrGraph> result = read_csr_binary_s(path);
  if (!result.ok()) rethrow(result.status());
  return result.take();
}

}  // namespace lotus::graph
