#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/checksum.hpp"
#include "util/file_io.hpp"
#include "util/memory_budget.hpp"

namespace lotus::graph {

namespace {

using util::Expected;
using util::Status;
using util::StatusCode;

constexpr std::array<char, 8> kMagic = {'L', 'O', 'T', 'U', 'S', 'G', 'R', '1'};

Status error(StatusCode code, const std::string& path, const std::string& what) {
  return {code, path + ": " + what};
}

Status io_error(const std::string& path, const std::string& what) {
  return error(StatusCode::kIoError, path, what);
}

Status bad_data(const std::string& path, const std::string& what) {
  return error(StatusCode::kInvalidArgument, path, what);
}

/// RAII FILE handle. close() reports the fclose return value (a failed
/// close after buffered writes means data loss and must not be ignored);
/// the destructor closes best-effort for early-error paths.
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (file_ != nullptr) std::fclose(file_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  [[nodiscard]] bool open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::FILE* get() const noexcept { return file_; }

  [[nodiscard]] bool close() noexcept {
    if (file_ == nullptr) return true;
    const int rc = std::fclose(file_);
    file_ = nullptr;
    return rc == 0;
  }

 private:
  std::FILE* file_ = nullptr;
};

// Exact-length transfers with EINTR/short retry and fault injection live in
// util/file_io.hpp, shared with the LotusGraph and spill serializers.
using util::fileio::read_fully;
using util::fileio::write_fully;

}  // namespace

Expected<EdgeList> read_edge_list_text_s(const std::string& path) {
  std::ifstream in(path);
  if (!in) return io_error(path, "cannot open for reading");

  EdgeList out;
  std::string line;
  std::uint64_t line_no = 0;
  VertexId max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      return bad_data(path, "malformed edge at line " + std::to_string(line_no));
    // IDs must stay strictly below 2^32 - 1: num_vertices = max ID + 1 must
    // itself fit in the 32-bit VertexId, so the all-ones ID is unusable too.
    if (u >= 0xffffffffULL || v >= 0xffffffffULL)
      return bad_data(path,
                      "vertex ID exceeds 32 bits at line " + std::to_string(line_no));
    out.edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v)});
    max_id = std::max({max_id, static_cast<VertexId>(u), static_cast<VertexId>(v)});
    any = true;
  }
  if (in.bad()) return io_error(path, "read failed");
  out.num_vertices = any ? max_id + 1 : 0;
  return out;
}

util::Status write_edge_list_text_s(const std::string& path,
                                    const EdgeList& edges) {
  std::ofstream outf(path);
  if (!outf) return io_error(path, "cannot open for writing");
  outf << "# lotus edge list: " << edges.num_vertices << " vertices, "
       << edges.edges.size() << " edges\n";
  for (const Edge& e : edges.edges) outf << e.u << ' ' << e.v << '\n';
  outf.close();
  if (!outf) return io_error(path, "write error");
  return Status::Ok();
}

util::Status write_csr_binary_s(const std::string& path, const CsrGraph& graph) {
  // Written to "<path>.tmp.<pid>.<seq>" and renamed into place after fsync,
  // so a crash or injected write failure can never leave a torn file at
  // `path`. A per-section checksum footer (util/checksum.hpp) follows the
  // payload; readers verify it on load.
  namespace cks = util::checksum;
  util::fileio::AtomicFileWriter writer(path);
  if (!writer.ok()) return writer.open_status();
  std::FILE* out = writer.file();
  const std::string& tmp = writer.temp_path();
  const std::uint64_t v = graph.num_vertices();
  const std::uint64_t e = graph.num_edges();
  unsigned char header[24];
  std::memcpy(header, kMagic.data(), 8);
  std::memcpy(header + 8, &v, 8);
  std::memcpy(header + 16, &e, 8);
  Status status = write_fully(out, header, sizeof header, tmp);
  if (status.ok())
    status = write_fully(out, graph.offsets().data(),
                         (v + 1) * sizeof(std::uint64_t), tmp);
  if (status.ok())
    status = write_fully(out, graph.neighbor_array().data(),
                         e * sizeof(VertexId), tmp);
  if (status.ok()) {
    const std::uint64_t sums[cks::kCsxSections] = {
        cks::block_checksum(header, sizeof header),
        cks::block_checksum(graph.offsets().data(),
                            (v + 1) * sizeof(std::uint64_t)),
        cks::block_checksum(graph.neighbor_array().data(),
                            e * sizeof(VertexId)),
    };
    unsigned char footer[cks::footer_bytes(cks::kCsxSections)];
    cks::write_footer(sums, cks::kCsxSections, footer);
    status = write_fully(out, footer, sizeof footer, tmp);
  }
  if (!status.ok()) return status;  // writer's destructor unlinks the temp file
  return writer.commit();
}

Expected<CsrGraph> read_csr_binary_s(const std::string& path) {
  File file(path, "rb");
  if (!file.open())
    return io_error(path, std::string("cannot open for reading: ") +
                              std::strerror(errno));
  std::FILE* in = file.get();

  std::array<char, 8> magic{};
  Status status = read_fully(in, magic.data(), magic.size(), path);
  if (!status.ok()) return status;
  if (std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0)
    return bad_data(path, "not a lotus binary graph (bad magic)");

  std::uint64_t v = 0, e = 0;
  status = read_fully(in, &v, sizeof v, path);
  if (status.ok()) status = read_fully(in, &e, sizeof e, path);
  if (!status.ok()) return status;
  if (v > 0xffffffffULL) return bad_data(path, "vertex count exceeds 32 bits");

  // Validate the declared (v, e) against the actual file size BEFORE any
  // allocation: a corrupt or hostile header must not be able to demand
  // gigabytes of memory that the file cannot possibly back.
  // tell64/seek64, not ftell/fseek: `long` is 32 bits on LLP64 and ILP32
  // platforms, so a >2 GiB graph file would otherwise report a negative or
  // wrapped size here and be rejected (or worse, mis-validated).
  constexpr std::uint64_t kHeaderBytes = 8 + 2 * sizeof(std::uint64_t);
  if (util::fileio::seek64(in, 0, SEEK_END) != 0)
    return io_error(path, "cannot determine file size");
  const std::int64_t end_pos = util::fileio::tell64(in);
  if (end_pos < 0) return io_error(path, "cannot determine file size");
  const auto file_size = static_cast<std::uint64_t>(end_pos);
  if (file_size < kHeaderBytes) return io_error(path, "truncated header");
  const std::uint64_t body_bytes = file_size - kHeaderBytes;
  // v <= 2^32, so (v + 1) * 8 cannot overflow 64 bits.
  const std::uint64_t offset_bytes = (v + 1) * sizeof(std::uint64_t);
  if (offset_bytes > body_bytes)
    return bad_data(path, "vertex count inconsistent with file size");
  // e is bounded by the division before e * 4 is ever formed, so the
  // multiplication below cannot overflow either.
  if (e > (body_bytes - offset_bytes) / sizeof(VertexId))
    return bad_data(path, "edge count inconsistent with file size");
  // The payload may be followed by a checksum footer (current writers) or
  // end exactly at the neighbors section (pre-footer files, unverified).
  namespace cks = util::checksum;
  const std::uint64_t payload_body = offset_bytes + e * sizeof(VertexId);
  constexpr std::uint64_t kFooterSize = cks::footer_bytes(cks::kCsxSections);
  const bool has_footer = body_bytes == payload_body + kFooterSize;
  if (!has_footer && body_bytes != payload_body)
    return bad_data(path, "file size does not match header");
  std::uint64_t sums[cks::kCsxSections] = {};
  if (has_footer) {
    unsigned char footer[kFooterSize];
    if (util::fileio::seek64(
            in, static_cast<std::int64_t>(kHeaderBytes + payload_body),
            SEEK_SET) != 0)
      return io_error(path, "seek failed");
    status = read_fully(in, footer, sizeof footer, path);
    if (!status.ok()) return status;
    status = cks::read_footer(footer, cks::kCsxSections, path, sums);
    if (!status.ok()) return status;
    unsigned char header[24];
    std::memcpy(header, kMagic.data(), 8);
    std::memcpy(header + 8, &v, 8);
    std::memcpy(header + 16, &e, 8);
    if (cks::block_checksum(header, sizeof header) != sums[0])
      return io_error(path, "checksum mismatch in section 'header'");
  }
  if (util::fileio::seek64(in, static_cast<std::int64_t>(kHeaderBytes),
                           SEEK_SET) != 0)
    return io_error(path, "seek failed");

  // The heap-resident load is charged to the installed memory budget (the
  // mmap path in graph/oocore.hpp pins ~no heap and is the fallback when
  // this charge is refused).
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> neighbors;
  try {
    util::charge_current(offset_bytes + e * sizeof(VertexId), "graph-load");
    offsets.resize(v + 1);
    neighbors.resize(e);
  } catch (...) {
    return util::status_from_current_exception(StatusCode::kOutOfMemory);
  }
  status = read_fully(in, offsets.data(), (v + 1) * sizeof(std::uint64_t), path);
  if (!status.ok()) return status;
  status = read_fully(in, neighbors.data(), e * sizeof(VertexId), path);
  if (!status.ok()) return status;
  if (has_footer) {
    // Streamed loads always verify eagerly: the bytes are already in the
    // heap, so hashing them costs one extra pass, no extra IO.
    const cks::Section sections[] = {
        {cks::kCsxSectionNames[1], offsets.data(), offset_bytes},
        {cks::kCsxSectionNames[2], neighbors.data(), e * sizeof(VertexId)},
    };
    status = cks::verify_sections(sections, 2, sums + 1, path);
    if (!status.ok()) return status;
  }
  if (offsets.front() != 0 || offsets.back() != e)
    return bad_data(path, "corrupt offsets");
  for (std::size_t i = 1; i < offsets.size(); ++i)
    if (offsets[i] < offsets[i - 1]) return bad_data(path, "corrupt offsets");
  for (VertexId u : neighbors)
    if (u >= v) return bad_data(path, "neighbour ID out of range");
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

namespace {
[[noreturn]] void rethrow(const Status& status) {
  throw std::runtime_error(status.message().empty() ? status.to_string()
                                                    : status.message());
}
}  // namespace

EdgeList read_edge_list_text(const std::string& path) {
  Expected<EdgeList> result = read_edge_list_text_s(path);
  if (!result.ok()) rethrow(result.status());
  return result.take();
}

void write_edge_list_text(const std::string& path, const EdgeList& edges) {
  const Status status = write_edge_list_text_s(path, edges);
  if (!status.ok()) rethrow(status);
}

void write_csr_binary(const std::string& path, const CsrGraph& graph) {
  const Status status = write_csr_binary_s(path, graph);
  if (!status.ok()) rethrow(status);
}

CsrGraph read_csr_binary(const std::string& path) {
  Expected<CsrGraph> result = read_csr_binary_s(path);
  if (!result.ok()) rethrow(result.status());
  return result.take();
}

}  // namespace lotus::graph
