// Edge-list to CSR construction.
#pragma once

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace lotus::graph {

/// Build a simple, symmetric CSR graph from an arbitrary edge list:
/// self-loops are dropped, duplicates (in either orientation) are merged,
/// both directions are stored, and every neighbour list is sorted.
CsrGraph build_undirected(const EdgeList& edges);

/// Keep only neighbours with a smaller ID (the `N^<` lists of Sec. 2.1).
/// Input must be a symmetric graph; output lists stay sorted.
OrientedCsr orient_by_id(const CsrGraph& graph);

/// Apply a relabeling: `new_id[v]` is v's ID in the result. `new_id` must be
/// a permutation of [0, V). Neighbour lists are re-sorted.
CsrGraph relabel(const CsrGraph& graph, const std::vector<VertexId>& new_id);

}  // namespace lotus::graph
