// Fundamental graph types.
//
// Vertex IDs are 32-bit (the paper notes all public datasets have < 2^32
// vertices; Sec. 4.3.2); edge offsets are 64-bit, matching the paper's CSX
// layout of 8-byte index values and 4-byte neighbour IDs (Sec. 5.1.2).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace lotus::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// An undirected edge; builders accept either orientation and symmetrize.
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Edge list plus the vertex-universe size (IDs are in [0, num_vertices)).
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;
};

}  // namespace lotus::graph
