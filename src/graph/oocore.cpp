#include "graph/oocore.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/io.hpp"

#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/file_io.hpp"
#include "util/mapguard.hpp"
#include "util/memory_budget.hpp"
#include "util/mmap_file.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace lotus::graph::oocore {

namespace {

using util::Expected;
using util::Status;
using util::StatusCode;

constexpr std::array<char, 8> kMagic = {'L', 'O', 'T', 'U', 'S', 'G', 'R', '1'};
constexpr std::uint64_t kHeaderBytes = 8 + 2 * sizeof(std::uint64_t);

Status io_error(const std::string& path, const std::string& what) {
  return {StatusCode::kIoError, path + ": " + what};
}

Status bad_data(const std::string& path, const std::string& what) {
  return {StatusCode::kInvalidArgument, path + ": " + what};
}

namespace cks = util::checksum;

/// Shared "LOTUSGR1" header validation: sizes must exactly account for the
/// file, before any allocation a hostile header could inflate. The image
/// either ends at the neighbours section (pre-footer files) or carries a
/// checksum footer (current writers); `has_footer` reports which.
Status check_csx_header(const std::string& path, std::uint64_t v, std::uint64_t e,
                        std::uint64_t file_size, bool* has_footer = nullptr) {
  if (has_footer != nullptr) *has_footer = false;
  if (v > 0xffffffffULL) return bad_data(path, "vertex count exceeds 32 bits");
  if (file_size < kHeaderBytes) return io_error(path, "truncated header");
  const std::uint64_t body_bytes = file_size - kHeaderBytes;
  const std::uint64_t offset_bytes = (v + 1) * sizeof(std::uint64_t);
  if (offset_bytes > body_bytes)
    return bad_data(path, "vertex count inconsistent with file size");
  if (e > (body_bytes - offset_bytes) / sizeof(VertexId))
    return bad_data(path, "edge count inconsistent with file size");
  const std::uint64_t payload_body = offset_bytes + e * sizeof(VertexId);
  if (payload_body + cks::footer_bytes(cks::kCsxSections) == body_bytes) {
    if (has_footer != nullptr) *has_footer = true;
    return Status::Ok();
  }
  if (payload_body != body_bytes)
    return bad_data(path, "file size does not match header");
  return Status::Ok();
}

/// Parse + verify the footer of a fully mapped/loaded CSX image whose three
/// sections live at the standard layout inside `image` (payload_bytes =
/// header + offsets + neighbours). Touches every payload byte, so mapped
/// callers wrap this in the SIGBUS guard.
Status verify_csx_image(const std::string& path, const unsigned char* image,
                        std::uint64_t payload_bytes, std::uint64_t v,
                        std::uint64_t e) {
  std::uint64_t sums[cks::kCsxSections] = {};
  Status status = cks::read_footer(image + payload_bytes, cks::kCsxSections,
                                   path, sums);
  if (!status.ok()) return status;
  const std::uint64_t offset_bytes = (v + 1) * sizeof(std::uint64_t);
  const cks::Section sections[cks::kCsxSections] = {
      {cks::kCsxSectionNames[0], image, kHeaderBytes},
      {cks::kCsxSectionNames[1], image + kHeaderBytes, offset_bytes},
      {cks::kCsxSectionNames[2], image + kHeaderBytes + offset_bytes,
       e * sizeof(VertexId)},
  };
  return cks::verify_sections(sections, cks::kCsxSections, sums, path);
}

Status check_csx_body(const std::string& path,
                      const util::ConstArray<std::uint64_t>& offsets,
                      const util::ConstArray<VertexId>& neighbors) {
  const std::uint64_t v = offsets.size() - 1;
  if (offsets.front() != 0 || offsets.back() != neighbors.size())
    return bad_data(path, "corrupt offsets");
  for (std::size_t i = 1; i < offsets.size(); ++i)
    if (offsets[i] < offsets[i - 1]) return bad_data(path, "corrupt offsets");
  for (VertexId u : neighbors)
    if (u >= v) return bad_data(path, "neighbour ID out of range");
  return Status::Ok();
}

}  // namespace

util::Expected<CsrGraph> read_csr_mapped_at_s(
    const std::shared_ptr<util::MappedFile>& file, std::uint64_t base,
    std::uint64_t size, bool validate, MapVerify verify) {
  const std::string& path = file->path();
  if (base % 8 != 0) return bad_data(path, "image offset is not 8-aligned");
  if (base > file->size() || size > file->size() - base)
    return bad_data(path, "image extends past end of file");
  if (size < kHeaderBytes) return io_error(path, "truncated header");
  const std::byte* image = file->data() + base;
  if (std::memcmp(image, kMagic.data(), kMagic.size()) != 0)
    return bad_data(path, "not a lotus binary graph (bad magic)");
  std::uint64_t v = 0, e = 0;
  std::memcpy(&v, image + 8, sizeof v);
  std::memcpy(&e, image + 16, sizeof e);
  bool has_footer = false;
  Status status = check_csx_header(path, v, e, size, &has_footer);
  if (!status.ok()) return status;

  // The validation scan below and the counting kernels both walk the body
  // in ascending order (the squared edge tiling visits vertex ranges
  // low-to-high), so ask for aggressive readahead.
  file->advise(util::MappedFile::Advice::kSequential, base, size);

  if (has_footer && verify == MapVerify::kEager) {
    // Touches every mapped payload byte, so a file truncated after mapping
    // (or a poisoned page) must surface as kIoError, not SIGBUS.
    const std::uint64_t payload_bytes =
        kHeaderBytes + (v + 1) * sizeof(std::uint64_t) + e * sizeof(VertexId);
    status = util::with_mapped_fault_guard(path, [&] {
      return verify_csx_image(
          path, reinterpret_cast<const unsigned char*>(image), payload_bytes,
          v, e);
    });
    if (!status.ok()) return status;
  }

  // Header is 24 bytes, so offsets start 8-aligned and neighbours (after
  // (v+1) u64 entries) 4-aligned — the format needs no padding to be
  // mappable.
  util::ConstArray<std::uint64_t> offsets =
      util::mapped_view<std::uint64_t>(file, base + kHeaderBytes, v + 1);
  util::ConstArray<VertexId> neighbors = util::mapped_view<VertexId>(
      file, base + kHeaderBytes + (v + 1) * sizeof(std::uint64_t), e);
  if (validate) {
    status = util::with_mapped_fault_guard(path, [&] {
      return check_csx_body(path, offsets, neighbors);
    });
    if (!status.ok()) return status;
  }
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

util::Expected<CsrGraph> read_csr_mapped_s(const std::string& path,
                                           MapVerify verify) {
  Expected<std::shared_ptr<util::MappedFile>> mapped = util::MappedFile::map(path);
  if (!mapped.ok()) return mapped.status();
  const std::shared_ptr<util::MappedFile> file = mapped.take();
  return read_csr_mapped_at_s(file, 0, file->size(), /*validate=*/true, verify);
}

util::Status write_csx_stream_s(std::FILE* out, const std::string& path,
                                const CsrGraph& graph) {
  const std::uint64_t v = graph.num_vertices();
  const std::uint64_t e = graph.num_edges();
  unsigned char header[kHeaderBytes];
  std::memcpy(header, kMagic.data(), 8);
  std::memcpy(header + 8, &v, 8);
  std::memcpy(header + 16, &e, 8);
  Status status = util::fileio::write_fully(out, header, sizeof header, path);
  if (status.ok())
    status = util::fileio::write_fully(out, graph.offsets().data(),
                                       (v + 1) * sizeof(std::uint64_t), path);
  if (status.ok())
    status = util::fileio::write_fully(out, graph.neighbor_array().data(),
                                       e * sizeof(VertexId), path);
  if (status.ok()) {
    const std::uint64_t sums[cks::kCsxSections] = {
        cks::block_checksum(header, sizeof header),
        cks::block_checksum(graph.offsets().data(),
                            (v + 1) * sizeof(std::uint64_t)),
        cks::block_checksum(graph.neighbor_array().data(),
                            e * sizeof(VertexId)),
    };
    unsigned char footer[cks::footer_bytes(cks::kCsxSections)];
    cks::write_footer(sums, cks::kCsxSections, footer);
    status = util::fileio::write_fully(out, footer, sizeof footer, path);
  }
  return status;
}

#if defined(_WIN32)

// No pread on Windows; the parallel loader degrades to the sequential
// heap-resident reader (same result, same validation).
util::Expected<CsrGraph> read_csr_binary_parallel_s(const std::string& path,
                                                    const LoaderOptions&) {
  return read_csr_binary_s(path);
}

#else

namespace {

/// O_DIRECT alignment unit: covers 512-byte and 4 KiB logical sectors.
constexpr std::uint64_t kDirectAlign = 4096;

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

/// One contiguous file range to fetch into one destination pointer.
struct Chunk {
  std::uint64_t file_off;
  std::uint64_t len;
  unsigned char* dst;
};

/// Plain positional read of [off, off+len) into dst, with EINTR retry and
/// the read_short/read_fail fault sites (mirrors util::fileio::read_fully).
Status pread_fully(int fd, unsigned char* dst, std::uint64_t len,
                   std::uint64_t off, const std::string& path) {
  while (len > 0) {
    if (util::fault::should_fail(util::fault::Site::kReadFail))
      return io_error(path, "read failed (injected I/O error)");
    std::uint64_t want = len;
    if (want > 1 && util::fault::should_fail(util::fault::Site::kReadShort))
      want /= 2;
    const ssize_t got = ::pread(fd, dst, want, static_cast<off_t>(off));
    if (got < 0) {
      if (errno == EINTR) continue;
      return io_error(path, std::string("read failed: ") + std::strerror(errno));
    }
    if (got == 0) return io_error(path, "truncated: unexpected end of file");
    dst += got;
    off += static_cast<std::uint64_t>(got);
    len -= static_cast<std::uint64_t>(got);
  }
  return Status::Ok();
}

/// Fetch one chunk, preferring the O_DIRECT descriptor with an aligned
/// bounce buffer; anything the direct path cannot serve (refused read,
/// unaligned tail, EOF remainder) is finished through the plain descriptor.
Status read_chunk(int plain_fd, int direct_fd, unsigned char* bounce,
                  std::uint64_t bounce_bytes, const Chunk& chunk,
                  const std::string& path) {
  std::uint64_t off = chunk.file_off;
  std::uint64_t remaining = chunk.len;
  unsigned char* out = chunk.dst;
  while (direct_fd >= 0 && bounce != nullptr && remaining > 0) {
    const std::uint64_t abase = off & ~(kDirectAlign - 1);
    const std::uint64_t aend =
        std::min(abase + bounce_bytes,
                 (off + remaining + kDirectAlign - 1) & ~(kDirectAlign - 1));
    const ssize_t got = ::pread(direct_fd, bounce, aend - abase,
                                static_cast<off_t>(abase));
    if (got < 0) {
      if (errno == EINTR) continue;
      break;  // EINVAL et al: this filesystem refuses O_DIRECT here — fall back
    }
    const std::uint64_t skip = off - abase;
    if (static_cast<std::uint64_t>(got) <= skip) break;  // EOF tail
    const std::uint64_t usable =
        std::min(static_cast<std::uint64_t>(got) - skip, remaining);
    std::memcpy(out, bounce + skip, usable);
    out += usable;
    off += usable;
    remaining -= usable;
    if (static_cast<std::uint64_t>(got) < aend - abase) break;  // short: near EOF
  }
  if (remaining == 0) return Status::Ok();
  return pread_fully(plain_fd, out, remaining, off, path);
}

}  // namespace

util::Expected<CsrGraph> read_csr_binary_parallel_s(const std::string& path,
                                                    const LoaderOptions& options) {
  FdCloser plain;
  plain.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (plain.fd < 0)
    return io_error(path,
                    std::string("cannot open for reading: ") + std::strerror(errno));

  std::array<unsigned char, kHeaderBytes> header{};
  Status status = pread_fully(plain.fd, header.data(), header.size(), 0, path);
  if (!status.ok()) return status;
  if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0)
    return bad_data(path, "not a lotus binary graph (bad magic)");
  std::uint64_t v = 0, e = 0;
  std::memcpy(&v, header.data() + 8, sizeof v);
  std::memcpy(&e, header.data() + 16, sizeof e);
  struct stat st {};
  if (::fstat(plain.fd, &st) != 0)
    return io_error(path, "cannot determine file size");
  bool has_footer = false;
  status = check_csx_header(path, v, e, static_cast<std::uint64_t>(st.st_size),
                            &has_footer);
  if (!status.ok()) return status;

  const std::uint64_t offset_bytes = (v + 1) * sizeof(std::uint64_t);
  const std::uint64_t neighbor_bytes = e * sizeof(VertexId);
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> neighbors;
  try {
    util::charge_current(offset_bytes + neighbor_bytes, "graph-load");
    offsets.resize(v + 1);
    neighbors.resize(e);
  } catch (...) {
    return util::status_from_current_exception(StatusCode::kOutOfMemory);
  }

  // Split the two body sections into chunk work items.
  const std::uint64_t chunk_bytes = std::max<std::uint64_t>(options.chunk_bytes, 1u << 20);
  std::vector<Chunk> chunks;
  const auto add_section = [&](std::uint64_t file_off, std::uint64_t len,
                               unsigned char* dst) {
    for (std::uint64_t pos = 0; pos < len; pos += chunk_bytes)
      chunks.push_back({file_off + pos, std::min(chunk_bytes, len - pos), dst + pos});
  };
  add_section(kHeaderBytes, offset_bytes,
              reinterpret_cast<unsigned char*>(offsets.data()));
  add_section(kHeaderBytes + offset_bytes, neighbor_bytes,
              reinterpret_cast<unsigned char*>(neighbors.data()));

  FdCloser direct;
#if defined(O_DIRECT)
  if (options.direct_io)
    direct.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_DIRECT);
#endif

  unsigned workers = options.loader_threads != 0
                         ? options.loader_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(chunks.size(), 1)));

  std::atomic<std::size_t> next{0};
  std::vector<Status> worker_status(workers);
  const auto worker = [&](unsigned w) {
    std::unique_ptr<void, decltype(&std::free)> bounce(nullptr, &std::free);
    std::uint64_t bounce_bytes = 0;
    if (direct.fd >= 0) {
      void* mem = nullptr;
      bounce_bytes = chunk_bytes + 2 * kDirectAlign;
      if (posix_memalign(&mem, kDirectAlign, bounce_bytes) == 0)
        bounce.reset(mem);
      else
        bounce_bytes = 0;  // no aligned buffer -> plain reads only
    }
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks.size()) break;
      Status s = read_chunk(plain.fd, direct.fd,
                            static_cast<unsigned char*>(bounce.get()),
                            bounce_bytes, chunks[i], path);
      if (!s.ok()) {
        worker_status[w] = std::move(s);
        break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 1; w < workers; ++w) {
    try {
      threads.emplace_back(worker, w);
    } catch (const std::system_error&) {
      break;  // thread limit: the spawned workers + caller absorb the rest
    }
  }
  worker(0);
  for (std::thread& t : threads) t.join();
  for (Status& s : worker_status)
    if (!s.ok()) return std::move(s);

  if (has_footer) {
    // Streamed (heap-resident) loads always verify eagerly; the chunks
    // arrived out of order but the assembled arrays hash sequentially.
    std::array<unsigned char, cks::footer_bytes(cks::kCsxSections)> footer{};
    status = pread_fully(plain.fd, footer.data(), footer.size(),
                         kHeaderBytes + offset_bytes + neighbor_bytes, path);
    if (!status.ok()) return status;
    std::uint64_t sums[cks::kCsxSections] = {};
    status = cks::read_footer(footer.data(), cks::kCsxSections, path, sums);
    if (!status.ok()) return status;
    const cks::Section sections[cks::kCsxSections] = {
        {cks::kCsxSectionNames[0], header.data(), header.size()},
        {cks::kCsxSectionNames[1], offsets.data(), offset_bytes},
        {cks::kCsxSectionNames[2], neighbors.data(), neighbor_bytes},
    };
    status = cks::verify_sections(sections, cks::kCsxSections, sums, path);
    if (!status.ok()) return status;
  }

  status = check_csx_body(path, offsets, neighbors);
  if (!status.ok()) return status;
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

#endif  // !defined(_WIN32)

// ---------------------------------------------------------------------------
// External-memory construction.
// ---------------------------------------------------------------------------

namespace {

/// Stream the text edge-list format of graph/io.cpp (comments with '#'/'%',
/// "u v" per line, IDs strictly below 2^32-1), invoking fn(u, v) per edge.
template <typename Fn>
Status for_each_edge(const std::string& path, Fn&& fn) {
  std::ifstream in(path);
  if (!in) return io_error(path, "cannot open for reading");
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v))
      return bad_data(path, "malformed edge at line " + std::to_string(line_no));
    if (u >= 0xffffffffULL || v >= 0xffffffffULL)
      return bad_data(path,
                      "vertex ID exceeds 32 bits at line " + std::to_string(line_no));
    Status status = fn(static_cast<VertexId>(u), static_cast<VertexId>(v));
    if (!status.ok()) return status;
  }
  if (in.bad()) return io_error(path, "read failed");
  return Status::Ok();
}

/// Coarse source-ID histogram: slot i covers IDs [i·2^16, (i+1)·2^16), which
/// spans the full 32-bit ID space in 65536 slots (a fixed 512 KiB of scan
/// state). Bucket boundaries can only fall on slot edges, so one
/// pathologically hot 2^16-ID range can still exceed the sort budget — the
/// budget is a target, not a hard guarantee (docs/OUT_OF_CORE.md).
constexpr unsigned kHistShift = 16;
constexpr std::size_t kHistSlots = std::size_t{1} << (32 - kHistShift);

struct ScanResult {
  VertexId num_vertices = 0;
  std::uint64_t arcs = 0;  // symmetrized, self-loops dropped
  std::vector<std::uint64_t> hist = std::vector<std::uint64_t>(kHistSlots, 0);
};

Status scan_edge_list(const std::string& path, ScanResult& out) {
  VertexId max_id = 0;
  bool any = false;
  Status status = for_each_edge(path, [&](VertexId u, VertexId v) {
    max_id = std::max({max_id, u, v});
    any = true;
    if (u != v) {
      out.hist[u >> kHistShift] += 1;
      out.hist[v >> kHistShift] += 1;
      out.arcs += 2;
    }
    return Status::Ok();
  });
  if (!status.ok()) return status;
  out.num_vertices = any ? max_id + 1 : 0;
  return Status::Ok();
}

/// Greedy boundary placement: each bucket takes whole histogram slots until
/// it reaches ~budget/8 arcs. boundaries[i] = first source ID of bucket i.
std::vector<VertexId> bucket_boundaries(const ScanResult& scan,
                                        std::uint64_t sort_budget_bytes) {
  const std::uint64_t target_arcs =
      std::max<std::uint64_t>(sort_budget_bytes / sizeof(Edge), 1);
  std::vector<VertexId> boundaries = {0};
  std::uint64_t in_bucket = 0;
  const std::size_t top_slot =
      scan.num_vertices == 0
          ? 0
          : (static_cast<std::size_t>(scan.num_vertices - 1) >> kHistShift) + 1;
  for (std::size_t slot = 0; slot < top_slot; ++slot) {
    if (in_bucket > 0 && in_bucket + scan.hist[slot] > target_arcs) {
      boundaries.push_back(static_cast<VertexId>(slot << kHistShift));
      in_bucket = 0;
    }
    in_bucket += scan.hist[slot];
  }
  return boundaries;
}

/// The bucket temp files, unlinked on destruction.
class BucketFiles {
 public:
  BucketFiles(std::string dir, std::size_t count) {
    const std::string prefix =
        dir + "lotus-oocore-" +
        std::to_string(static_cast<unsigned long>(
#if defined(_WIN32)
            _getpid()
#else
            getpid()
#endif
                )) +
        "-";
    paths_.reserve(count);
    files_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      paths_.push_back(prefix + std::to_string(i) + ".arcs");
      files_.push_back(std::fopen(paths_.back().c_str(), "wb"));
    }
  }

  ~BucketFiles() {
    for (std::FILE* f : files_)
      if (f != nullptr) std::fclose(f);
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

  [[nodiscard]] bool all_open() const {
    for (std::FILE* f : files_)
      if (f == nullptr) return false;
    return true;
  }

  [[nodiscard]] std::size_t count() const noexcept { return files_.size(); }
  [[nodiscard]] std::FILE* file(std::size_t i) const noexcept { return files_[i]; }
  [[nodiscard]] const std::string& path(std::size_t i) const noexcept {
    return paths_[i];
  }

  /// Flush-close all writers so the files can be reopened for reading.
  [[nodiscard]] Status close_writers() {
    for (std::size_t i = 0; i < files_.size(); ++i) {
      if (files_[i] == nullptr) continue;
      const int rc = std::fclose(files_[i]);
      files_[i] = nullptr;
      if (rc != 0)
        return io_error(paths_[i], "close failed (buffered data lost)");
    }
    return Status::Ok();
  }

 private:
  std::vector<std::string> paths_;
  std::vector<std::FILE*> files_;
};

std::string temp_dir_for(const ExternalBuildOptions& options,
                         const std::string& input_path) {
  if (!options.temp_dir.empty()) {
    std::string dir = options.temp_dir;
    if (dir.back() != '/') dir += '/';
    return dir;
  }
  const std::size_t slash = input_path.find_last_of('/');
  return slash == std::string::npos ? std::string()
                                    : input_path.substr(0, slash + 1);
}

/// The pipeline core: bucket symmetrized arcs to temp files, then per
/// bucket (in ascending source-range order) load / sort / dedup within the
/// sort budget and hand each source's unique, sorted neighbour run to
/// `emit(u, neighbors, count)` with strictly ascending u. Callers see the
/// exact arc set build_undirected would produce. `scan` is the caller's
/// completed pass-1 result for the same file.
template <typename Emit>
Status run_external_build(const std::string& path,
                          const ExternalBuildOptions& options,
                          const ScanResult& scan, Emit&& emit) {
  Status status;
  const std::uint64_t budget_bytes =
      std::max<std::uint64_t>(options.sort_budget_bytes, 1u << 20);

  const std::vector<VertexId> boundaries = bucket_boundaries(scan, budget_bytes);
  BucketFiles buckets(temp_dir_for(options, path), boundaries.size());
  if (!buckets.all_open())
    return io_error(path, "cannot create bucket temp files");
  const auto bucket_of = [&](VertexId u) {
    return static_cast<std::size_t>(
        std::upper_bound(boundaries.begin(), boundaries.end(), u) -
        boundaries.begin() - 1);
  };

  // Pass 2: scatter symmetrized arcs to their source-range bucket.
  status = for_each_edge(path, [&](VertexId u, VertexId v) {
    if (u == v) return Status::Ok();
    const std::array<Edge, 2> arcs = {Edge{u, v}, Edge{v, u}};
    for (const Edge& a : arcs) {
      const std::size_t b = bucket_of(a.u);
      Status s = util::fileio::write_fully(buckets.file(b), &a, sizeof a,
                                           buckets.path(b));
      if (!s.ok()) return s;
    }
    return Status::Ok();
  });
  if (!status.ok()) return status;
  status = buckets.close_writers();
  if (!status.ok()) return status;

  // Per bucket: load, sort by (u, v), dedup, emit per-source runs.
  std::vector<Edge> arcs;
  for (std::size_t b = 0; b < buckets.count(); ++b) {
    std::FILE* in = std::fopen(buckets.path(b).c_str(), "rb");
    if (in == nullptr)
      return io_error(buckets.path(b), "cannot reopen bucket file");
    if (util::fileio::seek64(in, 0, SEEK_END) != 0 ||
        util::fileio::tell64(in) < 0) {
      std::fclose(in);
      return io_error(buckets.path(b), "cannot determine bucket size");
    }
    const auto bytes = static_cast<std::uint64_t>(util::fileio::tell64(in));
    if (bytes % sizeof(Edge) != 0) {
      std::fclose(in);
      return io_error(buckets.path(b), "bucket file size is not a record multiple");
    }
    if (util::fileio::seek64(in, 0, SEEK_SET) != 0) {
      std::fclose(in);
      return io_error(buckets.path(b), "seek failed");
    }
    util::MemoryBudget* budget = util::current_memory_budget();
    try {
      util::charge_current(bytes, "external-sort");
      arcs.resize(bytes / sizeof(Edge));
    } catch (...) {
      std::fclose(in);
      return util::status_from_current_exception(StatusCode::kOutOfMemory);
    }
    status = util::fileio::read_fully(in, arcs.data(), bytes, buckets.path(b));
    std::fclose(in);
    if (!status.ok()) return status;

    std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& c) {
      return a.u != c.u ? a.u < c.u : a.v < c.v;
    });
    std::vector<VertexId> row;
    for (std::size_t i = 0; i < arcs.size();) {
      const VertexId u = arcs[i].u;
      std::size_t j = i;
      row.clear();
      for (; j < arcs.size() && arcs[j].u == u; ++j)
        if (row.empty() || arcs[j].v != row.back()) row.push_back(arcs[j].v);
      status = emit(u, row.data(), row.size());
      if (!status.ok()) return status;
      i = j;
    }
    // The bucket scratch is transient; hand the bytes back so the next
    // bucket (and the caller's result arrays) can use them.
    if (budget != nullptr) budget->release(bytes);
  }
  return Status::Ok();
}

}  // namespace

util::Expected<CsrGraph> build_undirected_external_s(
    const std::string& edge_list_path, const ExternalBuildOptions& options) {
  ScanResult scan;
  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> neighbors;
  VertexId next_row = 0;
  Status status = scan_edge_list(edge_list_path, scan);
  if (!status.ok()) return status;
  try {
    offsets.assign(1, 0);
    offsets.reserve(static_cast<std::size_t>(scan.num_vertices) + 1);
  } catch (...) {
    return util::status_from_current_exception(StatusCode::kOutOfMemory);
  }

  status = run_external_build(
      edge_list_path, options, scan,
      [&](VertexId u, const VertexId* vs, std::size_t count) -> Status {
        try {
          for (; next_row < u; ++next_row) offsets.push_back(neighbors.size());
          neighbors.insert(neighbors.end(), vs, vs + count);
          offsets.push_back(neighbors.size());
          ++next_row;
          return Status::Ok();
        } catch (...) {
          return util::status_from_current_exception(StatusCode::kOutOfMemory);
        }
      });
  if (!status.ok()) return status;
  try {
    for (; next_row < scan.num_vertices; ++next_row)
      offsets.push_back(neighbors.size());
  } catch (...) {
    return util::status_from_current_exception(StatusCode::kOutOfMemory);
  }
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

util::Status build_csx_file_external_s(const std::string& edge_list_path,
                                       const std::string& out_path,
                                       const ExternalBuildOptions& options) {
  ScanResult scan;
  Status status = scan_edge_list(edge_list_path, scan);
  if (!status.ok()) return status;
  const std::uint64_t n = scan.num_vertices;

  util::fileio::AtomicFileWriter writer(out_path);
  if (!writer.ok()) return writer.open_status();
  std::FILE* out = writer.file();
  const std::string& tmp = writer.temp_path();

  // Degrees are the only per-vertex state held in memory: (n+1) u64. The
  // charge is transient — released on every exit path, since nothing of it
  // escapes to the caller.
  std::vector<std::uint64_t> offsets;
  const std::uint64_t offsets_bytes = (n + 1) * sizeof(std::uint64_t);
  try {
    util::charge_current(offsets_bytes, "external-sort");
    offsets.assign(n + 1, 0);
  } catch (...) {
    return util::status_from_current_exception(StatusCode::kOutOfMemory);
  }
  struct Release {
    util::MemoryBudget* budget;
    std::uint64_t bytes;
    ~Release() {
      if (budget != nullptr) budget->release(bytes);
    }
  } release{util::current_memory_budget(), offsets_bytes};

  // Neighbours stream to their final location; the header + offset section
  // is back-filled once all degrees are known. Writing past the current end
  // leaves a hole that the back-fill plugs before commit.
  const std::uint64_t neighbors_start =
      kHeaderBytes + (n + 1) * sizeof(std::uint64_t);
  if (util::fileio::seek64(out, static_cast<std::int64_t>(neighbors_start),
                           SEEK_SET) != 0)
    return io_error(tmp, "seek failed");

  // The neighbours section checksum accumulates as the stream goes by; the
  // header and offsets sums are computed from memory before the back-fill.
  std::uint64_t total_edges = 0;
  cks::Checksummer neighbor_sum;
  status = run_external_build(
      edge_list_path, options, scan,
      [&](VertexId u, const VertexId* vs, std::size_t count) -> Status {
        offsets[u + 1] = count;
        total_edges += count;
        neighbor_sum.update(vs, count * sizeof(VertexId));
        return util::fileio::write_fully(out, vs, count * sizeof(VertexId), tmp);
      });
  if (!status.ok()) return status;

  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  unsigned char header[kHeaderBytes];
  std::memcpy(header, kMagic.data(), 8);
  std::memcpy(header + 8, &n, 8);
  std::memcpy(header + 16, &total_edges, 8);
  // The file position sits at the end of the neighbours stream — exactly
  // where the footer belongs; write it before seeking back for the
  // header/offsets back-fill.
  {
    const std::uint64_t sums[cks::kCsxSections] = {
        cks::block_checksum(header, sizeof header),
        cks::block_checksum(offsets.data(),
                            offsets.size() * sizeof(std::uint64_t)),
        neighbor_sum.digest(),
    };
    unsigned char footer[cks::footer_bytes(cks::kCsxSections)];
    cks::write_footer(sums, cks::kCsxSections, footer);
    status = util::fileio::write_fully(out, footer, sizeof footer, tmp);
    if (!status.ok()) return status;
  }
  if (util::fileio::seek64(out, 0, SEEK_SET) != 0)
    return io_error(tmp, "seek failed");
  status = util::fileio::write_fully(out, header, sizeof header, tmp);
  if (status.ok())
    status = util::fileio::write_fully(out, offsets.data(),
                                       offsets.size() * sizeof(std::uint64_t), tmp);
  if (!status.ok()) return status;
  return writer.commit();
}

}  // namespace lotus::graph::oocore
