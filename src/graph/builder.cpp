#include "graph/builder.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace lotus::graph {

namespace {

/// Counting-sort scatter of directed arcs into CSR arrays.
CsrGraph scatter_to_csr(VertexId num_vertices,
                        const std::vector<Edge>& arcs) {
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& a : arcs) ++offsets[a.u + 1];
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<VertexId> neighbors(arcs.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& a : arcs) neighbors[cursor[a.u]++] = a.v;

  // Sort each neighbour list; dedup is done by the caller where needed.
  parallel::parallel_for(0, num_vertices, 1024,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t v = b; v < e; ++v)
          std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                    neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
      });
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace

CsrGraph build_undirected(const EdgeList& edges) {
  for (const Edge& e : edges.edges)
    if (e.u >= edges.num_vertices || e.v >= edges.num_vertices)
      throw std::invalid_argument("edge endpoint out of range");

  // Symmetrize, dropping self-loops.
  std::vector<Edge> arcs;
  arcs.reserve(edges.edges.size() * 2);
  for (const Edge& e : edges.edges) {
    if (e.u == e.v) continue;
    arcs.push_back({e.u, e.v});
    arcs.push_back({e.v, e.u});
  }

  CsrGraph with_dups = scatter_to_csr(edges.num_vertices, arcs);

  // Rebuild without duplicate entries (lists are already sorted).
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(edges.num_vertices) + 1, 0);
  for (VertexId v = 0; v < edges.num_vertices; ++v) {
    auto ns = with_dups.neighbors(v);
    std::uint64_t unique = 0;
    for (std::size_t i = 0; i < ns.size(); ++i)
      if (i == 0 || ns[i] != ns[i - 1]) ++unique;
    offsets[v + 1] = unique;
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<VertexId> neighbors(offsets.back());
  parallel::parallel_for(0, edges.num_vertices, 1024,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t v = b; v < e; ++v) {
          auto ns = with_dups.neighbors(static_cast<VertexId>(v));
          std::uint64_t out = offsets[v];
          for (std::size_t i = 0; i < ns.size(); ++i)
            if (i == 0 || ns[i] != ns[i - 1]) neighbors[out++] = ns[i];
        }
      });
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

OrientedCsr orient_by_id(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    auto ns = graph.neighbors(v);
    // Lists are sorted, so lower neighbours form a prefix.
    offsets[v + 1] = static_cast<std::uint64_t>(
        std::lower_bound(ns.begin(), ns.end(), v) - ns.begin());
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<VertexId> neighbors(offsets.back());
  parallel::parallel_for(0, n, 1024,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t v = b; v < e; ++v) {
          auto ns = graph.neighbors(static_cast<VertexId>(v));
          std::uint64_t out = offsets[v];
          for (VertexId u : ns) {
            if (u >= v) break;
            neighbors[out++] = u;
          }
        }
      });
  return OrientedCsr(std::move(offsets), std::move(neighbors));
}

CsrGraph relabel(const CsrGraph& graph, const std::vector<VertexId>& new_id) {
  const VertexId n = graph.num_vertices();
  if (new_id.size() != n) throw std::invalid_argument("relabel: size mismatch");

  std::vector<VertexId> old_of_new(n);
  for (VertexId v = 0; v < n; ++v) {
    if (new_id[v] >= n) throw std::invalid_argument("relabel: id out of range");
    old_of_new[new_id[v]] = v;
  }

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId w = 0; w < n; ++w) offsets[w + 1] = graph.degree(old_of_new[w]);
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());

  std::vector<VertexId> neighbors(offsets.back());
  parallel::parallel_for(0, n, 1024,
      [&](unsigned, std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t w = b; w < e; ++w) {
          auto ns = graph.neighbors(old_of_new[w]);
          std::uint64_t out = offsets[w];
          for (VertexId u : ns) neighbors[out++] = new_id[u];
          std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[w]),
                    neighbors.begin() + static_cast<std::ptrdiff_t>(out));
        }
      });
  return CsrGraph(std::move(offsets), std::move(neighbors));
}

}  // namespace lotus::graph
