// Implementation of the serving-telemetry layer (see telemetry.hpp).
#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"

namespace lotus::obs {

namespace {

/// Shard assignment: each recording thread gets a stable shard index from a
/// round-robin counter the first time it records. Drivers therefore never
/// contend on the same cache lines unless there are more than kShards of
/// them (in which case increments still stay correct, just slower).
std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Telemetry::kShards;
  return shard;
}

/// Shortest round-trippable representation for Prometheus sample values.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return std::string(buf);
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) noexcept {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  unsigned octave = static_cast<unsigned>(std::bit_width(ns)) - 1u;
  if (octave > kMaxOctave) {
    octave = kMaxOctave;
    ns = (std::uint64_t{1} << (kMaxOctave + 1)) - 1;  // saturate to top bucket
  }
  const std::uint64_t sub =
      (ns >> (octave - kSubBucketBits)) & (kSubBuckets - 1);
  return (static_cast<std::size_t>(octave) - kSubBucketBits + 1) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_lower_ns(std::size_t bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;
  const unsigned octave = static_cast<unsigned>(bucket / kSubBuckets) +
                          kSubBucketBits - 1u;
  const std::uint64_t sub = bucket % kSubBuckets;
  return (std::uint64_t{1} << octave) + (sub << (octave - kSubBucketBits));
}

std::uint64_t LatencyHistogram::bucket_upper_ns(std::size_t bucket) noexcept {
  if (bucket + 1 >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
  return bucket_lower_ns(bucket + 1);
}

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  ++bins_[bucket_index(ns)];
  ++count_;
  sum_ns_ += ns;
}

void LatencyHistogram::add_bin(std::size_t bucket, std::uint64_t n) noexcept {
  bins_[bucket] += n;
  count_ += n;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

LatencyHistogram LatencyHistogram::delta(const LatencyHistogram& newer,
                                         const LatencyHistogram& older) noexcept {
  LatencyHistogram out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = newer.bins_[i];
    const std::uint64_t o = older.bins_[i];
    const std::uint64_t d = n > o ? n - o : 0;
    out.bins_[i] = d;
    out.count_ += d;
  }
  out.sum_ns_ =
      newer.sum_ns_ > older.sum_ns_ ? newer.sum_ns_ - older.sum_ns_ : 0;
  return out;
}

double LatencyHistogram::quantile_ns(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 0-based rank of the order statistic we estimate.
  const auto rank = std::min<std::uint64_t>(
      count_ - 1, static_cast<std::uint64_t>(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += bins_[i];
    if (cumulative > rank) {
      const std::uint64_t lower = bucket_lower_ns(i);
      if (i + 1 >= kBuckets) return static_cast<double>(lower);  // saturated
      const std::uint64_t upper = bucket_upper_ns(i);
      return static_cast<double>(lower) +
             static_cast<double>(upper - lower) * 0.5;
    }
  }
  return 0.0;  // unreachable when count_ > 0
}

// ---------------------------------------------------------------------------
// Dimensions
// ---------------------------------------------------------------------------

const char* query_stage_name(QueryStage stage) noexcept {
  switch (stage) {
    case QueryStage::kQueue:
      return "queue";
    case QueryStage::kPrepare:
      return "prepare";
    case QueryStage::kCount:
      return "count";
    case QueryStage::kTotal:
      return "total";
  }
  return "unknown";
}

const char* cache_outcome_name(CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::kUncached:
      return "uncached";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kRemap:
      return "remap";
    case CacheOutcome::kHeal:
      return "heal";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RollingWindow
// ---------------------------------------------------------------------------

RollingWindow::RollingWindow(double window_s, std::size_t slots)
    : window_s_(window_s > 0.0 ? window_s : 60.0),
      slot_s_(window_s_ / static_cast<double>(slots > 0 ? slots : 1)) {}

bool RollingWindow::due(double now_s) const noexcept {
  return ring_.empty() || now_s - ring_.back().at_s >= slot_s_;
}

double RollingWindow::next_due_s() const noexcept {
  return ring_.empty() ? 0.0 : ring_.back().at_s + slot_s_;
}

void RollingWindow::advance(double now_s, std::uint64_t completed,
                            const LatencyHistogram& cumulative) {
  if (!due(now_s)) return;
  ring_.push_back(Slot{now_s, completed, cumulative});
  // Expire slots that fell out of the window, but always keep one baseline
  // at or beyond the window edge so stats() can span the full window.
  while (ring_.size() > 1 && ring_[1].at_s <= now_s - window_s_)
    ring_.pop_front();
}

RollingWindow::Stats RollingWindow::stats(
    double now_s, std::uint64_t completed,
    const LatencyHistogram& cumulative) const {
  Stats out;
  if (ring_.empty()) {
    // No baseline yet: the whole lifetime is the window.
    out.span_s = now_s;
    out.queries = completed;
    out.hist = cumulative;
  } else {
    const Slot& base = ring_.front();
    out.span_s = now_s - base.at_s;
    out.queries = completed > base.completed ? completed - base.completed : 0;
    out.hist = LatencyHistogram::delta(cumulative, base.hist);
  }
  out.qps = out.span_s > 0.0
                ? static_cast<double>(out.queries) / out.span_s
                : 0.0;
  return out;
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

Telemetry::Telemetry(TelemetryOptions options,
                     std::vector<std::string> algorithm_labels,
                     std::vector<std::string> analytic_labels)
    : options_(std::move(options)),
      labels_(std::move(algorithm_labels)),
      analytic_labels_(std::move(analytic_labels)),
      cells_(options_.enabled
                 ? static_cast<std::size_t>(kShards) * series_count() *
                       kCellsPerSeries
                 : 0),
      window_(options_.window_s) {
  if (!options_.enabled) return;
  // Seed the window with a zero baseline at t=0 so the first real slot has
  // something to delta against.
  window_.advance(0.0, 0, LatencyHistogram{});
  next_rotation_s_.store(window_.next_due_s(), std::memory_order_relaxed);
  if (!options_.query_log_path.empty() && options_.query_log_sample > 0) {
    log_.open(options_.query_log_path, std::ios::app);
    if (!log_.is_open()) log_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Telemetry::bump(std::size_t shard, std::size_t series,
                     std::uint64_t ns) noexcept {
  const std::size_t base =
      (shard * series_count() + series) * kCellsPerSeries;
  // Release pairs with the acquire loads in merge_series(): any bin value a
  // snapshot observes makes the recorded_ increment sequenced before it
  // visible too, so merged counts never run ahead of queries_recorded (free
  // on x86; one barrier flavor change on ARM).
  cells_[base + LatencyHistogram::bucket_index(ns)].fetch_add(
      1, std::memory_order_release);
  cells_[base + LatencyHistogram::kBuckets].fetch_add(
      ns, std::memory_order_release);
}

std::uint64_t Telemetry::record(const QuerySample& sample) {
  if (!options_.enabled) return 0;
  const std::uint64_t id =
      recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t shard = this_thread_shard();
  // Out-of-range indices route to the reserved "unknown" row at
  // labels_.size() instead of silently riding on the last real label.
  const std::size_t algorithm = std::min(sample.algorithm, labels_.size());

  const std::uint64_t by_stage[kNumQueryStages] = {
      sample.queue_ns, sample.prepare_ns, sample.count_ns, sample.total_ns};
  for (std::size_t s = 0; s < kNumQueryStages; ++s) {
    const auto stage = static_cast<QueryStage>(s);
    bump(shard, algo_series(algorithm, stage), by_stage[s]);
    bump(shard, outcome_series(sample.outcome, stage), by_stage[s]);
    if (num_analytic_rows() != 0) {
      const std::size_t analytic =
          std::min(sample.analytic, analytic_labels_.size());
      bump(shard, analytic_series(analytic, stage), by_stage[s]);
    }
  }
  bump(shard, aggregate_series(), sample.total_ns);

  if (sample.deadline_missed)
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);

  // Lazy window rotation. window_ is only ever touched under window_mutex_;
  // the steady-state check reads the cached next-rotation timestamp
  // lock-free, and try-lock means a concurrent snapshot() or another
  // rotating driver never blocks this one.
  const double now_s = clock_.elapsed_s();
  if (now_s >= next_rotation_s_.load(std::memory_order_relaxed)) {
    std::unique_lock<std::mutex> lock(window_mutex_, std::try_to_lock);
    if (lock.owns_lock()) {
      if (window_.due(now_s)) {
        window_.advance(now_s, recorded_.load(std::memory_order_relaxed),
                        merge_series(aggregate_series()));
      }
      next_rotation_s_.store(window_.next_due_s(), std::memory_order_relaxed);
    }
  }

  if (log_.is_open() && options_.query_log_sample > 0 &&
      (id - 1) % options_.query_log_sample == 0) {
    write_log_line(id, sample);
  }
  return id;
}

LatencyHistogram Telemetry::merge_series(std::size_t series) const {
  LatencyHistogram out;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    const std::size_t base =
        (shard * series_count() + series) * kCellsPerSeries;
    // Acquire pairs with the release fetch_adds in bump() (see there).
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t n =
          cells_[base + b].load(std::memory_order_acquire);
      if (n != 0) out.add_bin(b, n);
    }
    out.add_sum_ns(cells_[base + LatencyHistogram::kBuckets].load(
        std::memory_order_acquire));
  }
  return out;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot out;
  out.enabled = options_.enabled;
  out.window_span_s = options_.window_s;
  if (!options_.enabled) return out;

  // Every label row plus the trailing reserved "unknown" row (which only
  // surfaces if an out-of-range algorithm index was ever recorded).
  for (std::size_t a = 0; a < num_algo_rows(); ++a) {
    for (std::size_t s = 0; s < kNumQueryStages; ++s) {
      const auto stage = static_cast<QueryStage>(s);
      LatencyHistogram hist = merge_series(algo_series(a, stage));
      if (hist.empty()) continue;
      out.algorithms.push_back(SeriesSnapshot{
          a < labels_.size() ? labels_[a] : std::string("unknown"), stage,
          hist});
    }
  }
  for (std::size_t o = 0; o < kNumCacheOutcomes; ++o) {
    const auto outcome = static_cast<CacheOutcome>(o);
    for (std::size_t s = 0; s < kNumQueryStages; ++s) {
      const auto stage = static_cast<QueryStage>(s);
      LatencyHistogram hist = merge_series(outcome_series(outcome, stage));
      if (hist.empty()) continue;
      out.outcomes.push_back(
          SeriesSnapshot{cache_outcome_name(outcome), stage, hist});
    }
  }

  for (std::size_t a = 0; a < num_analytic_rows(); ++a) {
    for (std::size_t s = 0; s < kNumQueryStages; ++s) {
      const auto stage = static_cast<QueryStage>(s);
      LatencyHistogram hist = merge_series(analytic_series(a, stage));
      if (hist.empty()) continue;
      out.analytics.push_back(SeriesSnapshot{
          a < analytic_labels_.size() ? analytic_labels_[a]
                                      : std::string("unknown"),
          stage, hist});
    }
  }

  // Counters are read *after* the series merges: record() bumps recorded_
  // before its release-ordered bin increments, and the acquire loads above
  // make that increment visible here, so a merged series count never lands
  // ahead of queries_recorded in a snapshot — on weakly-ordered targets
  // too, not just x86 TSO (cross-bin skew between series remains possible
  // and is documented).
  out.queries_recorded = recorded_.load(std::memory_order_relaxed);
  out.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  out.query_log_lines = log_lines_.load(std::memory_order_relaxed);
  out.query_log_failures = log_failures_.load(std::memory_order_relaxed);

  const double now_s = clock_.elapsed_s();
  out.uptime_s = now_s;
  const LatencyHistogram cumulative = merge_series(aggregate_series());
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    const_cast<RollingWindow&>(window_).advance(now_s, out.queries_recorded,
                                                cumulative);
    next_rotation_s_.store(window_.next_due_s(), std::memory_order_relaxed);
    out.window = window_.stats(now_s, out.queries_recorded, cumulative);
  }
  return out;
}

void Telemetry::log_event(std::string_view kind, std::string_view detail) {
  if (!options_.enabled || !log_.is_open()) return;
  JsonValue line;
  line.set("event", std::string(kind));
  line.set("detail", std::string(detail));
  const std::string text = line.dump(-1);

  std::lock_guard<std::mutex> lock(log_mutex_);
  log_ << text << '\n';
  log_.flush();
  if (log_.good()) {
    log_lines_.fetch_add(1, std::memory_order_relaxed);
  } else {
    log_failures_.fetch_add(1, std::memory_order_relaxed);
    log_.clear();
  }
}

void Telemetry::write_log_line(std::uint64_t id, const QuerySample& sample) {
  JsonValue line;
  line.set("query_id", id);
  line.set("algorithm", sample.algorithm < labels_.size()
                            ? labels_[sample.algorithm]
                            : std::string("unknown"));
  if (!analytic_labels_.empty())
    line.set("analytic", sample.analytic < analytic_labels_.size()
                             ? analytic_labels_[sample.analytic]
                             : std::string("unknown"));
  line.set("graph_key", std::string(sample.graph_key));
  line.set("threads", static_cast<std::uint64_t>(sample.threads));
  line.set("cache_outcome", std::string(cache_outcome_name(sample.outcome)));
  line.set("status", std::string(sample.status));
  line.set("deadline_miss", sample.deadline_missed);
  line.set("queue_s", static_cast<double>(sample.queue_ns) * 1e-9);
  line.set("prepare_s", static_cast<double>(sample.prepare_ns) * 1e-9);
  line.set("count_s", static_cast<double>(sample.count_ns) * 1e-9);
  line.set("total_s", static_cast<double>(sample.total_ns) * 1e-9);
  const std::string text = line.dump(-1);

  std::lock_guard<std::mutex> lock(log_mutex_);
  log_ << text << '\n';
  log_.flush();
  if (log_.good()) {
    log_lines_.fetch_add(1, std::memory_order_relaxed);
  } else {
    log_failures_.fetch_add(1, std::memory_order_relaxed);
    log_.clear();
  }
}

// ---------------------------------------------------------------------------
// PrometheusWriter
// ---------------------------------------------------------------------------

std::string PrometheusWriter::escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void PrometheusWriter::header(const std::string& name, const std::string& help,
                              const char* type) {
  if (!declared_.insert(name).second) return;
  std::string escaped_help;
  escaped_help.reserve(help.size());
  for (const char c : help) {
    if (c == '\\')
      escaped_help += "\\\\";
    else if (c == '\n')
      escaped_help += "\\n";
    else
      escaped_help += c;
  }
  out_ += "# HELP " + name + " " + escaped_help + "\n";
  out_ += "# TYPE " + name + " ";
  out_ += type;
  out_ += "\n";
}

void PrometheusWriter::sample(const std::string& name,
                              const std::string& suffix, const Labels& labels,
                              const std::string& value) {
  out_ += name;
  out_ += suffix;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const auto& [key, val] : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += key;
      out_ += "=\"";
      out_ += escape_label_value(val);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  out_ += value;
  out_ += '\n';
}

void PrometheusWriter::counter(const std::string& name, const std::string& help,
                               std::uint64_t value, const Labels& labels) {
  header(name, help, "counter");
  sample(name, "", labels, std::to_string(value));
}

void PrometheusWriter::gauge(const std::string& name, const std::string& help,
                             double value, const Labels& labels) {
  header(name, help, "gauge");
  sample(name, "", labels, fmt_double(value));
}

void PrometheusWriter::histogram(const std::string& name,
                                 const std::string& help, const Labels& labels,
                                 const LatencyHistogram& hist) {
  header(name, help, "histogram");
  std::uint64_t cumulative = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t n = hist.bins()[b];
    if (n == 0) continue;
    cumulative += n;
    // `le` is inclusive in the exposition format while bucket_upper_ns()
    // is exclusive; durations are integer nanoseconds, so the inclusive
    // bound of [lower, upper) is upper - 1.
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(b);
    bucket_labels.back().second =
        upper == std::numeric_limits<std::uint64_t>::max()
            ? "+Inf"
            : fmt_double(static_cast<double>(upper - 1) * 1e-9);
    if (bucket_labels.back().second != "+Inf")
      sample(name, "_bucket", bucket_labels, std::to_string(cumulative));
  }
  bucket_labels.back().second = "+Inf";
  sample(name, "_bucket", bucket_labels, std::to_string(hist.count()));
  sample(name, "_sum", labels, fmt_double(hist.sum_s()));
  sample(name, "_count", labels, std::to_string(hist.count()));
}

}  // namespace lotus::obs
