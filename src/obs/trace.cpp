#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace lotus::obs {

double trace_clock_s() {
  // The epoch is anchored at the first call; every tracer constructor and
  // scheduler event goes through here, so all share one timebase.
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}

std::size_t PhaseTracer::begin(std::string name) {
  Span span;
  span.name = std::move(name);
  span.start_s = clock_.elapsed_s();
  span.parent = open_stack_.empty() ? npos : open_stack_.back();
  span.depth = open_stack_.empty()
                   ? 0u
                   : spans_[open_stack_.back()].depth + 1u;
  span.open = true;
  const std::size_t id = spans_.size();
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  OpenSample sample;
  if (provider_ != nullptr) {
    sample.counts = provider_->read();
    sample.sampled = true;
  }
  open_samples_.push_back(std::move(sample));
  return id;
}

void PhaseTracer::end() {
  if (open_stack_.empty()) return;
  Span& span = spans_[open_stack_.back()];
  span.seconds = clock_.elapsed_s() - span.start_s;
  span.open = false;
  const OpenSample& sample = open_samples_.back();
  if (sample.sampled && provider_ != nullptr) {
    span.events = provider_->read() - sample.counts;
    span.has_events = true;
  }
  open_stack_.pop_back();
  open_samples_.pop_back();
}

std::size_t PhaseTracer::leaf(std::string name, double seconds) {
  Span span;
  span.name = std::move(name);
  span.seconds = std::max(0.0, seconds);
  // Best-effort start: the measured interval just finished.
  span.start_s = std::max(0.0, clock_.elapsed_s() - span.seconds);
  span.parent = open_stack_.empty() ? npos : open_stack_.back();
  span.depth = open_stack_.empty()
                   ? 0u
                   : spans_[open_stack_.back()].depth + 1u;
  span.open = false;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void PhaseTracer::note(std::string key, std::string value) {
  Span* target = nullptr;
  if (!open_stack_.empty())
    target = &spans_[open_stack_.back()];
  else if (!spans_.empty())
    target = &spans_.back();
  if (target == nullptr) return;
  target->notes.emplace_back(std::move(key), std::move(value));
}

bool PhaseTracer::set_events(std::string_view name, const EventCounts& delta) {
  for (Span& span : spans_) {
    if (span.name == name) {
      span.events = delta;
      span.has_events = true;
      return true;
    }
  }
  return false;
}

const PhaseTracer::Span* PhaseTracer::find(std::string_view name) const noexcept {
  for (const Span& span : spans_)
    if (span.name == name) return &span;
  return nullptr;
}

double PhaseTracer::total_s(std::string_view name) const noexcept {
  double total = 0.0;
  for (const Span& span : spans_)
    if (span.name == name) total += span.seconds;
  return total;
}

std::vector<std::size_t> PhaseTracer::children(std::size_t id) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < spans_.size(); ++i)
    if (spans_[i].parent == id) out.push_back(i);
  return out;
}

}  // namespace lotus::obs
