// PhaseTracer: a named, nestable span tree with wall times and metadata.
//
// This is the structured replacement for the ad-hoc util::Timer pairs the
// benches used to carry: code brackets a region with begin()/end() (or a
// ScopedSpan), spans nest to form the preprocess → relabel/partition/serialize
// and count → hhh_hhn/hnn/nnn trees of the paper's Fig.-6 breakdown, and each
// span can carry key/value notes (triangle counts, hub counts, ...).
//
// Overhead: a span is one steady_clock read at begin and one at end plus a
// vector push — nanoseconds against the millisecond-scale phases it brackets.
// Tracing is opt-in per call site: every instrumented function takes a
// `PhaseTracer*` defaulting to nullptr, and a null tracer costs one pointer
// test (ScopedSpan does the check). Tracing is NOT affected by the LOTUS_OBS
// macro; only the counters are (obs/counters.hpp).
//
// Hardware events: attach an EventProvider (obs/hwc.hpp) via
// set_event_provider and every subsequently opened span samples it at
// begin/end, carrying the per-span event deltas of the paper's Figs. 4-5.
// set_events() grafts externally measured deltas (the simcache replay path)
// onto existing spans by name.
//
// Thread-safety: a PhaseTracer is single-threaded by design — one tracer
// belongs to the orchestrating thread of a run; parallel kernels report via
// the per-thread counters instead. Concurrent begin/end on one tracer is a
// data race. (EventProvider::read() itself is thread-safe.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/hwc.hpp"
#include "util/format.hpp"
#include "util/timer.hpp"

namespace lotus::obs {

/// Seconds since the process-wide trace epoch (a steady clock anchored at
/// first use). PhaseTracer spans and the scheduler's trace events
/// (obs/trace_export.hpp) share this timebase so exported timelines align.
[[nodiscard]] double trace_clock_s();

class PhaseTracer {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  struct Span {
    std::string name;
    double start_s = 0.0;    // offset from tracer construction
    double seconds = 0.0;    // duration (valid once closed)
    std::size_t parent = npos;
    unsigned depth = 0;      // 0 = root
    bool open = false;
    std::vector<std::pair<std::string, std::string>> notes;
    bool has_events = false;  // true once an event delta was recorded
    EventCounts events;       // hardware/simulated event delta over the span
  };

  /// Open a span nested under the innermost open span; returns its id
  /// (index into spans(), stable for the tracer's lifetime).
  std::size_t begin(std::string name);

  /// Close the innermost open span. No-op if none is open.
  void end();

  /// Record an already-timed child span of the innermost open span (used to
  /// graft externally measured durations, e.g. baseline phase timings).
  std::size_t leaf(std::string name, double seconds);

  /// Attach metadata to the innermost open span, or to the most recently
  /// created span when none is open. Dropped if there are no spans.
  void note(std::string key, std::string value);
  void note(std::string key, std::uint64_t value) {
    note(std::move(key), std::to_string(value));
  }
  void note(std::string key, double value) {
    note(std::move(key), util::fixed(value, 6));
  }

  /// All spans in begin() order (parents precede their children).
  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }

  /// First span with this name, in begin() order; nullptr if absent.
  [[nodiscard]] const Span* find(std::string_view name) const noexcept;

  /// Sum of `seconds` over all spans with this name (phases may repeat).
  [[nodiscard]] double total_s(std::string_view name) const noexcept;

  /// Ids of the direct children of span `id` (npos → roots), in order.
  [[nodiscard]] std::vector<std::size_t> children(std::size_t id) const;

  /// Seconds since the tracer was constructed.
  [[nodiscard]] double elapsed_s() const { return clock_.elapsed_s(); }

  /// Construction time of this tracer on the trace_clock_s() timebase; add
  /// it to a span's start_s to place the span on the shared timeline.
  [[nodiscard]] double epoch_s() const noexcept { return epoch_s_; }

  /// Attach (or detach, with nullptr) an event provider. Spans opened while
  /// a provider is attached sample it at begin and end and record the delta
  /// (Span::events). Affects only spans begun after the call; the provider
  /// must outlive every span it is sampled for.
  void set_event_provider(EventProvider* provider) noexcept { provider_ = provider; }

  /// Graft an externally measured event delta onto the first span named
  /// `name` (the simcache replay attribution path). Returns false and drops
  /// the delta when no such span exists.
  bool set_events(std::string_view name, const EventCounts& delta);

 private:
  struct OpenSample {
    EventCounts counts;
    bool sampled = false;
  };

  util::Timer clock_;
  double epoch_s_ = trace_clock_s();
  std::vector<Span> spans_;
  std::vector<std::size_t> open_stack_;
  std::vector<OpenSample> open_samples_;  // parallel to open_stack_
  EventProvider* provider_ = nullptr;
};

/// RAII span bracket. Tolerates a null tracer so instrumentation stays one
/// line at call sites that may run untraced.
class ScopedSpan {
 public:
  ScopedSpan(PhaseTracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ != nullptr) tracer_->begin(std::move(name));
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  PhaseTracer* tracer_;
};

}  // namespace lotus::obs
