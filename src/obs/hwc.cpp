#include "obs/hwc.hpp"

#include <cstdlib>
#include <cstring>

#include "util/fault.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace lotus::obs {

const char* event_name(Event event) noexcept {
  switch (event) {
    case Event::kCycles: return "cycles";
    case Event::kInstructions: return "instructions";
    case Event::kL2Misses: return "l2_misses";
    case Event::kLlcMisses: return "llc_misses";
    case Event::kDtlbMisses: return "dtlb_misses";
    case Event::kBranchMispredicts: return "branch_mispredicts";
    case Event::kCount: break;
  }
  return "unknown";
}

const char* event_source_name(EventSource source) noexcept {
  switch (source) {
    case EventSource::kOff: return "off";
    case EventSource::kSimulated: return "simulated";
    case EventSource::kHardware: return "hardware";
  }
  return "unknown";
}

std::optional<EventSource> parse_event_source(std::string_view text) {
  if (text == "off") return EventSource::kOff;
  if (text == "sim" || text == "simulated") return EventSource::kSimulated;
  if (text == "hw" || text == "hardware") return EventSource::kHardware;
  return std::nullopt;
}

namespace {

/// Deterministic failure hook for the degradation tests: pretend the kernel
/// refused the syscall, the way a perf_event_paranoid-locked container does.
/// Two triggers: the legacy LOTUS_HWC_FORCE_ERROR env hook, and the `hwc`
/// fault-injection site (LOTUS_FAULTS=hwc:..., util/fault.hpp).
const char* forced_error() {
  if (util::fault::should_fail(util::fault::Site::kHwc))
    return "injected perf_event_open failure (fault site hwc)";
  return std::getenv("LOTUS_HWC_FORCE_ERROR");
}

}  // namespace

#if defined(__linux__)

namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// perf attr (type, config) for each schema event. kL2Misses has no generic
/// perf id; LLC *accesses* are the requests that missed L2, which is the
/// closest portable measurement (documented in docs/PROFILING.md).
bool event_attr(Event event, perf_event_attr& attr) {
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.exclude_kernel = 1;  // self-measurement works at perf_event_paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const auto hw_cache = [](std::uint64_t cache, std::uint64_t op,
                           std::uint64_t result) {
    return cache | (op << 8) | (result << 16);
  };
  switch (event) {
    case Event::kCycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      return true;
    case Event::kInstructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      return true;
    case Event::kL2Misses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                             PERF_COUNT_HW_CACHE_RESULT_ACCESS);
      return true;
    case Event::kLlcMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      return true;
    case Event::kDtlbMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = hw_cache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                             PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case Event::kBranchMispredicts:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_BRANCH_MISSES;
      return true;
    case Event::kCount: break;
  }
  return false;
}

/// Open one self-measuring counter on the calling thread; -1 on failure.
int open_event(Event event, int* err_out = nullptr) {
  perf_event_attr attr;
  if (!event_attr(event, attr)) return -1;
  const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                      /*group_fd=*/-1, /*flags=*/0);
  if (fd < 0) {
    if (err_out != nullptr) *err_out = errno;
    return -1;
  }
  return static_cast<int>(fd);
}

/// Read one counter fd, undoing kernel multiplexing via the enabled/running
/// ratio. Returns 0 for unavailable (-1) fds and on short reads.
std::uint64_t read_scaled(int fd) {
  if (fd < 0) return 0;
  std::uint64_t buffer[3] = {0, 0, 0};  // value, time_enabled, time_running
  const ssize_t got = ::read(fd, buffer, sizeof(buffer));
  if (got != static_cast<ssize_t>(sizeof(buffer))) return 0;
  if (buffer[2] == 0) return 0;  // never scheduled onto the PMU
  if (buffer[1] == buffer[2]) return buffer[0];
  const double scale =
      static_cast<double>(buffer[1]) / static_cast<double>(buffer[2]);
  return static_cast<std::uint64_t>(static_cast<double>(buffer[0]) * scale);
}

}  // namespace

std::unique_ptr<HwcProvider> HwcProvider::create(std::string* error) {
  if (const char* forced = forced_error()) {
    if (error != nullptr)
      *error = std::string(
                   "perf_event_open disabled by LOTUS_HWC_FORCE_ERROR/fault "
                   "site hwc (") +
               forced + ")";
    return nullptr;
  }
  // Probe with the cycles counter: if the kernel refuses that, nothing else
  // in the group will open either (EPERM/EACCES: perf_event_paranoid or
  // seccomp; ENOSYS: no perf support compiled in).
  int err = 0;
  const int probe = open_event(Event::kCycles, &err);
  if (probe < 0) {
    if (error != nullptr)
      *error = std::string("perf_event_open failed: ") + std::strerror(err);
    return nullptr;
  }
  ::close(probe);
  return std::unique_ptr<HwcProvider>(new HwcProvider());
}

HwcProvider::~HwcProvider() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const ThreadGroup& group : groups_)
    for (const int fd : group.fd)
      if (fd >= 0) ::close(fd);
}

bool HwcProvider::attach_current_thread(std::string* error) {
  ThreadGroup group;
  group.fd.fill(-1);
  int first_err = 0;
  std::size_t opened = 0;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    int err = 0;
    group.fd[i] = open_event(static_cast<Event>(i), &err);
    if (group.fd[i] >= 0) ++opened;
    else if (first_err == 0) first_err = err;
  }
  if (opened == 0) {
    if (error != nullptr)
      *error = std::string("no hardware event could be opened: ") +
               std::strerror(first_err);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  groups_.push_back(group);
  return true;
}

std::size_t HwcProvider::attached_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return groups_.size();
}

EventCounts HwcProvider::read() {
  std::lock_guard<std::mutex> lock(mutex_);
  EventCounts total;
  for (const ThreadGroup& group : groups_)
    for (std::size_t i = 0; i < kNumEvents; ++i)
      total.value[i] += read_scaled(group.fd[i]);
  return total;
}

#else  // !__linux__

std::unique_ptr<HwcProvider> HwcProvider::create(std::string* error) {
  if (error != nullptr) {
    *error = forced_error() != nullptr
                 ? "perf_event_open disabled by LOTUS_HWC_FORCE_ERROR"
                 : "perf_event_open is Linux-only";
  }
  return nullptr;
}

HwcProvider::~HwcProvider() = default;

bool HwcProvider::attach_current_thread(std::string* error) {
  if (error != nullptr) *error = "perf_event_open is Linux-only";
  return false;
}

std::size_t HwcProvider::attached_threads() const { return 0; }

EventCounts HwcProvider::read() { return {}; }

#endif  // __linux__

}  // namespace lotus::obs
