// Serving telemetry: always-on latency histograms, a sampled structured
// query log, rolling-window aggregation, and Prometheus text exposition.
//
// This is the continuous counterpart to the per-run observability stack
// (PhaseTracer spans, counters, hwc): where those attribute one run offline,
// Telemetry watches a *stream* of queries while traffic is flowing — tail
// latency per stage (queue wait / prepare / count / end-to-end), per
// algorithm label and per cache outcome (hit / miss / spill-remap), QPS and
// quantiles over a rolling window, and a JSON-lines log that reconstructs
// every sampled query. tc::Engine owns one Telemetry and records into it on
// every completed query (docs/TELEMETRY.md).
//
// Design for an always-on hot path:
//   * LatencyHistogram is log-bucketed (8 sub-buckets per power of two, so
//     quantile estimates carry a <= 6.25% relative bucket error) and
//     mergeable: bin-wise add/subtract is exact, which makes per-thread
//     shards and rolling-window deltas trivial.
//   * Recording is lock-free: each recording thread owns a shard of plain
//     atomic bins; one record() is a handful of bit operations plus ~18
//     release fetch_adds (plain lock-prefixed adds on x86), no mutex, no
//     allocation. Shards are merged only on read (snapshot/export), which
//     is off the serving path.
//   * The query log is sampled (TelemetryOptions::query_log_sample) so its
//     cost is bounded and under the operator's control; histograms are
//     always on. The bench `telemetry` scenario regression-gates the
//     end-to-end overhead of full telemetry at < 2%.
//
// Thread-safety: record() is safe from any thread concurrently with any
// number of record()/snapshot() calls. snapshot() merges atomic shards —
// each bin is exact, cross-bin skew is bounded by in-flight record() calls
// (same contract as obs counters); release increments paired with acquire
// merge loads keep merged counts from running ahead of queries_recorded.
// The rolling window and the query log serialize internally on their own
// mutexes; the window structure itself is only ever touched under its
// mutex — the record path checks an atomic next-rotation timestamp first
// and then try-locks, so it can never block a driver.
//
// Layering: this header is tc-free — algorithm names arrive as a label
// table, so obs stays below tc in the module graph while the Engine decides
// the label vocabulary.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace lotus::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Log-bucketed latency histogram over nanosecond durations. Buckets are
/// HdrHistogram-style log-linear: values below 8 ns get exact unit buckets;
/// above that, every power-of-two octave is split into 8 equal sub-buckets,
/// so any recorded value lands in a bucket whose width is at most 1/8 of its
/// lower bound (quantile midpoint estimates are within ~6.25% of the true
/// rank value). The top tracked octave is 2^42 ns (~1.2 h); larger values
/// saturate into the last bucket. Plain value type: record/merge/diff are
/// single-threaded; the concurrent shard layer lives in Telemetry.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBucketBits = 3;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;  // 8
  static constexpr unsigned kMaxOctave = 42;  // ~1.2 hours in ns
  static constexpr std::size_t kBuckets =
      (static_cast<std::size_t>(kMaxOctave) - kSubBucketBits + 1) *
      kSubBuckets + kSubBuckets;  // 328

  /// Bucket that `ns` falls into (total order, contiguous from 0).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t ns) noexcept;
  /// Inclusive lower bound of a bucket, in ns.
  [[nodiscard]] static std::uint64_t bucket_lower_ns(std::size_t bucket) noexcept;
  /// Exclusive upper bound of a bucket (UINT64_MAX for the saturated top).
  [[nodiscard]] static std::uint64_t bucket_upper_ns(std::size_t bucket) noexcept;

  void record(std::uint64_t ns) noexcept;

  /// Merge helpers for the shard/window layers: add `n` observations into
  /// one bucket (count rides along) and raw nanoseconds into the sum.
  void add_bin(std::size_t bucket, std::uint64_t n) noexcept;
  void add_sum_ns(std::uint64_t ns) noexcept { sum_ns_ += ns; }

  /// Bin-wise sum; exact and associative (the unit-test contract).
  void merge(const LatencyHistogram& other) noexcept;

  /// Bin-wise `newer - older` (clamped at 0 per bin): the rolling-window
  /// delta between two cumulative snapshots.
  [[nodiscard]] static LatencyHistogram delta(
      const LatencyHistogram& newer, const LatencyHistogram& older) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum_ns() const noexcept { return sum_ns_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& bins() const noexcept {
    return bins_;
  }

  /// Estimated q-quantile (q in [0,1]) in nanoseconds: the midpoint of the
  /// bucket holding the rank-⌊q·count⌋ observation; 0 when empty. Relative
  /// error is bounded by half the bucket width (<= 6.25%).
  [[nodiscard]] double quantile_ns(double q) const noexcept;
  [[nodiscard]] double quantile_s(double q) const noexcept {
    return quantile_ns(q) * 1e-9;
  }
  [[nodiscard]] double sum_s() const noexcept {
    return static_cast<double>(sum_ns_) * 1e-9;
  }

 private:
  std::array<std::uint64_t, kBuckets> bins_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
};

// ---------------------------------------------------------------------------
// Dimensions
// ---------------------------------------------------------------------------

/// Per-query stages that get their own histogram series. Names are part of
/// the exported schema (the `stage` label / `engine_telemetry` rows).
enum class QueryStage : unsigned { kQueue = 0, kPrepare, kCount, kTotal };
inline constexpr std::size_t kNumQueryStages = 4;
[[nodiscard]] const char* query_stage_name(QueryStage stage) noexcept;

/// How the prepared-graph cache served a query. `kUncached` covers
/// algorithms without a reusable artifact and empty graph keys. `kHeal` is
/// the self-healing path: a spill file failed checksum verification, was
/// quarantined, and the artifact was rebuilt from scratch. Names are part
/// of the exported schema (the `outcome` label).
enum class CacheOutcome : unsigned { kUncached = 0, kHit, kMiss, kRemap, kHeal };
inline constexpr std::size_t kNumCacheOutcomes = 5;
[[nodiscard]] const char* cache_outcome_name(CacheOutcome outcome) noexcept;

// ---------------------------------------------------------------------------
// Rolling window
// ---------------------------------------------------------------------------

/// Ring of cumulative snapshots so "now" questions (current QPS, current
/// p99) are answered from the last ~window instead of since process start.
/// Callers pass monotonic time explicitly, which keeps rotation/expiry unit
/// testable. Not internally synchronized — Telemetry guards its instance.
class RollingWindow {
 public:
  explicit RollingWindow(double window_s, std::size_t slots = 15);

  /// True when enough time has passed that advance() would rotate a slot.
  [[nodiscard]] bool due(double now_s) const noexcept;

  /// Earliest time at which due() becomes true (0 while the ring is empty,
  /// i.e. due immediately). Lets callers cache the rotation deadline in an
  /// atomic and skip locking until it passes.
  [[nodiscard]] double next_due_s() const noexcept;

  /// Record a cumulative snapshot if a slot boundary has passed; expires
  /// slots that have fallen out of the window (always keeping one baseline
  /// at or beyond the window edge).
  void advance(double now_s, std::uint64_t completed,
               const LatencyHistogram& cumulative);

  struct Stats {
    double span_s = 0.0;        // actual covered span (≈ window once warm)
    std::uint64_t queries = 0;  // completed within the span
    double qps = 0.0;
    LatencyHistogram hist;      // end-to-end latency delta over the span
  };

  /// Windowed delta between `cumulative`/`completed` now and the oldest
  /// retained snapshot.
  [[nodiscard]] Stats stats(double now_s, std::uint64_t completed,
                            const LatencyHistogram& cumulative) const;

  [[nodiscard]] double window_s() const noexcept { return window_s_; }
  [[nodiscard]] double slot_s() const noexcept { return slot_s_; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }

 private:
  struct Slot {
    double at_s = 0.0;
    std::uint64_t completed = 0;
    LatencyHistogram hist;
  };
  double window_s_;
  double slot_s_;
  std::deque<Slot> ring_;
};

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Knobs, embedded in tc::EngineOptions. Histograms are cheap enough to
/// leave on; the query log is the one knob with per-query serialization
/// cost, hence the sampling divisor.
struct TelemetryOptions {
  /// Master switch. false compiles the record path down to one branch —
  /// the bench `telemetry` scenario measures on-vs-off overhead.
  bool enabled = true;

  /// Append sampled queries as JSON lines to this file ("" = no log).
  std::string query_log_path;

  /// Log every Nth completed query (1 = every query, 0 = never). Sampling
  /// is by monotonic query id, so a sampled stream is deterministic.
  std::uint32_t query_log_sample = 1;

  /// Rolling-window span for "now" statistics (QPS, windowed quantiles).
  double window_s = 60.0;
};

/// Everything one completed query reports. Timings are per stage; `total`
/// is end-to-end (queue + prepare + count, as measured by the caller).
struct QuerySample {
  /// Index into the label table; out-of-range values (including anything
  /// when the table is empty) land in a reserved "unknown" series.
  std::size_t algorithm = 0;
  /// Index into the analytic label table (the third constructor argument) —
  /// tc sets this from AnalyticKind. Ignored entirely when no analytic
  /// labels were configured; out-of-range values land in a reserved
  /// "unknown" analytic series.
  std::size_t analytic = 0;
  CacheOutcome outcome = CacheOutcome::kUncached;
  std::string_view graph_key;
  std::string_view status;  // stable status-code name ("ok", ...)
  unsigned threads = 0;
  bool deadline_missed = false;
  std::uint64_t queue_ns = 0;
  std::uint64_t prepare_ns = 0;
  std::uint64_t count_ns = 0;
  std::uint64_t total_ns = 0;
};

/// One merged histogram series in a snapshot.
struct SeriesSnapshot {
  std::string label;  // algorithm name or cache-outcome name
  QueryStage stage = QueryStage::kTotal;
  LatencyHistogram hist;
};

/// Point-in-time merged view of everything Telemetry tracks.
struct TelemetrySnapshot {
  bool enabled = false;
  std::uint64_t queries_recorded = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t query_log_lines = 0;
  std::uint64_t query_log_failures = 0;
  double uptime_s = 0.0;
  std::vector<SeriesSnapshot> algorithms;  // non-empty series only
  std::vector<SeriesSnapshot> outcomes;    // non-empty series only
  std::vector<SeriesSnapshot> analytics;   // non-empty series only (empty
                                           // unless analytic labels were
                                           // configured)
  RollingWindow::Stats window;
  double window_span_s = 0.0;  // configured span
};

class Telemetry {
 public:
  static constexpr unsigned kShards = 8;

  /// `algorithm_labels[i]` names QuerySample::algorithm == i in every
  /// export, and `analytic_labels[i]` likewise names QuerySample::analytic.
  /// Both tables are frozen at construction (fixed series layout). An empty
  /// analytic table (the default, preserving the historical two-argument
  /// shape) allocates no analytic series at all — QuerySample::analytic is
  /// then ignored.
  Telemetry(TelemetryOptions options, std::vector<std::string> algorithm_labels,
            std::vector<std::string> analytic_labels = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return options_.enabled; }
  [[nodiscard]] const TelemetryOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::vector<std::string>& algorithm_labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] const std::vector<std::string>& analytic_labels() const noexcept {
    return analytic_labels_;
  }

  /// Record one completed query: histogram increments (lock-free), the
  /// deadline-miss counter, a lazy rolling-window rotation, and — when the
  /// query id hits the sampling stride — one query-log line. Returns the
  /// assigned monotonic query id (1-based; 0 when disabled).
  std::uint64_t record(const QuerySample& sample);

  /// Append an out-of-band operational event ({"event": kind, ...detail})
  /// to the query log — spill quarantines, cleanup failures. Unsampled (rare
  /// by construction); a no-op when telemetry is disabled or there is no
  /// log. Counted in query_log_lines/query_log_failures like query lines.
  void log_event(std::string_view kind, std::string_view detail);

  /// Merge every shard into a consistent read-side view.
  [[nodiscard]] TelemetrySnapshot snapshot() const;

  /// Seconds since construction (the monotonic clock every window timestamp
  /// is expressed in).
  [[nodiscard]] double uptime_s() const { return clock_.elapsed_s(); }

 private:
  static constexpr std::size_t kCellsPerSeries =
      LatencyHistogram::kBuckets + 1;  // bins + sum_ns

  /// Algorithm rows: one per label plus a trailing reserved "unknown" row
  /// for out-of-range QuerySample::algorithm indices. The extra row also
  /// keeps the algorithm family disjoint from the outcome family when the
  /// label table is empty.
  [[nodiscard]] std::size_t num_algo_rows() const noexcept {
    return labels_.size() + 1;
  }
  [[nodiscard]] std::size_t algo_series(std::size_t algorithm,
                                        QueryStage stage) const noexcept {
    return algorithm * kNumQueryStages + static_cast<std::size_t>(stage);
  }
  [[nodiscard]] std::size_t outcome_series(CacheOutcome outcome,
                                           QueryStage stage) const noexcept {
    return num_algo_rows() * kNumQueryStages +
           static_cast<std::size_t>(outcome) * kNumQueryStages +
           static_cast<std::size_t>(stage);
  }
  /// Analytic rows: one per label plus a reserved "unknown" row — but only
  /// when an analytic table was configured at all. Zero rows keeps the
  /// historical two-argument construction byte-identical in layout.
  [[nodiscard]] std::size_t num_analytic_rows() const noexcept {
    return analytic_labels_.empty() ? 0 : analytic_labels_.size() + 1;
  }
  [[nodiscard]] std::size_t analytic_series(std::size_t analytic,
                                            QueryStage stage) const noexcept {
    return (num_algo_rows() + kNumCacheOutcomes + analytic) * kNumQueryStages +
           static_cast<std::size_t>(stage);
  }
  /// Aggregate end-to-end series feeding the rolling window.
  [[nodiscard]] std::size_t aggregate_series() const noexcept {
    return (num_algo_rows() + kNumCacheOutcomes + num_analytic_rows()) *
           kNumQueryStages;
  }
  [[nodiscard]] std::size_t series_count() const noexcept {
    return aggregate_series() + 1;
  }

  void bump(std::size_t shard, std::size_t series, std::uint64_t ns) noexcept;
  [[nodiscard]] LatencyHistogram merge_series(std::size_t series) const;
  void write_log_line(std::uint64_t id, const QuerySample& sample);

  TelemetryOptions options_;
  std::vector<std::string> labels_;
  std::vector<std::string> analytic_labels_;
  std::vector<std::atomic<std::uint64_t>> cells_;  // [shard][series][cell]

  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};

  util::Timer clock_;
  mutable std::mutex window_mutex_;
  RollingWindow window_;  // touched only under window_mutex_
  /// Cached RollingWindow::next_due_s(), refreshed under window_mutex_;
  /// record() reads it lock-free to decide whether to try the rotation at
  /// all, so window_ itself is never inspected without the mutex.
  mutable std::atomic<double> next_rotation_s_{0.0};

  std::mutex log_mutex_;
  std::ofstream log_;
  std::atomic<std::uint64_t> log_lines_{0};
  std::atomic<std::uint64_t> log_failures_{0};
};

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Minimal Prometheus text-format (version 0.0.4) writer: `# HELP`/`# TYPE`
/// headers deduplicated per metric family, escaped label values, histogram
/// families in the cumulative `_bucket{le=...}` / `_sum` / `_count`
/// convention (only populated buckets plus the mandatory `+Inf` are
/// emitted). Single-threaded builder, like MetricsRegistry.
class PrometheusWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  void counter(const std::string& name, const std::string& help,
               std::uint64_t value, const Labels& labels = {});
  void gauge(const std::string& name, const std::string& help, double value,
             const Labels& labels = {});
  /// Cumulative histogram family; `le` bounds are the buckets' *inclusive*
  /// upper bounds (the exclusive bound minus 1 ns — durations are integer
  /// nanoseconds) converted to seconds, matching the exposition format's
  /// inclusive `le` semantics. Only populated buckets are emitted, so the
  /// layout can differ across series/scrapes (legal per the format).
  void histogram(const std::string& name, const std::string& help,
                 const Labels& labels, const LatencyHistogram& hist);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  /// Label-value escaping per the exposition format: `\` -> `\\`,
  /// `"` -> `\"`, newline -> `\n`. UTF-8 passes through untouched.
  [[nodiscard]] static std::string escape_label_value(std::string_view value);

 private:
  void header(const std::string& name, const std::string& help,
              const char* type);
  void sample(const std::string& name, const std::string& suffix,
              const Labels& labels, const std::string& value);

  std::string out_;
  std::set<std::string> declared_;
};

/// Every metric family Engine::prometheus_text() exposes, the source of
/// truth for the docs cross-check (scripts/check_docs.sh requires each name
/// to be documented in docs/TELEMETRY.md).
// LOTUS-METRIC-INVENTORY-BEGIN
inline constexpr const char* kEngineMetricNames[] = {
    "lotus_engine_queries_submitted_total",
    "lotus_engine_queries_completed_total",
    "lotus_engine_queries_rejected_total",
    "lotus_engine_queries_recorded_total",
    "lotus_engine_deadline_misses_total",
    "lotus_engine_cache_lookups_total",
    "lotus_engine_cache_hits_total",
    "lotus_engine_cache_misses_total",
    "lotus_engine_cache_evictions_total",
    "lotus_engine_cache_spills_total",
    "lotus_engine_cache_remaps_total",
    "lotus_engine_cache_quarantines_total",
    "lotus_engine_spill_verify_failures_total",
    "lotus_engine_spill_cleanup_failures_total",
    "lotus_engine_spill_collisions_total",
    "lotus_engine_cache_entries",
    "lotus_engine_cache_bytes",
    "lotus_engine_cache_spilled_entries",
    "lotus_engine_query_log_lines_total",
    "lotus_engine_uptime_seconds",
    "lotus_engine_window_span_seconds",
    "lotus_engine_window_queries",
    "lotus_engine_window_qps",
    "lotus_engine_window_latency_seconds",
    "lotus_engine_query_stage_seconds",
    "lotus_engine_cache_outcome_seconds",
    "lotus_engine_analytic_stage_seconds",
    "lotus_engine_analytic_queries_total",
};
// LOTUS-METRIC-INVENTORY-END

}  // namespace lotus::obs
