// MetricsRegistry: one run's observability data behind a versioned schema.
//
// A registry collects the report sections — `meta` (identity: algorithm,
// graph, threads), `metrics` (scalar results: triangles, seconds, rates),
// `hw` (hardware-event source + per-event totals), `spans` (the PhaseTracer
// tree, including per-span event deltas), `counters` (totals + per-thread),
// `resilience` (run status + any budget/fault degradations) and — for runs
// served by tc::Engine, or the engine's own aggregate export — `engine`
// (cache hit/miss/eviction counters and queue/preprocess/count timings),
// plus — for the engine aggregate export only — `engine_telemetry` (latency
// histogram quantiles and rolling-window stats from obs/telemetry.hpp) —
// and exports them as JSON (schema "lotus-metrics/7", specified in
// docs/METRICS.md) or flat CSV. Every bench and the tc_profile example emit
// their numbers through this type, so reports are comparable across
// algorithms and PRs.
//
// Thread-safety: a registry is a single-threaded builder object; assemble it
// on one thread after the parallel work has finished. Exporting does not
// mutate and may be repeated.
//
// Overhead: none on counting paths — a registry only exists at report
// boundaries. Building with LOTUS_OBS=0 leaves this type fully functional;
// the counters section is simply empty (see obs/counters.hpp).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/hwc.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace lotus::obs {

/// Version tag stamped into every export; bump when the layout or the
/// counter names change (docs/METRICS.md is the changelog).
inline constexpr const char* kMetricsSchemaVersion = "lotus-metrics/7";

/// One graceful-degradation event: at `site` the run switched to a cheaper
/// `action` because of `reason` (e.g. the memory budget or an injected
/// allocation failure). Exported in the `resilience` section so a degraded
/// run is never mistaken for a full-fidelity one.
struct Degradation {
  std::string site;    // where: "lotus", "forward-hashed", "hwc", ...
  std::string action;  // what: "fallback=gap-forward", ...
  std::string reason;  // why: the triggering status/fault message
};

class MetricsRegistry {
 public:
  /// Identity fields ("algorithm", "graph", ...). Insertion-ordered;
  /// re-setting a key overwrites.
  void set_meta(std::string key, JsonValue value);

  /// Scalar results ("triangles", "total_s", ...). Same semantics as meta.
  void set_metric(std::string key, JsonValue value);

  /// Hardware-event section: where the numbers came from (hardware PMU,
  /// the simcache model, or off), the backend tag, and run totals. The
  /// source is stamped so simulated numbers are never mistaken for measured
  /// ones. A registry without this call exports `"hw": {"source": "off"}`.
  void set_hw(EventSource source, std::string backend,
              const EventCounts& events, std::string note = "");

  /// Resilience section (schema v3): the run's final status (ok /
  /// deadline_exceeded / cancelled / ...) and any degradations taken. A
  /// registry without this call exports `"resilience": {"status": "ok"}`.
  void set_resilience(const util::Status& status,
                      std::vector<Degradation> degradations);

  /// Engine section (schema v4): serving-layer fields — cache
  /// hits/misses/evictions, queue/preprocess/count timings — as ordered
  /// key→value pairs (the serving layer owns the field names; this keeps
  /// obs free of a dependency on tc). Exported as `"engine": {...}` only
  /// when set: plain (non-engine) runs omit the section.
  void set_engine(std::vector<std::pair<std::string, JsonValue>> fields);

  /// Engine-telemetry section (schema v5): the serving layer's latency
  /// histograms, rolling-window stats, and query-log counters as an
  /// already-assembled JSON object (the engine owns the layout; this keeps
  /// obs free of a dependency on tc). Exported as `"engine_telemetry":
  /// {...}` only when set — per-query reports omit the section.
  void set_engine_telemetry(JsonValue section);

  /// Attach a counters snapshot (obs::counters_snapshot()).
  void set_counters(CountersSnapshot snapshot);

  /// Attach the span tree (copies the tracer's spans).
  void set_trace(const PhaseTracer& tracer);

  /// Full report as a JSON document (see docs/METRICS.md for the schema).
  [[nodiscard]] JsonValue to_json() const;

  /// to_json() serialized; `indent` as in JsonValue::dump.
  [[nodiscard]] std::string to_json_string(int indent = 2) const;

  /// Flat "section,name,value" rows; spans are path-joined ("count/hnn").
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::pair<std::string, JsonValue>> meta_;
  std::vector<std::pair<std::string, JsonValue>> metrics_;
  CountersSnapshot counters_;
  bool have_counters_ = false;
  std::vector<PhaseTracer::Span> spans_;
  EventSource hw_source_ = EventSource::kOff;
  std::string hw_backend_;
  EventCounts hw_events_;
  std::string hw_note_;
  util::Status status_;
  std::vector<Degradation> degradations_;
  std::vector<std::pair<std::string, JsonValue>> engine_;
  bool have_engine_ = false;
  JsonValue engine_telemetry_;
  bool have_engine_telemetry_ = false;
};

}  // namespace lotus::obs
