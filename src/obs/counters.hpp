// Per-thread performance counters for the runtime and the counting kernels.
//
// The paper's evaluation leans on exactly these numbers: steals and busy/idle
// time ground the Table-9 load-balance claims, and the comparison /
// fruitless-search / bit-array-probe counters are the Table-1/Fig.-5 style
// work accounting. `obs::count()` adds to a thread-local slot, so hot loops
// never contend; `counters_snapshot()` aggregates every live thread plus the
// retired totals of exited threads.
//
// Overhead: with the build option LOTUS_OBS=0 (cmake -DLOTUS_OBS=0) every
// function here is an inline empty stub — counters compile to no-ops, local
// accumulators feeding them become dead code, and the library carries zero
// runtime cost. With LOTUS_OBS=1 (the default) a count() is one thread-local
// lookup plus one relaxed atomic add; kernels amortize further by
// accumulating locally and flushing once per call.
//
// Thread-safety: count()/bind_thread() are safe from any thread (each writes
// only its own cache-line-aligned block). counters_snapshot() may run
// concurrently with counting and sees a consistent per-counter value (relaxed
// reads; no cross-counter atomicity). reset_counters() should be called while
// no parallel region is active — concurrent increments may survive the reset.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#ifndef LOTUS_OBS
#define LOTUS_OBS 1
#endif

namespace lotus::obs {

/// Every counter the runtime and kernels maintain. Names/units are part of
/// the exported schema — see docs/METRICS.md before renumbering.
enum class Counter : unsigned {
  kTasksExecuted = 0,     // work-stealing scheduler tasks run to completion
  kStealAttempts,         // victim deques probed (successful or not)
  kSteals,                // successful steals (task taken from a victim)
  kSchedBusyNs,           // nanoseconds spent inside scheduler task bodies
  kSchedIdleNs,           // nanoseconds spent waiting/stealing in the scheduler
  kParallelChunks,        // dynamic chunks claimed by parallel_for
  kIntersectComparisons,  // element comparisons in the intersection kernels
  kFruitlessSearches,     // intersections that examined input but matched nothing
  kBitarrayProbes,        // H2H triangular bit-array membership tests (phase 1)
  kCount
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);

/// Stable schema name of a counter ("steals", "sched_busy_ns", ...).
[[nodiscard]] const char* counter_name(Counter counter) noexcept;

/// True when counters are compiled in (LOTUS_OBS != 0).
[[nodiscard]] constexpr bool enabled() noexcept { return LOTUS_OBS != 0; }

/// Counter values of one pool thread. `thread` is the pool index the thread
/// bound via bind_thread (master = 0).
struct ThreadCounters {
  int thread = -1;
  std::array<std::uint64_t, kNumCounters> value{};

  [[nodiscard]] std::uint64_t operator[](Counter counter) const noexcept {
    return value[static_cast<std::size_t>(counter)];
  }
};

/// Point-in-time aggregation: process-wide totals (including threads that
/// have exited) plus a per-thread breakdown of the currently bound threads,
/// ascending by pool index.
struct CountersSnapshot {
  std::array<std::uint64_t, kNumCounters> total{};
  std::vector<ThreadCounters> threads;

  [[nodiscard]] std::uint64_t operator[](Counter counter) const noexcept {
    return total[static_cast<std::size_t>(counter)];
  }
};

/// Query-scoped counter accumulator. A domain installed on a thread (and on
/// the worker threads of a ThreadPool via ThreadPool::set_counter_domain)
/// additionally receives every count() made while it is installed, so
/// concurrent queries can each snapshot *their own* work without resetting
/// the process-wide counters. A domain snapshot carries totals only — the
/// per-thread breakdown remains a property of the process-wide snapshot.
///
/// Thread-safety: add() is a relaxed atomic add, safe from any thread;
/// kernels flush at most once per chunk/task so contention is negligible.
class CounterDomain {
 public:
  void add(Counter counter, std::uint64_t n) noexcept {
    value_[static_cast<std::size_t>(counter)].fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Totals accumulated so far (threads breakdown intentionally empty).
  [[nodiscard]] CountersSnapshot snapshot() const {
    CountersSnapshot out;
    for (std::size_t i = 0; i < kNumCounters; ++i)
      out.total[i] = value_[i].load(std::memory_order_relaxed);
    return out;
  }

  void reset() noexcept {
    for (auto& v : value_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumCounters> value_{};
};

#if LOTUS_OBS
/// Add `n` to this thread's slot of `counter` (and to the thread's installed
/// CounterDomain, if any).
void count(Counter counter, std::uint64_t n = 1);

/// Install `domain` as this thread's counter domain (nullptr = none). The
/// thread pool mirrors its configured domain onto its workers around each
/// job; query drivers use ScopedCounterDomain instead of calling this raw.
void set_thread_counter_domain(CounterDomain* domain) noexcept;
[[nodiscard]] CounterDomain* thread_counter_domain() noexcept;

/// Tag the calling thread with its pool index so snapshots can attribute
/// per-thread rows. The thread pool calls this; user code rarely needs to.
void bind_thread(unsigned pool_index);

/// Aggregate all threads (live + retired) into one snapshot.
[[nodiscard]] CountersSnapshot counters_snapshot();

/// Zero every counter (live blocks and retired totals).
void reset_counters();
#else
inline void count(Counter, std::uint64_t = 1) {}
inline void set_thread_counter_domain(CounterDomain*) noexcept {}
[[nodiscard]] inline CounterDomain* thread_counter_domain() noexcept {
  return nullptr;
}
inline void bind_thread(unsigned) {}
[[nodiscard]] inline CountersSnapshot counters_snapshot() { return {}; }
inline void reset_counters() {}
#endif

/// Install `domain` on the calling thread for the lifetime of this object
/// (nullptr is allowed and means "no domain"; the previous one is restored).
class ScopedCounterDomain {
 public:
  explicit ScopedCounterDomain(CounterDomain* domain)
      : previous_(thread_counter_domain()) {
    set_thread_counter_domain(domain);
  }
  ~ScopedCounterDomain() { set_thread_counter_domain(previous_); }
  ScopedCounterDomain(const ScopedCounterDomain&) = delete;
  ScopedCounterDomain& operator=(const ScopedCounterDomain&) = delete;

 private:
  CounterDomain* previous_;
};

}  // namespace lotus::obs
