#include "obs/trace_export.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace lotus::obs {

void SchedEventLog::append(std::vector<SchedEvent> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

std::vector<SchedEvent> SchedEventLog::events() const {
  std::vector<SchedEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const SchedEvent& a, const SchedEvent& b) {
              return a.start_s < b.start_s;
            });
  return out;
}

void SchedEventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

namespace {
std::atomic<SchedEventLog*> g_sched_sink{nullptr};

constexpr int kPid = 1;
// Chrome-trace rows: the orchestrator's span tree on tid 0, worker k on
// tid 1+k. The master thread doubles as worker 0; giving it its own row
// keeps both timelines well-nested (tasks would otherwise interleave with
// the phase stack).
constexpr int kSpanTid = 0;

int worker_tid(unsigned thread) { return 1 + static_cast<int>(thread); }

double to_us(double seconds) { return seconds * 1e6; }

JsonValue metadata_event(const char* name, int tid, std::string value) {
  JsonValue event;
  event.set("ph", "M");
  event.set("pid", kPid);
  event.set("tid", tid);
  event.set("name", name);
  JsonValue args;
  args.set("name", std::move(value));
  event.set("args", std::move(args));
  return event;
}

JsonValue complete_event(int tid, const std::string& name, double start_s,
                         double seconds) {
  JsonValue event;
  event.set("ph", "X");
  event.set("pid", kPid);
  event.set("tid", tid);
  event.set("name", name);
  event.set("ts", to_us(start_s));
  event.set("dur", to_us(seconds));
  return event;
}

}  // namespace

void set_sched_event_sink(SchedEventLog* sink) noexcept {
  g_sched_sink.store(sink, std::memory_order_release);
}

SchedEventLog* sched_event_sink() noexcept {
  return g_sched_sink.load(std::memory_order_acquire);
}

JsonValue chrome_trace(const PhaseTracer& tracer,
                       const std::vector<SchedEvent>& sched) {
  JsonValue events;
  events.push_back(metadata_event("process_name", kSpanTid, "lotus"));
  events.push_back(metadata_event("thread_name", kSpanTid, "phases"));

  for (const PhaseTracer::Span& span : tracer.spans()) {
    if (span.open) continue;  // duration unknown; cannot emit a complete slice
    JsonValue event = complete_event(kSpanTid, span.name,
                                     tracer.epoch_s() + span.start_s,
                                     span.seconds);
    JsonValue args;
    for (const auto& [key, value] : span.notes) args.set(key, value);
    if (span.has_events) {
      JsonValue deltas;
      for (std::size_t i = 0; i < kNumEvents; ++i)
        deltas.set(event_name(static_cast<Event>(i)),
                   span.events.value[i]);
      args.set("events", std::move(deltas));
    }
    if (!args.is_null()) event.set("args", std::move(args));
    events.push_back(std::move(event));
  }

  std::vector<int> named_tids;
  for (const SchedEvent& e : sched) {
    const int tid = worker_tid(e.thread);
    if (std::find(named_tids.begin(), named_tids.end(), tid) == named_tids.end()) {
      named_tids.push_back(tid);
      events.push_back(metadata_event("thread_name", tid,
                                      "worker " + std::to_string(e.thread)));
    }
    switch (e.kind) {
      case SchedEvent::Kind::kTask: {
        JsonValue event = complete_event(tid, "task", e.start_s, e.seconds);
        JsonValue args;
        args.set("task", e.task);
        event.set("args", std::move(args));
        events.push_back(std::move(event));
        break;
      }
      case SchedEvent::Kind::kSteal: {
        JsonValue event;
        event.set("ph", "i");
        event.set("pid", kPid);
        event.set("tid", tid);
        event.set("name", "steal");
        event.set("ts", to_us(e.start_s));
        event.set("s", "t");  // thread-scoped instant
        JsonValue args;
        args.set("task", e.task);
        args.set("victim", static_cast<std::int64_t>(e.victim));
        event.set("args", std::move(args));
        events.push_back(std::move(event));
        break;
      }
      case SchedEvent::Kind::kIdle:
        events.push_back(complete_event(tid, "idle", e.start_s, e.seconds));
        break;
    }
  }

  JsonValue doc;
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  JsonValue other;
  other.set("generator", "lotus trace_export");
  doc.set("otherData", std::move(other));
  return doc;
}

std::string chrome_trace_string(const PhaseTracer& tracer,
                                const std::vector<SchedEvent>& sched) {
  return chrome_trace(tracer, sched).dump();
}

}  // namespace lotus::obs
