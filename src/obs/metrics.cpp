#include "obs/metrics.hpp"

#include <algorithm>

#include "util/format.hpp"

namespace lotus::obs {

namespace {

void set_ordered(std::vector<std::pair<std::string, JsonValue>>& fields,
                 std::string key, JsonValue value) {
  for (auto& [k, v] : fields) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields.emplace_back(std::move(key), std::move(value));
}

JsonValue counters_to_json(const std::array<std::uint64_t, kNumCounters>& values) {
  JsonValue object;
  for (std::size_t i = 0; i < kNumCounters; ++i)
    object.set(counter_name(static_cast<Counter>(i)), values[i]);
  return object;
}

}  // namespace

void MetricsRegistry::set_meta(std::string key, JsonValue value) {
  set_ordered(meta_, std::move(key), std::move(value));
}

void MetricsRegistry::set_metric(std::string key, JsonValue value) {
  set_ordered(metrics_, std::move(key), std::move(value));
}

void MetricsRegistry::set_hw(EventSource source, std::string backend,
                             const EventCounts& events, std::string note) {
  hw_source_ = source;
  hw_backend_ = std::move(backend);
  hw_events_ = events;
  hw_note_ = std::move(note);
}

void MetricsRegistry::set_resilience(const util::Status& status,
                                     std::vector<Degradation> degradations) {
  status_ = status;
  degradations_ = std::move(degradations);
}

void MetricsRegistry::set_engine(
    std::vector<std::pair<std::string, JsonValue>> fields) {
  engine_ = std::move(fields);
  have_engine_ = true;
}

void MetricsRegistry::set_engine_telemetry(JsonValue section) {
  engine_telemetry_ = std::move(section);
  have_engine_telemetry_ = true;
}

void MetricsRegistry::set_counters(CountersSnapshot snapshot) {
  counters_ = std::move(snapshot);
  have_counters_ = true;
}

void MetricsRegistry::set_trace(const PhaseTracer& tracer) {
  spans_ = tracer.spans();
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue root;
  root.set("schema_version", kMetricsSchemaVersion);

  JsonValue meta;
  for (const auto& [k, v] : meta_) meta.set(k, v);
  if (!meta.is_null()) root.set("meta", std::move(meta));

  JsonValue metrics;
  for (const auto& [k, v] : metrics_) metrics.set(k, v);
  if (!metrics.is_null()) root.set("metrics", std::move(metrics));

  // hw section (schema v2): always present so consumers can trust the
  // source stamp; events only when a provider actually ran.
  JsonValue hw;
  hw.set("source", event_source_name(hw_source_));
  if (!hw_backend_.empty()) hw.set("backend", hw_backend_);
  if (!hw_note_.empty()) hw.set("note", hw_note_);
  if (hw_source_ != EventSource::kOff) {
    JsonValue events;
    for (std::size_t i = 0; i < kNumEvents; ++i)
      events.set(event_name(static_cast<Event>(i)), hw_events_.value[i]);
    hw.set("events", std::move(events));
  }
  root.set("hw", std::move(hw));

  // resilience section (schema v3): always present so consumers can tell a
  // clean full-fidelity run ("ok", no degradations) from a degraded or
  // failed one without guessing from absent fields.
  JsonValue resilience;
  resilience.set("status", util::status_code_name(status_.code()));
  if (!status_.ok()) resilience.set("message", status_.message());
  if (!degradations_.empty()) {
    JsonValue rows{JsonValue::Array{}};
    for (const Degradation& d : degradations_) {
      JsonValue row;
      row.set("site", d.site);
      row.set("action", d.action);
      row.set("reason", d.reason);
      rows.push_back(std::move(row));
    }
    resilience.set("degradations", std::move(rows));
  }
  root.set("resilience", std::move(resilience));

  // engine section (schema v4): present only for runs served by tc::Engine
  // (or the engine's aggregate export) — plain runs omit it, so absence
  // itself is meaningful.
  if (have_engine_) {
    JsonValue engine;
    for (const auto& [k, v] : engine_) engine.set(k, v);
    root.set("engine", std::move(engine));
  }

  // engine_telemetry section (schema v5): latency quantiles + rolling-window
  // stats, present only for the engine's aggregate export (per-query reports
  // never carry it).
  if (have_engine_telemetry_)
    root.set("engine_telemetry", engine_telemetry_);

  // Span tree, built bottom-up: children always have larger indices than
  // their parents (begin() order), so one reverse pass completes subtrees
  // before they are grafted onto their parents.
  std::vector<JsonValue> nodes(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    JsonValue node;
    node.set("name", spans_[i].name);
    node.set("start_s", spans_[i].start_s);
    node.set("seconds", spans_[i].seconds);
    if (!spans_[i].notes.empty()) {
      JsonValue notes;
      for (const auto& [k, v] : spans_[i].notes) notes.set(k, v);
      node.set("notes", std::move(notes));
    }
    if (spans_[i].has_events) {
      JsonValue events;
      for (std::size_t j = 0; j < kNumEvents; ++j)
        events.set(event_name(static_cast<Event>(j)), spans_[i].events.value[j]);
      node.set("events", std::move(events));
    }
    nodes[i] = std::move(node);
  }
  std::vector<JsonValue::Array> pending(spans_.size());
  for (std::size_t i = spans_.size(); i-- > 0;) {
    if (!pending[i].empty()) {
      std::reverse(pending[i].begin(), pending[i].end());  // back to begin() order
      nodes[i].set("children", JsonValue{std::move(pending[i])});
    }
    if (spans_[i].parent != PhaseTracer::npos)
      pending[spans_[i].parent].push_back(std::move(nodes[i]));
  }
  JsonValue span_roots{JsonValue::Array{}};
  for (std::size_t i = 0; i < spans_.size(); ++i)
    if (spans_[i].parent == PhaseTracer::npos)
      span_roots.push_back(std::move(nodes[i]));
  root.set("spans", std::move(span_roots));

  if (have_counters_) {
    JsonValue counters;
    counters.set("total", counters_to_json(counters_.total));
    JsonValue per_thread{JsonValue::Array{}};
    for (const ThreadCounters& tc : counters_.threads) {
      JsonValue row;
      row.set("thread", static_cast<std::int64_t>(tc.thread));
      for (std::size_t i = 0; i < kNumCounters; ++i)
        row.set(counter_name(static_cast<Counter>(i)), tc.value[i]);
      per_thread.push_back(std::move(row));
    }
    counters.set("per_thread", std::move(per_thread));
    root.set("counters", std::move(counters));
  }
  return root;
}

std::string MetricsRegistry::to_json_string(int indent) const {
  return to_json().dump(indent);
}

namespace {

std::string csv_escape(const std::string& value) {
  // RFC-4180 quoting: commas, quotes, CR/LF and any other control character
  // (which would corrupt line-oriented consumers) force the quoted form.
  bool needs_quoting = false;
  for (const char c : value) {
    if (c == ',' || c == '"' || static_cast<unsigned char>(c) < 0x20) {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string scalar_to_csv(const JsonValue& value) {
  if (value.type() == JsonValue::Type::kString) return csv_escape(value.as_string());
  return value.dump();
}

}  // namespace

std::string MetricsRegistry::to_csv() const {
  std::string out = "section,name,value\n";
  out += "schema,version," + std::string(kMetricsSchemaVersion) + "\n";
  for (const auto& [k, v] : meta_)
    out += "meta," + csv_escape(k) + "," + scalar_to_csv(v) + "\n";
  for (const auto& [k, v] : metrics_)
    out += "metric," + csv_escape(k) + "," + scalar_to_csv(v) + "\n";

  out += "hw,source," + std::string(event_source_name(hw_source_)) + "\n";
  if (!hw_backend_.empty()) out += "hw,backend," + csv_escape(hw_backend_) + "\n";
  if (hw_source_ != EventSource::kOff)
    for (std::size_t i = 0; i < kNumEvents; ++i)
      out += "hw,events." + std::string(event_name(static_cast<Event>(i))) +
             "," + std::to_string(hw_events_.value[i]) + "\n";

  out += "resilience,status," +
         std::string(util::status_code_name(status_.code())) + "\n";
  if (!status_.ok())
    out += "resilience,message," + csv_escape(status_.message()) + "\n";
  for (std::size_t i = 0; i < degradations_.size(); ++i)
    out += "resilience,degradation" + std::to_string(i) + "," +
           csv_escape(degradations_[i].site + ": " + degradations_[i].action +
                      " (" + degradations_[i].reason + ")") +
           "\n";

  if (have_engine_)
    for (const auto& [k, v] : engine_)
      out += "engine," + csv_escape(k) + "," + scalar_to_csv(v) + "\n";

  // engine_telemetry flattened one level: scalar members become rows, the
  // nested window/histogram structures stay JSON-only (CSV keeps its flat
  // section,name,value shape).
  if (have_engine_telemetry_ &&
      engine_telemetry_.type() == JsonValue::Type::kObject)
    for (const auto& [k, v] : engine_telemetry_.object())
      if (v.type() != JsonValue::Type::kObject &&
          v.type() != JsonValue::Type::kArray)
        out += "engine_telemetry," + csv_escape(k) + "," + scalar_to_csv(v) +
               "\n";

  // Spans flattened to slash-joined paths; notes and event deltas ride
  // along as span_note / span_event rows.
  std::vector<std::string> paths(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    paths[i] = spans_[i].parent == PhaseTracer::npos
                   ? spans_[i].name
                   : paths[spans_[i].parent] + "/" + spans_[i].name;
    out += "span," + csv_escape(paths[i]) + "," + util::fixed(spans_[i].seconds, 6) + "\n";
    for (const auto& [k, v] : spans_[i].notes)
      out += "span_note," + csv_escape(paths[i] + "." + k) + "," + csv_escape(v) + "\n";
    if (spans_[i].has_events)
      for (std::size_t j = 0; j < kNumEvents; ++j)
        out += "span_event," +
               csv_escape(paths[i] + "." + event_name(static_cast<Event>(j))) +
               "," + std::to_string(spans_[i].events.value[j]) + "\n";
  }

  if (have_counters_) {
    for (std::size_t i = 0; i < kNumCounters; ++i)
      out += "counter,total." + std::string(counter_name(static_cast<Counter>(i))) +
             "," + std::to_string(counters_.total[i]) + "\n";
    for (const ThreadCounters& tc : counters_.threads)
      for (std::size_t i = 0; i < kNumCounters; ++i)
        out += "counter,thread" + std::to_string(tc.thread) + "." +
               counter_name(static_cast<Counter>(i)) + "," +
               std::to_string(tc.value[i]) + "\n";
  }
  return out;
}

}  // namespace lotus::obs
