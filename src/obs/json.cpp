#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lotus::obs {

double JsonValue::as_double() const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUInt: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: throw std::runtime_error("JsonValue: not a number");
  }
}

std::uint64_t JsonValue::as_uint() const {
  switch (type_) {
    case Type::kInt:
      if (int_ < 0) throw std::runtime_error("JsonValue: negative integer");
      return static_cast<std::uint64_t>(int_);
    case Type::kUInt: return uint_;
    case Type::kDouble: {
      if (double_ < 0 || double_ != std::floor(double_))
        throw std::runtime_error("JsonValue: not an unsigned integer");
      return static_cast<std::uint64_t>(double_);
    }
    default: throw std::runtime_error("JsonValue: not a number");
  }
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::runtime_error("JsonValue::set on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::runtime_error("JsonValue::push_back on non-array");
  array_.push_back(std::move(value));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kUInt: out += std::to_string(uint_); break;
    case Type::kDouble: {
      if (!std::isfinite(double_)) {  // JSON has no inf/nan; degrade to null
        out += "null";
        break;
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", double_);
      out += buffer;
      break;
    }
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out.push_back(',');
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  // kInt and kUInt are one JSON number space: a non-negative int64 written
  // out parses back as uint64, and the two must still compare equal.
  if (a.type_ == JsonValue::Type::kInt && b.type_ == JsonValue::Type::kUInt)
    return a.int_ >= 0 && static_cast<std::uint64_t>(a.int_) == b.uint_;
  if (a.type_ == JsonValue::Type::kUInt && b.type_ == JsonValue::Type::kInt)
    return b == a;
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull: return true;
    case JsonValue::Type::kBool: return a.bool_ == b.bool_;
    case JsonValue::Type::kInt: return a.int_ == b.int_;
    case JsonValue::Type::kUInt: return a.uint_ == b.uint_;
    case JsonValue::Type::kDouble: return a.double_ == b.double_;
    case JsonValue::Type::kString: return a.string_ == b.string_;
    case JsonValue::Type::kArray: return a.array_ == b.array_;
    case JsonValue::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

namespace {

/// Recursive-descent parser over a string_view; tracks the offset for error
/// messages. Depth-limited so hostile input cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode the BMP codepoint as UTF-8 (surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      fail("invalid number");
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    try {
      if (integral && !negative) return JsonValue(static_cast<std::uint64_t>(std::stoull(token)));
      if (integral) return JsonValue(static_cast<std::int64_t>(std::stoll(token)));
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      // Out-of-range integers fall back to double, like other JSON readers.
      try {
        return JsonValue(std::stod(token));
      } catch (const std::exception&) {
        fail("invalid number");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace lotus::obs
