// Timeline trace export: Chrome-trace JSON of a run's span tree plus the
// work-stealing scheduler's task/steal/idle events.
//
// Two pieces:
//   * SchedEventLog — a process-wide sink the WorkStealingScheduler records
//     into when one is installed (set_sched_event_sink). Events carry
//     trace_clock_s() timestamps, so they align with PhaseTracer spans.
//   * chrome_trace() — serializes spans + scheduler events into the Chrome
//     trace-event format (the JSON that chrome://tracing and Perfetto load:
//     "X" complete events for spans/tasks/idle intervals, "i" instants for
//     steals). The orchestrator's span tree renders as tid 0; worker thread
//     k renders as tid 1+k so worker timelines never interleave with the
//     phase tree. Surfaced as `tc_profile --trace-out=trace.json`.
//
// Thread-safety: SchedEventLog::append is mutex-guarded; the scheduler
// buffers events thread-locally and appends once per thread per run, so
// recording adds no contention to task execution. set_sched_event_sink is an
// atomic pointer swap; install/remove it from the orchestrating thread while
// no scheduler run is in flight.
//
// Overhead: with no sink installed the scheduler pays one relaxed atomic
// load per run. With a sink, one trace_clock_s() read per task boundary and
// a vector push — far below task granularity.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace lotus::obs {

/// One scheduler occurrence on a worker timeline.
struct SchedEvent {
  enum class Kind {
    kTask,   // one task body ran [start_s, start_s+seconds) on `thread`
    kSteal,  // instant: `thread` took `task` from `victim`'s deque
    kIdle,   // interval: `thread` found no local or stealable work
  };

  Kind kind = Kind::kTask;
  unsigned thread = 0;     // pool index of the recording thread
  double start_s = 0.0;    // trace_clock_s() timebase
  double seconds = 0.0;    // 0 for kSteal instants
  std::uint64_t task = 0;  // task submission index (kTask, kSteal)
  int victim = -1;         // robbed pool index (kSteal only)
};

/// Collects scheduler events across one or more runs.
class SchedEventLog {
 public:
  /// Bulk-append one thread's buffered events (called by the scheduler).
  void append(std::vector<SchedEvent> events);

  /// Snapshot of everything recorded so far, sorted by start time.
  [[nodiscard]] std::vector<SchedEvent> events() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SchedEvent> events_;
};

/// Install (or remove, with nullptr) the process-wide sink the
/// work-stealing scheduler records into. The sink must outlive every
/// scheduler run that executes while it is installed.
void set_sched_event_sink(SchedEventLog* sink) noexcept;
[[nodiscard]] SchedEventLog* sched_event_sink() noexcept;

/// Serialize a span tree plus scheduler events as a Chrome trace document.
/// Open spans are skipped (their duration is unknown). Span notes and event
/// deltas become the "args" of their trace slice.
[[nodiscard]] JsonValue chrome_trace(const PhaseTracer& tracer,
                                     const std::vector<SchedEvent>& sched = {});

/// chrome_trace() dumped as a single-line JSON string.
[[nodiscard]] std::string chrome_trace_string(
    const PhaseTracer& tracer, const std::vector<SchedEvent>& sched = {});

}  // namespace lotus::obs
