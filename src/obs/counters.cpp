#include "obs/counters.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace lotus::obs {

const char* counter_name(Counter counter) noexcept {
  switch (counter) {
    case Counter::kTasksExecuted: return "tasks_executed";
    case Counter::kStealAttempts: return "steal_attempts";
    case Counter::kSteals: return "steals";
    case Counter::kSchedBusyNs: return "sched_busy_ns";
    case Counter::kSchedIdleNs: return "sched_idle_ns";
    case Counter::kParallelChunks: return "parallel_chunks";
    case Counter::kIntersectComparisons: return "intersect_comparisons";
    case Counter::kFruitlessSearches: return "fruitless_searches";
    case Counter::kBitarrayProbes: return "bitarray_probes";
    case Counter::kCount: break;
  }
  return "unknown";
}

#if LOTUS_OBS

namespace {

/// One cache line per thread; single-writer (the owning thread), read by
/// snapshots, hence relaxed atomics rather than plain integers.
struct alignas(64) ThreadBlock {
  std::array<std::atomic<std::uint64_t>, kNumCounters> value{};
  std::atomic<int> bound{-1};
};

/// Process-wide registry of live thread blocks plus totals of exited
/// threads. Intentionally leaked so worker threads that unwind during static
/// destruction can still retire their blocks safely.
struct Registry {
  std::mutex mutex;
  std::vector<ThreadBlock*> blocks;
  std::array<std::uint64_t, kNumCounters> retired{};
};

Registry& registry() {
  static Registry* r = new Registry;  // NOLINT: intentional leak, see above
  return *r;
}

struct TlsHolder {
  ThreadBlock block;

  TlsHolder() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.blocks.push_back(&block);
  }

  ~TlsHolder() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::size_t i = 0; i < kNumCounters; ++i)
      r.retired[i] += block.value[i].load(std::memory_order_relaxed);
    r.blocks.erase(std::remove(r.blocks.begin(), r.blocks.end(), &block),
                   r.blocks.end());
  }
};

ThreadBlock& local_block() {
  thread_local TlsHolder holder;
  return holder.block;
}

CounterDomain*& local_domain() noexcept {
  thread_local CounterDomain* domain = nullptr;
  return domain;
}

}  // namespace

void count(Counter counter, std::uint64_t n) {
  std::atomic<std::uint64_t>& slot =
      local_block().value[static_cast<std::size_t>(counter)];
  // Single writer per slot: load+store beats fetch_add on the hot path.
  slot.store(slot.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  if (CounterDomain* domain = local_domain(); domain != nullptr)
    domain->add(counter, n);
}

void set_thread_counter_domain(CounterDomain* domain) noexcept {
  local_domain() = domain;
}

CounterDomain* thread_counter_domain() noexcept { return local_domain(); }

void bind_thread(unsigned pool_index) {
  local_block().bound.store(static_cast<int>(pool_index), std::memory_order_relaxed);
}

CountersSnapshot counters_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  CountersSnapshot snapshot;
  snapshot.total = r.retired;
  for (const ThreadBlock* block : r.blocks) {
    ThreadCounters tc;
    tc.thread = block->bound.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      tc.value[i] = block->value[i].load(std::memory_order_relaxed);
      snapshot.total[i] += tc.value[i];
    }
    if (tc.thread >= 0) snapshot.threads.push_back(tc);
  }
  std::sort(snapshot.threads.begin(), snapshot.threads.end(),
            [](const ThreadCounters& a, const ThreadCounters& b) {
              return a.thread < b.thread;
            });
  // A pool index can be re-bound by a successor thread (pool resize between
  // runs); merge duplicates so per-thread rows stay unique.
  std::vector<ThreadCounters> merged;
  for (const ThreadCounters& tc : snapshot.threads) {
    if (!merged.empty() && merged.back().thread == tc.thread) {
      for (std::size_t i = 0; i < kNumCounters; ++i)
        merged.back().value[i] += tc.value[i];
    } else {
      merged.push_back(tc);
    }
  }
  snapshot.threads = std::move(merged);
  return snapshot;
}

void reset_counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.retired.fill(0);
  for (ThreadBlock* block : r.blocks)
    for (std::size_t i = 0; i < kNumCounters; ++i)
      block->value[i].store(0, std::memory_order_relaxed);
}

#endif  // LOTUS_OBS

}  // namespace lotus::obs
