// Minimal JSON value model for the metrics exporters (obs/metrics.hpp).
//
// Self-contained writer + parser so metric reports can round-trip without an
// external dependency. Integers are kept exact (separate int64/uint64 states
// rather than double) because counter values routinely exceed 2^53.
//
// Thread-safety: JsonValue is a plain value type — concurrent reads of one
// value are safe, any mutation requires external synchronization (the usual
// container rules). Parsing and dumping allocate; none of this is meant for
// hot counting loops, only for report assembly at run boundaries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lotus::obs {

/// One JSON document node: null, bool, exact integer, double, string, array,
/// or insertion-ordered object (order is preserved so exported reports are
/// stable and diffable).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}            // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t value) : type_(Type::kInt), int_(value) {}      // NOLINT(google-explicit-constructor)
  JsonValue(std::uint64_t value) : type_(Type::kUInt), uint_(value) {}   // NOLINT(google-explicit-constructor)
  JsonValue(int value) : JsonValue(static_cast<std::int64_t>(value)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(unsigned value) : JsonValue(static_cast<std::uint64_t>(value)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(double value) : type_(Type::kDouble), double_(value) {}      // NOLINT(google-explicit-constructor)
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(Array value) : type_(Type::kArray), array_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(Object value) : type_(Type::kObject), object_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUInt || type_ == Type::kDouble;
  }

  [[nodiscard]] bool as_bool() const { return bool_; }
  /// Numeric value as double (converting from the integer states).
  [[nodiscard]] double as_double() const;
  /// Numeric value as uint64; throws std::runtime_error on negatives or
  /// non-integral doubles.
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const Array& array() const { return array_; }
  [[nodiscard]] Array& array() { return array_; }
  [[nodiscard]] const Object& object() const { return object_; }
  [[nodiscard]] Object& object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Append/overwrite an object member (container must be object or null).
  void set(std::string key, JsonValue value);
  /// Append an array element (container must be array or null).
  void push_back(JsonValue value);

  /// Serialize. `indent` < 0 → single line; otherwise pretty-print with that
  /// many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete document; throws std::runtime_error with an offset on
  /// malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  /// Deep structural equality. Same-valued kInt/kUInt compare equal (they
  /// are one JSON number space); integers never equal doubles (2 != 2.0).
  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace lotus::obs
