// Hardware event counting behind a runtime-selectable EventProvider.
//
// The paper's locality evaluation (Sec. 6, Figs. 4-5) is stated in hardware
// events: cycles, instructions, cache/TLB misses, branch mispredictions.
// This header defines the event vocabulary (`Event`, `EventCounts`), the
// `EventProvider` interface that delivers those events for a run, and the
// Linux `perf_event_open` implementation (`HwcProvider`) that reads the real
// PMU. The portable fallback — the src/simcache hardware model exposed as a
// provider — lives in simcache/sim_events.hpp so this layer stays free of
// model dependencies; callers pick a source at runtime (`--events hw|sim|off`).
//
// Per-thread groups: HwcProvider opens one counter group per attached thread
// (`attach_current_thread`, called from each pool thread), self-measuring
// with exclude_kernel so it works at perf_event_paranoid <= 2. `read()` sums
// all attached groups, scaling each counter by its enabled/running time to
// undo kernel multiplexing. On non-Linux builds, or when the syscall is
// denied (EPERM/EACCES under seccomp, ENOSYS), `create()` fails with a
// message and callers degrade to the simulated source — never abort a run.
//
// Thread-safety: attach_current_thread() may be called concurrently from
// pool threads (appends under a mutex); read() may run concurrently with
// counting (the kernel snapshots each fd atomically). One provider instance
// per run; destroying it closes every fd.
//
// Overhead: counters run freely in hardware; the only cost is ~kNumEvents
// read(2) syscalls per attached thread at each sample point (span
// boundaries), nothing on the counting paths themselves.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lotus::obs {

/// The fixed event vocabulary every provider reports. Names are part of the
/// exported schema (docs/METRICS.md, "lotus-metrics/7" hw section).
enum class Event : unsigned {
  kCycles = 0,         // CPU cycles (unhalted, user space)
  kInstructions,       // retired instructions
  kL2Misses,           // requests that missed L2 (measured as LLC accesses)
  kLlcMisses,          // last-level-cache misses (Fig. 4a)
  kDtlbMisses,         // data-TLB read misses (Fig. 4b)
  kBranchMispredicts,  // mispredicted branches (Fig. 5c)
  kCount
};

inline constexpr std::size_t kNumEvents = static_cast<std::size_t>(Event::kCount);

/// Stable schema name of an event ("cycles", "llc_misses", ...).
[[nodiscard]] const char* event_name(Event event) noexcept;

/// Where a run's event numbers came from. Stamped into every report so
/// simulated numbers are never mistaken for measured ones.
enum class EventSource { kOff, kSimulated, kHardware };

/// Schema name of a source: "off", "simulated", "hardware".
[[nodiscard]] const char* event_source_name(EventSource source) noexcept;

/// Parse a CLI spelling: "off", "sim"/"simulated", "hw"/"hardware".
[[nodiscard]] std::optional<EventSource> parse_event_source(std::string_view text);

/// One sample of every event. Providers return cumulative counts; span
/// deltas are differences of two samples.
struct EventCounts {
  std::array<std::uint64_t, kNumEvents> value{};

  [[nodiscard]] std::uint64_t operator[](Event event) const noexcept {
    return value[static_cast<std::size_t>(event)];
  }
  [[nodiscard]] std::uint64_t& operator[](Event event) noexcept {
    return value[static_cast<std::size_t>(event)];
  }

  /// True when any event is nonzero.
  [[nodiscard]] bool any() const noexcept {
    for (const std::uint64_t v : value)
      if (v != 0) return true;
    return false;
  }

  EventCounts& operator+=(const EventCounts& other) noexcept {
    for (std::size_t i = 0; i < kNumEvents; ++i) value[i] += other.value[i];
    return *this;
  }

  /// Saturating per-event difference (counters are monotone, but multiplexer
  /// scaling can jitter a later sample below an earlier one).
  friend EventCounts operator-(const EventCounts& a, const EventCounts& b) noexcept {
    EventCounts out;
    for (std::size_t i = 0; i < kNumEvents; ++i)
      out.value[i] = a.value[i] > b.value[i] ? a.value[i] - b.value[i] : 0;
    return out;
  }
};

/// Source of hardware-event samples for one run. Implementations: the real
/// PMU (HwcProvider, below) and the simcache model
/// (simcache::SimEventProvider). A PhaseTracer with a provider attached
/// samples it at span boundaries so every span carries event deltas.
class EventProvider {
 public:
  virtual ~EventProvider() = default;

  [[nodiscard]] virtual EventSource source() const noexcept = 0;

  /// Human-readable backend tag ("perf_event_open", "simcache:SkyLakeX/÷16").
  [[nodiscard]] virtual std::string backend() const = 0;

  /// Cumulative counts since the provider was created/attached.
  [[nodiscard]] virtual EventCounts read() = 0;
};

/// Linux perf_event_open backend: per-thread self-measuring counter groups.
class HwcProvider final : public EventProvider {
 public:
  /// Probe availability and construct. Returns nullptr (with `*error`
  /// explaining why: EPERM, ENOSYS, non-Linux build, ...) when the first
  /// counter cannot be opened. Setting the environment variable
  /// LOTUS_HWC_FORCE_ERROR makes this fail deterministically — the hook the
  /// degradation tests use to simulate a locked-down container.
  static std::unique_ptr<HwcProvider> create(std::string* error = nullptr);

  ~HwcProvider() override;
  HwcProvider(const HwcProvider&) = delete;
  HwcProvider& operator=(const HwcProvider&) = delete;

  /// Open this thread's counter group. Call once from every pool thread
  /// (e.g. via ThreadPool::execute). Events the PMU cannot provide are left
  /// unavailable (their totals stay 0); returns false only when no event at
  /// all could be opened for this thread.
  bool attach_current_thread(std::string* error = nullptr);

  /// Number of threads with at least one open counter.
  [[nodiscard]] std::size_t attached_threads() const;

  [[nodiscard]] EventSource source() const noexcept override {
    return EventSource::kHardware;
  }
  [[nodiscard]] std::string backend() const override { return "perf_event_open"; }

  /// Sum over all attached threads, multiplex-scaled per counter.
  [[nodiscard]] EventCounts read() override;

 private:
  HwcProvider() = default;

  struct ThreadGroup {
    std::array<int, kNumEvents> fd;  // -1 = event unavailable on this thread
  };

  mutable std::mutex mutex_;
  std::vector<ThreadGroup> groups_;
};

}  // namespace lotus::obs
