// tc::Engine — a thread-safe graph-analytics serving layer.
//
// An Engine owns a small fleet of query drivers (each with its *own* thread
// pool, installed per-thread via parallel::ScopedPool) and a keyed
// prepared-graph cache, so a stream of analytic queries — triangle counts,
// k-clique censuses, k-truss decompositions, per-vertex local counts,
// clustering coefficients (QueryOptions::analytic) — against a working
// set of graphs runs (a) concurrently and (b) without re-paying
// preprocessing: the first query for a (graph, artifact kind, config) triple
// builds the artifact — degree order + oriented N^< CSR for the Forward
// family, the LotusGraph (relabeling + H2H + HE/NHE CSX) for lotus/adaptive
// — and every later query counts against the cached copy
// (QueryResult::cache_hit, preprocess_s ≈ 0). The cache key is the
// *artifact* kind, not the analytic — artifact_kind(algorithm, analytic) —
// so a k-clique query right after a TC query on the same graph is a cache
// hit: both consume the one degree-ordered oriented CSR.
//
// Cache policy: single-flight (concurrent first queries for one key build
// once; the others wait on the same shared_future) with LRU eviction charged
// against a util::MemoryBudget. Artifacts are handed out as shared_ptr, so
// an eviction never pulls one out from under an in-flight query. An
// artifact larger than the whole budget is served to its waiters but not
// retained.
//
// Spill tier: with EngineOptions::spill_dir set, an evicted (or oversized)
// artifact is first persisted as a "LOTUSPA1" file (PreparedGraph::save_s)
// instead of being discarded outright. The next miss for that key remaps the
// file zero-copy (load_mapped_s) rather than re-paying the build — remapped
// artifacts charge ≈0 bytes against the cache budget, so they stay resident
// from then on while the page cache holds the actual topology. Spill files
// are removed by invalidate() and the destructor (docs/OUT_OF_CORE.md).
//
// Self-healing (docs/ROBUSTNESS.md): spill files carry checksum footers and
// are verified on remap (eagerly by default; off the query path with
// EngineOptions::background_spill_verify). A file that fails verification —
// bit rot, truncation, outside interference — is quarantined (renamed to
// "<file>.corrupt", preserving the bytes for forensics) and the artifact is
// rebuilt from the live graph through the normal single-flight build, so
// the query still answers correctly; the episode is visible as
// spill_verify_failures / cache_quarantines and a CacheOutcome::kHeal
// telemetry sample. Spill file names embed the pid plus a per-engine random
// token, so engines sharing a spill_dir never collide (a name that somehow
// already exists is skipped and counted, never overwritten).
//
// Telemetry: every completed query is recorded into an obs::Telemetry —
// per-stage latency histograms labeled by algorithm, analytic kind, and
// cache outcome, a rolling window for "now" stats, and a sampled JSON-lines
// query log. Exported three ways: prometheus_text() (text exposition),
// metrics() (`engine_telemetry` section, lotus-metrics/7),
// telemetry_snapshot()
// (programmatic). See docs/TELEMETRY.md.
//
// Thread-safety: submit()/query()/stats()/metrics()/telemetry_snapshot()/
// prometheus_text()/invalidate() are safe from any thread, concurrently. Cancellation (QueryOptions::cancel) and
// deadlines apply per query, exactly as for tc::query — each driver installs
// the query's ExecContext thread-locally, so concurrent queries never see
// each other's interrupts.
//
// Shutdown: the destructor stops accepting work, completes queries already
// picked up by a driver, and fails queued-but-unstarted queries with
// kCancelled (through the Expected error side: they were never attempted).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "tc/api.hpp"
#include "tc/prepared.hpp"
#include "util/memory_budget.hpp"

namespace lotus::tc {

struct EngineOptions {
  /// Query drivers = maximum queries in flight; each owns a thread pool.
  unsigned num_drivers = 2;

  /// Pool width per driver. 0 = hardware_concurrency / num_drivers (min 1),
  /// so a default engine never oversubscribes the machine.
  unsigned threads_per_query = 0;

  /// Byte budget for cached prepared-graph artifacts; LRU entries are
  /// evicted to stay under it. 0 = unlimited (accounting only).
  std::uint64_t cache_budget_bytes = 0;

  /// Existing directory for spilled artifacts. "" disables the spill tier:
  /// evictions discard and the next query rebuilds from scratch.
  std::string spill_dir;

  /// Verify spill-file checksums in the background instead of eagerly on
  /// remap: the remap keeps its pure zero-copy cold start (no page of the
  /// payload is touched) and a verifier thread re-checks the file off the
  /// query path, quarantining the file and dropping the resident artifact
  /// if it is corrupt. Default off: remaps verify before serving.
  bool background_spill_verify = false;

  /// Serving telemetry (docs/TELEMETRY.md): per-stage latency histograms,
  /// the rolling window, and the sampled query log. On by default — the
  /// bench `telemetry` scenario gates its overhead at <2%.
  obs::TelemetryOptions telemetry;
};

/// Monotonic serving counters. Engine::stats() copies the whole struct
/// under one mutex hold, so a snapshot is internally consistent: every
/// counter pair that is incremented together stays summable — in particular
/// `cache_hits + cache_misses == cache_lookups` holds in *every* snapshot,
/// not just quiescent ones (the TSan stress suite asserts this under load).
struct EngineStats {
  std::uint64_t submitted = 0;  // accepted + rejected
  std::uint64_t completed = 0;  // queries that ran (any final status)
  std::uint64_t rejected = 0;   // failed validation or arrived at shutdown
  std::uint64_t deadline_misses = 0;  // completed with kDeadlineExceeded

  std::uint64_t cache_lookups = 0;    // resolved lookups (== hits + misses)
  std::uint64_t cache_hits = 0;       // served from a cached/in-flight artifact
  std::uint64_t cache_misses = 0;     // had to build (or build failed)
  std::uint64_t cache_evictions = 0;  // LRU evictions + invalidate() drops
  std::uint64_t cache_entries = 0;    // current entries
  std::uint64_t cache_bytes = 0;      // current charged bytes

  std::uint64_t cache_spills = 0;   // artifacts written to spill_dir on evict
  std::uint64_t cache_remaps = 0;   // misses served by remapping a spill file
  std::uint64_t cache_spilled_entries = 0;  // spill files currently on disk

  std::uint64_t spill_verify_failures = 0;  // spill files failing checksum verify
  std::uint64_t cache_quarantines = 0;  // corrupt spills set aside as .corrupt
  std::uint64_t spill_cleanup_failures = 0;  // spill unlinks that failed
  std::uint64_t spill_collisions = 0;  // spill writes skipped: name taken on disk

  double queue_s_total = 0.0;       // summed queue wait of completed queries
  double preprocess_s_total = 0.0;  // summed preprocess (≈0 on hits)
  double count_s_total = 0.0;       // summed kernel time
};

/// One unit of work: which algorithm, against which graph. `graph_key` is
/// the cache identity — queries with the same key share artifacts, so it
/// must change when the graph data changes (empty key = never cache). The
/// graph must stay alive and unmodified until the query's future resolves.
struct QuerySpec {
  Algorithm algorithm = Algorithm::kLotus;
  std::string graph_key;
  const graph::CsrGraph* graph = nullptr;
  QueryOptions options;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Enqueue a query; the future resolves when it completes. Same Expected
  /// semantics as tc::query(): execution failures land in
  /// QueryResult::status; the error side is reserved for queries never
  /// attempted (null graph or a malformed AnalyticsRequest →
  /// kInvalidArgument via validate(), shutdown → kCancelled).
  std::future<util::Expected<QueryResult>> submit(QuerySpec spec);

  /// submit() + wait: convenience for callers without their own pipeline.
  util::Expected<QueryResult> query(QuerySpec spec);

  /// Drop every cached artifact of `graph_key` (all kinds/configs); counted
  /// as evictions. Call when the underlying graph data changed.
  void invalidate(const std::string& graph_key);

  /// One consistent snapshot of every serving counter (single mutex hold;
  /// see the EngineStats invariants).
  [[nodiscard]] EngineStats stats() const;

  /// Aggregate serving metrics as a "lotus-metrics/7" registry whose
  /// `engine` section carries the EngineStats fields and whose
  /// `engine_telemetry` section carries histogram quantiles + the rolling
  /// window (docs/METRICS.md, docs/TELEMETRY.md).
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  /// Merged point-in-time view of the telemetry layer (latency histograms
  /// per algorithm / cache outcome, rolling window, query-log counters).
  [[nodiscard]] obs::TelemetrySnapshot telemetry_snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of the serving counters and
  /// latency histograms — the `/metrics` endpoint body. Metric families are
  /// listed in obs::kEngineMetricNames and documented in docs/TELEMETRY.md.
  [[nodiscard]] std::string prometheus_text() const;

  [[nodiscard]] unsigned num_drivers() const noexcept {
    return static_cast<unsigned>(drivers_.size());
  }
  [[nodiscard]] unsigned threads_per_query() const noexcept {
    return threads_per_query_;
  }

 private:
  using ArtifactFuture =
      std::shared_future<std::shared_ptr<const PreparedGraph>>;

  struct Job {
    QuerySpec spec;
    std::promise<util::Expected<QueryResult>> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };

  struct CacheEntry {
    ArtifactFuture artifact;
    std::uint64_t bytes = 0;      // charged footprint (0 while building)
    std::uint64_t last_used = 0;  // LRU tick
    bool charged = false;
  };

  struct Acquired {
    std::shared_ptr<const PreparedGraph> artifact;  // null → run end-to-end
    bool hit = false;
    double build_s = 0.0;  // paid by this query (the builder) on a miss
    obs::CacheOutcome outcome = obs::CacheOutcome::kUncached;
  };

  void driver_loop();
  void run_job(Job job);
  Acquired acquire_artifact(const QuerySpec& spec, ArtifactKind kind);
  /// Charge `bytes`, LRU-evicting (and, with spill_dir, spilling) other
  /// charged entries as needed. Returns false when the artifact cannot fit
  /// even with an empty cache.
  bool reserve_locked(std::uint64_t bytes, const std::string& keep_key);
  /// Persist `artifact` under `key` in spill_dir (best effort; no-op when
  /// spilling is disabled, the key already has a file, or the write fails).
  void spill_locked(const std::string& key,
                    const std::shared_ptr<const PreparedGraph>& artifact);
  /// Drop the spill file of one key (best effort; unlink failures counted).
  void drop_spill_locked(const std::string& key);
  /// Set a corrupt spill file aside as "<file>.corrupt" (preserving the
  /// bytes for forensics) and forget its key; `why` goes to the query log.
  void quarantine_spill_locked(const std::string& key, const std::string& why);
  /// Unlink one spill file, counting failures (ENOENT is not a failure) in
  /// spill_cleanup_failures and the query log. `context` names the caller.
  void remove_spill_file_locked(const std::string& path, const char* context);
  /// Launch the off-query-path checksum re-check of a kOff-remapped spill
  /// (EngineOptions::background_spill_verify); joined in the destructor.
  void start_background_verify(const std::string& key, const std::string& path);

  EngineOptions options_;
  unsigned threads_per_query_ = 1;
  util::MemoryBudget cache_budget_;
  std::unique_ptr<obs::Telemetry> telemetry_;  // never null; set in the ctor

  mutable std::mutex mutex_;  // guards queue_, cache_, stats_, tick_
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool shutting_down_ = false;
  std::map<std::string, CacheEntry> cache_;
  std::map<std::string, std::string> spilled_;  // cache key -> spill file path
  std::uint64_t tick_ = 0;
  std::uint64_t spill_seq_ = 0;   // uniquifies spill file names in-process
  std::string spill_token_;       // per-engine random token in spill names
  EngineStats stats_;

  std::vector<std::thread> drivers_;
  std::vector<std::thread> verifiers_;  // background spill verifies (mutex_)
};

}  // namespace lotus::tc
