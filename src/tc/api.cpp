#include "tc/api.hpp"

#include <iostream>
#include <memory>

#include "baselines/matrix_tc.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/degree_order.hpp"
#include "lotus/adaptive.hpp"
#include "lotus/lotus.hpp"
#include "lotus/lotus_graph.hpp"
#include "parallel/exec_context.hpp"
#include "parallel/thread_pool.hpp"
#include "obs/telemetry.hpp"
#include "simcache/machines.hpp"
#include "simcache/sim_events.hpp"
#include "tc/instrumented.hpp"
#include "tc/prepared.hpp"
#include "util/memory_budget.hpp"
#include "util/timer.hpp"

namespace lotus::tc {

namespace {

// Single source of truth for the CLI/schema names: name(), parse(),
// all_algorithms() and the benches' sweep order all derive from this table.
// Order matters — it is the display order (LOTUS first).
struct AlgorithmName {
  Algorithm algorithm;
  const char* name;
};
constexpr AlgorithmName kAlgorithmTable[] = {
    {Algorithm::kLotus, "lotus"},
    {Algorithm::kAdaptive, "adaptive"},
    {Algorithm::kForwardMerge, "gap-forward"},
    {Algorithm::kForwardGallop, "forward-gallop"},
    {Algorithm::kForwardSimd, "forward-simd"},
    {Algorithm::kForwardHashed, "forward-hashed"},
    {Algorithm::kForwardBitmap, "forward-bitmap"},
    {Algorithm::kForwardHybrid, "forward-hybrid"},
    {Algorithm::kEdgeParallel, "gbbs-edgepar"},
    {Algorithm::kEdgeIterator, "ggrind-edgeit"},
    {Algorithm::kNodeIterator, "node-iterator"},
    {Algorithm::kBlocked, "bbtc-blocked"},
    {Algorithm::kAyz, "ayz-matrix"},
    {Algorithm::kSpGemmMasked, "spgemm-masked"},
};

RunResult from_baseline(const baselines::TcResult& r) {
  RunResult out;
  out.triangles = r.triangles;
  out.preprocess_s = r.preprocess_s;
  out.count_s = r.count_s;
  return out;
}

// Record the coarse two-phase timing of an already-finished run as leaf
// spans, so every algorithm produces a span tree even without fine tracing.
void leaf_spans(obs::PhaseTracer& trace, const RunResult& r) {
  if (r.preprocess_s > 0.0) trace.leaf("preprocess", r.preprocess_s);
  trace.leaf("count", r.count_s);
}

// Value of a note key anywhere in the span tree ("" if absent) — used to
// recover the adaptive fallback's decision after the fact.
std::string find_note(const obs::PhaseTracer& trace, std::string_view key) {
  for (const auto& span : trace.spans())
    for (const auto& [k, v] : span.notes)
      if (k == key) return v;
  return {};
}

util::Status interrupt_status(parallel::Interrupt interrupt) {
  return interrupt == parallel::Interrupt::kCancelled
             ? util::Status{util::StatusCode::kCancelled,
                            "query cancelled via QueryOptions::cancel"}
             : util::Status{util::StatusCode::kDeadlineExceeded,
                            "QueryOptions::deadline expired before completion"};
}

// Algorithms whose scratch/topology allocations a memory budget can veto;
// all of them degrade to the scratch-free gap-forward merge kernel.
bool budget_degradable(Algorithm algorithm) {
  return algorithm == Algorithm::kLotus || algorithm == Algorithm::kAdaptive ||
         algorithm == Algorithm::kForwardHashed ||
         algorithm == Algorithm::kForwardBitmap ||
         algorithm == Algorithm::kForwardHybrid;
}

// One end-to-end (or prepared) execution of the query's analytic, optionally
// traced. Exceptions propagate to the caller — the retry/status policy lives
// in execute_query. Non-triangle analytics route to the mining-engine layer
// (analytics_exec.cpp); the TC path below is unchanged.
RunResult execute_once(Algorithm algorithm, const graph::CsrGraph& graph,
                       const QueryOptions& options,
                       const PreparedGraph* prepared, obs::PhaseTracer* trace) {
  if (options.analytic.kind != AnalyticKind::kTriangles)
    return detail::run_analytic(algorithm, graph, options, prepared, trace);
  const core::LotusConfig& config = options.config;
  if (prepared != nullptr)
    return detail::run_prepared_kernel(algorithm, *prepared, config, trace);
  switch (algorithm) {
    case Algorithm::kLotus: {
      const core::LotusResult r = core::count_triangles(graph, config, trace);
      RunResult out;
      out.triangles = r.triangles;
      out.preprocess_s = r.preprocess_s;
      out.count_s = r.count_s();
      return out;
    }
    case Algorithm::kAdaptive: {
      const core::AdaptiveResult r = core::adaptive_count(graph, config);
      RunResult out;
      out.triangles = r.triangles;
      out.preprocess_s = r.preprocess_s;
      out.count_s = r.count_s;
      if (trace != nullptr) {
        leaf_spans(*trace, out);
        trace->note("chosen_algorithm",
                    r.algorithm == core::ChosenAlgorithm::kLotus ? "lotus"
                                                                 : "forward");
      }
      return out;
    }
    case Algorithm::kForwardMerge:
    case Algorithm::kForwardGallop:
    case Algorithm::kForwardSimd:
    case Algorithm::kForwardHashed:
    case Algorithm::kForwardBitmap:
    case Algorithm::kForwardHybrid:
    case Algorithm::kEdgeParallel:
    case Algorithm::kEdgeIterator:
    case Algorithm::kNodeIterator:
    case Algorithm::kBlocked: {
      baselines::TcResult r;
      switch (algorithm) {
        case Algorithm::kForwardMerge: r = baselines::forward_merge(graph); break;
        case Algorithm::kForwardGallop: r = baselines::forward_gallop(graph); break;
        case Algorithm::kForwardSimd: r = baselines::forward_simd(graph); break;
        case Algorithm::kForwardHashed: r = baselines::forward_hashed(graph); break;
        case Algorithm::kForwardBitmap: r = baselines::forward_bitmap(graph); break;
        case Algorithm::kForwardHybrid: r = baselines::forward_hybrid(graph); break;
        case Algorithm::kEdgeParallel:
          r = baselines::edge_parallel_forward(graph);
          break;
        case Algorithm::kEdgeIterator: r = baselines::edge_iterator(graph); break;
        case Algorithm::kNodeIterator: r = baselines::node_iterator(graph); break;
        default: r = baselines::blocked_tc(graph); break;
      }
      const RunResult out = from_baseline(r);
      if (trace != nullptr) leaf_spans(*trace, out);
      return out;
    }
    case Algorithm::kAyz:
    case Algorithm::kSpGemmMasked: {
      util::Timer timer;
      RunResult out;
      out.triangles = algorithm == Algorithm::kAyz
                          ? baselines::ayz_tc(graph)
                          : baselines::spgemm_masked_tc(graph);
      out.count_s = timer.elapsed_s();
      if (trace != nullptr) leaf_spans(*trace, out);
      return out;
    }
  }
  return {};
}

// `--events sim`: replay the already-finished run single-threaded through the
// simcache model and graft the modeled per-phase event deltas onto the span
// tree. The replay re-executes the counting kernels (not preprocessing), so
// only count-side spans receive events. Supported for the algorithms that
// have instrumented replays (lotus, adaptive, gap-forward); everything else
// reports zero events with an explanatory note.
void attribute_simulated(ProfileReport& report, const graph::CsrGraph& graph,
                         const core::LotusConfig& config,
                         std::uint32_t sim_cache_scale) {
  const simcache::MachineConfig machine =
      simcache::skylakex().scaled(sim_cache_scale);
  simcache::SimEventProvider sim(machine);
  report.event_source = obs::EventSource::kSimulated;
  report.event_backend = sim.backend();

  Algorithm replayed = report.algorithm;
  if (report.algorithm == Algorithm::kAdaptive)
    replayed = find_note(report.trace, "chosen_algorithm") == "forward"
                   ? Algorithm::kForwardMerge
                   : Algorithm::kLotus;

  std::uint64_t replay_triangles = 0;
  switch (replayed) {
    case Algorithm::kLotus: {
      const core::LotusGraph lg = core::LotusGraph::build(graph, config);
      const SampledLotusReplay replay =
          replay_lotus_sampled(lg, config, sim.model());
      replay_triangles = replay.triangles;
      const obs::EventCounts hub = simcache::to_event_counts(replay.after_hub);
      const obs::EventCounts hnn = simcache::to_event_counts(replay.after_hnn);
      const obs::EventCounts nnn = simcache::to_event_counts(replay.after_nnn);
      report.events = nnn;  // cumulative after the last phase = run total
      if (report.algorithm == Algorithm::kAdaptive) {
        // Adaptive exposes only coarse leaf spans; graft the total.
        report.trace.set_events("count", nnn);
      } else {
        report.trace.set_events("count", nnn);
        report.trace.set_events("hhh_hhn", hub);
        if (config.fuse_hnn_nnn) {
          report.trace.set_events("hnn_nnn_fused", nnn - hub);
        } else {
          report.trace.set_events("hnn", hnn - hub);
          report.trace.set_events("nnn", nnn - hnn);
        }
      }
      report.event_note =
          "events modeled by single-threaded simcache replay of the counting "
          "phases; preprocess spans carry no events";
      break;
    }
    case Algorithm::kForwardMerge: {
      const graph::OrientedCsr oriented = graph::degree_ordered_oriented(graph);
      replay_triangles = replay_forward(oriented, sim.model());
      report.events = sim.read();
      report.trace.set_events("count", report.events);
      report.event_note =
          "events modeled by single-threaded simcache replay of the counting "
          "phase; preprocess spans carry no events";
      break;
    }
    default:
      report.events = obs::EventCounts{};
      report.event_note = "no instrumented replay for " + name(report.algorithm) +
                          "; simulated events are zero";
      return;
  }
  if (replay_triangles != report.result.triangles)
    report.event_note += "; replay count mismatch (replay " +
                         std::to_string(replay_triangles) + " vs run " +
                         std::to_string(report.result.triangles) + ")";
}

// Route this query's counter domain and scheduler sink through the pool the
// driver is using, so pool workers attribute their work to exactly this
// query. Balanced on unwind — execute_query catches the exceptions the run
// body may throw, and a stale pool pointer must not outlive the query.
struct PoolObsGuard {
  PoolObsGuard(parallel::ThreadPool& pool, obs::CounterDomain* domain,
               obs::SchedEventLog* sink)
      : pool_(pool) {
    pool_.set_counter_domain(domain);
    pool_.set_sched_sink(sink);
  }
  ~PoolObsGuard() {
    pool_.set_counter_domain(nullptr);
    pool_.set_sched_sink(nullptr);
  }
  PoolObsGuard(const PoolObsGuard&) = delete;
  PoolObsGuard& operator=(const PoolObsGuard&) = delete;
  parallel::ThreadPool& pool_;
};

// One profiled execution: span tree, query-scoped counters, optional
// hardware/simulated events and scheduler timeline. Exceptions propagate.
ProfileReport profiled_once(Algorithm algorithm, const graph::CsrGraph& graph,
                            const QueryOptions& options,
                            const PreparedGraph* prepared) {
  ProfileReport report;
  report.algorithm = algorithm;
  report.vertices = graph.num_vertices();
  report.edges = graph.num_edges() / 2;
  parallel::ThreadPool& pool = parallel::default_pool();
  report.threads = pool.size();

  // Hardware counters: probe availability up front and degrade to the
  // simulated source rather than failing the run (locked-down containers
  // routinely deny perf_event_open).
  obs::EventSource source = options.events;
  std::unique_ptr<obs::HwcProvider> hw;
  obs::EventCounts hw_begin;
  if (source == obs::EventSource::kHardware) {
    std::string error;
    hw = obs::HwcProvider::create(&error);
    if (hw == nullptr) {
      std::cerr << "[obs] hardware counters unavailable (" << error
                << "); falling back to --events sim\n";
      source = obs::EventSource::kSimulated;
      report.event_note =
          "hardware counters unavailable (" + error + "); degraded to simulated";
      report.degradations.push_back(
          {"hwc", "fallback=simulated", "hardware counters unavailable: " + error});
    } else {
      pool.execute([&hw](unsigned) { hw->attach_current_thread(); });
      report.trace.set_event_provider(hw.get());
      hw_begin = hw->read();
    }
  }

  obs::CounterDomain domain;
  obs::SchedEventLog sched_log;
  {
    obs::ScopedCounterDomain scoped_domain(&domain);
    PoolObsGuard pool_obs(pool, &domain,
                          options.capture_sched_events ? &sched_log : nullptr);
    report.result =
        execute_once(algorithm, graph, options, prepared, &report.trace);
  }
  if (options.capture_sched_events) report.sched_events = sched_log.events();

  report.counters = domain.snapshot();

  if (hw != nullptr) {
    report.event_source = obs::EventSource::kHardware;
    report.event_backend = hw->backend();
    report.events = hw->read() - hw_begin;
    // The provider dies with this frame; the trace must not keep sampling it.
    report.trace.set_event_provider(nullptr);
  } else if (source == obs::EventSource::kSimulated) {
    if (options.analytic.kind != AnalyticKind::kTriangles) {
      // The simcache replays model the triangle-counting kernels only.
      report.event_source = obs::EventSource::kSimulated;
      report.events = obs::EventCounts{};
      report.event_note = "no instrumented replay for analytic " +
                          analytic_name(options.analytic.kind) +
                          "; simulated events are zero";
    } else {
      const std::string degradation_note = report.event_note;
      attribute_simulated(report, graph, options.config,
                          options.sim_cache_scale);
      if (!degradation_note.empty())
        report.event_note = degradation_note + "; " + report.event_note;
    }
  }
  return report;
}

}  // namespace

namespace detail {

QueryResult execute_query(Algorithm algorithm, const graph::CsrGraph& graph,
                          const QueryOptions& options,
                          const PreparedGraph* prepared) {
  QueryResult out;
  out.algorithm = algorithm;
  out.threads = parallel::default_pool().size();
  // Analytic identity is part of the result even when execution never starts
  // (pre-cancelled token, expired deadline): clear_payload keeps kind/k, so
  // they must be stamped from the request, not from a run that may not happen.
  out.result.analytics.kind = options.analytic.kind;
  out.result.analytics.k =
      options.analytic.kind == AnalyticKind::kKClique ? options.analytic.k : 3;

  // Query-scoped environment: both installs are thread-local, so concurrent
  // queries on different driver threads never see each other's context.
  // Skipped entirely when unused — a bare query() stays zero-overhead.
  parallel::ExecContext ctx;
  ctx.cancel = options.cancel;
  ctx.deadline = options.deadline;
  std::optional<parallel::ScopedExecContext> exec;
  if (options.cancel != nullptr || !options.deadline.is_unlimited())
    exec.emplace(&ctx);
  util::MemoryBudget budget(options.memory_budget_bytes);
  std::optional<util::ScopedMemoryBudget> scoped_budget;
  if (options.memory_budget_bytes != 0) scoped_budget.emplace(&budget);

  const auto fill_identity = [&](ProfileReport& r, Algorithm a) {
    r.algorithm = a;
    r.vertices = graph.num_vertices();
    r.edges = graph.num_edges() / 2;
    r.threads = out.threads;
    r.result.analytics.kind = out.result.analytics.kind;
    r.result.analytics.k = out.result.analytics.k;
  };

  if (const auto i = parallel::check_interrupt();
      i != parallel::Interrupt::kNone) {
    out.status = interrupt_status(i);
    if (options.profile) {
      out.profile.emplace();
      fill_identity(*out.profile, algorithm);
      out.profile->status = out.status;
    }
    return out;
  }

  Algorithm active = algorithm;
  for (int attempt = 0;; ++attempt) {
    try {
      if (options.profile) {
        ProfileReport report = profiled_once(active, graph, options, prepared);
        // Interrupts are sticky: any chunk or phase the run skipped is still
        // visible here, so a partial count can never escape as valid.
        if (const auto i = parallel::check_interrupt();
            i != parallel::Interrupt::kNone) {
          report.status = interrupt_status(i);
          report.result.clear_payload();
        }
        out.algorithm = active;
        out.result = report.result;
        out.status = report.status;
        out.profile = std::move(report);
      } else {
        const RunResult result =
            execute_once(active, graph, options, prepared, nullptr);
        if (const auto i = parallel::check_interrupt();
            i != parallel::Interrupt::kNone) {
          out.status = interrupt_status(i);
        } else {
          out.algorithm = active;
          out.result = result;
        }
      }
      break;
    } catch (const std::bad_alloc& e) {  // includes util::BudgetError
      if (attempt == 0 && options.allow_degradation &&
          budget_degradable(active)) {
        out.degradations.push_back({name(active),
                                    "fallback=" + name(Algorithm::kForwardMerge),
                                    e.what()});
        budget.reset_used();  // the failed attempt's charges are released
        active = Algorithm::kForwardMerge;
        // Prepared artifacts belong to the vetoed algorithm; the fallback
        // runs end-to-end (gap-forward preprocessing is cheap and
        // scratch-free).
        prepared = nullptr;
        continue;
      }
      out.status = {util::StatusCode::kOutOfMemory, e.what()};
      if (options.profile) {
        out.profile.emplace();
        fill_identity(*out.profile, active);
      }
      break;
    } catch (...) {
      out.status = util::status_from_current_exception();
      if (options.profile) {
        out.profile.emplace();
        fill_identity(*out.profile, active);
      }
      break;
    }
  }

  if (out.profile.has_value()) {
    // Budget fallbacks happened before the run that produced the report; any
    // degradations profiled_once recorded itself (hw→sim) come after.
    std::vector<obs::Degradation> merged = out.degradations;
    merged.insert(merged.end(), out.profile->degradations.begin(),
                  out.profile->degradations.end());
    out.profile->degradations = merged;
    out.degradations = std::move(merged);
    out.profile->status = out.status;
  }
  return out;
}

}  // namespace detail

util::Status validate(Algorithm algorithm, const AnalyticsRequest& request) {
  if (request.kind == AnalyticKind::kTriangles) return util::Status::Ok();
  if (request.kind == AnalyticKind::kKClique && request.k < 3)
    return {util::StatusCode::kInvalidArgument,
            "kclique requires k >= 3 (k = 3 is the triangle census)"};
  if (request.kind == AnalyticKind::kKClique &&
      !(request.hub_fraction > 0.0 && request.hub_fraction <= 1.0))
    return {util::StatusCode::kInvalidArgument,
            "hub_fraction must be in (0, 1]"};
  if (artifact_kind(algorithm) == ArtifactKind::kNone)
    return {util::StatusCode::kInvalidArgument,
            "analytic '" + analytic_name(request.kind) + "' cannot run on " +
                name(algorithm) +
                ": the algorithm builds no reusable prepared artifact "
                "(pick lotus/adaptive or a Forward-family substrate)"};
  return util::Status::Ok();
}

util::Expected<QueryResult> query(Algorithm algorithm,
                                  const graph::CsrGraph& graph,
                                  const QueryOptions& options) {
  // Malformed analytic requests are never attempted — the Expected side.
  if (util::Status admission = validate(algorithm, options.analytic);
      !admission.ok())
    return admission;
  if (options.telemetry == nullptr || !options.telemetry->enabled())
    return detail::execute_query(algorithm, graph, options, nullptr);

  util::Timer timer;
  QueryResult out = detail::execute_query(algorithm, graph, options, nullptr);
  const double total_s = timer.elapsed_s();
  const auto to_ns = [](double seconds) {
    return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9)
                         : std::uint64_t{0};
  };
  obs::QuerySample sample;
  // The *requested* algorithm labels the series, like the engine path: a
  // budget fallback shows up in the requested algorithm's latency, not as
  // phantom gap-forward traffic.
  sample.algorithm = static_cast<std::size_t>(algorithm);
  sample.analytic = static_cast<std::size_t>(options.analytic.kind);
  sample.outcome = obs::CacheOutcome::kUncached;
  sample.status = util::status_code_name(out.status.code());
  sample.threads = out.threads;
  sample.deadline_missed =
      out.status.code() == util::StatusCode::kDeadlineExceeded;
  sample.prepare_ns = to_ns(out.result.preprocess_s);
  sample.count_ns = to_ns(out.result.count_s);
  sample.total_ns = to_ns(total_s);
  options.telemetry->record(sample);
  return out;
}

obs::MetricsRegistry ProfileReport::metrics() const {
  obs::MetricsRegistry registry;
  registry.set_meta("algorithm", name(algorithm));
  registry.set_meta("analytic", analytic_name(result.analytics.kind));
  registry.set_meta("vertices", vertices);
  registry.set_meta("edges", edges);
  registry.set_meta("threads", static_cast<std::uint64_t>(threads));
  registry.set_meta("obs_enabled", obs::enabled());
  registry.set_metric("triangles", result.triangles);
  if (result.analytics.kind != AnalyticKind::kTriangles) {
    const AnalyticsResult& a = result.analytics;
    registry.set_metric("analytic_count", a.count);
    switch (a.kind) {
      case AnalyticKind::kKClique:
        registry.set_metric("clique_k", static_cast<std::uint64_t>(a.k));
        registry.set_metric("hub_cliques", a.hub_count);
        break;
      case AnalyticKind::kKTruss:
        registry.set_metric("truss_max_k",
                            static_cast<std::uint64_t>(a.truss.max_k));
        registry.set_metric("edges_in_max_truss", a.truss.edges_in_max_truss);
        break;
      case AnalyticKind::kClustering:
        registry.set_metric("global_transitivity",
                            a.clustering.global_transitivity);
        registry.set_metric("avg_clustering", a.clustering.avg_clustering);
        registry.set_metric("wedges", a.clustering.wedges);
        break;
      default:
        break;
    }
  }
  registry.set_metric("preprocess_s", result.preprocess_s);
  registry.set_metric("count_s", result.count_s);
  registry.set_metric("total_s", result.total_s());
  registry.set_metric("triangles_per_s", result.triangles_per_s());
  registry.set_metric("edges_per_s", edges_per_s(edges, result.total_s()));
  registry.set_hw(event_source, event_backend, events, event_note);
  registry.set_resilience(status, degradations);
  if (engine_served)
    registry.set_engine({{"cache_hit", cache_hit},
                         {"queue_s", queue_s},
                         {"preprocess_s", result.preprocess_s},
                         {"count_s", result.count_s}});
  registry.set_trace(trace);
  registry.set_counters(counters);
  return registry;
}

std::string ProfileReport::to_json(int indent) const {
  return metrics().to_json_string(indent);
}

std::string ProfileReport::to_chrome_trace() const {
  return obs::chrome_trace_string(trace, sched_events);
}

std::string name(Algorithm algorithm) {
  for (const AlgorithmName& entry : kAlgorithmTable)
    if (entry.algorithm == algorithm) return entry.name;
  return "unknown";
}

std::optional<Algorithm> parse(const std::string& text) {
  for (const AlgorithmName& entry : kAlgorithmTable)
    if (text == entry.name) return entry.algorithm;
  return std::nullopt;
}

std::vector<Algorithm> all_algorithms() {
  std::vector<Algorithm> out;
  out.reserve(std::size(kAlgorithmTable));
  for (const AlgorithmName& entry : kAlgorithmTable)
    out.push_back(entry.algorithm);
  return out;
}

std::vector<std::string> algorithm_labels() {
  std::vector<std::string> labels(std::size(kAlgorithmTable));
  for (const AlgorithmName& entry : kAlgorithmTable)
    labels[static_cast<std::size_t>(entry.algorithm)] = entry.name;
  return labels;
}

std::vector<Algorithm> paper_comparators() {
  return {Algorithm::kBlocked, Algorithm::kEdgeIterator,
          Algorithm::kForwardMerge, Algorithm::kEdgeParallel,
          Algorithm::kLotus};
}

std::string analytic_name(AnalyticKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  if (index < std::size(kAnalyticNames)) return kAnalyticNames[index];
  return "unknown";
}

std::optional<AnalyticKind> parse_analytic(const std::string& text) {
  for (std::size_t i = 0; i < std::size(kAnalyticNames); ++i)
    if (text == kAnalyticNames[i]) return static_cast<AnalyticKind>(i);
  return std::nullopt;
}

std::vector<AnalyticKind> all_analytics() {
  std::vector<AnalyticKind> out;
  out.reserve(std::size(kAnalyticNames));
  for (std::size_t i = 0; i < std::size(kAnalyticNames); ++i)
    out.push_back(static_cast<AnalyticKind>(i));
  return out;
}

std::vector<std::string> analytic_labels() {
  return {std::begin(kAnalyticNames), std::end(kAnalyticNames)};
}

}  // namespace lotus::tc
