#include "tc/api.hpp"

#include "baselines/matrix_tc.hpp"
#include "baselines/tc_baselines.hpp"
#include "lotus/adaptive.hpp"
#include "lotus/lotus.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace lotus::tc {

namespace {
RunResult from_baseline(const baselines::TcResult& r) {
  return {r.triangles, r.preprocess_s, r.count_s};
}

// Record the coarse two-phase timing of an already-finished run as leaf
// spans, so every algorithm produces a span tree even without fine tracing.
void leaf_spans(obs::PhaseTracer& trace, const RunResult& r) {
  if (r.preprocess_s > 0.0) trace.leaf("preprocess", r.preprocess_s);
  trace.leaf("count", r.count_s);
}
}  // namespace

RunResult run(Algorithm algorithm, const graph::CsrGraph& graph,
              const core::LotusConfig& config) {
  switch (algorithm) {
    case Algorithm::kLotus: {
      const core::LotusResult r = core::count_triangles(graph, config);
      return {r.triangles, r.preprocess_s, r.count_s()};
    }
    case Algorithm::kAdaptive: {
      const core::AdaptiveResult r = core::adaptive_count(graph, config);
      return {r.triangles, r.preprocess_s, r.count_s};
    }
    case Algorithm::kForwardMerge:
      return from_baseline(baselines::forward_merge(graph));
    case Algorithm::kForwardGallop:
      return from_baseline(baselines::forward_gallop(graph));
    case Algorithm::kForwardSimd:
      return from_baseline(baselines::forward_simd(graph));
    case Algorithm::kForwardHashed:
      return from_baseline(baselines::forward_hashed(graph));
    case Algorithm::kForwardBitmap:
      return from_baseline(baselines::forward_bitmap(graph));
    case Algorithm::kEdgeParallel:
      return from_baseline(baselines::edge_parallel_forward(graph));
    case Algorithm::kEdgeIterator:
      return from_baseline(baselines::edge_iterator(graph));
    case Algorithm::kNodeIterator:
      return from_baseline(baselines::node_iterator(graph));
    case Algorithm::kBlocked:
      return from_baseline(baselines::blocked_tc(graph));
    case Algorithm::kAyz: {
      util::Timer timer;
      RunResult r;
      r.triangles = baselines::ayz_tc(graph);
      r.count_s = timer.elapsed_s();
      return r;
    }
    case Algorithm::kSpGemmMasked: {
      util::Timer timer;
      RunResult r;
      r.triangles = baselines::spgemm_masked_tc(graph);
      r.count_s = timer.elapsed_s();
      return r;
    }
  }
  return {};
}

ProfileReport run_profiled(Algorithm algorithm, const graph::CsrGraph& graph,
                           const core::LotusConfig& config) {
  obs::reset_counters();

  ProfileReport report;
  report.algorithm = algorithm;
  report.vertices = graph.num_vertices();
  report.edges = graph.num_edges() / 2;
  report.threads = parallel::default_pool().size();

  switch (algorithm) {
    case Algorithm::kLotus: {
      const core::LotusResult r =
          core::count_triangles(graph, config, &report.trace);
      report.result = {r.triangles, r.preprocess_s, r.count_s()};
      break;
    }
    case Algorithm::kAdaptive: {
      const core::AdaptiveResult r = core::adaptive_count(graph, config);
      report.result = {r.triangles, r.preprocess_s, r.count_s};
      leaf_spans(report.trace, report.result);
      report.trace.note("chosen_algorithm",
                        r.algorithm == core::ChosenAlgorithm::kLotus
                            ? "lotus"
                            : "forward");
      break;
    }
    default: {
      report.result = run(algorithm, graph, config);
      leaf_spans(report.trace, report.result);
      break;
    }
  }

  report.counters = obs::counters_snapshot();
  return report;
}

obs::MetricsRegistry ProfileReport::metrics() const {
  obs::MetricsRegistry registry;
  registry.set_meta("algorithm", name(algorithm));
  registry.set_meta("vertices", vertices);
  registry.set_meta("edges", edges);
  registry.set_meta("threads", static_cast<std::uint64_t>(threads));
  registry.set_meta("obs_enabled", obs::enabled());
  registry.set_metric("triangles", result.triangles);
  registry.set_metric("preprocess_s", result.preprocess_s);
  registry.set_metric("count_s", result.count_s);
  registry.set_metric("total_s", result.total_s());
  registry.set_metric("triangles_per_s", result.triangles_per_s());
  registry.set_metric("edges_per_s", edges_per_s(edges, result.total_s()));
  registry.set_trace(trace);
  registry.set_counters(counters);
  return registry;
}

std::string ProfileReport::to_json(int indent) const {
  return metrics().to_json_string(indent);
}

std::string name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLotus: return "lotus";
    case Algorithm::kAdaptive: return "adaptive";
    case Algorithm::kForwardMerge: return "gap-forward";
    case Algorithm::kForwardGallop: return "forward-gallop";
    case Algorithm::kForwardSimd: return "forward-simd";
    case Algorithm::kForwardHashed: return "forward-hashed";
    case Algorithm::kForwardBitmap: return "forward-bitmap";
    case Algorithm::kEdgeParallel: return "gbbs-edgepar";
    case Algorithm::kEdgeIterator: return "ggrind-edgeit";
    case Algorithm::kNodeIterator: return "node-iterator";
    case Algorithm::kBlocked: return "bbtc-blocked";
    case Algorithm::kAyz: return "ayz-matrix";
    case Algorithm::kSpGemmMasked: return "spgemm-masked";
  }
  return "unknown";
}

std::optional<Algorithm> parse(const std::string& text) {
  for (Algorithm a : all_algorithms())
    if (name(a) == text) return a;
  return std::nullopt;
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kLotus,         Algorithm::kAdaptive,
          Algorithm::kForwardMerge,  Algorithm::kForwardGallop,
          Algorithm::kForwardSimd,
          Algorithm::kForwardHashed, Algorithm::kForwardBitmap,
          Algorithm::kEdgeParallel,  Algorithm::kEdgeIterator,
          Algorithm::kNodeIterator,  Algorithm::kBlocked,
          Algorithm::kAyz,           Algorithm::kSpGemmMasked};
}

std::vector<Algorithm> paper_comparators() {
  return {Algorithm::kBlocked, Algorithm::kEdgeIterator,
          Algorithm::kForwardMerge, Algorithm::kEdgeParallel,
          Algorithm::kLotus};
}

}  // namespace lotus::tc
