#include "tc/api.hpp"

#include <iostream>
#include <memory>

#include "baselines/matrix_tc.hpp"
#include "baselines/tc_baselines.hpp"
#include "graph/degree_order.hpp"
#include "lotus/adaptive.hpp"
#include "lotus/lotus.hpp"
#include "lotus/lotus_graph.hpp"
#include "parallel/exec_context.hpp"
#include "parallel/thread_pool.hpp"
#include "simcache/machines.hpp"
#include "simcache/sim_events.hpp"
#include "tc/instrumented.hpp"
#include "util/memory_budget.hpp"
#include "util/timer.hpp"

namespace lotus::tc {

namespace {
RunResult from_baseline(const baselines::TcResult& r) {
  return {r.triangles, r.preprocess_s, r.count_s};
}

// Record the coarse two-phase timing of an already-finished run as leaf
// spans, so every algorithm produces a span tree even without fine tracing.
void leaf_spans(obs::PhaseTracer& trace, const RunResult& r) {
  if (r.preprocess_s > 0.0) trace.leaf("preprocess", r.preprocess_s);
  trace.leaf("count", r.count_s);
}

// Value of a note key anywhere in the span tree ("" if absent) — used to
// recover the adaptive fallback's decision after the fact.
std::string find_note(const obs::PhaseTracer& trace, std::string_view key) {
  for (const auto& span : trace.spans())
    for (const auto& [k, v] : span.notes)
      if (k == key) return v;
  return {};
}

// `--events sim`: replay the already-finished run single-threaded through the
// simcache model and graft the modeled per-phase event deltas onto the span
// tree. The replay re-executes the counting kernels (not preprocessing), so
// only count-side spans receive events. Supported for the algorithms that
// have instrumented replays (lotus, adaptive, gap-forward); everything else
// reports zero events with an explanatory note.
void attribute_simulated(ProfileReport& report, const graph::CsrGraph& graph,
                         const core::LotusConfig& config,
                         const ProfileOptions& options) {
  const simcache::MachineConfig machine =
      simcache::skylakex().scaled(options.sim_cache_scale);
  simcache::SimEventProvider sim(machine);
  report.event_source = obs::EventSource::kSimulated;
  report.event_backend = sim.backend();

  Algorithm replayed = report.algorithm;
  if (report.algorithm == Algorithm::kAdaptive)
    replayed = find_note(report.trace, "chosen_algorithm") == "forward"
                   ? Algorithm::kForwardMerge
                   : Algorithm::kLotus;

  std::uint64_t replay_triangles = 0;
  switch (replayed) {
    case Algorithm::kLotus: {
      const core::LotusGraph lg = core::LotusGraph::build(graph, config);
      const SampledLotusReplay replay =
          replay_lotus_sampled(lg, config, sim.model());
      replay_triangles = replay.triangles;
      const obs::EventCounts hub = simcache::to_event_counts(replay.after_hub);
      const obs::EventCounts hnn = simcache::to_event_counts(replay.after_hnn);
      const obs::EventCounts nnn = simcache::to_event_counts(replay.after_nnn);
      report.events = nnn;  // cumulative after the last phase = run total
      if (report.algorithm == Algorithm::kAdaptive) {
        // Adaptive exposes only coarse leaf spans; graft the total.
        report.trace.set_events("count", nnn);
      } else {
        report.trace.set_events("count", nnn);
        report.trace.set_events("hhh_hhn", hub);
        if (config.fuse_hnn_nnn) {
          report.trace.set_events("hnn_nnn_fused", nnn - hub);
        } else {
          report.trace.set_events("hnn", hnn - hub);
          report.trace.set_events("nnn", nnn - hnn);
        }
      }
      report.event_note =
          "events modeled by single-threaded simcache replay of the counting "
          "phases; preprocess spans carry no events";
      break;
    }
    case Algorithm::kForwardMerge: {
      const graph::OrientedCsr oriented = graph::degree_ordered_oriented(graph);
      replay_triangles = replay_forward(oriented, sim.model());
      report.events = sim.read();
      report.trace.set_events("count", report.events);
      report.event_note =
          "events modeled by single-threaded simcache replay of the counting "
          "phase; preprocess spans carry no events";
      break;
    }
    default:
      report.events = obs::EventCounts{};
      report.event_note = "no instrumented replay for " + name(report.algorithm) +
                          "; simulated events are zero";
      return;
  }
  if (replay_triangles != report.result.triangles)
    report.event_note += "; replay count mismatch (replay " +
                         std::to_string(replay_triangles) + " vs run " +
                         std::to_string(report.result.triangles) + ")";
}

// Keeps the process-wide scheduler-event sink balanced even when the run
// body throws (run_profiled_with_status catches those exceptions, so a
// dangling sink would outlive the log it points at).
struct SchedSinkGuard {
  explicit SchedSinkGuard(obs::SchedEventLog* log) : active(log != nullptr) {
    if (active) obs::set_sched_event_sink(log);
  }
  ~SchedSinkGuard() {
    if (active) obs::set_sched_event_sink(nullptr);
  }
  SchedSinkGuard(const SchedSinkGuard&) = delete;
  SchedSinkGuard& operator=(const SchedSinkGuard&) = delete;
  bool active;
};

util::Status interrupt_status(parallel::Interrupt interrupt) {
  return interrupt == parallel::Interrupt::kCancelled
             ? util::Status{util::StatusCode::kCancelled,
                            "run cancelled via RunOptions::cancel"}
             : util::Status{util::StatusCode::kDeadlineExceeded,
                            "RunOptions::deadline expired before completion"};
}

// Algorithms whose scratch/topology allocations a memory budget can veto;
// all of them degrade to the scratch-free gap-forward merge kernel.
bool budget_degradable(Algorithm algorithm) {
  return algorithm == Algorithm::kLotus || algorithm == Algorithm::kAdaptive ||
         algorithm == Algorithm::kForwardHashed ||
         algorithm == Algorithm::kForwardBitmap;
}
}  // namespace

RunResult run(Algorithm algorithm, const graph::CsrGraph& graph,
              const core::LotusConfig& config) {
  switch (algorithm) {
    case Algorithm::kLotus: {
      const core::LotusResult r = core::count_triangles(graph, config);
      return {r.triangles, r.preprocess_s, r.count_s()};
    }
    case Algorithm::kAdaptive: {
      const core::AdaptiveResult r = core::adaptive_count(graph, config);
      return {r.triangles, r.preprocess_s, r.count_s};
    }
    case Algorithm::kForwardMerge:
      return from_baseline(baselines::forward_merge(graph));
    case Algorithm::kForwardGallop:
      return from_baseline(baselines::forward_gallop(graph));
    case Algorithm::kForwardSimd:
      return from_baseline(baselines::forward_simd(graph));
    case Algorithm::kForwardHashed:
      return from_baseline(baselines::forward_hashed(graph));
    case Algorithm::kForwardBitmap:
      return from_baseline(baselines::forward_bitmap(graph));
    case Algorithm::kEdgeParallel:
      return from_baseline(baselines::edge_parallel_forward(graph));
    case Algorithm::kEdgeIterator:
      return from_baseline(baselines::edge_iterator(graph));
    case Algorithm::kNodeIterator:
      return from_baseline(baselines::node_iterator(graph));
    case Algorithm::kBlocked:
      return from_baseline(baselines::blocked_tc(graph));
    case Algorithm::kAyz: {
      util::Timer timer;
      RunResult r;
      r.triangles = baselines::ayz_tc(graph);
      r.count_s = timer.elapsed_s();
      return r;
    }
    case Algorithm::kSpGemmMasked: {
      util::Timer timer;
      RunResult r;
      r.triangles = baselines::spgemm_masked_tc(graph);
      r.count_s = timer.elapsed_s();
      return r;
    }
  }
  return {};
}

ProfileReport run_profiled(Algorithm algorithm, const graph::CsrGraph& graph,
                           const core::LotusConfig& config,
                           const ProfileOptions& options) {
  obs::reset_counters();

  ProfileReport report;
  report.algorithm = algorithm;
  report.vertices = graph.num_vertices();
  report.edges = graph.num_edges() / 2;
  report.threads = parallel::default_pool().size();

  // Hardware counters: probe availability up front and degrade to the
  // simulated source rather than failing the run (locked-down containers
  // routinely deny perf_event_open).
  obs::EventSource source = options.events;
  std::unique_ptr<obs::HwcProvider> hw;
  obs::EventCounts hw_begin;
  if (source == obs::EventSource::kHardware) {
    std::string error;
    hw = obs::HwcProvider::create(&error);
    if (hw == nullptr) {
      std::cerr << "[obs] hardware counters unavailable (" << error
                << "); falling back to --events sim\n";
      source = obs::EventSource::kSimulated;
      report.event_note =
          "hardware counters unavailable (" + error + "); degraded to simulated";
      report.degradations.push_back(
          {"hwc", "fallback=simulated", "hardware counters unavailable: " + error});
    } else {
      parallel::default_pool().execute(
          [&hw](unsigned) { hw->attach_current_thread(); });
      report.trace.set_event_provider(hw.get());
      hw_begin = hw->read();
    }
  }

  obs::SchedEventLog sched_log;
  {
    SchedSinkGuard sink(options.capture_sched_events ? &sched_log : nullptr);
    switch (algorithm) {
      case Algorithm::kLotus: {
        const core::LotusResult r =
            core::count_triangles(graph, config, &report.trace);
        report.result = {r.triangles, r.preprocess_s, r.count_s()};
        break;
      }
      case Algorithm::kAdaptive: {
        const core::AdaptiveResult r = core::adaptive_count(graph, config);
        report.result = {r.triangles, r.preprocess_s, r.count_s};
        leaf_spans(report.trace, report.result);
        report.trace.note("chosen_algorithm",
                          r.algorithm == core::ChosenAlgorithm::kLotus
                              ? "lotus"
                              : "forward");
        break;
      }
      default: {
        report.result = run(algorithm, graph, config);
        leaf_spans(report.trace, report.result);
        break;
      }
    }
  }
  if (options.capture_sched_events) report.sched_events = sched_log.events();

  report.counters = obs::counters_snapshot();

  if (hw != nullptr) {
    report.event_source = obs::EventSource::kHardware;
    report.event_backend = hw->backend();
    report.events = hw->read() - hw_begin;
    // The provider dies with this frame; the trace must not keep sampling it.
    report.trace.set_event_provider(nullptr);
  } else if (source == obs::EventSource::kSimulated) {
    const std::string degradation_note = report.event_note;
    attribute_simulated(report, graph, config, options);
    if (!degradation_note.empty())
      report.event_note = degradation_note + "; " + report.event_note;
  }
  return report;
}

util::Expected<RunResult> run_with_status(Algorithm algorithm,
                                          const graph::CsrGraph& graph,
                                          const RunOptions& options) {
  parallel::ExecContext ctx;
  ctx.cancel = options.cancel;
  ctx.deadline = options.deadline;
  parallel::ScopedExecContext exec(&ctx);
  util::MemoryBudget budget(options.memory_budget_bytes);
  util::ScopedMemoryBudget scoped_budget(&budget);

  if (const auto i = parallel::check_interrupt(); i != parallel::Interrupt::kNone)
    return interrupt_status(i);

  Algorithm active = algorithm;
  for (int attempt = 0;; ++attempt) {
    try {
      RunResult result = run(active, graph, options.config);
      // Interrupts are sticky: any chunk or phase the run skipped is still
      // visible here, so a partial count can never escape as a valid result.
      if (const auto i = parallel::check_interrupt();
          i != parallel::Interrupt::kNone)
        return interrupt_status(i);
      return result;
    } catch (const std::bad_alloc& e) {  // includes util::BudgetError
      if (attempt == 0 && options.allow_degradation &&
          budget_degradable(active)) {
        budget.reset_used();  // the failed attempt's charges are released
        active = Algorithm::kForwardMerge;
        continue;
      }
      return util::Status{util::StatusCode::kOutOfMemory, e.what()};
    } catch (...) {
      return util::status_from_current_exception();
    }
  }
}

ProfileReport run_profiled_with_status(Algorithm algorithm,
                                       const graph::CsrGraph& graph,
                                       const RunOptions& options,
                                       const ProfileOptions& profile) {
  parallel::ExecContext ctx;
  ctx.cancel = options.cancel;
  ctx.deadline = options.deadline;
  parallel::ScopedExecContext exec(&ctx);
  util::MemoryBudget budget(options.memory_budget_bytes);
  util::ScopedMemoryBudget scoped_budget(&budget);

  const auto fill_identity = [&](ProfileReport& r, Algorithm a) {
    r.algorithm = a;
    r.vertices = graph.num_vertices();
    r.edges = graph.num_edges() / 2;
    r.threads = parallel::default_pool().size();
  };

  ProfileReport report;
  fill_identity(report, algorithm);
  if (const auto i = parallel::check_interrupt();
      i != parallel::Interrupt::kNone) {
    report.status = interrupt_status(i);
    return report;
  }

  std::vector<obs::Degradation> degradations;
  Algorithm active = algorithm;
  for (int attempt = 0;; ++attempt) {
    try {
      report = run_profiled(active, graph, options.config, profile);
      if (const auto i = parallel::check_interrupt();
          i != parallel::Interrupt::kNone) {
        report.status = interrupt_status(i);
        report.result.triangles = 0;  // partial count must never look valid
      }
      break;
    } catch (const std::bad_alloc& e) {  // includes util::BudgetError
      if (attempt == 0 && options.allow_degradation &&
          budget_degradable(active)) {
        degradations.push_back({name(active),
                                "fallback=" + name(Algorithm::kForwardMerge),
                                e.what()});
        budget.reset_used();
        active = Algorithm::kForwardMerge;
        continue;
      }
      report = ProfileReport{};
      fill_identity(report, active);
      report.status = {util::StatusCode::kOutOfMemory, e.what()};
      break;
    } catch (...) {
      report = ProfileReport{};
      fill_identity(report, active);
      report.status = util::status_from_current_exception();
      break;
    }
  }
  if (!degradations.empty()) {
    // Budget fallbacks happened before the run that produced `report`; any
    // degradations run_profiled recorded itself (hw→sim) come after.
    degradations.insert(degradations.end(), report.degradations.begin(),
                        report.degradations.end());
    report.degradations = std::move(degradations);
  }
  return report;
}

obs::MetricsRegistry ProfileReport::metrics() const {
  obs::MetricsRegistry registry;
  registry.set_meta("algorithm", name(algorithm));
  registry.set_meta("vertices", vertices);
  registry.set_meta("edges", edges);
  registry.set_meta("threads", static_cast<std::uint64_t>(threads));
  registry.set_meta("obs_enabled", obs::enabled());
  registry.set_metric("triangles", result.triangles);
  registry.set_metric("preprocess_s", result.preprocess_s);
  registry.set_metric("count_s", result.count_s);
  registry.set_metric("total_s", result.total_s());
  registry.set_metric("triangles_per_s", result.triangles_per_s());
  registry.set_metric("edges_per_s", edges_per_s(edges, result.total_s()));
  registry.set_hw(event_source, event_backend, events, event_note);
  registry.set_resilience(status, degradations);
  registry.set_trace(trace);
  registry.set_counters(counters);
  return registry;
}

std::string ProfileReport::to_json(int indent) const {
  return metrics().to_json_string(indent);
}

std::string ProfileReport::to_chrome_trace() const {
  return obs::chrome_trace_string(trace, sched_events);
}

std::string name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLotus: return "lotus";
    case Algorithm::kAdaptive: return "adaptive";
    case Algorithm::kForwardMerge: return "gap-forward";
    case Algorithm::kForwardGallop: return "forward-gallop";
    case Algorithm::kForwardSimd: return "forward-simd";
    case Algorithm::kForwardHashed: return "forward-hashed";
    case Algorithm::kForwardBitmap: return "forward-bitmap";
    case Algorithm::kEdgeParallel: return "gbbs-edgepar";
    case Algorithm::kEdgeIterator: return "ggrind-edgeit";
    case Algorithm::kNodeIterator: return "node-iterator";
    case Algorithm::kBlocked: return "bbtc-blocked";
    case Algorithm::kAyz: return "ayz-matrix";
    case Algorithm::kSpGemmMasked: return "spgemm-masked";
  }
  return "unknown";
}

std::optional<Algorithm> parse(const std::string& text) {
  for (Algorithm a : all_algorithms())
    if (name(a) == text) return a;
  return std::nullopt;
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kLotus,         Algorithm::kAdaptive,
          Algorithm::kForwardMerge,  Algorithm::kForwardGallop,
          Algorithm::kForwardSimd,
          Algorithm::kForwardHashed, Algorithm::kForwardBitmap,
          Algorithm::kEdgeParallel,  Algorithm::kEdgeIterator,
          Algorithm::kNodeIterator,  Algorithm::kBlocked,
          Algorithm::kAyz,           Algorithm::kSpGemmMasked};
}

std::vector<Algorithm> paper_comparators() {
  return {Algorithm::kBlocked, Algorithm::kEdgeIterator,
          Algorithm::kForwardMerge, Algorithm::kEdgeParallel,
          Algorithm::kLotus};
}

}  // namespace lotus::tc
