#include "tc/api.hpp"

#include "baselines/matrix_tc.hpp"
#include "baselines/tc_baselines.hpp"
#include "lotus/adaptive.hpp"
#include "lotus/lotus.hpp"
#include "util/timer.hpp"

namespace lotus::tc {

namespace {
RunResult from_baseline(const baselines::TcResult& r) {
  return {r.triangles, r.preprocess_s, r.count_s};
}
}  // namespace

RunResult run(Algorithm algorithm, const graph::CsrGraph& graph,
              const core::LotusConfig& config) {
  switch (algorithm) {
    case Algorithm::kLotus: {
      const core::LotusResult r = core::count_triangles(graph, config);
      return {r.triangles, r.preprocess_s, r.count_s()};
    }
    case Algorithm::kAdaptive: {
      const core::AdaptiveResult r = core::adaptive_count(graph, config);
      return {r.triangles, r.preprocess_s, r.count_s};
    }
    case Algorithm::kForwardMerge:
      return from_baseline(baselines::forward_merge(graph));
    case Algorithm::kForwardGallop:
      return from_baseline(baselines::forward_gallop(graph));
    case Algorithm::kForwardSimd:
      return from_baseline(baselines::forward_simd(graph));
    case Algorithm::kForwardHashed:
      return from_baseline(baselines::forward_hashed(graph));
    case Algorithm::kForwardBitmap:
      return from_baseline(baselines::forward_bitmap(graph));
    case Algorithm::kEdgeParallel:
      return from_baseline(baselines::edge_parallel_forward(graph));
    case Algorithm::kEdgeIterator:
      return from_baseline(baselines::edge_iterator(graph));
    case Algorithm::kNodeIterator:
      return from_baseline(baselines::node_iterator(graph));
    case Algorithm::kBlocked:
      return from_baseline(baselines::blocked_tc(graph));
    case Algorithm::kAyz: {
      util::Timer timer;
      RunResult r;
      r.triangles = baselines::ayz_tc(graph);
      r.count_s = timer.elapsed_s();
      return r;
    }
    case Algorithm::kSpGemmMasked: {
      util::Timer timer;
      RunResult r;
      r.triangles = baselines::spgemm_masked_tc(graph);
      r.count_s = timer.elapsed_s();
      return r;
    }
  }
  return {};
}

std::string name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLotus: return "lotus";
    case Algorithm::kAdaptive: return "adaptive";
    case Algorithm::kForwardMerge: return "gap-forward";
    case Algorithm::kForwardGallop: return "forward-gallop";
    case Algorithm::kForwardSimd: return "forward-simd";
    case Algorithm::kForwardHashed: return "forward-hashed";
    case Algorithm::kForwardBitmap: return "forward-bitmap";
    case Algorithm::kEdgeParallel: return "gbbs-edgepar";
    case Algorithm::kEdgeIterator: return "ggrind-edgeit";
    case Algorithm::kNodeIterator: return "node-iterator";
    case Algorithm::kBlocked: return "bbtc-blocked";
    case Algorithm::kAyz: return "ayz-matrix";
    case Algorithm::kSpGemmMasked: return "spgemm-masked";
  }
  return "unknown";
}

std::optional<Algorithm> parse(const std::string& text) {
  for (Algorithm a : all_algorithms())
    if (name(a) == text) return a;
  return std::nullopt;
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kLotus,         Algorithm::kAdaptive,
          Algorithm::kForwardMerge,  Algorithm::kForwardGallop,
          Algorithm::kForwardSimd,
          Algorithm::kForwardHashed, Algorithm::kForwardBitmap,
          Algorithm::kEdgeParallel,  Algorithm::kEdgeIterator,
          Algorithm::kNodeIterator,  Algorithm::kBlocked,
          Algorithm::kAyz,           Algorithm::kSpGemmMasked};
}

std::vector<Algorithm> paper_comparators() {
  return {Algorithm::kBlocked, Algorithm::kEdgeIterator,
          Algorithm::kForwardMerge, Algorithm::kEdgeParallel,
          Algorithm::kLotus};
}

}  // namespace lotus::tc
