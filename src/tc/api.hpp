// Unified triangle-counting API.
//
// One entry point over LOTUS and every baseline, so benches, tests and
// examples can sweep algorithms uniformly. The enum names note which
// framework of the paper's evaluation (Sec. 5.1.4) each kernel stands in for.
//
// Thread-safety: run() and run_profiled() drive the process-wide thread pool
// (parallel::default_pool) and the process-wide observability counters, so at
// most one run may execute at a time; calling either concurrently from two
// threads gives interleaved counters and a racing pool. Results returned by
// value are immutable afterwards and safe to share. The *_with_status
// variants additionally install the process-wide execution context and
// memory budget (parallel/exec_context.hpp, util/memory_budget.hpp) for the
// duration of the call — the same one-run-at-a-time contract makes that
// safe. Cancelling via RunOptions::cancel from *another* thread is the
// supported (and intended) concurrent interaction.
//
// Overhead: run() adds two util::Timer reads per algorithm over calling the
// kernel directly. run_profiled() additionally resets/snapshots the global
// counters and records O(#phases) spans — a handful of clock reads per run,
// independent of graph size. With LOTUS_OBS=0 the counter snapshot is empty
// but the span tree is still recorded (see obs/counters.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "lotus/config.hpp"
#include "obs/counters.hpp"
#include "obs/hwc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace lotus::tc {

enum class Algorithm {
  kLotus,          // this paper
  kAdaptive,       // LOTUS with the Sec. 5.5 skewness fallback
  kForwardMerge,   // GAP-style Forward + merge join
  kForwardGallop,  // Forward + binary/galloping search [31]
  kForwardSimd,    // Forward + AVX2 block intersection (vectorized class)
  kForwardHashed,  // Schank & Wagner forward-hashed
  kForwardBitmap,  // Latapy new-vertex-listing
  kEdgeParallel,   // GBBS-style edge-parallel Forward
  kEdgeIterator,   // GraphGrind-style edge iterator
  kNodeIterator,   // classical node iterator
  kBlocked,        // BBTC-style block-based TC
  kAyz,            // Alon-Yuster-Zwick matrix-hybrid [1, 2]
  kSpGemmMasked,   // masked sparse matrix product [8]
};

struct RunResult {
  std::uint64_t triangles = 0;
  double preprocess_s = 0.0;
  double count_s = 0.0;

  [[nodiscard]] double total_s() const { return preprocess_s + count_s; }

  /// End-to-end counting rate (triangles per second over preprocess + count);
  /// 0 when the run was too fast to time.
  [[nodiscard]] double triangles_per_s() const {
    const double t = total_s();
    return t > 0.0 ? static_cast<double>(triangles) / t : 0.0;
  }
};

/// Canonical edge-rate formula shared by the benches: undirected edges
/// processed per second. Returns 0 when `seconds` is not positive.
[[nodiscard]] inline double edges_per_s(std::uint64_t undirected_edges,
                                        double seconds) {
  return seconds > 0.0 ? static_cast<double>(undirected_edges) / seconds : 0.0;
}

/// End-to-end run (preprocessing + counting) of one algorithm.
RunResult run(Algorithm algorithm, const graph::CsrGraph& graph,
              const core::LotusConfig& config = {});

/// Resilience knobs for run_with_status / run_profiled_with_status.
struct RunOptions {
  /// Algorithm configuration (hub count, fusion, ...), as for run().
  core::LotusConfig config;

  /// Cooperative cancellation: another thread calls cancel() and the run
  /// returns StatusCode::kCancelled at the next chunk/phase boundary. The
  /// token must outlive the call; nullptr = not cancellable.
  const util::CancelToken* cancel = nullptr;

  /// Wall-clock deadline; an expired deadline makes the run return
  /// StatusCode::kDeadlineExceeded at the next chunk/phase boundary.
  /// Default: no deadline.
  util::Deadline deadline;

  /// Soft cap on the large allocations the library accounts (CSX arrays,
  /// relabel buffers, H2H bits, intersection scratch; util/memory_budget.hpp).
  /// 0 = unlimited. Exceeding it triggers degradation (below) or
  /// StatusCode::kOutOfMemory.
  std::uint64_t memory_budget_bytes = 0;

  /// When the budget (or an injected allocation fault) vetoes a
  /// memory-hungry algorithm (lotus, adaptive, forward-hashed,
  /// forward-bitmap), retry once with the scratch-free gap-forward merge
  /// kernel instead of failing. The switch is recorded in the metrics
  /// export's resilience section. false = fail with kOutOfMemory.
  bool allow_degradation = true;
};

/// run() behind the Status error model: never throws and never exits.
/// Returns the result, or: kCancelled / kDeadlineExceeded (cooperative
/// interrupt — a partial count is discarded, never returned),
/// kOutOfMemory (allocation failure or budget exceeded, after any permitted
/// degradation), kResourceExhausted (thread/fd failure), kInvalidArgument,
/// or kInternal for anything unexpected.
util::Expected<RunResult> run_with_status(Algorithm algorithm,
                                          const graph::CsrGraph& graph,
                                          const RunOptions& options = {});

/// Knobs for run_profiled beyond the algorithm config.
struct ProfileOptions {
  /// Requested hardware-event source. kHardware degrades to kSimulated
  /// (with a one-line stderr warning) when perf_event_open is unavailable —
  /// a locked-down container must never fail the run. kSimulated replays
  /// the run single-threaded through the simcache model after the real
  /// (timed) run to attribute modeled events per phase; it is supported for
  /// lotus/adaptive/gap-forward and reports zero events (with a note) for
  /// the other baselines.
  obs::EventSource events = obs::EventSource::kOff;

  /// Record the scheduler's task/steal/idle timeline into
  /// ProfileReport::sched_events (for chrome_trace export).
  bool capture_sched_events = false;

  /// Cache-size divisor for the simulated machine (matches the fig4/fig5
  /// default scaling of SkyLakeX to laptop-scale datasets).
  std::uint32_t sim_cache_scale = 16;
};

/// Everything one run produced: the RunResult plus the span tree, the
/// per-thread counter snapshot, hardware-event totals, and (optionally) the
/// scheduler timeline taken over exactly this run. Exported via metrics() /
/// to_json() in the versioned "lotus-metrics/3" schema (docs/METRICS.md).
struct ProfileReport {
  Algorithm algorithm = Algorithm::kLotus;
  RunResult result;
  obs::PhaseTracer trace;
  obs::CountersSnapshot counters;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;  // undirected edge count
  unsigned threads = 0;

  /// Event source that actually ran (after any hw→sim degradation), its
  /// backend tag, run-total events, and a note when something degraded or
  /// was unsupported. kOff ⇒ events are all zero.
  obs::EventSource event_source = obs::EventSource::kOff;
  std::string event_backend;
  obs::EventCounts events;
  std::string event_note;

  /// Scheduler timeline (empty unless ProfileOptions::capture_sched_events).
  std::vector<obs::SchedEvent> sched_events;

  /// Final status of the run and any graceful degradations taken (hw→sim
  /// events, memory-budget algorithm fallback). run_profiled() always leaves
  /// status ok (it throws on failure); run_profiled_with_status() reports
  /// cancellation/deadline/OOM here instead of throwing. Non-ok status ⇒
  /// `result.triangles` is zeroed (a partial count must never look valid);
  /// the timings and spans that did complete are kept as partial metrics.
  util::Status status;
  std::vector<obs::Degradation> degradations;

  /// Assemble the full MetricsRegistry (meta + metrics + hw + spans +
  /// counters).
  [[nodiscard]] obs::MetricsRegistry metrics() const;
  /// Shorthand for metrics().to_json_string(indent).
  [[nodiscard]] std::string to_json(int indent = 2) const;
  /// Chrome-trace document of the span tree + scheduler timeline
  /// (obs::chrome_trace), loadable in Perfetto / chrome://tracing.
  [[nodiscard]] std::string to_chrome_trace() const;
};

/// Like run(), but resets the global observability counters first and
/// captures the span tree + counter snapshot of the run. LOTUS and the
/// adaptive variant emit their full phase breakdown; baselines emit
/// "preprocess"/"count" leaf spans from their coarse timings. With
/// options.events != kOff, spans additionally carry hardware (or simulated)
/// event deltas.
ProfileReport run_profiled(Algorithm algorithm, const graph::CsrGraph& graph,
                           const core::LotusConfig& config = {},
                           const ProfileOptions& options = {});

/// run_profiled() behind the Status error model: never throws. Always
/// returns a report — on failure its `status` is non-ok, its identity fields
/// (algorithm, vertices, edges, threads) are filled, and whatever phase
/// metrics completed before the interrupt are kept. Degradations (budget
/// fallback, hw→sim) are listed in `degradations` and exported in the
/// metrics resilience section.
ProfileReport run_profiled_with_status(Algorithm algorithm,
                                       const graph::CsrGraph& graph,
                                       const RunOptions& options = {},
                                       const ProfileOptions& profile = {});

[[nodiscard]] std::string name(Algorithm algorithm);
[[nodiscard]] std::optional<Algorithm> parse(const std::string& name);

/// All algorithms, LOTUS first (display order used by the benches).
[[nodiscard]] std::vector<Algorithm> all_algorithms();

/// The comparator set of Tables 5/6: BBTC, GraphGrind, GAP, GBBS, Lotus.
[[nodiscard]] std::vector<Algorithm> paper_comparators();

}  // namespace lotus::tc
