// Unified triangle-counting API.
//
// One entry point over LOTUS and every baseline, so benches, tests and
// examples can sweep algorithms uniformly. The enum names note which
// framework of the paper's evaluation (Sec. 5.1.4) each kernel stands in for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "lotus/config.hpp"

namespace lotus::tc {

enum class Algorithm {
  kLotus,          // this paper
  kAdaptive,       // LOTUS with the Sec. 5.5 skewness fallback
  kForwardMerge,   // GAP-style Forward + merge join
  kForwardGallop,  // Forward + binary/galloping search [31]
  kForwardSimd,    // Forward + AVX2 block intersection (vectorized class)
  kForwardHashed,  // Schank & Wagner forward-hashed
  kForwardBitmap,  // Latapy new-vertex-listing
  kEdgeParallel,   // GBBS-style edge-parallel Forward
  kEdgeIterator,   // GraphGrind-style edge iterator
  kNodeIterator,   // classical node iterator
  kBlocked,        // BBTC-style block-based TC
  kAyz,            // Alon-Yuster-Zwick matrix-hybrid [1, 2]
  kSpGemmMasked,   // masked sparse matrix product [8]
};

struct RunResult {
  std::uint64_t triangles = 0;
  double preprocess_s = 0.0;
  double count_s = 0.0;

  [[nodiscard]] double total_s() const { return preprocess_s + count_s; }
};

/// End-to-end run (preprocessing + counting) of one algorithm.
RunResult run(Algorithm algorithm, const graph::CsrGraph& graph,
              const core::LotusConfig& config = {});

[[nodiscard]] std::string name(Algorithm algorithm);
[[nodiscard]] std::optional<Algorithm> parse(const std::string& name);

/// All algorithms, LOTUS first (display order used by the benches).
[[nodiscard]] std::vector<Algorithm> all_algorithms();

/// The comparator set of Tables 5/6: BBTC, GraphGrind, GAP, GBBS, Lotus.
[[nodiscard]] std::vector<Algorithm> paper_comparators();

}  // namespace lotus::tc
